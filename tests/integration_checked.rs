//! "Safety is library policy": the checked primitive layer is ordinary
//! library code (prims_abstract_checked.scm) — same compiler, same
//! optimizer. These tests verify the checks fire, the semantics are
//! otherwise unchanged, and the measured safety overhead is sane.

use sxr::{
    Compiler, PipelineConfig, VmErrorKind, LIBRARY_SCM, PRIMS_ABSTRACT_CHECKED_SCM, REPS_SCM,
};

fn checked(src: &str) -> Result<sxr::Outcome, sxr::VmError> {
    Compiler::new(PipelineConfig::abstract_optimized())
        .compile_with_prelude(&[REPS_SCM, PRIMS_ABSTRACT_CHECKED_SCM, LIBRARY_SCM], src)
        .unwrap_or_else(|e| panic!("checked prelude failed to compile: {e}"))
        .run()
}

#[test]
fn checked_layer_passes_the_whole_corpus() {
    let corpus = include_str!("../crates/core/scheme/selftest.scm");
    let out = checked(corpus).expect("corpus runs");
    assert_eq!(out.value, "ok", "corpus failures:\n{}", out.output);
}

#[test]
fn type_checks_fire() {
    for bad in [
        "(car 5)",
        "(cdr \"s\")",
        "(set-car! 'sym 1)",
        "(vector-ref '(1 2) 0)",
        "(string-ref '#(1) 0)",
        "(fx+ 'a 1)",
        "(fx< 1 \"x\")",
        "(unbox 5)",
        "(symbol->string \"not-a-symbol\")",
    ] {
        let err = checked(bad).expect_err(bad);
        assert_eq!(err.kind, VmErrorKind::SchemeError, "{bad}: {err}");
    }
}

#[test]
fn bounds_checks_fire() {
    for bad in [
        "(vector-ref (make-vector 3 0) 3)",
        "(vector-ref (make-vector 3 0) -1)",
        "(vector-set! (make-vector 3 0) 9 1)",
        "(string-ref \"abc\" 3)",
        "(make-vector -1 0)",
    ] {
        let err = checked(bad).expect_err(bad);
        assert_eq!(err.kind, VmErrorKind::SchemeError, "{bad}: {err}");
    }
}

#[test]
fn in_bounds_behaviour_is_unchanged() {
    let src = "(let ((v (make-vector 4 1)))
                 (vector-set! v 2 9)
                 (display (list (vector-ref v 2) (car (cons 7 8)) (fx+ 1 2))))";
    assert_eq!(checked(src).unwrap().output, "(9 7 3)");
}

#[test]
fn safety_overhead_is_bounded() {
    // The checks cost something, but the optimizer still specializes
    // everything around them: on a vector-sum kernel the checked layer
    // should stay within a small multiple of the unchecked one.
    let kernel = "
      (define v (make-vector 5000 3))
      (%counters-reset!)
      (let loop ((i 0) (s 0))
        (if (fx= i 5000) s (loop (fx+ i 1) (fx+ s (vector-ref v i)))))";
    let unchecked = Compiler::new(PipelineConfig::abstract_optimized())
        .compile(kernel)
        .unwrap()
        .run()
        .unwrap();
    let with_checks = checked(kernel).unwrap();
    assert_eq!(unchecked.value, with_checks.value);
    let ratio = with_checks.counters.total as f64 / unchecked.counters.total as f64;
    assert!(
        ratio > 1.05 && ratio < 4.0,
        "expected modest safety overhead, got {ratio:.2}x \
         ({} vs {} instructions)",
        with_checks.counters.total,
        unchecked.counters.total
    );
}
