//! Runs the Scheme-level conformance corpus (`selftest.scm`) under every
//! pipeline configuration. The corpus is object-language code, so a pass
//! here exercises reader, expander, optimizer, code generator, VM, and GC
//! together.

use sxr::{Compiler, PipelineConfig};

const SELFTEST: &str = include_str!("../crates/core/scheme/selftest.scm");

fn run_under(label: &str, cfg: PipelineConfig) {
    let out = Compiler::new(cfg)
        .compile(SELFTEST)
        .unwrap_or_else(|e| panic!("[{label}] selftest failed to compile: {e}"))
        .run()
        .unwrap_or_else(|e| panic!("[{label}] selftest failed to run: {e}"));
    assert_eq!(
        out.value, "ok",
        "[{label}] corpus reported failures:\n{}",
        out.output
    );
    assert!(
        out.output.ends_with("0 failures\n"),
        "[{label}] unexpected report: {}",
        out.output
    );
}

#[test]
fn selftest_traditional() {
    run_under("Traditional", PipelineConfig::traditional());
}

#[test]
fn selftest_abstract_opt() {
    run_under("AbstractOpt", PipelineConfig::abstract_optimized());
}

#[test]
fn selftest_abstract_noopt() {
    run_under("AbstractNoOpt", PipelineConfig::abstract_unoptimized());
}

#[test]
fn selftest_all_ablations() {
    for pass in ["inline", "constfold", "repspec", "bits", "cse", "dce"] {
        run_under(&format!("Ablate({pass})"), PipelineConfig::ablated(pass));
    }
}

#[test]
fn selftest_under_memory_pressure() {
    // A tiny heap forces constant collection through the whole corpus.
    run_under(
        "TinyHeap",
        PipelineConfig::abstract_optimized().with_heap_words(1 << 13),
    );
}
