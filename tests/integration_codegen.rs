//! Generated-code quality checks: the shapes the paper's claim depends on,
//! asserted at the instruction level.

use sxr::{Compiler, PipelineConfig};

fn compile_opt(src: &str) -> sxr::Compiled {
    Compiler::new(PipelineConfig::abstract_optimized())
        .compile(src)
        .unwrap()
}

fn dis(c: &sxr::Compiled, name: &str) -> String {
    c.disassemble(name)
        .unwrap_or_else(|| panic!("no fn {name}"))
}

#[test]
fn fx_less_fuses_into_one_branch() {
    let c = compile_opt("(define (lt2? a b) (if (fx< a b) 'yes 'no)) 0");
    let d = dis(&c, "lt2?");
    assert!(
        d.contains("JumpCmp { op: Ge"),
        "fused compare-and-branch:\n{d}"
    );
    assert!(!d.contains("CmpLt"), "no separate comparison:\n{d}");
}

#[test]
fn car_is_single_displacement_load() {
    let c = compile_opt("0");
    let d = dis(&c, "car");
    // LoadD with displacement 8 - pair_tag(1) = 7, then return.
    assert!(d.contains("LoadD"), "{d}");
    assert!(d.contains("disp: 7"), "{d}");
    assert_eq!(c.static_count("car"), Some(2));
}

#[test]
fn vector_ref_uses_indexed_addressing() {
    let c = compile_opt("0");
    let d = dis(&c, "vector-ref");
    assert!(
        d.contains("LoadX"),
        "indexed load with fused tag math:\n{d}"
    );
    assert_eq!(c.static_count("vector-ref"), Some(2));
}

#[test]
fn fxadd_is_single_add_on_tagged_words() {
    let c = compile_opt("0");
    let d = dis(&c, "fx+");
    assert!(d.contains("op: Add"), "{d}");
    assert!(!d.contains("Shr"), "no projection survives:\n{d}");
    assert_eq!(c.static_count("fx+"), Some(2));
}

#[test]
fn immediate_operands_fold_into_instructions() {
    let c = compile_opt("(define (inc x) (fx+ x 1)) 0");
    let d = dis(&c, "inc");
    // The tagged constant 8 rides in the instruction, no Const load.
    assert!(d.contains("BinI { op: Add") && d.contains("imm: 8"), "{d}");
    assert_eq!(c.static_count("inc"), Some(2));
}

#[test]
fn no_jumps_to_fallthrough() {
    let c = compile_opt(
        "(define (classify x)
           (cond ((pair? x) 0) ((null? x) 1) ((fixnum? x) 2) (else 3))) 0",
    );
    for f in &c.code.funs {
        for (i, inst) in f.insts.iter().enumerate() {
            if let sxr_vm::Inst::Jump { t } = inst {
                assert_ne!(*t as usize, i + 1, "jump-to-next survives in {}", f.name);
            }
        }
    }
}

#[test]
fn branch_targets_in_range() {
    let c = compile_opt("(define (weird x) (if (if (pair? x) (fx< (car x) 0) #f) 'neg 'other)) 0");
    for f in &c.code.funs {
        let n = f.insts.len() as u32;
        for inst in &f.insts {
            match inst {
                sxr_vm::Inst::Jump { t } | sxr_vm::Inst::JumpCmp { t, .. } => {
                    assert!(*t <= n, "target out of range in {}", f.name);
                }
                _ => {}
            }
        }
    }
}

#[test]
fn pointer_maps_mark_projections_raw() {
    // fxquotient's body projects both operands; those registers must be
    // skipped by the collector.
    let c = compile_opt("0");
    let f = c.fun_by_name("fxquotient").unwrap();
    assert!(
        f.ptr_map.iter().any(|tagged| !tagged),
        "expected at least one raw register in fxquotient's map"
    );
    // Register 0 (closure) and the parameters are always scanned.
    assert!(f.ptr_map[0] && f.ptr_map[1] && f.ptr_map[2]);
}

#[test]
fn self_recursive_loop_uses_known_tail_call() {
    let c = compile_opt("(define (run) (let loop ((i 0)) (if (fx= i 10) i (loop (fx+ i 1))))) 0");
    let has_known_tail = c.code.funs.iter().any(|f| {
        f.insts
            .iter()
            .any(|i| matches!(i, sxr_vm::Inst::TailCallKnown { .. }))
    });
    assert!(has_known_tail, "loop should compile to a direct tail call");
}

#[test]
fn traditional_and_abstract_agree_instruction_for_instruction_on_fib() {
    let src = "(define (fib n) (if (fx< n 2) n (fx+ (fib (fx- n 1)) (fib (fx- n 2))))) 0";
    let a = compile_opt(src);
    let t = Compiler::new(PipelineConfig::traditional())
        .compile(src)
        .unwrap();
    assert_eq!(
        a.fun_by_name("fib").unwrap().insts,
        t.fun_by_name("fib").unwrap().insts,
        "the paper's headline, literally"
    );
}
