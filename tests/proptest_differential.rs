//! Property-based differential testing: generate random well-formed
//! programs and require every pipeline configuration to agree on their
//! output. Random programs reach operator combinations the hand-written
//! suites never think of; any divergence is a miscompilation in one of the
//! representation-handling paths.
//!
//! Generation is driven by a small deterministic in-tree PRNG (the build
//! environment has no network access for external property-testing crates);
//! failures print the seed and the offending program so a case can be
//! replayed exactly:
//!
//! ```text
//! SXR_FUZZ_SEED=<seed> SXR_FUZZ_ITERS=<n> cargo test --test proptest_differential
//! ```
//!
//! Every case also re-runs under the GC-on-every-allocation fault schedule
//! ([`FaultPlan::with_gc_every_alloc`]): the generated programs allocate
//! (pairs, vectors, closures), so forcing a collection at every safe point
//! shakes out missing-root and stale-pointer bugs that normal GC timing
//! almost never reaches.
//!
//! One rotating configuration per case additionally replays under
//! fuel-sliced suspend/resume with *random* slice sizes drawn from the same
//! seeded stream: suspension points land at arbitrary instruction
//! boundaries, and the resumed outcome (value, output, every counter) must
//! be bitwise identical to the uninterrupted run.

use sxr::report::run_resumable_with;
use sxr::{Compiler, FaultPlan, PipelineConfig};

/// Deterministic xorshift64* PRNG — the sequence is fixed per seed, so every
/// CI run tests the same programs and failures reproduce exactly.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `0..n` (n > 0).
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn i32_in(&mut self, lo: i32, hi: i32) -> i32 {
        lo + (self.next() % (hi - lo) as u64) as i32
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// A well-typed expression generator. Every generated program terminates,
/// raises no runtime errors, and uses only exact arithmetic.
#[derive(Debug, Clone)]
enum IntExpr {
    Lit(i32),
    Var(usize), // de Bruijn-ish index into bound int vars
    Add(Box<IntExpr>, Box<IntExpr>),
    Sub(Box<IntExpr>, Box<IntExpr>),
    Mul(Box<IntExpr>, Box<IntExpr>),
    // quotient/remainder with a divisor forced nonzero
    Quot(Box<IntExpr>, Box<IntExpr>),
    Rem(Box<IntExpr>, Box<IntExpr>),
    If(Box<BoolExpr>, Box<IntExpr>, Box<IntExpr>),
    Let(Box<IntExpr>, Box<IntExpr>), // binds one more var in body
    // (length (list ...)) and list folds
    SumList(Vec<IntExpr>),
    CarCons(Box<IntExpr>, Box<IntExpr>),
    VecRef(Vec<IntExpr>, usize),
    CharRound(Box<IntExpr>),
    Apply1(Box<IntExpr>), // ((lambda (x) (fx+ x 1)) e)
    // Heap-allocating forms: these make the gc-every-alloc re-run bite.
    CdrCons(Box<IntExpr>, Box<IntExpr>),
    // let-bound vector, mutated then read back: exercises vector-set!
    // against a vector that survives allocations (and forced GCs).
    VecSet(Vec<IntExpr>, usize, Box<IntExpr>, usize),
    // let-bound closure applied twice: the closure cell itself lives on
    // the heap across the argument evaluations.
    LetLambda(Box<IntExpr>, Box<IntExpr>, Box<IntExpr>),
    // length/append/reverse churn: builds short lists whose spines must
    // survive the allocations of the later ones.
    ListChurn(Vec<IntExpr>, Vec<IntExpr>),
}

#[derive(Debug, Clone)]
enum BoolExpr {
    Lit(bool),
    Lt(Box<IntExpr>, Box<IntExpr>),
    Eq(Box<IntExpr>, Box<IntExpr>),
    Not(Box<BoolExpr>),
    And(Box<BoolExpr>, Box<BoolExpr>),
    Or(Box<BoolExpr>, Box<BoolExpr>),
    NullTest(Vec<IntExpr>),
}

/// Generates an expression of height at most `fuel`.
fn gen_int(rng: &mut Rng, fuel: usize) -> IntExpr {
    if fuel == 0 {
        return if rng.bool() {
            IntExpr::Lit(rng.i32_in(-1000, 1000))
        } else {
            IntExpr::Var(rng.below(4))
        };
    }
    let f = fuel - 1;
    match rng.below(18) {
        0 => IntExpr::Lit(rng.i32_in(-1000, 1000)),
        1 => IntExpr::Var(rng.below(4)),
        2 => IntExpr::Add(Box::new(gen_int(rng, f)), Box::new(gen_int(rng, f))),
        3 => IntExpr::Sub(Box::new(gen_int(rng, f)), Box::new(gen_int(rng, f))),
        4 => IntExpr::Mul(Box::new(gen_int(rng, f)), Box::new(gen_int(rng, f))),
        5 => IntExpr::Quot(Box::new(gen_int(rng, f)), Box::new(gen_int(rng, f))),
        6 => IntExpr::Rem(Box::new(gen_int(rng, f)), Box::new(gen_int(rng, f))),
        7 => IntExpr::If(
            Box::new(gen_bool(rng, f.min(3))),
            Box::new(gen_int(rng, f)),
            Box::new(gen_int(rng, f)),
        ),
        8 => IntExpr::Let(Box::new(gen_int(rng, f)), Box::new(gen_int(rng, f))),
        9 => IntExpr::SumList((0..rng.below(4)).map(|_| gen_int(rng, f)).collect()),
        10 => IntExpr::CarCons(Box::new(gen_int(rng, f)), Box::new(gen_int(rng, f))),
        11 => IntExpr::VecRef(
            (0..1 + rng.below(3)).map(|_| gen_int(rng, f)).collect(),
            rng.below(64),
        ),
        12 => IntExpr::CharRound(Box::new(gen_int(rng, f))),
        13 => IntExpr::Apply1(Box::new(gen_int(rng, f))),
        14 => IntExpr::CdrCons(Box::new(gen_int(rng, f)), Box::new(gen_int(rng, f))),
        15 => IntExpr::VecSet(
            (0..1 + rng.below(3)).map(|_| gen_int(rng, f)).collect(),
            rng.below(64),
            Box::new(gen_int(rng, f)),
            rng.below(64),
        ),
        16 => IntExpr::LetLambda(
            Box::new(gen_int(rng, f)),
            Box::new(gen_int(rng, f)),
            Box::new(gen_int(rng, f)),
        ),
        _ => IntExpr::ListChurn(
            (0..rng.below(3)).map(|_| gen_int(rng, f)).collect(),
            (0..rng.below(3)).map(|_| gen_int(rng, f)).collect(),
        ),
    }
}

fn gen_bool(rng: &mut Rng, fuel: usize) -> BoolExpr {
    if fuel == 0 {
        return BoolExpr::Lit(rng.bool());
    }
    let f = fuel - 1;
    match rng.below(7) {
        0 => BoolExpr::Lit(rng.bool()),
        1 => BoolExpr::Lt(Box::new(gen_int(rng, f)), Box::new(gen_int(rng, f))),
        2 => BoolExpr::Eq(Box::new(gen_int(rng, f)), Box::new(gen_int(rng, f))),
        3 => BoolExpr::Not(Box::new(gen_bool(rng, f))),
        4 => BoolExpr::And(Box::new(gen_bool(rng, f)), Box::new(gen_bool(rng, f))),
        5 => BoolExpr::Or(Box::new(gen_bool(rng, f)), Box::new(gen_bool(rng, f))),
        _ => BoolExpr::NullTest((0..rng.below(3)).map(|_| gen_int(rng, f)).collect()),
    }
}

fn render_int(e: &IntExpr, depth: usize, out: &mut String) {
    match e {
        IntExpr::Lit(n) => out.push_str(&n.to_string()),
        IntExpr::Var(i) => {
            if depth == 0 {
                out.push('7'); // no vars in scope: a constant
            } else {
                out.push_str(&format!("v{}", i % depth));
            }
        }
        IntExpr::Add(a, b) => bin(out, "fx+", a, b, depth),
        IntExpr::Sub(a, b) => bin(out, "fx-", a, b, depth),
        IntExpr::Mul(a, b) => {
            // Keep magnitudes bounded: multiply remainders.
            out.push_str("(fx* (fxremainder ");
            render_int(a, depth, out);
            out.push_str(" 1000) (fxremainder ");
            render_int(b, depth, out);
            out.push_str(" 1000))");
        }
        IntExpr::Quot(a, b) => safediv(out, "fxquotient", a, b, depth),
        IntExpr::Rem(a, b) => safediv(out, "fxremainder", a, b, depth),
        IntExpr::If(c, t, e2) => {
            out.push_str("(if ");
            render_bool(c, depth, out);
            out.push(' ');
            render_int(t, depth, out);
            out.push(' ');
            render_int(e2, depth, out);
            out.push(')');
        }
        IntExpr::Let(init, body) => {
            out.push_str(&format!("(let ((v{depth} "));
            render_int(init, depth, out);
            out.push_str(")) ");
            render_int(body, depth + 1, out);
            out.push(')');
        }
        IntExpr::SumList(items) => {
            out.push_str("(fold-left fx+ 0 ");
            render_list(items, depth, out);
            out.push(')');
        }
        IntExpr::CarCons(a, b) => {
            out.push_str("(car (cons ");
            render_int(a, depth, out);
            out.push(' ');
            render_int(b, depth, out);
            out.push_str("))");
        }
        IntExpr::VecRef(items, i) => {
            let idx = if items.is_empty() { 0 } else { i % items.len() };
            out.push_str("(vector-ref (list->vector ");
            render_list(items, depth, out);
            out.push_str(&format!(") {idx}"));
            out.push(')');
        }
        IntExpr::CharRound(a) => {
            // (char->integer (integer->char (fxabs (fxremainder e 1000))))
            out.push_str("(char->integer (integer->char (fxabs (fxremainder ");
            render_int(a, depth, out);
            out.push_str(" 1000))))");
        }
        IntExpr::Apply1(a) => {
            out.push_str("((lambda (q) (fx+ q 1)) ");
            render_int(a, depth, out);
            out.push(')');
        }
        IntExpr::CdrCons(a, b) => {
            out.push_str("(cdr (cons ");
            render_int(a, depth, out);
            out.push(' ');
            render_int(b, depth, out);
            out.push_str("))");
        }
        IntExpr::VecSet(items, i, val, j) => {
            // (let ((w (list->vector (list ...))))
            //   (begin (vector-set! w i val) (fx+ (vector-ref w i) (vector-ref w j))))
            // Nested occurrences shadow `w`; inner uses bind to the inner
            // vector, which is fine — both sides of the differential see
            // the same program.
            let i = if items.is_empty() { 0 } else { i % items.len() };
            let j = if items.is_empty() { 0 } else { j % items.len() };
            out.push_str("(let ((w (list->vector ");
            render_list(items, depth, out);
            out.push_str("))) (begin (vector-set! w ");
            out.push_str(&i.to_string());
            out.push(' ');
            render_int(val, depth, out);
            out.push_str(&format!(") (fx+ (vector-ref w {i}) (vector-ref w {j}))))"));
        }
        IntExpr::LetLambda(body, x, y) => {
            // The lambda's parameter uses the next var slot, so `body` can
            // reference it (and any outer binding) through Var.
            out.push_str(&format!("(let ((g (lambda (v{depth}) "));
            render_int(body, depth + 1, out);
            out.push_str("))) (fx+ (g ");
            render_int(x, depth, out);
            out.push_str(") (g ");
            render_int(y, depth, out);
            out.push_str(")))");
        }
        IntExpr::ListChurn(xs, ys) => {
            out.push_str("(fx+ (length (reverse ");
            render_list(xs, depth, out);
            out.push_str(")) (fold-left fx+ 0 (append ");
            render_list(xs, depth, out);
            out.push(' ');
            render_list(ys, depth, out);
            out.push_str(")))");
        }
    }
}

fn render_list(items: &[IntExpr], depth: usize, out: &mut String) {
    out.push_str("(list");
    for it in items {
        out.push(' ');
        render_int(it, depth, out);
    }
    out.push(')');
}

fn bin(out: &mut String, op: &str, a: &IntExpr, b: &IntExpr, depth: usize) {
    out.push('(');
    out.push_str(op);
    out.push(' ');
    render_int(a, depth, out);
    out.push(' ');
    render_int(b, depth, out);
    out.push(')');
}

fn safediv(out: &mut String, op: &str, a: &IntExpr, b: &IntExpr, depth: usize) {
    out.push('(');
    out.push_str(op);
    out.push(' ');
    render_int(a, depth, out);
    out.push_str(" (fx+ 1 (fxabs (fxremainder ");
    render_int(b, depth, out);
    out.push_str(" 100))))");
}

fn render_bool(e: &BoolExpr, depth: usize, out: &mut String) {
    match e {
        BoolExpr::Lit(b) => out.push_str(if *b { "#t" } else { "#f" }),
        BoolExpr::Lt(a, b) => {
            out.push_str("(fx< ");
            render_int(a, depth, out);
            out.push(' ');
            render_int(b, depth, out);
            out.push(')');
        }
        BoolExpr::Eq(a, b) => {
            out.push_str("(fx= ");
            render_int(a, depth, out);
            out.push(' ');
            render_int(b, depth, out);
            out.push(')');
        }
        BoolExpr::Not(a) => {
            out.push_str("(not ");
            render_bool(a, depth, out);
            out.push(')');
        }
        BoolExpr::And(a, b) => {
            out.push_str("(and ");
            render_bool(a, depth, out);
            out.push(' ');
            render_bool(b, depth, out);
            out.push(')');
        }
        BoolExpr::Or(a, b) => {
            out.push_str("(or ");
            render_bool(a, depth, out);
            out.push(' ');
            render_bool(b, depth, out);
            out.push(')');
        }
        BoolExpr::NullTest(items) => {
            out.push_str("(null? (cdr (cons 0 ");
            if items.is_empty() {
                out.push_str("'()");
            } else {
                render_list(items, depth, out);
            }
            out.push_str(")))");
        }
    }
}

const SEED: u64 = 0x5EED_5EED_5EED_5EED;
const CASES: usize = 48;

fn env_u64(name: &str) -> Option<u64> {
    let v = std::env::var(name).ok()?;
    match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => v.parse().ok(),
    }
}

/// The seed in effect (`SXR_FUZZ_SEED` overrides the built-in default).
fn fuzz_seed() -> u64 {
    env_u64("SXR_FUZZ_SEED").unwrap_or(SEED)
}

/// Number of cases to run (`SXR_FUZZ_ITERS` overrides the default).
fn fuzz_iters() -> usize {
    env_u64("SXR_FUZZ_ITERS").map_or(CASES, |n| n as usize)
}

/// The repro line printed with every failure, so a failing case replays
/// exactly regardless of where the defaults drift.
fn repro(seed: u64, case: usize) -> String {
    format!(
        "replay: SXR_FUZZ_SEED={seed} SXR_FUZZ_ITERS={} cargo test --test proptest_differential",
        case + 1
    )
}

#[test]
fn pipelines_agree_on_random_programs() {
    let seed = fuzz_seed();
    let mut rng = Rng::new(seed);
    for case in 0..fuzz_iters() {
        let e = gen_int(&mut rng, 5);
        let mut src = String::from("(display ");
        render_int(&e, 0, &mut src);
        src.push(')');

        // Drawn up front so the main generator stream is identical whether
        // or not the resumption replay below fires for a given config.
        let slice_seed = rng.next();

        let mut results: Vec<(String, String)> = Vec::new();
        for (idx, (label, cfg)) in [
            ("Traditional", PipelineConfig::traditional()),
            ("AbstractOpt", PipelineConfig::abstract_optimized()),
            ("AbstractNoOpt", PipelineConfig::abstract_unoptimized()),
            ("Ablate(bits)", PipelineConfig::ablated("bits")),
            ("Ablate(repspec)", PipelineConfig::ablated("repspec")),
        ]
        .into_iter()
        .enumerate()
        {
            let compiled = Compiler::new(cfg).compile(&src).unwrap_or_else(|err| {
                panic!(
                    "[{label}] case {case} compile failed: {err}\n{src}\n{}",
                    repro(seed, case)
                )
            });
            // Load-time verification oracle: every compiler-produced
            // program must pass the bytecode verifier — a rejection is a
            // codegen (or verifier) bug, and would force the machine off
            // its unchecked fast path.
            let vreport = compiled.verify_bytecode();
            assert!(
                vreport.is_clean(),
                "[{label}] case {case} bytecode verifier rejected compiler output:\n\
                 {vreport}\n{src}\n{}",
                repro(seed, case)
            );
            if label == "AbstractOpt" {
                // Every random program also round-trips through the static
                // analyzer: a provable rep misuse in generated well-typed
                // code would itself be an analyzer (or compiler) bug.
                let errors = compiled.analyze_errors();
                assert!(
                    errors.is_empty(),
                    "[{label}] case {case} analyzer flagged a well-typed program:\n{}\n{src}\n{}",
                    errors.join("\n"),
                    repro(seed, case)
                );
            }
            let out = compiled.run().unwrap_or_else(|err| {
                panic!(
                    "[{label}] case {case} run failed: {err}\n{src}\n{}",
                    repro(seed, case)
                )
            });
            // The same compilation must be bit-identical under the
            // GC-on-every-allocation schedule: any difference is a
            // missing-root or stale-pointer bug in the VM.
            let chaotic = compiled
                .run_with_fault(FaultPlan::none().with_gc_every_alloc())
                .unwrap_or_else(|err| {
                    panic!(
                        "[{label}] case {case} failed under gc-every-alloc: {err}\n{src}\n{}",
                        repro(seed, case)
                    )
                });
            assert_eq!(
                chaotic.output,
                out.output,
                "[{label}] case {case} diverged under gc-every-alloc:\n{src}\n{}",
                repro(seed, case)
            );
            // Rotating resumption replay: random fuel slices (1..=4096,
            // from the replayable seed) must leave the outcome bitwise
            // identical — suspension is invisible to the guest.
            if idx == case % 5 {
                let mut srng = Rng::new(slice_seed);
                let (sliced, suspensions) =
                    run_resumable_with(&compiled, move || 1 + (srng.next() % 4096)).unwrap_or_else(
                        |err| {
                            panic!(
                                "[{label}] case {case} failed under sliced resumption: {err}\n\
                                 {src}\n{}",
                                repro(seed, case)
                            )
                        },
                    );
                assert_eq!(
                    sliced,
                    out,
                    "[{label}] case {case} diverged under sliced resumption \
                     ({suspensions} suspensions):\n{src}\n{}",
                    repro(seed, case)
                );
            }
            results.push((label.to_string(), out.output));
        }
        let first = results[0].1.clone();
        for (label, o) in &results {
            assert_eq!(
                o,
                &first,
                "{label} diverged on case {case}:\n{src}\n{}",
                repro(seed, case)
            );
        }
    }
}
