//! Property-based differential testing: generate random well-formed
//! programs and require every pipeline configuration to agree on their
//! output. Random programs reach operator combinations the hand-written
//! suites never think of; any divergence is a miscompilation in one of the
//! representation-handling paths.

use proptest::prelude::*;
use sxr::{Compiler, PipelineConfig};

/// A well-typed expression generator. Every generated program terminates,
/// raises no runtime errors, and uses only exact arithmetic.
#[derive(Debug, Clone)]
enum IntExpr {
    Lit(i32),
    Var(usize), // de Bruijn-ish index into bound int vars
    Add(Box<IntExpr>, Box<IntExpr>),
    Sub(Box<IntExpr>, Box<IntExpr>),
    Mul(Box<IntExpr>, Box<IntExpr>),
    // quotient/remainder with a divisor forced nonzero
    Quot(Box<IntExpr>, Box<IntExpr>),
    Rem(Box<IntExpr>, Box<IntExpr>),
    If(Box<BoolExpr>, Box<IntExpr>, Box<IntExpr>),
    Let(Box<IntExpr>, Box<IntExpr>), // binds one more var in body
    // (length (list ...)) and list folds
    SumList(Vec<IntExpr>),
    CarCons(Box<IntExpr>, Box<IntExpr>),
    VecRef(Vec<IntExpr>, usize),
    CharRound(Box<IntExpr>),
    Apply1(Box<IntExpr>), // ((lambda (x) (fx+ x 1)) e)
}

#[derive(Debug, Clone)]
enum BoolExpr {
    Lit(bool),
    Lt(Box<IntExpr>, Box<IntExpr>),
    Eq(Box<IntExpr>, Box<IntExpr>),
    Not(Box<BoolExpr>),
    And(Box<BoolExpr>, Box<BoolExpr>),
    Or(Box<BoolExpr>, Box<BoolExpr>),
    NullTest(Vec<IntExpr>),
}

fn render_int(e: &IntExpr, depth: usize, out: &mut String) {
    match e {
        IntExpr::Lit(n) => out.push_str(&n.to_string()),
        IntExpr::Var(i) => {
            if depth == 0 {
                out.push('7'); // no vars in scope: a constant
            } else {
                out.push_str(&format!("v{}", i % depth));
            }
        }
        IntExpr::Add(a, b) => bin(out, "fx+", a, b, depth),
        IntExpr::Sub(a, b) => bin(out, "fx-", a, b, depth),
        IntExpr::Mul(a, b) => {
            // Keep magnitudes bounded: multiply remainders.
            out.push_str("(fx* (fxremainder ");
            render_int(a, depth, out);
            out.push_str(" 1000) (fxremainder ");
            render_int(b, depth, out);
            out.push_str(" 1000))");
        }
        IntExpr::Quot(a, b) => safediv(out, "fxquotient", a, b, depth),
        IntExpr::Rem(a, b) => safediv(out, "fxremainder", a, b, depth),
        IntExpr::If(c, t, e2) => {
            out.push_str("(if ");
            render_bool(c, depth, out);
            out.push(' ');
            render_int(t, depth, out);
            out.push(' ');
            render_int(e2, depth, out);
            out.push(')');
        }
        IntExpr::Let(init, body) => {
            out.push_str(&format!("(let ((v{depth} "));
            render_int(init, depth, out);
            out.push_str(")) ");
            render_int(body, depth + 1, out);
            out.push(')');
        }
        IntExpr::SumList(items) => {
            out.push_str("(fold-left fx+ 0 ");
            render_list(items, depth, out);
            out.push(')');
        }
        IntExpr::CarCons(a, b) => {
            out.push_str("(car (cons ");
            render_int(a, depth, out);
            out.push(' ');
            render_int(b, depth, out);
            out.push_str("))");
        }
        IntExpr::VecRef(items, i) => {
            let idx = if items.is_empty() { 0 } else { i % items.len() };
            out.push_str("(vector-ref (list->vector ");
            render_list(items, depth, out);
            out.push_str(&format!(") {idx}"));
            out.push(')');
        }
        IntExpr::CharRound(a) => {
            // (char->integer (integer->char (fxabs (fxremainder e 1000))))
            out.push_str("(char->integer (integer->char (fxabs (fxremainder ");
            render_int(a, depth, out);
            out.push_str(" 1000))))");
        }
        IntExpr::Apply1(a) => {
            out.push_str("((lambda (q) (fx+ q 1)) ");
            render_int(a, depth, out);
            out.push(')');
        }
    }
}

fn render_list(items: &[IntExpr], depth: usize, out: &mut String) {
    out.push_str("(list");
    for it in items {
        out.push(' ');
        render_int(it, depth, out);
    }
    out.push(')');
}

fn bin(out: &mut String, op: &str, a: &IntExpr, b: &IntExpr, depth: usize) {
    out.push('(');
    out.push_str(op);
    out.push(' ');
    render_int(a, depth, out);
    out.push(' ');
    render_int(b, depth, out);
    out.push(')');
}

fn safediv(out: &mut String, op: &str, a: &IntExpr, b: &IntExpr, depth: usize) {
    out.push('(');
    out.push_str(op);
    out.push(' ');
    render_int(a, depth, out);
    out.push_str(" (fx+ 1 (fxabs (fxremainder ");
    render_int(b, depth, out);
    out.push_str(" 100))))");
}

fn render_bool(e: &BoolExpr, depth: usize, out: &mut String) {
    match e {
        BoolExpr::Lit(b) => out.push_str(if *b { "#t" } else { "#f" }),
        BoolExpr::Lt(a, b) => {
            out.push_str("(fx< ");
            render_int(a, depth, out);
            out.push(' ');
            render_int(b, depth, out);
            out.push(')');
        }
        BoolExpr::Eq(a, b) => {
            out.push_str("(fx= ");
            render_int(a, depth, out);
            out.push(' ');
            render_int(b, depth, out);
            out.push(')');
        }
        BoolExpr::Not(a) => {
            out.push_str("(not ");
            render_bool(a, depth, out);
            out.push(')');
        }
        BoolExpr::And(a, b) => {
            out.push_str("(and ");
            render_bool(a, depth, out);
            out.push(' ');
            render_bool(b, depth, out);
            out.push(')');
        }
        BoolExpr::Or(a, b) => {
            out.push_str("(or ");
            render_bool(a, depth, out);
            out.push(' ');
            render_bool(b, depth, out);
            out.push(')');
        }
        BoolExpr::NullTest(items) => {
            out.push_str("(null? (cdr (cons 0 ");
            if items.is_empty() {
                out.push_str("'()");
            } else {
                render_list(items, depth, out);
            }
            out.push_str(")))");
        }
    }
}

fn arb_int() -> impl Strategy<Value = IntExpr> {
    let leaf = prop_oneof![
        (-1000i32..1000).prop_map(IntExpr::Lit),
        (0usize..4).prop_map(IntExpr::Var),
    ];
    leaf.prop_recursive(5, 64, 4, |inner| {
        let b = inner.clone();
        prop_oneof![
            (inner.clone(), b.clone()).prop_map(|(a, c)| IntExpr::Add(Box::new(a), Box::new(c))),
            (inner.clone(), b.clone()).prop_map(|(a, c)| IntExpr::Sub(Box::new(a), Box::new(c))),
            (inner.clone(), b.clone()).prop_map(|(a, c)| IntExpr::Mul(Box::new(a), Box::new(c))),
            (inner.clone(), b.clone()).prop_map(|(a, c)| IntExpr::Quot(Box::new(a), Box::new(c))),
            (inner.clone(), b.clone()).prop_map(|(a, c)| IntExpr::Rem(Box::new(a), Box::new(c))),
            (arb_bool_with(inner.clone()), inner.clone(), b.clone())
                .prop_map(|(c, t, e)| IntExpr::If(Box::new(c), Box::new(t), Box::new(e))),
            (inner.clone(), b.clone()).prop_map(|(a, c)| IntExpr::Let(Box::new(a), Box::new(c))),
            proptest::collection::vec(inner.clone(), 0..4).prop_map(IntExpr::SumList),
            (inner.clone(), b.clone())
                .prop_map(|(a, c)| IntExpr::CarCons(Box::new(a), Box::new(c))),
            (proptest::collection::vec(inner.clone(), 1..4), any::<usize>())
                .prop_map(|(v, i)| IntExpr::VecRef(v, i)),
            inner.clone().prop_map(|a| IntExpr::CharRound(Box::new(a))),
            inner.clone().prop_map(|a| IntExpr::Apply1(Box::new(a))),
        ]
    })
}

fn arb_bool_with(
    ints: impl Strategy<Value = IntExpr> + Clone + 'static,
) -> impl Strategy<Value = BoolExpr> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(BoolExpr::Lit),
        (ints.clone(), ints.clone())
            .prop_map(|(a, b)| BoolExpr::Lt(Box::new(a), Box::new(b))),
        (ints.clone(), ints.clone())
            .prop_map(|(a, b)| BoolExpr::Eq(Box::new(a), Box::new(b))),
        proptest::collection::vec(ints.clone(), 0..3).prop_map(BoolExpr::NullTest),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| BoolExpr::Not(Box::new(a))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| BoolExpr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| BoolExpr::Or(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn pipelines_agree_on_random_programs(e in arb_int()) {
        let mut src = String::from("(display ");
        render_int(&e, 0, &mut src);
        src.push(')');

        let mut results: Vec<(String, String)> = Vec::new();
        for (label, cfg) in [
            ("Traditional", PipelineConfig::traditional()),
            ("AbstractOpt", PipelineConfig::abstract_optimized()),
            ("AbstractNoOpt", PipelineConfig::abstract_unoptimized()),
            ("Ablate(bits)", PipelineConfig::ablated("bits")),
            ("Ablate(repspec)", PipelineConfig::ablated("repspec")),
        ] {
            let out = Compiler::new(cfg)
                .compile(&src)
                .unwrap_or_else(|err| panic!("[{label}] compile failed: {err}\n{src}"))
                .run()
                .unwrap_or_else(|err| panic!("[{label}] run failed: {err}\n{src}"));
            results.push((label.to_string(), out.output));
        }
        let first = results[0].1.clone();
        for (label, o) in &results {
            prop_assert_eq!(o, &first, "{} diverged on:\n{}", label, src);
        }
    }
}
