//! Differential testing: every pipeline configuration — Traditional,
//! AbstractOpt, AbstractNoOpt, and each single-pass ablation — must agree
//! on the observable behaviour of every benchmark and a grab-bag of
//! programs. This is the primary miscompilation detector for the
//! representation-specializing passes.

use sxr::{Compiler, PipelineConfig};
use sxr_bench::BENCHMARKS;

fn configs() -> Vec<(String, PipelineConfig)> {
    let mut v = vec![
        ("Traditional".to_string(), PipelineConfig::traditional()),
        (
            "AbstractOpt".to_string(),
            PipelineConfig::abstract_optimized(),
        ),
        (
            "AbstractNoOpt".to_string(),
            PipelineConfig::abstract_unoptimized(),
        ),
    ];
    for pass in ["inline", "constfold", "repspec", "bits", "cse", "dce"] {
        v.push((format!("Ablate({pass})"), PipelineConfig::ablated(pass)));
    }
    v
}

#[test]
fn benchmarks_agree_across_all_configurations() {
    for b in BENCHMARKS {
        for (label, cfg) in configs() {
            let out = Compiler::new(cfg)
                .compile(b.source)
                .unwrap_or_else(|e| panic!("[{label}] {} failed to compile: {e}", b.name))
                .run()
                .unwrap_or_else(|e| panic!("[{label}] {} failed to run: {e}", b.name));
            assert_eq!(
                out.value, b.expect,
                "[{label}] {} produced the wrong value",
                b.name
            );
        }
    }
}

#[test]
fn grab_bag_agrees_across_all_configurations() {
    let programs = [
        "(display (map (lambda (p) (fx+ (car p) (cdr p)))
                       (map2 cons (iota 5) (reverse (iota 5)))))",
        "(write '(a (b . c) #(1 \"two\" #\\3)))",
        "(display (fold-right cons '() (iota 4)))",
        "(let ((s (make-string 5 #\\x))) (string-set! s 2 #\\y) (display s))",
        "(display (list->string (map (lambda (c) (integer->char (fx+ 1 (char->integer c))))
                                     (string->list \"hal\"))))",
        "(display (vector-map (lambda (x) (fx* 2 x)) '#(1 2 3)))",
        "(define v (make-vector 4 0))
         (do ((i 0 (fx+ i 1))) ((fx= i 4)) (vector-set! v i (fx* i i)))
         (display v)",
        "(display (case (fx* 3 5) ((14 16) 'even-ish) ((15) 'fifteen) (else 'other)))",
        "(display (let loop ((i 0) (acc '())) (if (fx= i 3) acc (loop (fx+ i 1) (cons i acc)))))",
        "(define (compose f g) (lambda (x) (f (g x))))
         (display ((compose add1 (compose add1 add1)) 39))",
    ];
    for src in programs {
        let mut outputs = Vec::new();
        for (label, cfg) in configs() {
            let out = Compiler::new(cfg)
                .compile(src)
                .unwrap_or_else(|e| panic!("[{label}] compile failed: {e}\n{src}"))
                .run()
                .unwrap_or_else(|e| panic!("[{label}] run failed: {e}\n{src}"));
            outputs.push((label, out.output));
        }
        let first = outputs[0].1.clone();
        for (label, o) in &outputs {
            assert_eq!(o, &first, "[{label}] diverged on:\n{src}");
        }
    }
}

#[test]
fn abstract_opt_matches_traditional_instruction_counts() {
    // The paper's headline claim, measured: the abstract pipeline's dynamic
    // instruction counts are essentially those of the hand-written baseline.
    let mut total_trad = 0u64;
    let mut total_opt = 0u64;
    for b in BENCHMARKS {
        let trad = Compiler::new(PipelineConfig::traditional())
            .compile(b.source)
            .unwrap()
            .run()
            .unwrap();
        let aopt = Compiler::new(PipelineConfig::abstract_optimized())
            .compile(b.source)
            .unwrap()
            .run()
            .unwrap();
        let (t, a) = (trad.counters.total, aopt.counters.total);
        total_trad += t;
        total_opt += a;
        let ratio = a as f64 / t as f64;
        assert!(
            ratio < 1.15,
            "{}: AbstractOpt used {a} instructions vs Traditional {t} (ratio {ratio:.3})",
            b.name
        );
    }
    let overall = total_opt as f64 / total_trad as f64;
    assert!(overall < 1.10, "overall ratio {overall:.3}");
}

#[test]
fn noopt_is_much_slower() {
    // Without the transformations, the abstraction has a real cost.
    let b = sxr_bench::benchmark("fib").unwrap();
    let aopt = Compiler::new(PipelineConfig::abstract_optimized())
        .compile(b.source)
        .unwrap()
        .run()
        .unwrap();
    let noopt = Compiler::new(PipelineConfig::abstract_unoptimized())
        .compile(b.source)
        .unwrap()
        .run()
        .unwrap();
    let ratio = noopt.counters.total as f64 / aopt.counters.total as f64;
    assert!(
        ratio > 3.0,
        "expected >3x slowdown without optimization, got {ratio:.2}"
    );
}
