//! End-to-end pipeline smoke tests for the paper's system configuration.

use sxr::{Compiler, PipelineConfig};

fn run(src: &str) -> (String, String) {
    let compiled = Compiler::new(PipelineConfig::abstract_optimized())
        .compile(src)
        .unwrap_or_else(|e| panic!("compile failed: {e}"));
    let out = compiled.run().unwrap_or_else(|e| panic!("run failed: {e}"));
    (out.value, out.output)
}

#[test]
fn arithmetic() {
    assert_eq!(run("(fx+ 1 2)").0, "3");
    assert_eq!(run("(fx* 6 7)").0, "42");
    assert_eq!(run("(fx- 1 5)").0, "-4");
    assert_eq!(run("(fxquotient 17 5)").0, "3");
    assert_eq!(run("(fxremainder 17 5)").0, "2");
    assert_eq!(run("(fx< 1 2)").0, "#t");
}

#[test]
fn pairs_and_lists() {
    assert_eq!(run("(car (cons 1 2))").0, "1");
    assert_eq!(run("(cdr (cons 1 2))").0, "2");
    assert_eq!(run("(length (list3 1 2 3))").0, "3");
    assert_eq!(run("(append (list2 1 2) (list2 3 4))").0, "(1 2 3 4)");
    assert_eq!(run("(reverse (list3 1 2 3))").0, "(3 2 1)");
}

#[test]
fn display_output() {
    assert_eq!(run("(display (fx+ 40 2))").1, "42");
    assert_eq!(
        run("(display \"hello\") (newline) (display 'world)").1,
        "hello\nworld"
    );
    assert_eq!(run("(display (list3 1 #\\a \"s\"))").1, "(1 a s)");
    assert_eq!(run("(write (list2 #\\a \"s\"))").1, "(#\\a \"s\")");
    assert_eq!(run("(display -273)").1, "-273");
}

#[test]
fn recursion_and_loops() {
    assert_eq!(
        run("(define (fib n) (if (fx< n 2) n (fx+ (fib (fx- n 1)) (fib (fx- n 2))))) (fib 12)").0,
        "144"
    );
    assert_eq!(
        run("(let loop ((i 0) (sum 0)) (if (fx= i 100) sum (loop (fx+ i 1) (fx+ sum i))))").0,
        "4950"
    );
}

#[test]
fn vectors_and_strings() {
    assert_eq!(
        run("(let ((v (make-vector 3 7))) (vector-set! v 1 9) (vector-ref v 1))").0,
        "9"
    );
    assert_eq!(run("(vector-length (make-vector 5 0))").0, "5");
    assert_eq!(run("(string-length \"abcd\")").0, "4");
    assert_eq!(run("(string-ref \"abc\" 1)").0, "#\\b");
    assert_eq!(run("(string-append \"ab\" \"cd\")").0, "\"abcd\"");
    assert_eq!(run("(string=? (substring \"hello\" 1 3) \"el\")").0, "#t");
}

#[test]
fn quoted_data_and_equality() {
    assert_eq!(run("(equal? '(1 (2 3)) (list2 1 (list2 2 3)))").0, "#t");
    assert_eq!(run("(eq? 'a 'a)").0, "#t");
    assert_eq!(run("(assq 'b '((a 1) (b 2)))").0, "(b 2)");
    assert_eq!(run("(member \"x\" '(\"w\" \"x\"))").0, "(\"x\")");
    assert_eq!(run("'#(1 a)").0, "#(1 a)");
}

#[test]
fn set_and_boxes() {
    assert_eq!(
        run("(define counter 0) (set! counter (fx+ counter 1)) counter").0,
        "1"
    );
    assert_eq!(
        run("(define (make-counter)
               (let ((n 0))
                 (lambda () (set! n (fx+ n 1)) n)))
             (define c (make-counter))
             (c) (c) (c)")
        .0,
        "3"
    );
}

#[test]
fn higher_order() {
    assert_eq!(
        run("(map (lambda (x) (fx* x x)) (list3 1 2 3))").0,
        "(1 4 9)"
    );
    assert_eq!(run("(fold-left fx+ 0 (iota 10))").0, "45");
    assert_eq!(run("(filter even? (iota 8))").0, "(0 2 4 6)");
}

#[test]
fn tail_calls_are_space_safe() {
    // A million iterations must not overflow the frame stack.
    assert_eq!(
        run("(let loop ((i 0)) (if (fx= i 1000000) 'done (loop (fx+ i 1))))").0,
        "done"
    );
}

#[test]
fn runtime_errors_surface() {
    let compiled = Compiler::new(PipelineConfig::abstract_optimized())
        .compile("(fxquotient 1 0)")
        .unwrap();
    let err = compiled.run().unwrap_err();
    assert_eq!(err.kind, sxr::VmErrorKind::DivideByZero);

    let compiled = Compiler::new(PipelineConfig::abstract_optimized())
        .compile("(define x 5) (x 1)")
        .unwrap();
    assert_eq!(
        compiled.run().unwrap_err().kind,
        sxr::VmErrorKind::NotAProcedure
    );
}

#[test]
fn first_class_rep_types_at_runtime() {
    // Construct a brand-new data type at run time through the generic
    // facility and use it — the paper's first-classness property.
    let src = "
      (define point-rep (%make-pointer-type 'point 4 #t))
      (define (make-point x y)
        (let ((p (%rep-alloc point-rep (%rep-project fixnum-rep 2) x)))
          (%rep-set! point-rep p (%rep-project fixnum-rep 1) y)
          p))
      (define (point-x p) (%rep-ref point-rep p (%rep-project fixnum-rep 0)))
      (define (point-y p) (%rep-ref point-rep p (%rep-project fixnum-rep 1)))
      (define (point? x) (%rep-inject boolean-rep (%rep-test point-rep x)))
      (define p (make-point 3 4))
      (display (point? p)) (display \" \")
      (display (point? (cons 1 2))) (display \" \")
      (display (fx+ (point-x p) (point-y p)))";
    for cfg in [
        PipelineConfig::abstract_optimized(),
        PipelineConfig::abstract_unoptimized(),
    ] {
        let out = Compiler::new(cfg).compile(src).unwrap().run().unwrap();
        assert_eq!(out.output, "#t #f 7");
    }
}

#[test]
fn variadic_lambdas_and_apply() {
    for cfg in [
        PipelineConfig::traditional(),
        PipelineConfig::abstract_optimized(),
        PipelineConfig::abstract_unoptimized(),
    ] {
        let out = Compiler::new(cfg)
            .compile(
                "(display (list 1 2 3))
                 (display (list))
                 (display (+ 1 2 3 4))
                 (display (- 10 1 2))
                 (display (- 5))
                 (define (tag-all tag . xs) (map (lambda (x) (cons tag x)) xs))
                 (display (tag-all 'k 1 2))
                 (display (apply fx+ (list 40 2)))
                 (display (apply list (list 1 2 3 4 5)))",
            )
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(out.output, "(1 2 3)()107-5((k . 1) (k . 2))42(1 2 3 4 5)");
    }
}

#[test]
fn variadic_arity_errors() {
    let compiled = Compiler::new(PipelineConfig::abstract_optimized())
        .compile("(define (f a . rest) a) (f)")
        .unwrap();
    assert_eq!(
        compiled.run().unwrap_err().kind,
        sxr::VmErrorKind::ArityMismatch
    );
}

#[test]
fn define_record_type() {
    let src = "
      (define-record-type kons
        (make-kons kar kdr)
        kons?
        (kar kons-kar set-kons-kar!)
        (kdr kons-kdr))
      (define k (make-kons 1 2))
      (display (list (kons-kar k) (kons-kdr k) (kons? k) (kons? (cons 1 2))))
      (set-kons-kar! k 10)
      (display (kons-kar k))";
    for cfg in [
        PipelineConfig::traditional(),
        PipelineConfig::abstract_optimized(),
        PipelineConfig::abstract_unoptimized(),
    ] {
        let out = Compiler::new(cfg).compile(src).unwrap().run().unwrap();
        assert_eq!(out.output, "(1 2 #t #f)10");
    }

    // Under the optimizing pipeline the accessor is a single load + return.
    let compiled = Compiler::new(PipelineConfig::abstract_optimized())
        .compile(src)
        .unwrap();
    assert_eq!(compiled.static_count("kons-kar"), Some(2));
}

#[test]
fn record_types_are_distinguished() {
    // Two record types share the record tag; the discriminated test must
    // tell them apart.
    let out = run("
      (define-record-type a (make-a x) a? (x a-x))
      (define-record-type b (make-b y) b? (y b-y))
      (display (list (a? (make-a 1)) (a? (make-b 1)) (b? (make-b 1)) (a? (box 1))))");
    assert_eq!(out.1, "(#t #f #t #f)");
}
