//! End-to-end tests for `sxr lint` — the rep-safety static analyzer with
//! file/span diagnostics — and for the inter-pass verifier across pipeline
//! configurations.
//!
//! The known-bad programs each provoke one diagnostic class from plain
//! source code (the misuse only becomes visible after library primitives
//! are inlined down to generic representation operations); the known-clean
//! side requires the entire prelude and benchmark suite to lint clean.

use sxr::lint::lint_source;
use sxr::{Compiler, PipelineConfig, Severity};
use sxr_bench::BENCHMARKS;

fn error_codes(src: &str) -> Vec<(String, u32)> {
    let report = lint_source(src).unwrap_or_else(|e| panic!("lint compile failed: {e}\n{src}"));
    report
        .diagnostics
        .iter()
        .filter(|d| d.is_error())
        .map(|d| {
            (
                d.diagnostic.class.code().to_string(),
                d.span.map_or(0, |s| s.line),
            )
        })
        .collect()
}

#[test]
fn wrong_rep_projection_has_code_and_span() {
    // `car` on a vector: both are pointer reps, so this is a projection
    // through a representation the value provably does not have.
    let src =
        "(define (ok x) x)\n(define (bad-proj) (car (make-vector 2 0)))\n(display (bad-proj))";
    let errors = error_codes(src);
    assert_eq!(errors, vec![("rep-disjoint".to_string(), 2)], "{errors:?}");
}

#[test]
fn raw_memory_on_immediate_has_code_and_span() {
    // `car` on a fixnum: a field load through a word that is provably an
    // immediate, never a heap pointer.
    let src = "(define (bad-raw) (car 5))\n(display (bad-raw))";
    let errors = error_codes(src);
    assert_eq!(
        errors,
        vec![("raw-mem-immediate".to_string(), 1)],
        "{errors:?}"
    );
}

#[test]
fn out_of_bounds_constant_index_has_code_and_span() {
    let src = "(define (id x) x)\n(define (id2 x) x)\n(define (bad-idx)\n  (vector-ref (make-vector 2 0) 9))\n(display (bad-idx))";
    let errors = error_codes(src);
    assert_eq!(errors, vec![("index-bounds".to_string(), 3)], "{errors:?}");
}

#[test]
fn out_of_bounds_string_and_store_are_flagged() {
    let errors = error_codes("(define (f) (string-ref \"ab\" 7)) (display (f))");
    assert_eq!(errors.len(), 1, "{errors:?}");
    assert_eq!(errors[0].0, "index-bounds");
    let errors = error_codes("(define (g) (vector-set! (make-vector 3 0) 5 1)) (display (g))");
    assert_eq!(errors.len(), 1, "{errors:?}");
    assert_eq!(errors[0].0, "index-bounds");
}

#[test]
fn dead_rep_test_is_a_warning_not_an_error() {
    let src = "(define (dead) (pair? (cons 1 2))) (display (dead))";
    let report = lint_source(src).unwrap();
    assert!(!report.has_errors(), "{}", report.render("t.scm"));
    let warn = report
        .diagnostics
        .iter()
        .find(|d| d.severity() == Severity::Warning)
        .unwrap_or_else(|| panic!("expected a warning:\n{}", report.render("t.scm")));
    assert_eq!(warn.diagnostic.class.code(), "dead-rep-test");
    assert_eq!(warn.diagnostic.fun_name.as_deref(), Some("dead"));
}

#[test]
fn guarded_access_lints_clean() {
    // The classic safe pattern: test before project. The analyzer must
    // refine the tag set on the true edge and stay silent.
    let src = "(define (safe-car x) (if (pair? x) (car x) 0))\n(display (safe-car 5))";
    let report = lint_source(src).unwrap();
    assert!(
        !report.has_errors(),
        "false positive on guarded access:\n{}",
        report.render("t.scm")
    );
}

#[test]
fn full_prelude_lints_clean() {
    // Linting any program compiles the whole prelude (representation
    // declarations, abstract primitives, library) through the analyzer; a
    // single provable misuse in it would show up here.
    let report = lint_source("(display 42)").unwrap();
    assert!(
        report.diagnostics.is_empty(),
        "prelude not clean:\n{}",
        report.render("prelude")
    );
}

#[test]
fn benchmark_suite_lints_clean() {
    for b in BENCHMARKS {
        let report = lint_source(b.source)
            .unwrap_or_else(|e| panic!("[{}] lint compile failed: {e}", b.name));
        assert!(
            !report.has_errors(),
            "[{}] analyzer flagged a working benchmark:\n{}",
            b.name,
            report.render(b.name)
        );
    }
}

#[test]
fn benchmark_suite_verifies_under_all_configs() {
    // With `verify_passes` forced on, every optimizer pass re-verifies the
    // IR and closure conversion runs the deeper module verifier; the whole
    // benchmark suite must compile with zero violations under every
    // pipeline configuration, and the compiled modules must carry zero
    // error-severity analyzer findings.
    for (label, cfg) in [
        ("Traditional", PipelineConfig::traditional()),
        ("AbstractOpt", PipelineConfig::abstract_optimized()),
        ("AbstractNoOpt", PipelineConfig::abstract_unoptimized()),
        ("Ablate(repspec)", PipelineConfig::ablated("repspec")),
    ] {
        let compiler = Compiler::new(cfg.with_verify_passes(true));
        for b in BENCHMARKS {
            let compiled = compiler
                .compile(b.source)
                .unwrap_or_else(|e| panic!("[{label}] {} failed verification: {e}", b.name));
            let errors = compiled.analyze_errors();
            assert!(
                errors.is_empty(),
                "[{label}] {} has analyzer errors:\n{}",
                b.name,
                errors.join("\n")
            );
        }
    }
}
