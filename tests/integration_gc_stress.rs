//! GC stress at the source level: a program whose live data is a deep list
//! with shared structure, run on a deliberately tiny heap so it survives
//! many collections while churning garbage.  This exercises the collector
//! end-to-end through the compiled prelude (not hand-assembled code):
//! every payload, the spine, and `eq?` identity of the shared tail must be
//! intact afterwards.

use sxr::{Compiler, PipelineConfig};

const STRESS_SRC: &str = "
  ;; A tail shared by two independent spines: sharing must survive copying.
  (define tail (list5 1 2 3 4 5))
  (define a (cons 10 tail))
  (define b (cons 20 tail))
  ;; A deep live list pinned across the whole run.
  (define (build n acc)
    (if (fx= n 0) acc (build (fx- n 1) (cons n acc))))
  (define live (build 300 '()))
  ;; Churn: each step allocates a pair and immediately drops it.
  (define (churn n)
    (if (fx= n 0) 0 (churn (fx- (car (cons n n)) 1))))
  (churn 30000)
  (define (sum xs) (if (null? xs) 0 (fx+ (car xs) (sum (cdr xs)))))
  (display (sum live))
  (display (eq? (cdr a) (cdr b)))
  (display (sum tail))
  (display (length live))";

fn stress(config: PipelineConfig) {
    let out = Compiler::new(config)
        .compile(STRESS_SRC)
        .unwrap_or_else(|e| panic!("compile failed: {e}"))
        .run()
        .unwrap_or_else(|e| panic!("run failed: {e}"));
    // 1+2+...+300 = 45150; the shared tail is still one object and its
    // payloads still sum to 15; the spine kept all 300 cells.
    assert_eq!(out.output, "45150#t15300");
    assert!(
        out.counters.gc_count >= 3,
        "heap was sized to force at least 3 collections, got {}",
        out.counters.gc_count
    );
}

#[test]
fn gc_stress_survives_collections_abstract() {
    stress(PipelineConfig::abstract_optimized().with_heap_words(1 << 13));
}

#[test]
fn gc_stress_survives_collections_traditional() {
    stress(PipelineConfig::traditional().with_heap_words(1 << 13));
}
