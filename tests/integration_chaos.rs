//! Chaos battery: the benchmark corpus, compiled under all three pipeline
//! configurations, run under deterministic fault schedules.
//!
//! The contract (see `sxr_vm::FaultPlan`): under *any* plan the machine
//! either reproduces the fault-free oracle's observable behaviour exactly
//! or fails with a structured, recoverable out-of-memory error.  A panic, a
//! corrupted value, or divergent output under any schedule is a GC or
//! pointer-map bug.
//!
//! Debug builds run a trimmed sweep (the release `chaos_vm` binary and the
//! CI `chaos-smoke` job run the full one); set `SXR_CHAOS_FULL=1` to force
//! the full sweep here.

use std::sync::OnceLock;
use sxr::report::ChaosOutcome;
use sxr::FaultPlan;
use sxr_bench::{chaos_targets, run_chaos, ChaosTarget};

const HEAP_WORDS: usize = 1 << 14;

/// The corpus compiled once, shared by every test in this binary.
fn targets() -> &'static [ChaosTarget] {
    static TARGETS: OnceLock<Vec<ChaosTarget>> = OnceLock::new();
    TARGETS.get_or_init(|| chaos_targets(HEAP_WORDS))
}

fn full_sweep() -> bool {
    !cfg!(debug_assertions) || std::env::var("SXR_CHAOS_FULL").is_ok()
}

/// Targets for the expensive schedules: everything in a release build, a
/// representative allocation-heavy subset in debug builds.
fn expensive_targets(all: &[ChaosTarget]) -> Vec<&ChaosTarget> {
    if full_sweep() {
        all.iter().collect()
    } else {
        all.iter()
            .filter(|t| matches!(t.name, "fib" | "nrev" | "deriv" | "boxes"))
            .collect()
    }
}

fn describe(t: &ChaosTarget, plan: &FaultPlan, outcome: &ChaosOutcome) -> String {
    format!("{}/{} under {plan:?}: {outcome:?}", t.name, t.config)
}

/// Outcome must agree with the oracle — plans that only perturb GC timing
/// (no memory cap) can never legitimately fail.
fn assert_agrees(t: &ChaosTarget, plan: FaultPlan) {
    let outcome = run_chaos(t, plan.clone());
    assert!(
        outcome == ChaosOutcome::Agrees,
        "timing-only plan violated: {}",
        describe(t, &plan, &outcome)
    );
}

/// Outcome must agree or fail with a structured OOM — the two legitimate
/// results for plans that constrain memory.
fn assert_agrees_or_oom(t: &ChaosTarget, plan: FaultPlan) -> Option<&'static str> {
    let outcome = run_chaos(t, plan.clone());
    match &outcome {
        ChaosOutcome::Agrees => None,
        ChaosOutcome::Failed(e) if e.is_oom() => Some(e.kind.label()),
        _ => panic!("memory plan violated: {}", describe(t, &plan, &outcome)),
    }
}

#[test]
fn gc_every_alloc_preserves_observable_behaviour() {
    // The suite's headline acceptance check, so it always covers the full
    // corpus in every configuration — no debug-build trimming here.
    for t in targets() {
        assert_agrees(t, FaultPlan::none().with_gc_every_alloc());
    }
}

#[test]
fn jittered_gc_schedules_preserve_observable_behaviour() {
    let targets = targets();
    let seeds: &[u64] = if full_sweep() {
        &[1, 7, 0xDEAD_BEEF]
    } else {
        &[1, 0xDEAD_BEEF]
    };
    for t in targets {
        for &seed in seeds {
            assert_agrees(t, FaultPlan::none().with_gc_jitter_seed(seed));
        }
    }
}

#[test]
fn scheduled_allocation_failures_are_structured_oom_in_every_config() {
    let targets = targets();
    // Every target fails at ordinals scaled to its *own* fault-free
    // allocation profile, so each configuration is hit at comparable
    // program phases: pool build, early run, mid run, last allocation.
    for t in targets {
        let n = t.total_allocs;
        assert!(n > 0, "{}/{}: corpus programs allocate", t.name, t.config);
        let mut labels = Vec::new();
        for at in [1, 2, n / 2, n] {
            let at = at.max(1);
            let plan = FaultPlan::none().with_fail_alloc_at(at);
            let outcome = run_chaos(t, plan.clone());
            match outcome {
                ChaosOutcome::Failed(e) if e.is_oom() => labels.push(e.kind.label()),
                other => panic!(
                    "scheduled fault must surface as OOM: {}",
                    describe(t, &plan, &other)
                ),
            }
        }
        // Cross-schedule agreement on the error class.
        assert!(
            labels.iter().all(|l| *l == "out-of-memory"),
            "{}/{}: labels {labels:?}",
            t.name,
            t.config
        );
        // An ordinal past the end of the stream never fires.
        assert_agrees(t, FaultPlan::none().with_fail_alloc_at(n + 1_000_000));
    }
}

#[test]
fn tight_heap_caps_agree_or_fail_cleanly() {
    let targets = targets();
    let caps: &[usize] = if full_sweep() {
        &[256, 1 << 12, 1 << 16]
    } else {
        &[256, 1 << 16]
    };
    for t in expensive_targets(targets) {
        for &cap in caps {
            assert_agrees_or_oom(t, FaultPlan::none().with_heap_cap_words(cap));
        }
    }
}

#[test]
fn combined_pressure_gc_every_alloc_under_a_cap() {
    let targets = targets();
    for t in expensive_targets(targets) {
        assert_agrees_or_oom(
            t,
            FaultPlan::none()
                .with_gc_every_alloc()
                .with_heap_cap_words(1 << 15),
        );
    }
}

#[test]
fn error_class_agrees_across_configurations() {
    // Failing each configuration at its own first post-pool allocation
    // must produce the same error class everywhere, keeping faulted runs
    // differentially comparable.
    let targets = targets();
    for chunk in targets.chunks(3) {
        let labels: Vec<Option<&str>> = chunk
            .iter()
            .map(|t| assert_agrees_or_oom(t, FaultPlan::none().with_fail_alloc_at(t.total_allocs)))
            .collect();
        assert!(
            labels.windows(2).all(|w| w[0] == w[1]),
            "{}: error classes diverged across configs: {labels:?}",
            chunk[0].name
        );
    }
}

#[test]
fn chaos_runs_are_deterministic() {
    let targets = targets();
    let plans = [
        FaultPlan::none().with_gc_jitter_seed(42),
        FaultPlan::none()
            .with_heap_cap_words(1 << 12)
            .with_gc_jitter_seed(9),
    ];
    for t in expensive_targets(targets).into_iter().take(4) {
        for plan in &plans {
            let a = run_chaos(t, plan.clone());
            let b = run_chaos(t, plan.clone());
            assert!(
                a == b,
                "{}/{} under {plan:?}: {a:?} vs {b:?}",
                t.name,
                t.config
            );
        }
    }
}
