//! Chaos battery: the benchmark corpus, compiled under all three pipeline
//! configurations, run under deterministic fault schedules.
//!
//! The contract (see `sxr_vm::FaultPlan`): under *any* plan the machine
//! either reproduces the fault-free oracle's observable behaviour exactly
//! or fails with a structured, recoverable out-of-memory error.  A panic, a
//! corrupted value, or divergent output under any schedule is a GC or
//! pointer-map bug.
//!
//! Debug builds run a trimmed sweep (the release `chaos_vm` binary and the
//! CI `chaos-smoke` job run the full one); set `SXR_CHAOS_FULL=1` to force
//! the full sweep here.

use std::sync::OnceLock;
use sxr::report::{run_resumable, ChaosOutcome};
use sxr::{Compiler, FaultPlan, PipelineConfig};
use sxr_bench::{chaos_targets, run_chaos, ChaosTarget};

const HEAP_WORDS: usize = 1 << 14;

/// The corpus compiled once, shared by every test in this binary.
fn targets() -> &'static [ChaosTarget] {
    static TARGETS: OnceLock<Vec<ChaosTarget>> = OnceLock::new();
    TARGETS.get_or_init(|| chaos_targets(HEAP_WORDS))
}

fn full_sweep() -> bool {
    !cfg!(debug_assertions) || std::env::var("SXR_CHAOS_FULL").is_ok()
}

/// Targets for the expensive schedules: everything in a release build, a
/// representative allocation-heavy subset in debug builds.
fn expensive_targets(all: &[ChaosTarget]) -> Vec<&ChaosTarget> {
    if full_sweep() {
        all.iter().collect()
    } else {
        all.iter()
            .filter(|t| matches!(t.name, "fib" | "nrev" | "deriv" | "boxes"))
            .collect()
    }
}

fn describe(t: &ChaosTarget, plan: &FaultPlan, outcome: &ChaosOutcome) -> String {
    format!("{}/{} under {plan:?}: {outcome:?}", t.name, t.config)
}

/// Outcome must agree with the oracle — plans that only perturb GC timing
/// (no memory cap) can never legitimately fail.
fn assert_agrees(t: &ChaosTarget, plan: FaultPlan) {
    let outcome = run_chaos(t, plan.clone());
    assert!(
        outcome == ChaosOutcome::Agrees,
        "timing-only plan violated: {}",
        describe(t, &plan, &outcome)
    );
}

/// Outcome must agree or fail with a structured OOM — the two legitimate
/// results for plans that constrain memory.
fn assert_agrees_or_oom(t: &ChaosTarget, plan: FaultPlan) -> Option<&'static str> {
    let outcome = run_chaos(t, plan.clone());
    match &outcome {
        ChaosOutcome::Agrees => None,
        ChaosOutcome::Failed(e) if e.is_oom() => Some(e.kind.label()),
        _ => panic!("memory plan violated: {}", describe(t, &plan, &outcome)),
    }
}

#[test]
fn gc_every_alloc_preserves_observable_behaviour() {
    // The suite's headline acceptance check, so it always covers the full
    // corpus in every configuration — no debug-build trimming here.
    for t in targets() {
        assert_agrees(t, FaultPlan::none().with_gc_every_alloc());
    }
}

#[test]
fn jittered_gc_schedules_preserve_observable_behaviour() {
    let targets = targets();
    let seeds: &[u64] = if full_sweep() {
        &[1, 7, 0xDEAD_BEEF]
    } else {
        &[1, 0xDEAD_BEEF]
    };
    for t in targets {
        for &seed in seeds {
            assert_agrees(t, FaultPlan::none().with_gc_jitter_seed(seed));
        }
    }
}

#[test]
fn scheduled_allocation_failures_are_structured_oom_in_every_config() {
    let targets = targets();
    // Every target fails at ordinals scaled to its *own* fault-free
    // allocation profile, so each configuration is hit at comparable
    // program phases: pool build, early run, mid run, last allocation.
    for t in targets {
        let n = t.total_allocs;
        assert!(n > 0, "{}/{}: corpus programs allocate", t.name, t.config);
        let mut labels = Vec::new();
        for at in [1, 2, n / 2, n] {
            let at = at.max(1);
            let plan = FaultPlan::none().with_fail_alloc_at(at);
            let outcome = run_chaos(t, plan.clone());
            match outcome {
                ChaosOutcome::Failed(e) if e.is_oom() => labels.push(e.kind.label()),
                other => panic!(
                    "scheduled fault must surface as OOM: {}",
                    describe(t, &plan, &other)
                ),
            }
        }
        // Cross-schedule agreement on the error class.
        assert!(
            labels.iter().all(|l| *l == "out-of-memory"),
            "{}/{}: labels {labels:?}",
            t.name,
            t.config
        );
        // An ordinal past the end of the stream never fires.
        assert_agrees(t, FaultPlan::none().with_fail_alloc_at(n + 1_000_000));
    }
}

#[test]
fn tight_heap_caps_agree_or_fail_cleanly() {
    let targets = targets();
    let caps: &[usize] = if full_sweep() {
        &[256, 1 << 12, 1 << 16]
    } else {
        &[256, 1 << 16]
    };
    for t in expensive_targets(targets) {
        for &cap in caps {
            assert_agrees_or_oom(t, FaultPlan::none().with_heap_cap_words(cap));
        }
    }
}

#[test]
fn combined_pressure_gc_every_alloc_under_a_cap() {
    let targets = targets();
    for t in expensive_targets(targets) {
        assert_agrees_or_oom(
            t,
            FaultPlan::none()
                .with_gc_every_alloc()
                .with_heap_cap_words(1 << 15),
        );
    }
}

#[test]
fn error_class_agrees_across_configurations() {
    // Failing each configuration at its own first post-pool allocation
    // must produce the same error class everywhere, keeping faulted runs
    // differentially comparable.
    let targets = targets();
    for chunk in targets.chunks(3) {
        let labels: Vec<Option<&str>> = chunk
            .iter()
            .map(|t| assert_agrees_or_oom(t, FaultPlan::none().with_fail_alloc_at(t.total_allocs)))
            .collect();
        assert!(
            labels.windows(2).all(|w| w[0] == w[1]),
            "{}: error classes diverged across configs: {labels:?}",
            chunk[0].name
        );
    }
}

// -- handled-fault battery ---------------------------------------------------
//
// The recoverable-trap extension of the chaos contract: a *Scheme-level*
// handler installed with `guard` may intercept any recoverable fault
// (including injected out-of-memory), recover, and run to the oracle
// answer — identically under every pipeline configuration.

fn three_configs() -> Vec<(&'static str, PipelineConfig)> {
    vec![
        ("traditional", PipelineConfig::traditional()),
        ("abstract-opt", PipelineConfig::abstract_optimized()),
        ("abstract-noopt", PipelineConfig::abstract_unoptimized()),
    ]
}

/// Attempts a vector far larger than the capped heap; on the delivered
/// out-of-memory condition, retries with a size that fits.  The condition's
/// payload fields (requested/capacity/phase) are printed too, pinning the
/// structured delivery format.
const OOM_RECOVERY_SRC: &str = r#"
(define (alloc-len n) (vector-length (make-vector n 1)))
(define (alloc-robust big small)
  (guard (c ((eq? (condition-kind c) 'out-of-memory)
             (begin
               (display (condition-phase c))
               (write-char #\space)
               (if (fx< 0 (condition-requested c)) (display 'req+) (display 'req-))
               (write-char #\space)
               (alloc-len small))))
    (alloc-len big)))
(display (alloc-robust 200000 64))
"#;

#[test]
fn guard_catches_injected_oom_and_recovers_in_every_config() {
    for (name, cfg) in three_configs() {
        let compiled = Compiler::new(cfg.with_heap_words(1 << 16))
            .compile(OOM_RECOVERY_SRC)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let out = compiled
            .run_with_fault(FaultPlan::none().with_heap_cap_words(1 << 13))
            .unwrap_or_else(|e| panic!("{name}: guard must catch the injected OOM: {e}"));
        assert_eq!(out.output, "alloc req+ 64", "{name}");
    }
}

/// One guarded probe per recoverable fault class, printing the condition
/// kind each handler received.  `raise` of a non-condition must arrive
/// identity-preserved (the bare symbol, not a wrapped condition).
const CAUGHT_KINDS_SRC: &str = r#"
(define (catch-kind thunk)
  (guard (c (#t (if (condition? c) (condition-kind c) c)))
    (thunk)))
(display (catch-kind (lambda () (fxquotient 1 0))))
(write-char #\space)
(display (catch-kind (lambda () (error 'boom))))
(write-char #\space)
(display (catch-kind (lambda () ((lambda (g) (g 1)) 5))))
(write-char #\space)
(display (catch-kind (lambda () (raise 'custom))))
(write-char #\space)
(display (condition-irritant (guard (c (#t c)) (error 'payload))))
"#;

#[test]
fn caught_condition_classes_agree_across_configurations() {
    let mut outputs = Vec::new();
    for (name, cfg) in three_configs() {
        let compiled = Compiler::new(cfg)
            .compile(CAUGHT_KINDS_SRC)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let out = compiled
            .run()
            .unwrap_or_else(|e| panic!("{name}: every probe is guarded: {e}"));
        assert_eq!(
            out.output, "divide-by-zero scheme-error not-a-procedure custom payload",
            "{name}"
        );
        outputs.push(out.output);
    }
    assert!(outputs.windows(2).all(|w| w[0] == w[1]));
}

/// An unhandled `raise` must still fail structurally (terminal error path
/// unchanged by the handler machinery).
#[test]
fn unhandled_raise_is_a_structured_error_in_every_config() {
    for (name, cfg) in three_configs() {
        let compiled = Compiler::new(cfg)
            .compile("(raise 'loose)")
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let err = compiled.run().expect_err("no handler installed");
        assert_eq!(err.kind.label(), "uncaught-condition", "{name}: {err}");
    }
}

// -- suspend/resume determinism ----------------------------------------------

#[test]
fn sliced_resumption_is_invisible_for_the_whole_corpus() {
    // Every corpus benchmark, suspended at arbitrary fuel slices, must
    // produce a bitwise-identical outcome (value, output, and all
    // counters) to its uninterrupted run.
    let slices: &[u64] = if full_sweep() {
        &[1_000, 7_919, 65_536]
    } else {
        &[7_919]
    };
    for t in expensive_targets(targets()) {
        let oracle = &t.oracle;
        for &slice in slices {
            let (out, suspensions) = run_resumable(&t.compiled, slice)
                .unwrap_or_else(|e| panic!("{}/{} slice {slice}: {e}", t.name, t.config));
            assert_eq!(
                &out, oracle,
                "{}/{} slice {slice} ({suspensions} suspensions)",
                t.name, t.config
            );
            assert!(
                suspensions > 0 || oracle.counters.total <= slice,
                "{}/{} slice {slice}: expected at least one suspension",
                t.name,
                t.config
            );
        }
    }
}

#[test]
fn resumption_composes_with_fault_plans() {
    // Suspension must stay invisible even under a perturbed GC schedule:
    // the faulted oracle and the faulted sliced run agree exactly.
    for t in expensive_targets(targets()).into_iter().take(3) {
        let plan = FaultPlan::none().with_gc_jitter_seed(1234);
        let oracle = t
            .compiled
            .run_with_fault(plan.clone())
            .expect("timing-only plan");
        let mut m = t
            .compiled
            .machine_with_fault(plan)
            .expect("machine under plan");
        m.set_fuel(Some(4_096));
        let mut step = m.start().expect("start");
        loop {
            match step {
                sxr::StepResult::Done(w) => {
                    assert_eq!(m.describe(w), oracle.value, "{}/{}", t.name, t.config);
                    assert_eq!(m.output(), oracle.output, "{}/{}", t.name, t.config);
                    assert_eq!(m.counters, oracle.counters, "{}/{}", t.name, t.config);
                    break;
                }
                sxr::StepResult::Suspended(_) => step = m.resume(4_096).expect("resume"),
            }
        }
    }
}

#[test]
fn verified_corpus_never_degrades_to_program_or_memory_faults() {
    // The bytecode-verifier soundness oracle.  Part one: every corpus
    // program verifies cleanly, so the machines the sweeps construct all
    // run on the unchecked fast path.  Part two: no fault schedule or
    // fuel slicing can then surface a `bad-program` or `bad-memory-access`
    // error — those labels are reserved for programs the verifier rejects
    // at load, and seeing one from verified code means an unchecked step
    // went somewhere the verifier claimed it never could.
    let targets = targets();
    for t in targets {
        let report = t.compiled.verify_bytecode();
        assert!(
            report.is_clean(),
            "{}/{}: verifier rejected compiler output: {report}",
            t.name,
            t.config
        );
    }
    let forbidden = ["bad-program", "bad-memory-access"];
    let sweep = expensive_targets(targets);
    for t in &sweep {
        let plans = [
            FaultPlan::none().with_gc_every_alloc(),
            FaultPlan::none().with_gc_jitter_seed(3),
            FaultPlan::none().with_heap_cap_words(4096),
            FaultPlan::none().with_fail_alloc_at((t.total_allocs / 2).max(1)),
        ];
        for plan in plans {
            if let ChaosOutcome::Failed(e) = run_chaos(t, plan.clone()) {
                assert!(
                    !forbidden.contains(&e.kind.label()),
                    "{}/{} under {plan:?}: verified program died with `{}`: {e}",
                    t.name,
                    t.config,
                    e.kind.label()
                );
            }
        }
        if let Err(e) = run_resumable(&t.compiled, 777) {
            assert!(
                !forbidden.contains(&e.kind.label()),
                "{}/{} sliced: verified program died with `{}`: {e}",
                t.name,
                t.config,
                e.kind.label()
            );
        }
    }
}

#[test]
fn chaos_runs_are_deterministic() {
    let targets = targets();
    let plans = [
        FaultPlan::none().with_gc_jitter_seed(42),
        FaultPlan::none()
            .with_heap_cap_words(1 << 12)
            .with_gc_jitter_seed(9),
    ];
    for t in expensive_targets(targets).into_iter().take(4) {
        for plan in &plans {
            let a = run_chaos(t, plan.clone());
            let b = run_chaos(t, plan.clone());
            assert!(
                a == b,
                "{}/{} under {plan:?}: {a:?} vs {b:?}",
                t.name,
                t.config
            );
        }
    }
}
