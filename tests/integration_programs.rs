//! Larger end-to-end programs: sorting, an expression interpreter, GC
//! stress under a tiny heap, and — the acid test of representation
//! independence — running the whole system under a *different* tagging
//! scheme by swapping the representation library.

use sxr::{Compiler, PipelineConfig, LIBRARY_SCM, PRIMS_ABSTRACT_SCM};

fn run(src: &str) -> sxr::Outcome {
    Compiler::new(PipelineConfig::abstract_optimized())
        .compile(src)
        .unwrap_or_else(|e| panic!("compile failed: {e}"))
        .run()
        .unwrap_or_else(|e| panic!("run failed: {e}"))
}

#[test]
fn merge_sort() {
    let out = run("
      (define (split xs)
        (if (or (null? xs) (null? (cdr xs)))
            (cons xs '())
            (let ((rest (split (cddr xs))))
              (cons (cons (car xs) (car rest))
                    (cons (cadr xs) (cdr rest))))))
      (define (merge a b)
        (cond ((null? a) b)
              ((null? b) a)
              ((fx< (car a) (car b)) (cons (car a) (merge (cdr a) b)))
              (else (cons (car b) (merge a (cdr b))))))
      (define (msort xs)
        (if (or (null? xs) (null? (cdr xs)))
            xs
            (let ((halves (split xs)))
              (merge (msort (car halves)) (msort (cdr halves))))))
      (display (msort (list5 3 1 4 1 5)))
      (display (msort '()))
      (display (equal? (msort (reverse (iota 100))) (iota 100)))");
    assert_eq!(out.output, "(1 1 3 4 5)()#t");
}

#[test]
fn expression_interpreter() {
    // A small environment-passing evaluator — the motivating workload for
    // dynamic dispatch over quoted structure.
    let out = run("
      (define (lookup env x)
        (cond ((null? env) (error 'unbound))
              ((eq? (caar env) x) (cdar env))
              (else (lookup (cdr env) x))))
      (define (ev e env)
        (cond ((fixnum? e) e)
              ((symbol? e) (lookup env e))
              ((eq? (car e) '+) (fx+ (ev (cadr e) env) (ev (caddr e) env)))
              ((eq? (car e) '*) (fx* (ev (cadr e) env) (ev (caddr e) env)))
              ((eq? (car e) 'let)
               ;; (let (x e) body)
               (ev (caddr e)
                   (cons (cons (car (cadr e)) (ev (cadr (cadr e)) env)) env)))
              (else (error 'bad-op))))
      (display (ev '(let (x 7) (+ (* x x) (let (y 2) (* y x)))) '()))");
    assert_eq!(out.output, "63");
}

#[test]
fn ackermann() {
    assert_eq!(
        run("(define (ack m n)
               (cond ((fx= m 0) (fx+ n 1))
                     ((fx= n 0) (ack (fx- m 1) 1))
                     (else (ack (fx- m 1) (ack m (fx- n 1))))))
             (ack 2 4)")
        .value,
        "11"
    );
}

#[test]
fn gc_stress_under_tiny_heap() {
    // Churn through far more allocation than the heap holds; survivors form
    // a long-lived structure that must stay intact across collections.
    let cfg = PipelineConfig::abstract_optimized().with_heap_words(1 << 12);
    let out = Compiler::new(cfg)
        .compile(
            "(define keep (iota 50))
             (define (churn k)
               (if (fx= k 0)
                   'done
                   (begin (reverse (iota 100)) (churn (fx- k 1)))))
             (churn 500)
             (display (fold-left fx+ 0 keep))
             (display \" \")
             (display (length keep))",
        )
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(out.output, "1225 50");
    assert!(
        out.counters.gc_count > 5,
        "expected collections, got {}",
        out.counters.gc_count
    );
}

#[test]
fn deep_non_tail_recursion() {
    // Non-tail recursion a few thousand deep exercises the frame stack.
    assert_eq!(
        run(
            "(define (sum-to n) (if (fx= n 0) 0 (fx+ n (sum-to (fx- n 1)))))
             (sum-to 5000)"
        )
        .value,
        "12502500"
    );
}

#[test]
fn closures_capture_correctly() {
    let out = run("
      (define (make-adders)
        (map (lambda (i) (lambda (x) (fx+ x i))) (iota 4)))
      (display (map (lambda (f) (f 10)) (make-adders)))");
    assert_eq!(out.output, "(10 11 12 13)");
}

#[test]
fn string_builder() {
    let out = run("
      (define (join strs sep)
        (cond ((null? strs) \"\")
              ((null? (cdr strs)) (car strs))
              (else (string-append (car strs)
                                   (string-append sep (join (cdr strs) sep))))))
      (display (join (list3 \"a\" \"b\" \"c\") \", \"))");
    assert_eq!(out.output, "a, b, c");
}

/// An alternative representation library: different fixnum shift, permuted
/// pointer tags, different immediate sub-tags. Swapping it in changes every
/// tag in the system; the compiler is none the wiser.
const ALT_REPS_SCM: &str = "
(define fixnum-rep      (%make-immediate-type 'fixnum 3 0 4))
(define boolean-rep     (%make-immediate-type 'boolean 9 2 9))
(define char-rep        (%make-immediate-type 'char 9 10 9))
(define null-rep        (%make-immediate-type 'null 9 18 9))
(define unspecified-rep (%make-immediate-type 'unspecified 9 26 9))
(define eof-rep         (%make-immediate-type 'eof 9 34 9))
(define string-rep      (%make-pointer-type 'string 1 #f))
(define symbol-rep      (%make-pointer-type 'symbol 3 #f))
(define rep-type-rep    (%make-pointer-type 'rep-type 4 #t))
(define box-rep         (%make-pointer-type 'box 4 #t))
(define pair-rep        (%make-pointer-type 'pair 5 #f))
(define vector-rep      (%make-pointer-type 'vector 6 #f))
(define closure-rep     (%make-pointer-type 'closure 7 #f))
(define condition-rep   (%make-pointer-type 'condition 4 #t))
(%provide-rep! 'fixnum fixnum-rep)
(%provide-rep! 'boolean boolean-rep)
(%provide-rep! 'char char-rep)
(%provide-rep! 'null null-rep)
(%provide-rep! 'unspecified unspecified-rep)
(%provide-rep! 'eof eof-rep)
(%provide-rep! 'pair pair-rep)
(%provide-rep! 'vector vector-rep)
(%provide-rep! 'rep-type rep-type-rep)
(%provide-rep! 'box box-rep)
(%provide-rep! 'string string-rep)
(%provide-rep! 'symbol symbol-rep)
(%provide-rep! 'closure closure-rep)
(%provide-rep! 'condition condition-rep)
";

#[test]
fn alternative_tagging_scheme_changes_nothing_observable() {
    let programs = [
        "(display (fx+ 20 22))",
        "(display (reverse (iota 5)))",
        "(display (equal? '(1 #(2 \"three\") x) (list3 1 (vector->list-inverse) 'x)))",
    ];
    // The third program needs a helper; keep it simple instead:
    let programs = [
        programs[0],
        programs[1],
        "(write '(1 #(2 \"three\") #\\x))",
        "(display (let loop ((i 0) (s 0)) (if (fx= i 50) s (loop (fx+ i 1) (fx+ s i)))))",
        "(display (assq 'b '((a . 1) (b . 2))))",
    ];
    for src in programs {
        let standard = run(src).output;
        for cfg in [
            PipelineConfig::abstract_optimized(),
            PipelineConfig::abstract_unoptimized(),
        ] {
            let alt = Compiler::new(cfg)
                .compile_with_prelude(&[ALT_REPS_SCM, PRIMS_ABSTRACT_SCM, LIBRARY_SCM], src)
                .unwrap_or_else(|e| panic!("alt-tagging compile failed: {e}\n{src}"))
                .run()
                .unwrap_or_else(|e| panic!("alt-tagging run failed: {e}\n{src}"));
            assert_eq!(alt.output, standard, "alt tagging diverged on {src}");
        }
    }
}

#[test]
fn mutual_recursion() {
    assert_eq!(
        run("(define (even2? n) (if (fx= n 0) #t (odd2? (fx- n 1))))
             (define (odd2? n) (if (fx= n 0) #f (even2? (fx- n 1))))
             (list2 (even2? 10) (odd2? 10))")
        .value,
        "(#t #f)"
    );
}

#[test]
fn do_loops_and_case() {
    assert_eq!(
        run("(do ((i 0 (fx+ i 1)) (acc 1 (fx* acc 2))) ((fx= i 10) acc))").value,
        "1024"
    );
}

#[test]
fn shipped_scheme_examples_run_identically_everywhere() {
    for (path, expect_contains) in [
        ("examples/scheme/nbody_ish.scm", "after 1000 ticks"),
        ("examples/scheme/wordfreq.scm", "the: 3"),
        ("examples/scheme/metacircular.scm", "= 7"),
    ] {
        // Tests run from the crate root; examples live at the repo root.
        let full = format!("{}/../../{path}", env!("CARGO_MANIFEST_DIR"));
        let src = std::fs::read_to_string(&full).unwrap_or_else(|e| panic!("{full}: {e}"));
        let mut outputs = Vec::new();
        for cfg in [
            PipelineConfig::traditional(),
            PipelineConfig::abstract_optimized(),
            PipelineConfig::abstract_unoptimized(),
        ] {
            let out = Compiler::new(cfg)
                .compile(&src)
                .unwrap_or_else(|e| panic!("{path}: {e}"))
                .run()
                .unwrap_or_else(|e| panic!("{path}: {e}"));
            assert!(
                out.output.contains(expect_contains),
                "{path}: {}",
                out.output
            );
            outputs.push(out.output);
        }
        assert!(outputs.windows(2).all(|w| w[0] == w[1]), "{path} diverged");
    }
}
