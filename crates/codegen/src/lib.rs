//! Code generation for the `sxr` pipeline: closure-converted ANF to VM
//! instructions, plus the Traditional baseline's intrinsic lowering.
//!
//! Two things live here:
//!
//! * [`generate`] — the shared back end, used by every pipeline
//!   configuration. It performs instruction selection, branch fusion,
//!   addressing-mode folding, register assignment, and pointer-map
//!   computation.
//! * [`lower_intrinsics`] — the Traditional baseline's hand-written
//!   per-primitive expansions (the "contorted, traditional techniques" the
//!   paper's abstract approach is measured against).
//!
//! # Example
//!
//! ```
//! use sxr_ast::{convert_assignments, Expander};
//! use sxr_ir::{closure_convert, lower_program, rep::RepRegistry};
//! use sxr_codegen::generate;
//! use sxr_vm::{Machine, MachineConfig};
//!
//! // A miniature "library": declare the layouts the program needs.
//! let mut reg = RepRegistry::new();
//! let fx = reg.intern_immediate("fixnum", 3, 0, 3).unwrap();
//! let bo = reg.intern_immediate("boolean", 8, 0b010, 8).unwrap();
//! let un = reg.intern_immediate("unspecified", 8, 0b0001_0010, 8).unwrap();
//! let cl = reg.intern_pointer("closure", 7, false).unwrap();
//! for (r, id) in [("fixnum", fx), ("boolean", bo), ("unspecified", un), ("closure", cl)] {
//!     reg.provide_role(r, id).unwrap();
//! }
//!
//! let mut ex = Expander::new();
//! let forms = sxr_sexp::parse_all("(define (f x) (%word+ x 8)) (f 8)").unwrap();
//! let unit = ex.expand_unit(&forms).unwrap();
//! let mut prog = ex.into_program(vec![unit]);
//! convert_assignments(&mut prog).unwrap();
//! let module = closure_convert(lower_program(prog).unwrap());
//! let code = generate(&module, &reg).unwrap();
//! let mut m = Machine::new(code, MachineConfig::default()).unwrap();
//! let w = m.run().unwrap();
//! // Raw word addition of two tagged shift-3 fixnums is fixnum addition.
//! assert_eq!(m.describe(w), "16");
//! ```

mod gen;
mod intrinsics;

pub use gen::{generate, CodegenError};
pub use intrinsics::{lower_intrinsics, lower_intrinsics_expr, IntrinsicError};
