//! Instruction selection: closure-converted ANF → VM code.
//!
//! Notable selections (all available to *both* pipelines — they encode
//! machine knowledge, not data-representation knowledge):
//!
//! * displacement/indexed addressing folds tag subtraction into loads and
//!   stores,
//! * single-use comparisons feeding a branch fuse into compare-and-branch,
//! * immediate operand forms for constants that fit.
//!
//! The code generator also computes each function's **pointer map** for the
//! precise collector: a register is marked "raw" when the value it holds is
//! statically known never to be a heap pointer (results of word arithmetic,
//! projections, type tests). Raw registers are skipped by the GC.

use std::collections::HashMap;
use sxr_ir::anf::{Atom, Bound, Expr, FnId, Fun, Literal, Module, Test, VarId};
use sxr_ir::prim::PrimOp;
use sxr_ir::rep::{roles, RepKind, RepRegistry};
use sxr_vm::{BinOp, CmpOp, CodeFun, CodeProgram, Inst, PoolEntry, Reg, RegImm, RepVmOp};

/// A code-generation failure (missing role, register overflow, or an IR
/// shape the backend cannot accept).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodegenError(pub String);

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codegen error: {}", self.0)
    }
}

impl std::error::Error for CodegenError {}

/// Whether a register can ever hold a heap pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Never a pointer (word arithmetic results, projections, raw
    /// constants); skipped by the collector.
    Raw,
    /// A tagged Scheme value; scanned by the collector.
    Tagged,
}

/// "Tagged wins": once a value may be tagged it must be treated as a root.
fn join(a: Kind, b: Kind) -> Kind {
    if a == Kind::Tagged || b == Kind::Tagged {
        Kind::Tagged
    } else {
        Kind::Raw
    }
}

/// The kind a primitive's result register gets (must agree with
/// [`FnGen::emit_prim`]).
fn prim_kind(op: &PrimOp) -> Kind {
    use PrimOp::*;
    match op {
        WordAdd | WordSub | WordMul | WordQuot | WordRem | WordAnd | WordOr | WordXor | WordShl
        | WordShr | WordEq | WordLt | PtrEq | RepProject | RepTest | RepLen | SpecHeader(_) => {
            Kind::Raw
        }
        _ => Kind::Tagged,
    }
}

/// Computes, for every function, the kind of each closure free-variable
/// slot: `Raw` slots hold untagged machine words (projections, word
/// arithmetic the optimizer hoisted across a lambda) and must be *skipped*
/// by the collector — a raw word whose low bits alias a pointer tag would
/// otherwise be "forwarded" into garbage.  Slots start `Raw` and join
/// toward `Tagged` over every `MakeClosure`/`ClosurePatch` site, so the
/// fixpoint terminates; `ClosureRef` reads feed a function's own slot
/// kinds back into values it captures for others, which is why this is a
/// whole-module fixpoint rather than a single pass.
fn free_slot_kinds(module: &Module) -> Vec<Vec<Kind>> {
    let mut slots: Vec<Vec<Kind>> = module
        .funs
        .iter()
        .map(|f| vec![Kind::Raw; f.free_count])
        .collect();
    loop {
        let mut changed = false;
        for (fid, f) in module.funs.iter().enumerate() {
            let mut env: HashMap<VarId, Kind> = HashMap::new();
            env.insert(f.self_var, Kind::Tagged);
            for p in f.params.iter().chain(f.rest.iter()) {
                env.insert(*p, Kind::Tagged);
            }
            // Vars bound to `MakeClosure`, so `ClosurePatch` can attribute
            // its store to the right function's slot.
            let mut closure_of: HashMap<VarId, FnId> = HashMap::new();
            slot_walk_expr(
                &f.body,
                fid as FnId,
                &mut env,
                &mut closure_of,
                &mut slots,
                &mut changed,
            );
        }
        if !changed {
            break;
        }
    }
    slots
}

fn slot_atom_kind(a: &Atom, env: &HashMap<VarId, Kind>) -> Kind {
    match a {
        Atom::Var(v) => env.get(v).copied().unwrap_or(Kind::Tagged),
        Atom::Lit(Literal::Raw(_)) => Kind::Raw,
        Atom::Lit(_) => Kind::Tagged,
    }
}

fn slot_join_into(slots: &mut [Vec<Kind>], fid: FnId, idx: usize, k: Kind, changed: &mut bool) {
    if let Some(slot) = slots.get_mut(fid as usize).and_then(|s| s.get_mut(idx)) {
        let j = join(*slot, k);
        if j != *slot {
            *slot = j;
            *changed = true;
        }
    }
}

/// Walks an expression, binding kinds into `env`, and returns the kind of
/// the value the expression yields.
fn slot_walk_expr(
    e: &Expr,
    fid: FnId,
    env: &mut HashMap<VarId, Kind>,
    closure_of: &mut HashMap<VarId, FnId>,
    slots: &mut Vec<Vec<Kind>>,
    changed: &mut bool,
) -> Kind {
    match e {
        Expr::Let(v, b, body) => {
            let k = slot_walk_bound(*v, b, fid, env, closure_of, slots, changed);
            env.insert(*v, k);
            slot_walk_expr(body, fid, env, closure_of, slots, changed)
        }
        Expr::If(_, t, els) => {
            let a = slot_walk_expr(t, fid, env, closure_of, slots, changed);
            let b = slot_walk_expr(els, fid, env, closure_of, slots, changed);
            join(a, b)
        }
        Expr::Ret(a) => slot_atom_kind(a, env),
        Expr::TailCall(..) | Expr::TailCallKnown(..) => Kind::Tagged,
        // Pre-closure-conversion only; nothing to do here.
        Expr::LetRec(_, body) => slot_walk_expr(body, fid, env, closure_of, slots, changed),
    }
}

fn slot_walk_bound(
    v: VarId,
    b: &Bound,
    fid: FnId,
    env: &mut HashMap<VarId, Kind>,
    closure_of: &mut HashMap<VarId, FnId>,
    slots: &mut Vec<Vec<Kind>>,
    changed: &mut bool,
) -> Kind {
    match b {
        Bound::Atom(a) => {
            if let Atom::Var(src) = a {
                if let Some(t) = closure_of.get(src).copied() {
                    closure_of.insert(v, t);
                }
            }
            slot_atom_kind(a, env)
        }
        Bound::Prim(op, _) => prim_kind(op),
        Bound::MakeClosure(target, frees) => {
            for (i, a) in frees.iter().enumerate() {
                let k = slot_atom_kind(a, env);
                slot_join_into(slots, *target, i, k, changed);
            }
            closure_of.insert(v, *target);
            Kind::Tagged
        }
        Bound::ClosureRef(i) => slots
            .get(fid as usize)
            .and_then(|s| s.get(*i))
            .copied()
            .unwrap_or(Kind::Tagged),
        Bound::ClosurePatch(c, i, x) => {
            let k = slot_atom_kind(x, env);
            match c.as_var().and_then(|cv| closure_of.get(&cv).copied()) {
                Some(target) => slot_join_into(slots, target, *i, k, changed),
                // Unknown patch target: assume it could be any function.
                None => {
                    for t in 0..slots.len() {
                        slot_join_into(slots, t as FnId, *i, k, changed);
                    }
                }
            }
            Kind::Tagged // binds the unspecified value
        }
        Bound::If(_, t, els) => {
            let a = slot_walk_expr(t, fid, env, closure_of, slots, changed);
            let b = slot_walk_expr(els, fid, env, closure_of, slots, changed);
            join(a, b)
        }
        Bound::Body(e) => slot_walk_expr(e, fid, env, closure_of, slots, changed),
        // Calls, globals, lambdas (pre-cc), and effect binders yield tagged
        // values (effect binders bind the unspecified value).
        Bound::Call(..)
        | Bound::CallKnown(..)
        | Bound::GlobalGet(_)
        | Bound::GlobalSet(..)
        | Bound::Lambda(_) => Kind::Tagged,
    }
}

/// Generates a loadable program from a validated module.
///
/// # Errors
///
/// Returns [`CodegenError`] when a literal requires a representation role
/// the library did not provide, when intrinsics were not lowered, or when a
/// function exceeds the register budget.
pub fn generate(module: &Module, registry: &RepRegistry) -> Result<CodeProgram, CodegenError> {
    let mut shared = Shared {
        registry,
        pool: Vec::new(),
        pool_index: HashMap::new(),
        false_word: encode_role_imm(registry, roles::BOOLEAN, 0)?,
        unspec_word: encode_role_imm(registry, roles::UNSPECIFIED, 0)?,
        closure_tag: ptr_tag(registry, roles::CLOSURE)?,
    };
    let slot_kinds = free_slot_kinds(module);
    let mut funs = Vec::with_capacity(module.funs.len());
    for (fid, f) in module.funs.iter().enumerate() {
        funs.push(FnGen::emit(f, &slot_kinds[fid], &mut shared)?);
    }
    Ok(CodeProgram {
        funs,
        main: module.main,
        pool: shared.pool,
        nglobals: module.global_names.len(),
        global_names: module.global_names.clone(),
        registry: registry.clone(),
    })
}

/// Removes `Jump` instructions whose target is the next instruction
/// (artifacts of straight-line value bodies) and remaps branch targets.
fn drop_fallthrough_jumps(insts: Vec<Inst>) -> Vec<Inst> {
    let dead: Vec<bool> = insts
        .iter()
        .enumerate()
        .map(|(i, inst)| matches!(inst, Inst::Jump { t } if *t as usize == i + 1))
        .collect();
    if !dead.iter().any(|&d| d) {
        return insts;
    }
    // new_index[i] = position of instruction i after removal.
    let mut new_index = Vec::with_capacity(insts.len() + 1);
    let mut n = 0u32;
    for d in &dead {
        new_index.push(n);
        if !d {
            n += 1;
        }
    }
    new_index.push(n);
    insts
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !dead[*i])
        .map(|(_, mut inst)| {
            match &mut inst {
                Inst::Jump { t } | Inst::JumpCmp { t, .. } | Inst::PushHandler { t, .. } => {
                    *t = new_index[*t as usize]
                }
                _ => {}
            }
            inst
        })
        .collect()
}

fn encode_role_imm(reg: &RepRegistry, role: &str, payload: i64) -> Result<i64, CodegenError> {
    let id = reg
        .role(role)
        .ok_or_else(|| CodegenError(format!("library provided no `{role}` representation")))?;
    match reg.info(id).kind {
        RepKind::Immediate { .. } => Ok(reg.encode_immediate(id, payload)),
        RepKind::Pointer { .. } => Err(CodegenError(format!(
            "role `{role}` must be an immediate representation"
        ))),
    }
}

fn ptr_tag(reg: &RepRegistry, role: &str) -> Result<i64, CodegenError> {
    let id = reg
        .role(role)
        .ok_or_else(|| CodegenError(format!("library provided no `{role}` representation")))?;
    match reg.info(id).kind {
        RepKind::Pointer { tag, .. } => Ok(tag as i64),
        RepKind::Immediate { .. } => Err(CodegenError(format!(
            "role `{role}` must be a pointer representation"
        ))),
    }
}

#[derive(Debug, Clone, Hash, PartialEq, Eq)]
enum PoolKey {
    Datum(sxr_sexp::Datum),
    Rep(u32),
}

struct Shared<'a> {
    registry: &'a RepRegistry,
    pool: Vec<PoolEntry>,
    pool_index: HashMap<PoolKey, u32>,
    false_word: i64,
    unspec_word: i64,
    closure_tag: i64,
}

impl Shared<'_> {
    fn pool_slot(&mut self, key: PoolKey) -> u32 {
        if let Some(&i) = self.pool_index.get(&key) {
            return i;
        }
        let i = self.pool.len() as u32;
        self.pool.push(match &key {
            PoolKey::Datum(d) => PoolEntry::Datum(d.clone()),
            PoolKey::Rep(r) => PoolEntry::Rep(*r),
        });
        self.pool_index.insert(key, i);
        i
    }

    /// Encodes a literal as either an inline immediate or a pool slot.
    fn literal(&mut self, lit: &Literal) -> Result<Enc, CodegenError> {
        use sxr_sexp::Datum;
        Ok(match lit {
            Literal::Raw(w) => Enc::Imm(*w, Kind::Raw),
            Literal::Unspecified => Enc::Imm(self.unspec_word, Kind::Tagged),
            Literal::Rep(r) => Enc::Pool(self.pool_slot(PoolKey::Rep(*r))),
            Literal::Datum(d) => match d {
                Datum::Fixnum(n) => Enc::Imm(
                    encode_role_imm(self.registry, roles::FIXNUM, *n)?,
                    Kind::Tagged,
                ),
                Datum::Bool(b) => Enc::Imm(
                    encode_role_imm(self.registry, roles::BOOLEAN, *b as i64)?,
                    Kind::Tagged,
                ),
                Datum::Char(c) => Enc::Imm(
                    encode_role_imm(self.registry, roles::CHAR, *c as i64)?,
                    Kind::Tagged,
                ),
                Datum::List(items) if items.is_empty() => Enc::Imm(
                    encode_role_imm(self.registry, roles::NULL, 0)?,
                    Kind::Tagged,
                ),
                other => Enc::Pool(self.pool_slot(PoolKey::Datum(other.clone()))),
            },
        })
    }
}

#[derive(Debug, Clone, Copy)]
enum Enc {
    Imm(i64, Kind),
    Pool(u32),
}

struct FnGen<'a, 'b> {
    shared: &'a mut Shared<'b>,
    regs: HashMap<VarId, Reg>,
    kinds: Vec<Kind>,       // per register
    free_kinds: &'a [Kind], // per closure free slot (from `free_slot_kinds`)
    insts: Vec<Inst>,
    patches: Vec<(usize, u32)>, // (inst index, label)
    labels: Vec<Option<u32>>,
    uses: HashMap<VarId, usize>,
}

/// Where a sub-expression delivers its value.
enum Ctx {
    /// Function tail: `Ret` / tail calls allowed.
    Tail,
    /// Value branch of a `Bound::If`: `Ret a` means "move a to `dst`, jump
    /// to `join`".
    Yield { dst: Reg, join: u32 },
}

impl<'a, 'b> FnGen<'a, 'b> {
    fn emit(
        f: &Fun,
        free_kinds: &'a [Kind],
        shared: &'a mut Shared<'b>,
    ) -> Result<CodeFun, CodegenError> {
        let mut g = FnGen {
            shared,
            regs: HashMap::new(),
            kinds: Vec::new(),
            free_kinds,
            insts: Vec::new(),
            patches: Vec::new(),
            labels: Vec::new(),
            uses: HashMap::new(),
        };
        f.body.use_counts(&mut g.uses);
        let r0 = g.fresh_reg(Kind::Tagged)?;
        if r0 != 0 {
            // The machine stores the callee closure in register 0; any
            // other assignment would silently shift every frame access.
            return Err(CodegenError(format!(
                "closure register allocated as r{r0}, not r0"
            )));
        }
        g.regs.insert(f.self_var, 0);
        for p in f.params.iter().chain(f.rest.iter()) {
            let r = g.fresh_reg(Kind::Tagged)?;
            g.regs.insert(*p, r);
        }
        g.emit_expr(&f.body, &mut Ctx::Tail)?;
        // Patch labels.
        for (at, label) in std::mem::take(&mut g.patches) {
            let target = g.labels[label as usize]
                .ok_or_else(|| CodegenError(format!("unbound label {label}")))?;
            match &mut g.insts[at] {
                Inst::Jump { t } | Inst::JumpCmp { t, .. } | Inst::PushHandler { t, .. } => {
                    *t = target
                }
                other => return Err(CodegenError(format!("patch of non-branch {other:?}"))),
            }
        }
        g.insts = drop_fallthrough_jumps(g.insts);
        Ok(CodeFun {
            name: f.name.clone().unwrap_or_else(|| "anonymous".to_string()),
            arity: f.params.len(),
            variadic: f.rest.is_some(),
            nregs: g.kinds.len(),
            free_count: f.free_count,
            insts: g.insts,
            ptr_map: g.kinds.iter().map(|k| *k == Kind::Tagged).collect(),
            free_ptr_map: free_kinds.iter().map(|k| *k == Kind::Tagged).collect(),
        })
    }

    fn fresh_reg(&mut self, kind: Kind) -> Result<Reg, CodegenError> {
        let r = self.kinds.len();
        if r > u16::MAX as usize {
            return Err(CodegenError(
                "function needs more than 65536 registers".to_string(),
            ));
        }
        self.kinds.push(kind);
        Ok(r as Reg)
    }

    fn new_label(&mut self) -> u32 {
        self.labels.push(None);
        (self.labels.len() - 1) as u32
    }

    fn bind_label(&mut self, l: u32) {
        self.labels[l as usize] = Some(self.insts.len() as u32);
    }

    fn jump(&mut self, l: u32) {
        self.patches.push((self.insts.len(), l));
        self.insts.push(Inst::Jump { t: 0 });
    }

    fn jump_cmp(&mut self, op: CmpOp, a: Reg, b: RegImm, l: u32) {
        self.patches.push((self.insts.len(), l));
        self.insts.push(Inst::JumpCmp { op, a, b, t: 0 });
    }

    fn var_reg(&self, v: VarId) -> Result<Reg, CodegenError> {
        self.regs
            .get(&v)
            .copied()
            .ok_or_else(|| CodegenError(format!("use of unallocated variable v{v}")))
    }

    fn kind_of_atom(&mut self, a: &Atom) -> Result<Kind, CodegenError> {
        Ok(match a {
            Atom::Var(v) => self.kinds[self.var_reg(*v)? as usize],
            Atom::Lit(l) => match self.shared.literal(l)? {
                Enc::Imm(_, k) => k,
                Enc::Pool(_) => Kind::Tagged,
            },
        })
    }

    /// Materializes an atom into a register.
    fn atom_reg(&mut self, a: &Atom) -> Result<Reg, CodegenError> {
        match a {
            Atom::Var(v) => self.var_reg(*v),
            Atom::Lit(l) => {
                let enc = self.shared.literal(l)?;
                match enc {
                    Enc::Imm(w, k) => {
                        let r = self.fresh_reg(k)?;
                        self.insts.push(Inst::Const { d: r, imm: w });
                        Ok(r)
                    }
                    Enc::Pool(idx) => {
                        let r = self.fresh_reg(Kind::Tagged)?;
                        self.insts.push(Inst::Pool { d: r, idx });
                        Ok(r)
                    }
                }
            }
        }
    }

    /// Returns an immediate encoding of the atom if it fits i32.
    fn atom_imm(&mut self, a: &Atom) -> Result<Option<i32>, CodegenError> {
        if let Atom::Lit(l) = a {
            if let Enc::Imm(w, _) = self.shared.literal(l)? {
                return Ok(i32::try_from(w).ok());
            }
        }
        Ok(None)
    }

    fn atom_regs(&mut self, atoms: &[Atom]) -> Result<Vec<Reg>, CodegenError> {
        atoms.iter().map(|a| self.atom_reg(a)).collect()
    }

    fn used_once(&self, v: VarId) -> bool {
        self.uses.get(&v).copied().unwrap_or(0) == 1
    }

    fn emit_expr(&mut self, e: &Expr, ctx: &mut Ctx) -> Result<(), CodegenError> {
        match e {
            Expr::Let(v, b, body) => {
                // Compare-and-branch fusion: a single-use comparison feeding
                // the immediately following raw test.
                if let Bound::Prim(op @ (PrimOp::WordEq | PrimOp::WordLt | PrimOp::PtrEq), args) = b
                {
                    if self.used_once(*v) {
                        match &**body {
                            Expr::If(Test::NonZero(Atom::Var(w)), t, els) if w == v => {
                                return self.emit_fused_if(*op, args, t, els, None, ctx);
                            }
                            Expr::Let(v2, Bound::If(Test::NonZero(Atom::Var(w)), t, els), rest)
                                if w == v =>
                            {
                                return self.emit_fused_if(
                                    *op,
                                    args,
                                    t,
                                    els,
                                    Some((*v2, rest)),
                                    ctx,
                                );
                            }
                            _ => {}
                        }
                    }
                }
                self.emit_bound(*v, b)?;
                self.emit_expr(body, ctx)
            }
            Expr::If(test, t, els) => {
                let else_l = self.new_label();
                self.branch_unless(test, else_l)?;
                self.emit_expr(t, ctx)?;
                self.bind_label(else_l);
                self.emit_expr(els, ctx)
            }
            Expr::Ret(a) => match ctx {
                Ctx::Tail => {
                    let r = self.atom_reg(a)?;
                    self.insts.push(Inst::Ret { s: r });
                    Ok(())
                }
                Ctx::Yield { dst, join } => {
                    let (dst, join) = (*dst, *join);
                    // Move/encode directly into the destination register.
                    match a {
                        Atom::Var(v) => {
                            let s = self.var_reg(*v)?;
                            let k = self.kinds[s as usize];
                            self.join_kind(dst, k);
                            if s != dst {
                                self.insts.push(Inst::Move { d: dst, s });
                            }
                        }
                        Atom::Lit(l) => {
                            let enc = self.shared.literal(l)?;
                            match enc {
                                Enc::Imm(w, k) => {
                                    self.join_kind(dst, k);
                                    self.insts.push(Inst::Const { d: dst, imm: w });
                                }
                                Enc::Pool(idx) => {
                                    self.join_kind(dst, Kind::Tagged);
                                    self.insts.push(Inst::Pool { d: dst, idx });
                                }
                            }
                        }
                    }
                    self.jump(join);
                    Ok(())
                }
            },
            Expr::TailCall(f, args) => {
                if !matches!(ctx, Ctx::Tail) {
                    return Err(CodegenError("tail call in value branch".to_string()));
                }
                let fr = self.atom_reg(f)?;
                let argr = self.atom_regs(args)?;
                self.insts.push(Inst::TailCall { f: fr, args: argr });
                Ok(())
            }
            Expr::TailCallKnown(fid, clo, args) => {
                if !matches!(ctx, Ctx::Tail) {
                    return Err(CodegenError("tail call in value branch".to_string()));
                }
                let cr = self.atom_reg(clo)?;
                let argr = self.atom_regs(args)?;
                self.insts.push(Inst::TailCallKnown {
                    f: *fid,
                    clo: cr,
                    args: argr,
                });
                Ok(())
            }
            Expr::LetRec(..) => Err(CodegenError(
                "letrec reached the code generator".to_string(),
            )),
        }
    }

    /// Joins a yield kind into the destination register's kind: pointer-ness
    /// wins (a register is scanned if *any* path may store a pointer there).
    /// Mixing is only safe because non-pointer words under every registered
    /// immediate representation remain valid tagged words; a raw word that
    /// could alias a pointer pattern must never flow into a tagged join —
    /// the library upholds this by construction and the differential tests
    /// exercise it.
    fn join_kind(&mut self, dst: Reg, k: Kind) {
        if k == Kind::Tagged {
            self.kinds[dst as usize] = Kind::Tagged;
        }
    }

    fn branch_unless(&mut self, test: &Test, else_l: u32) -> Result<(), CodegenError> {
        match test {
            Test::Truthy(a) => {
                let r = self.atom_reg(a)?;
                let fw = self.shared.false_word;
                match i32::try_from(fw) {
                    Ok(imm) => self.jump_cmp(CmpOp::Eq, r, RegImm::Imm(imm), else_l),
                    Err(_) => {
                        let t = self.fresh_reg(Kind::Tagged)?;
                        self.insts.push(Inst::Const { d: t, imm: fw });
                        self.jump_cmp(CmpOp::Eq, r, RegImm::Reg(t), else_l);
                    }
                }
                Ok(())
            }
            Test::NonZero(a) => {
                let r = self.atom_reg(a)?;
                self.jump_cmp(CmpOp::Eq, r, RegImm::Imm(0), else_l);
                Ok(())
            }
        }
    }

    /// Emits `if (a cmp b) then else` with the comparison fused into the
    /// branch. `bound` is `Some((v, rest))` for a value-producing if.
    fn emit_fused_if(
        &mut self,
        op: PrimOp,
        args: &[Atom],
        t: &Expr,
        els: &Expr,
        bound: Option<(VarId, &Expr)>,
        ctx: &mut Ctx,
    ) -> Result<(), CodegenError> {
        let a = self.atom_reg(&args[0])?;
        let b = match self.atom_imm(&args[1])? {
            Some(imm) => RegImm::Imm(imm),
            None => RegImm::Reg(self.atom_reg(&args[1])?),
        };
        // Branch to else when the comparison is false.
        let cmp = match op {
            PrimOp::WordEq | PrimOp::PtrEq => CmpOp::Ne,
            PrimOp::WordLt => CmpOp::Ge,
            _ => unreachable!("fusion only on comparisons"),
        };
        let else_l = self.new_label();
        match bound {
            None => {
                self.jump_cmp(cmp, a, b, else_l);
                self.emit_expr(t, ctx)?;
                self.bind_label(else_l);
                self.emit_expr(els, ctx)
            }
            Some((v, rest)) => {
                let dst = self.fresh_reg(Kind::Raw)?; // corrected by join_kind
                self.regs.insert(v, dst);
                let join = self.new_label();
                self.jump_cmp(cmp, a, b, else_l);
                self.emit_expr(t, &mut Ctx::Yield { dst, join })?;
                self.bind_label(else_l);
                self.emit_expr(els, &mut Ctx::Yield { dst, join })?;
                self.bind_label(join);
                self.emit_expr(rest, ctx)
            }
        }
    }

    fn define(&mut self, v: VarId, kind: Kind) -> Result<Reg, CodegenError> {
        let r = self.fresh_reg(kind)?;
        self.regs.insert(v, r);
        Ok(r)
    }

    fn emit_bound(&mut self, v: VarId, b: &Bound) -> Result<(), CodegenError> {
        match b {
            Bound::Atom(a) => {
                let k = self.kind_of_atom(a)?;
                match a {
                    Atom::Var(src) => {
                        let s = self.var_reg(*src)?;
                        let d = self.define(v, k)?;
                        self.insts.push(Inst::Move { d, s });
                    }
                    Atom::Lit(l) => {
                        let enc = self.shared.literal(l)?;
                        let d = self.define(v, k)?;
                        match enc {
                            Enc::Imm(w, _) => self.insts.push(Inst::Const { d, imm: w }),
                            Enc::Pool(idx) => self.insts.push(Inst::Pool { d, idx }),
                        }
                    }
                }
                Ok(())
            }
            Bound::Prim(op, args) => self.emit_prim(v, *op, args),
            Bound::Call(f, args) => {
                let fr = self.atom_reg(f)?;
                let argr = self.atom_regs(args)?;
                let d = self.define(v, Kind::Tagged)?;
                self.insts.push(Inst::Call {
                    d,
                    f: fr,
                    args: argr,
                });
                Ok(())
            }
            Bound::CallKnown(fid, clo, args) => {
                let cr = self.atom_reg(clo)?;
                let argr = self.atom_regs(args)?;
                let d = self.define(v, Kind::Tagged)?;
                self.insts.push(Inst::CallKnown {
                    d,
                    f: *fid,
                    clo: cr,
                    args: argr,
                });
                Ok(())
            }
            Bound::GlobalGet(g) => {
                let d = self.define(v, Kind::Tagged)?;
                self.insts.push(Inst::GlobalGet { d, g: *g });
                Ok(())
            }
            Bound::GlobalSet(g, a) => {
                let s = self.atom_reg(a)?;
                self.insts.push(Inst::GlobalSet { g: *g, s });
                self.bind_unspec_if_used(v)
            }
            Bound::Lambda(_) => Err(CodegenError(
                "nested lambda reached the code generator".to_string(),
            )),
            Bound::MakeClosure(fid, frees) => {
                let freer = self.atom_regs(frees)?;
                let d = self.define(v, Kind::Tagged)?;
                self.insts.push(Inst::MakeClosure {
                    d,
                    f: *fid,
                    free: freer,
                });
                Ok(())
            }
            Bound::ClosureRef(i) => {
                // The slot's kind flows into the destination register: a raw
                // capture must stay invisible to the collector.
                let k = self.free_kinds.get(*i).copied().unwrap_or(Kind::Tagged);
                let d = self.define(v, k)?;
                let disp = (8 * (*i as i64 + 2) - self.shared.closure_tag) as i32;
                self.insts.push(Inst::LoadD { d, p: 0, disp });
                Ok(())
            }
            Bound::ClosurePatch(c, i, x) => {
                let cr = self.atom_reg(c)?;
                let xr = self.atom_reg(x)?;
                self.insts.push(Inst::ClosureSet {
                    clo: cr,
                    idx: *i as u32,
                    val: xr,
                });
                self.bind_unspec_if_used(v)
            }
            Bound::If(test, t, els) => {
                // Value-producing if.
                let dst = self.fresh_reg(Kind::Raw)?; // join_kind corrects
                self.regs.insert(v, dst);
                let else_l = self.new_label();
                let join = self.new_label();
                self.branch_unless(test, else_l)?;
                self.emit_expr(t, &mut Ctx::Yield { dst, join })?;
                self.bind_label(else_l);
                self.emit_expr(els, &mut Ctx::Yield { dst, join })?;
                self.bind_label(join);
                Ok(())
            }
            Bound::Body(e) => {
                let dst = self.fresh_reg(Kind::Raw)?; // join_kind corrects
                self.regs.insert(v, dst);
                let join = self.new_label();
                self.emit_expr(e, &mut Ctx::Yield { dst, join })?;
                self.bind_label(join);
                Ok(())
            }
        }
    }

    /// Binds `v`'s register to the unspecified value, but only when the
    /// variable is actually read (effect-only prims usually are not).
    fn bind_unspec_if_used(&mut self, v: VarId) -> Result<(), CodegenError> {
        if self.uses.get(&v).copied().unwrap_or(0) > 0 {
            let w = self.shared.unspec_word;
            let d = self.define(v, Kind::Tagged)?;
            self.insts.push(Inst::Const { d, imm: w });
        } else {
            let d = self.define(v, Kind::Tagged)?;
            let _ = d; // register reserved but never written; init value is safe
        }
        Ok(())
    }

    fn emit_prim(&mut self, v: VarId, op: PrimOp, args: &[Atom]) -> Result<(), CodegenError> {
        use PrimOp::*;
        let bin = |o: BinOp| o;
        match op {
            WordAdd | WordSub | WordMul | WordQuot | WordRem | WordAnd | WordOr | WordXor
            | WordShl | WordShr | WordEq | WordLt | PtrEq => {
                let o = match op {
                    WordAdd => bin(BinOp::Add),
                    WordSub => bin(BinOp::Sub),
                    WordMul => bin(BinOp::Mul),
                    WordQuot => bin(BinOp::Quot),
                    WordRem => bin(BinOp::Rem),
                    WordAnd => bin(BinOp::And),
                    WordOr => bin(BinOp::Or),
                    WordXor => bin(BinOp::Xor),
                    WordShl => bin(BinOp::Shl),
                    WordShr => bin(BinOp::Shr),
                    WordEq | PtrEq => bin(BinOp::CmpEq),
                    WordLt => bin(BinOp::CmpLt),
                    _ => unreachable!(),
                };
                let a = self.atom_reg(&args[0])?;
                let imm = self.atom_imm(&args[1])?;
                let d = self.define(v, Kind::Raw)?;
                match imm {
                    Some(i) => self.insts.push(Inst::BinI {
                        op: o,
                        d,
                        a,
                        imm: i,
                    }),
                    None => {
                        let b = self.atom_reg(&args[1])?;
                        self.insts.push(Inst::Bin { op: o, d, a, b });
                    }
                }
                Ok(())
            }
            SpecHeader(rid) => {
                let tag = self.spec_tag(rid)?;
                let p = self.atom_reg(&args[0])?;
                let d = self.define(v, Kind::Raw)?;
                self.insts.push(Inst::LoadD { d, p, disp: -tag });
                Ok(())
            }
            SpecAlloc(rid) => {
                let len = match self.atom_imm(&args[0])? {
                    Some(i) => RegImm::Imm(i),
                    None => RegImm::Reg(self.atom_reg(&args[0])?),
                };
                let fill = self.atom_reg(&args[1])?;
                let d = self.define(v, Kind::Tagged)?;
                self.insts.push(Inst::AllocFill {
                    d,
                    len,
                    fill,
                    rep: rid,
                });
                Ok(())
            }
            SpecRef(rid) => {
                let tag = self.spec_tag(rid)?;
                let p = self.atom_reg(&args[0])?;
                let off = self.atom_imm(&args[1])?;
                let d = self.define(v, Kind::Tagged)?;
                match off {
                    Some(byteoff) => self.insts.push(Inst::LoadD {
                        d,
                        p,
                        disp: byteoff + 8 - tag,
                    }),
                    None => {
                        let x = self.atom_reg(&args[1])?;
                        self.insts.push(Inst::LoadX {
                            d,
                            p,
                            x,
                            disp: 8 - tag,
                        });
                    }
                }
                Ok(())
            }
            SpecSet(rid) => {
                let tag = self.spec_tag(rid)?;
                let p = self.atom_reg(&args[0])?;
                let off = self.atom_imm(&args[1])?;
                let s = self.atom_reg(&args[2])?;
                match off {
                    Some(byteoff) => self.insts.push(Inst::StoreD {
                        p,
                        disp: byteoff + 8 - tag,
                        s,
                    }),
                    None => {
                        let x = self.atom_reg(&args[1])?;
                        self.insts.push(Inst::StoreX {
                            p,
                            x,
                            disp: 8 - tag,
                            s,
                        });
                    }
                }
                self.bind_unspec_if_used(v)
            }
            MakeImmType | MakePtrType | ProvideRep | RepInject | RepProject | RepTest
            | RepAlloc | RepRef | RepSet | RepLen => {
                let o = match op {
                    MakeImmType => RepVmOp::MakeImm,
                    MakePtrType => RepVmOp::MakePtr,
                    ProvideRep => RepVmOp::Provide,
                    RepInject => RepVmOp::Inject,
                    RepProject => RepVmOp::Project,
                    RepTest => RepVmOp::Test,
                    RepAlloc => RepVmOp::Alloc,
                    RepRef => RepVmOp::Ref,
                    RepSet => RepVmOp::Set,
                    RepLen => RepVmOp::Len,
                    _ => unreachable!(),
                };
                let argr = self.atom_regs(args)?;
                let kind = match op {
                    RepProject | RepTest | RepLen => Kind::Raw,
                    _ => Kind::Tagged,
                };
                let d = self.define(v, kind)?;
                self.insts.push(Inst::Rep {
                    op: o,
                    d,
                    args: argr,
                });
                Ok(())
            }
            Intern => {
                let s = self.atom_reg(&args[0])?;
                let d = self.define(v, Kind::Tagged)?;
                self.insts.push(Inst::Intern { d, s });
                Ok(())
            }
            WriteChar => {
                let s = self.atom_reg(&args[0])?;
                self.insts.push(Inst::WriteChar { s });
                self.bind_unspec_if_used(v)
            }
            Error => {
                let s = self.atom_reg(&args[0])?;
                self.insts.push(Inst::ErrorOp { s });
                self.bind_unspec_if_used(v)
            }
            TrapCall => {
                // PushHandler / call thunk / PopHandler, with the resume
                // label bound *after* PopHandler: the trap path pops the
                // handler entry itself, so the normal and unwound paths
                // each pop exactly once.  Both the thunk's and the
                // handler's result land in `d`.
                let hr = self.atom_reg(&args[0])?;
                let tr = self.atom_reg(&args[1])?;
                let d = self.define(v, Kind::Tagged)?;
                let after = self.new_label();
                self.patches.push((self.insts.len(), after));
                self.insts.push(Inst::PushHandler { h: hr, d, t: 0 });
                self.insts.push(Inst::Call {
                    d,
                    f: tr,
                    args: vec![],
                });
                self.insts.push(Inst::PopHandler);
                self.bind_label(after);
                Ok(())
            }
            Raise => {
                let s = self.atom_reg(&args[0])?;
                self.insts.push(Inst::RaiseOp { s });
                self.bind_unspec_if_used(v)
            }
            CounterReset => {
                self.insts.push(Inst::ResetCounters);
                self.bind_unspec_if_used(v)
            }
            Intrinsic(i) => Err(CodegenError(format!(
                "intrinsic %{} must be lowered before code generation",
                i.name()
            ))),
        }
    }

    fn spec_tag(&self, rid: u32) -> Result<i32, CodegenError> {
        match self.shared.registry.info(rid).kind {
            RepKind::Pointer { tag, .. } => Ok(tag as i32),
            RepKind::Immediate { .. } => Err(CodegenError(format!(
                "specialized memory op on immediate representation `{}`",
                self.shared.registry.info(rid).name
            ))),
        }
    }
}
