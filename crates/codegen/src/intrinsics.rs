//! Intrinsic lowering — the **Traditional baseline**.
//!
//! This pass is the reproduction's stand-in for a conventional compiler: a
//! catalogue of hand-written, per-primitive expansions, each encoding
//! detailed knowledge of how pairs, fixnums, vectors, … are laid out.  The
//! paper's point is that the *abstract* pipeline reaches the same code
//! without any of this — compare this file against the prelude plus the
//! general optimizer.
//!
//! Expansions are parameterized by the representation registry so the
//! baseline works under any tagging scheme, with the classic shortcuts
//! (fixnum tag 0, shift 3) special-cased exactly as a tuned 1990s compiler
//! would.

use sxr_ir::anf::{Atom, Bound, Expr, Literal, Module, NameSupply, VarId};
use sxr_ir::prim::{Intrinsic, PrimOp};
use sxr_ir::rep::{roles, RepId, RepKind, RepRegistry};

/// An intrinsic-lowering failure (role missing from the registry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntrinsicError(pub String);

impl std::fmt::Display for IntrinsicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "intrinsic lowering error: {}", self.0)
    }
}

impl std::error::Error for IntrinsicError {}

/// Rewrites every `%i-…` intrinsic application in `module` into its ideal
/// hand-coded instruction sequence for the layouts in `registry`.
///
/// # Errors
///
/// Returns [`IntrinsicError`] when a required representation role is
/// missing.
pub fn lower_intrinsics(module: &mut Module, registry: &RepRegistry) -> Result<(), IntrinsicError> {
    let mut supply = NameSupply::from_names(std::mem::take(&mut module.var_names));
    let ctx = Ctx::new(registry)?;
    for f in module.funs.iter_mut() {
        let body = std::mem::replace(&mut f.body, Expr::Ret(Atom::Lit(Literal::Unspecified)));
        f.body = rewrite(body, &ctx, &mut supply);
    }
    module.var_names = supply.names;
    Ok(())
}

/// Variant of [`lower_intrinsics`] over a pre-closure-conversion whole
/// program expression (the Traditional pipeline runs this *before* the
/// general optimizer, so inlining and branch rewriting apply to the
/// expanded templates too).
///
/// # Errors
///
/// Returns [`IntrinsicError`] when a required representation role is
/// missing.
pub fn lower_intrinsics_expr(
    e: Expr,
    registry: &RepRegistry,
    supply: &mut NameSupply,
) -> Result<Expr, IntrinsicError> {
    let ctx = Ctx::new(registry)?;
    Ok(rewrite(e, &ctx, supply))
}

/// Layout facts extracted from the registry.
struct Ctx {
    fx: Imm,
    bool_: Imm,
    char_: Imm,
    null: Imm,
    pair: Ptr,
    vector: Ptr,
    string: Ptr,
    symbol: Ptr,
    closure: Ptr,
}

#[derive(Clone, Copy)]
struct Imm {
    tag_bits: u32,
    tag: i64,
    shift: u32,
}

#[derive(Clone, Copy)]
struct Ptr {
    id: RepId,
    tag: i64,
}

impl Ctx {
    fn new(reg: &RepRegistry) -> Result<Ctx, IntrinsicError> {
        let imm = |role: &str| -> Result<Imm, IntrinsicError> {
            let id = reg
                .role(role)
                .ok_or_else(|| IntrinsicError(format!("missing role `{role}`")))?;
            match reg.info(id).kind {
                RepKind::Immediate {
                    tag_bits,
                    tag,
                    shift,
                } => Ok(Imm {
                    tag_bits,
                    tag: tag as i64,
                    shift,
                }),
                _ => Err(IntrinsicError(format!("role `{role}` must be immediate"))),
            }
        };
        let ptr = |role: &str| -> Result<Ptr, IntrinsicError> {
            let id = reg
                .role(role)
                .ok_or_else(|| IntrinsicError(format!("missing role `{role}`")))?;
            match reg.info(id).kind {
                RepKind::Pointer { tag, .. } => Ok(Ptr {
                    id,
                    tag: tag as i64,
                }),
                _ => Err(IntrinsicError(format!("role `{role}` must be a pointer"))),
            }
        };
        Ok(Ctx {
            fx: imm(roles::FIXNUM)?,
            bool_: imm(roles::BOOLEAN)?,
            char_: imm(roles::CHAR)?,
            null: imm(roles::NULL)?,
            pair: ptr(roles::PAIR)?,
            vector: ptr(roles::VECTOR)?,
            string: ptr(roles::STRING)?,
            symbol: ptr(roles::SYMBOL)?,
            closure: ptr(roles::CLOSURE)?,
        })
    }
}

/// A little builder for expansion sequences.
struct Seq<'a> {
    steps: Vec<(VarId, Bound)>,
    supply: &'a mut NameSupply,
}

impl<'a> Seq<'a> {
    fn new(supply: &'a mut NameSupply) -> Seq<'a> {
        Seq {
            steps: Vec::new(),
            supply,
        }
    }

    fn prim(&mut self, op: PrimOp, args: Vec<Atom>) -> Atom {
        let v = self.supply.fresh("intr");
        self.steps.push((v, Bound::Prim(op, args)));
        Atom::Var(v)
    }

    /// Finishes the expansion: binds `result` to `v` and prepends the steps
    /// to `body`. When the result is one of the expansion's own temporaries,
    /// that temporary is renamed to `v` instead of emitting a copy.
    fn finish(mut self, v: VarId, result: Atom, body: Expr) -> Expr {
        let result = match result {
            Atom::Var(x) if self.steps.iter().any(|(sv, _)| *sv == x) => {
                for (sv, sb) in self.steps.iter_mut() {
                    if *sv == x {
                        *sv = v;
                    }
                    sb.for_each_atom_shallow_mut(&mut |a| {
                        if *a == Atom::Var(x) {
                            *a = Atom::Var(v);
                        }
                    });
                }
                let mut e = body;
                for (sv, sb) in self.steps.into_iter().rev() {
                    e = Expr::Let(sv, sb, Box::new(e));
                }
                return e;
            }
            other => other,
        };
        let mut e = Expr::Let(v, Bound::Atom(result), Box::new(body));
        for (sv, sb) in self.steps.into_iter().rev() {
            e = Expr::Let(sv, sb, Box::new(e));
        }
        e
    }
}

fn raw(w: i64) -> Atom {
    Atom::Lit(Literal::Raw(w))
}

/// Injects a raw 0/1 into a boolean.
fn inject_bool(s: &mut Seq<'_>, b: Imm, raw01: Atom) -> Atom {
    let shifted = s.prim(PrimOp::WordShl, vec![raw01, raw(b.shift as i64)]);
    if b.tag == 0 {
        shifted
    } else {
        s.prim(PrimOp::WordOr, vec![shifted, raw(b.tag)])
    }
}

/// Immediate type test: `(v & mask) == tag`, injected as a boolean.
fn imm_test(s: &mut Seq<'_>, ctx: &Ctx, t: Imm, v: Atom) -> Atom {
    let mask = (1i64 << t.tag_bits) - 1;
    let low = s.prim(PrimOp::WordAnd, vec![v, raw(mask)]);
    let cmp = s.prim(PrimOp::WordEq, vec![low, raw(t.tag)]);
    inject_bool(s, ctx.bool_, cmp)
}

/// Pointer type test on the low 3 bits.
fn ptr_test(s: &mut Seq<'_>, ctx: &Ctx, p: Ptr, v: Atom) -> Atom {
    let low = s.prim(PrimOp::WordAnd, vec![v, raw(0b111)]);
    let cmp = s.prim(PrimOp::WordEq, vec![low, raw(p.tag)]);
    inject_bool(s, ctx.bool_, cmp)
}

/// Converts a tagged fixnum into a raw byte offset (`index * 8`).
fn fixnum_to_byteoff(s: &mut Seq<'_>, fx: Imm, i: Atom) -> Atom {
    if fx.tag == 0 && fx.shift == 3 {
        // The classic trick: a shift-3, tag-0 fixnum *is* its byte offset.
        return i;
    }
    let detag = if fx.tag == 0 {
        i
    } else {
        s.prim(PrimOp::WordSub, vec![i, raw(fx.tag)])
    };
    let idx = s.prim(PrimOp::WordShr, vec![detag, raw(fx.shift as i64)]);
    s.prim(PrimOp::WordShl, vec![idx, raw(3)])
}

fn project_fixnum(s: &mut Seq<'_>, fx: Imm, a: Atom) -> Atom {
    s.prim(PrimOp::WordShr, vec![a, raw(fx.shift as i64)])
}

fn inject_fixnum(s: &mut Seq<'_>, fx: Imm, a: Atom) -> Atom {
    let shifted = s.prim(PrimOp::WordShl, vec![a, raw(fx.shift as i64)]);
    if fx.tag == 0 {
        shifted
    } else {
        s.prim(PrimOp::WordOr, vec![shifted, raw(fx.tag)])
    }
}

fn expand(i: Intrinsic, args: &[Atom], ctx: &Ctx, s: &mut Seq<'_>) -> Atom {
    use Intrinsic::*;
    let fx = ctx.fx;
    match i {
        Car => s.prim(PrimOp::SpecRef(ctx.pair.id), vec![args[0].clone(), raw(0)]),
        Cdr => s.prim(PrimOp::SpecRef(ctx.pair.id), vec![args[0].clone(), raw(8)]),
        Cons => {
            let p = s.prim(
                PrimOp::SpecAlloc(ctx.pair.id),
                vec![raw(2), args[0].clone()],
            );
            let _ = s.prim(
                PrimOp::SpecSet(ctx.pair.id),
                vec![p.clone(), raw(8), args[1].clone()],
            );
            p
        }
        SetCar => s.prim(
            PrimOp::SpecSet(ctx.pair.id),
            vec![args[0].clone(), raw(0), args[1].clone()],
        ),
        SetCdr => s.prim(
            PrimOp::SpecSet(ctx.pair.id),
            vec![args[0].clone(), raw(8), args[1].clone()],
        ),
        IsPair => ptr_test(s, ctx, ctx.pair, args[0].clone()),
        IsNull => imm_test(s, ctx, ctx.null, args[0].clone()),
        IsFixnum => imm_test(s, ctx, fx, args[0].clone()),
        IsBoolean => imm_test(s, ctx, ctx.bool_, args[0].clone()),
        IsChar => imm_test(s, ctx, ctx.char_, args[0].clone()),
        IsVector => ptr_test(s, ctx, ctx.vector, args[0].clone()),
        IsString => ptr_test(s, ctx, ctx.string, args[0].clone()),
        IsSymbol => ptr_test(s, ctx, ctx.symbol, args[0].clone()),
        IsProcedure => ptr_test(s, ctx, ctx.closure, args[0].clone()),
        FxAdd => {
            let sum = s.prim(PrimOp::WordAdd, vec![args[0].clone(), args[1].clone()]);
            if fx.tag == 0 {
                sum
            } else {
                s.prim(PrimOp::WordSub, vec![sum, raw(fx.tag)])
            }
        }
        FxSub => {
            let diff = s.prim(PrimOp::WordSub, vec![args[0].clone(), args[1].clone()]);
            if fx.tag == 0 {
                diff
            } else {
                s.prim(PrimOp::WordAdd, vec![diff, raw(fx.tag)])
            }
        }
        FxMul => {
            if fx.tag == 0 {
                let a = project_fixnum(s, fx, args[0].clone());
                s.prim(PrimOp::WordMul, vec![a, args[1].clone()])
            } else {
                let a = project_fixnum(s, fx, args[0].clone());
                let b = project_fixnum(s, fx, args[1].clone());
                let m = s.prim(PrimOp::WordMul, vec![a, b]);
                inject_fixnum(s, fx, m)
            }
        }
        FxQuotient => {
            let a = project_fixnum(s, fx, args[0].clone());
            let b = project_fixnum(s, fx, args[1].clone());
            let q = s.prim(PrimOp::WordQuot, vec![a, b]);
            inject_fixnum(s, fx, q)
        }
        FxRemainder => {
            let a = project_fixnum(s, fx, args[0].clone());
            let b = project_fixnum(s, fx, args[1].clone());
            let r = s.prim(PrimOp::WordRem, vec![a, b]);
            inject_fixnum(s, fx, r)
        }
        FxLt => {
            // Same-tag fixnums compare correctly while tagged.
            let c = s.prim(PrimOp::WordLt, vec![args[0].clone(), args[1].clone()]);
            inject_bool(s, ctx.bool_, c)
        }
        FxEq | IsEq => {
            let c = s.prim(PrimOp::WordEq, vec![args[0].clone(), args[1].clone()]);
            inject_bool(s, ctx.bool_, c)
        }
        VectorRef => {
            let off = fixnum_to_byteoff(s, fx, args[1].clone());
            s.prim(PrimOp::SpecRef(ctx.vector.id), vec![args[0].clone(), off])
        }
        VectorSet => {
            let off = fixnum_to_byteoff(s, fx, args[1].clone());
            s.prim(
                PrimOp::SpecSet(ctx.vector.id),
                vec![args[0].clone(), off, args[2].clone()],
            )
        }
        VectorLength => {
            let h = s.prim(PrimOp::SpecHeader(ctx.vector.id), vec![args[0].clone()]);
            let len = s.prim(PrimOp::WordShr, vec![h, raw(16)]);
            inject_fixnum(s, fx, len)
        }
        MakeVector => {
            let n = project_fixnum(s, fx, args[0].clone());
            s.prim(PrimOp::SpecAlloc(ctx.vector.id), vec![n, args[1].clone()])
        }
        StringRef => {
            let off = fixnum_to_byteoff(s, fx, args[1].clone());
            s.prim(PrimOp::SpecRef(ctx.string.id), vec![args[0].clone(), off])
        }
        StringSet => {
            let off = fixnum_to_byteoff(s, fx, args[1].clone());
            s.prim(
                PrimOp::SpecSet(ctx.string.id),
                vec![args[0].clone(), off, args[2].clone()],
            )
        }
        StringLength => {
            let h = s.prim(PrimOp::SpecHeader(ctx.string.id), vec![args[0].clone()]);
            let len = s.prim(PrimOp::WordShr, vec![h, raw(16)]);
            inject_fixnum(s, fx, len)
        }
        MakeString => {
            let n = project_fixnum(s, fx, args[0].clone());
            s.prim(PrimOp::SpecAlloc(ctx.string.id), vec![n, args[1].clone()])
        }
        CharToInt => {
            let ch = ctx.char_;
            // `(c >> (cs - fs))` yields the fixnum directly when the fixnum
            // tag is 0 and the char tag's surviving bits are all zero.
            if fx.tag == 0 && ch.shift > fx.shift && (ch.tag >> (ch.shift - fx.shift)) == 0 {
                return s.prim(
                    PrimOp::WordShr,
                    vec![args[0].clone(), raw((ch.shift - fx.shift) as i64)],
                );
            }
            let p = s.prim(PrimOp::WordShr, vec![args[0].clone(), raw(ch.shift as i64)]);
            inject_fixnum(s, fx, p)
        }
        IntToChar => {
            let ch = ctx.char_;
            if fx.tag == 0 && ch.shift > fx.shift {
                let t = s.prim(
                    PrimOp::WordShl,
                    vec![args[0].clone(), raw((ch.shift - fx.shift) as i64)],
                );
                return if ch.tag == 0 {
                    t
                } else {
                    s.prim(PrimOp::WordOr, vec![t, raw(ch.tag)])
                };
            }
            let p = project_fixnum(s, fx, args[0].clone());
            let t = s.prim(PrimOp::WordShl, vec![p, raw(ch.shift as i64)]);
            if ch.tag == 0 {
                t
            } else {
                s.prim(PrimOp::WordOr, vec![t, raw(ch.tag)])
            }
        }
        SymbolToString => s.prim(
            PrimOp::SpecRef(ctx.symbol.id),
            vec![args[0].clone(), raw(0)],
        ),
    }
}

fn rewrite(e: Expr, ctx: &Ctx, supply: &mut NameSupply) -> Expr {
    match e {
        Expr::Let(v, Bound::Prim(PrimOp::Intrinsic(i), args), body) => {
            let body = rewrite(*body, ctx, supply);
            let mut s = Seq::new(supply);
            let result = expand(i, &args, ctx, &mut s);
            s.finish(v, result, body)
        }
        Expr::Let(v, b, body) => {
            let b = match b {
                Bound::If(t, then, els) => Bound::If(
                    t,
                    Box::new(rewrite(*then, ctx, supply)),
                    Box::new(rewrite(*els, ctx, supply)),
                ),
                Bound::Lambda(mut l) => {
                    l.body = Box::new(rewrite(*l.body, ctx, supply));
                    Bound::Lambda(l)
                }
                other => other,
            };
            Expr::Let(v, b, Box::new(rewrite(*body, ctx, supply)))
        }
        Expr::If(t, then, els) => Expr::If(
            t,
            Box::new(rewrite(*then, ctx, supply)),
            Box::new(rewrite(*els, ctx, supply)),
        ),
        Expr::LetRec(binds, body) => Expr::LetRec(
            binds
                .into_iter()
                .map(|(v, mut l)| {
                    l.body = Box::new(rewrite(*l.body, ctx, supply));
                    (v, l)
                })
                .collect(),
            Box::new(rewrite(*body, ctx, supply)),
        ),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classic() -> RepRegistry {
        let mut reg = RepRegistry::new();
        let fx = reg.intern_immediate("fixnum", 3, 0, 3).unwrap();
        let bo = reg.intern_immediate("boolean", 8, 0b0000_0010, 8).unwrap();
        let ch = reg.intern_immediate("char", 8, 0b0001_0010, 8).unwrap();
        let nil = reg.intern_immediate("null", 8, 0b0010_0010, 8).unwrap();
        let un = reg
            .intern_immediate("unspecified", 8, 0b0011_0010, 8)
            .unwrap();
        let pair = reg.intern_pointer("pair", 1, false).unwrap();
        let vecr = reg.intern_pointer("vector", 3, false).unwrap();
        let st = reg.intern_pointer("string", 5, false).unwrap();
        let sy = reg.intern_pointer("symbol", 6, false).unwrap();
        let cl = reg.intern_pointer("closure", 7, false).unwrap();
        for (r, id) in [
            ("fixnum", fx),
            ("boolean", bo),
            ("char", ch),
            ("null", nil),
            ("unspecified", un),
            ("pair", pair),
            ("vector", vecr),
            ("string", st),
            ("symbol", sy),
            ("closure", cl),
        ] {
            reg.provide_role(r, id).unwrap();
        }
        reg
    }

    fn lower_one(i: Intrinsic, nargs: usize) -> Expr {
        let reg = classic();
        let args: Vec<Atom> = (0..nargs as u32).map(|k| Atom::Var(100 + k)).collect();
        let body = Expr::Let(
            1,
            Bound::Prim(PrimOp::Intrinsic(i), args),
            Box::new(Expr::Ret(Atom::Var(1))),
        );
        let mut m = Module {
            funs: vec![sxr_ir::anf::Fun {
                name: None,
                self_var: 0,
                params: (100..100 + nargs as u32).collect(),
                rest: None,
                free_count: 0,
                body,
            }],
            main: 0,
            global_names: vec![],
            var_names: vec!["v".into(); 200],
        };
        lower_intrinsics(&mut m, &reg).unwrap();
        m.funs.remove(0).body
    }

    fn count_lets(e: &Expr) -> usize {
        match e {
            Expr::Let(_, _, b) => 1 + count_lets(b),
            _ => 0,
        }
    }

    #[test]
    fn car_is_one_op() {
        let e = lower_one(Intrinsic::Car, 1);
        assert_eq!(count_lets(&e), 1);
        assert!(matches!(
            e,
            Expr::Let(1, Bound::Prim(PrimOp::SpecRef(_), _), _)
        ));
    }

    #[test]
    fn fxadd_is_one_op_with_zero_tag() {
        let e = lower_one(Intrinsic::FxAdd, 2);
        assert_eq!(count_lets(&e), 1);
        assert!(matches!(
            e,
            Expr::Let(1, Bound::Prim(PrimOp::WordAdd, _), _)
        ));
    }

    #[test]
    fn cons_is_two_ops() {
        let e = lower_one(Intrinsic::Cons, 2);
        assert_eq!(count_lets(&e), 2);
    }

    #[test]
    fn vector_ref_uses_fixnum_as_byte_offset() {
        // With shift-3 tag-0 fixnums the index needs no adjustment at all.
        let e = lower_one(Intrinsic::VectorRef, 2);
        assert_eq!(count_lets(&e), 1);
        let Expr::Let(_, Bound::Prim(PrimOp::SpecRef(_), args), _) = &e else {
            panic!()
        };
        assert_eq!(args[1], Atom::Var(101), "index used directly");
    }

    #[test]
    fn predicates_are_test_plus_inject() {
        // and + cmp + shl + or = 4 ops unfused.
        let e = lower_one(Intrinsic::IsPair, 1);
        assert_eq!(count_lets(&e), 4);
    }

    #[test]
    fn char_to_int_single_shift() {
        let e = lower_one(Intrinsic::CharToInt, 1);
        assert_eq!(count_lets(&e), 1, "classic scheme collapses to one shift");
    }

    #[test]
    fn missing_role_reported() {
        let mut reg = RepRegistry::new();
        let fx = reg.intern_immediate("fixnum", 3, 0, 3).unwrap();
        reg.provide_role("fixnum", fx).unwrap();
        let mut m = Module::default();
        m.funs.push(sxr_ir::anf::Fun {
            name: None,
            self_var: 0,
            params: vec![],
            rest: None,
            free_count: 0,
            body: Expr::Ret(Atom::Lit(Literal::Unspecified)),
        });
        let err = lower_intrinsics(&mut m, &reg).unwrap_err();
        assert!(err.0.contains("missing role"));
    }
}
