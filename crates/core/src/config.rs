//! Pipeline configurations — the experimental conditions of the paper's
//! evaluation.

use sxr_opt::OptOptions;
use sxr_vm::FaultPlan;

/// How the primitive layer is provided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimitiveMode {
    /// Primitives are ordinary library code over first-class representation
    /// types (the paper's system).
    Abstract,
    /// Primitives are compiler intrinsics with hand-written expansions (the
    /// conventional baseline).
    Traditional,
}

/// A full pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Primitive layer flavour.
    pub mode: PrimitiveMode,
    /// Optimizer settings ([`OptOptions::none`] disables everything).
    pub opt: OptOptions,
    /// Initial VM heap, in words.
    pub heap_words: usize,
    /// Optional instruction budget for runs.
    pub instruction_limit: Option<u64>,
    /// Run the inter-pass semantic verifier after every optimizer pass and
    /// on the closure-converted module (attributing any broken invariant to
    /// the pass that introduced it).  Defaults on in debug builds and tests,
    /// off in release builds.
    pub verify_passes: bool,
    /// Deterministic fault-injection schedule for machine runs (defaults to
    /// none).  See [`FaultPlan`]; the chaos battery runs the whole corpus
    /// under adversarial schedules and requires results identical to a
    /// fault-free run or a structured out-of-memory error.
    pub fault: FaultPlan,
}

impl PipelineConfig {
    /// The paper's system: abstract primitives + the general optimizer.
    pub fn abstract_optimized() -> PipelineConfig {
        PipelineConfig {
            mode: PrimitiveMode::Abstract,
            opt: OptOptions::default(),
            heap_words: 1 << 21,
            instruction_limit: None,
            verify_passes: cfg!(debug_assertions),
            fault: FaultPlan::default(),
        }
    }

    /// Abstract primitives with the optimizer off — what the abstraction
    /// costs if you *don't* have the transformations.
    pub fn abstract_unoptimized() -> PipelineConfig {
        PipelineConfig {
            mode: PrimitiveMode::Abstract,
            opt: OptOptions::none(),
            heap_words: 1 << 21,
            instruction_limit: None,
            verify_passes: cfg!(debug_assertions),
            fault: FaultPlan::default(),
        }
    }

    /// The conventional baseline: intrinsics + the same general optimizer.
    pub fn traditional() -> PipelineConfig {
        PipelineConfig {
            mode: PrimitiveMode::Traditional,
            opt: OptOptions::default(),
            heap_words: 1 << 21,
            instruction_limit: None,
            verify_passes: cfg!(debug_assertions),
            fault: FaultPlan::default(),
        }
    }

    /// The paper's system with one named optimizer pass disabled (ablation).
    ///
    /// # Panics
    ///
    /// Panics on an unknown pass name (see [`OptOptions::without`]).
    pub fn ablated(pass: &str) -> PipelineConfig {
        let mut cfg = PipelineConfig::abstract_optimized();
        cfg.opt = cfg.opt.without(pass);
        cfg
    }

    /// Sets the instruction budget.
    pub fn with_instruction_limit(mut self, limit: u64) -> PipelineConfig {
        self.instruction_limit = Some(limit);
        self
    }

    /// Sets the initial heap size in words.
    pub fn with_heap_words(mut self, words: usize) -> PipelineConfig {
        self.heap_words = words;
        self
    }

    /// Turns the inter-pass verifier on or off (see
    /// [`PipelineConfig::verify_passes`]).
    pub fn with_verify_passes(mut self, on: bool) -> PipelineConfig {
        self.verify_passes = on;
        self
    }

    /// Installs a fault-injection schedule for machine runs (see
    /// [`FaultPlan`]).
    pub fn with_fault(mut self, fault: FaultPlan) -> PipelineConfig {
        self.fault = fault;
        self
    }

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match (self.mode, self.opt.rounds) {
            (PrimitiveMode::Traditional, _) => "Traditional",
            (PrimitiveMode::Abstract, 0) => "AbstractNoOpt",
            (PrimitiveMode::Abstract, _) => "AbstractOpt",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(PipelineConfig::abstract_optimized().label(), "AbstractOpt");
        assert_eq!(
            PipelineConfig::abstract_unoptimized().label(),
            "AbstractNoOpt"
        );
        assert_eq!(PipelineConfig::traditional().label(), "Traditional");
    }

    #[test]
    fn ablation_disables_pass() {
        let cfg = PipelineConfig::ablated("repspec");
        assert!(!cfg.opt.repspec);
        assert!(cfg.opt.inline);
    }

    #[test]
    fn fault_builder() {
        let cfg = PipelineConfig::abstract_optimized();
        assert!(cfg.fault.is_none(), "default config injects nothing");
        let chaotic = cfg.with_fault(FaultPlan::none().with_gc_every_alloc());
        assert!(chaotic.fault.gc_every_alloc);
    }

    #[test]
    fn verify_passes_builder() {
        assert!(
            PipelineConfig::abstract_optimized()
                .with_verify_passes(true)
                .verify_passes
        );
        assert!(
            !PipelineConfig::abstract_optimized()
                .with_verify_passes(false)
                .verify_passes
        );
    }
}
