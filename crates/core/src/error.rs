//! Unified compile-time error type.

use std::fmt;

/// Any failure between source text and loadable code, tagged by stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Reader failure.
    Parse(sxr_sexp::ParseError),
    /// Macro-expansion failure.
    Expand(sxr_ast::ExpandError),
    /// Assignment-conversion failure.
    Assign(String),
    /// ANF lowering failure.
    Lower(sxr_ir::LowerError),
    /// Representation-declaration scanning failure.
    Scan(sxr_opt::ScanError),
    /// Optimizer failure.
    Opt(sxr_opt::OptError),
    /// Intrinsic lowering failure (Traditional mode).
    Intrinsic(sxr_codegen::IntrinsicError),
    /// IR invariant violation.
    Validate(sxr_ir::ValidateError),
    /// Inter-pass semantic verification failure (only with
    /// `PipelineConfig::verify_passes`).
    Verify(sxr_analysis::VerifyError),
    /// Code-generation failure.
    Codegen(sxr_codegen::CodegenError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => e.fmt(f),
            CompileError::Expand(e) => e.fmt(f),
            CompileError::Assign(e) => write!(f, "assignment conversion: {e}"),
            CompileError::Lower(e) => e.fmt(f),
            CompileError::Scan(e) => e.fmt(f),
            CompileError::Opt(e) => e.fmt(f),
            CompileError::Intrinsic(e) => e.fmt(f),
            CompileError::Validate(e) => e.fmt(f),
            CompileError::Verify(e) => write!(f, "inter-pass verification: {e}"),
            CompileError::Codegen(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<sxr_sexp::ParseError> for CompileError {
    fn from(e: sxr_sexp::ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<sxr_ast::ExpandError> for CompileError {
    fn from(e: sxr_ast::ExpandError) -> Self {
        CompileError::Expand(e)
    }
}

impl From<sxr_ir::LowerError> for CompileError {
    fn from(e: sxr_ir::LowerError) -> Self {
        CompileError::Lower(e)
    }
}

impl From<sxr_opt::ScanError> for CompileError {
    fn from(e: sxr_opt::ScanError) -> Self {
        CompileError::Scan(e)
    }
}

impl From<sxr_opt::OptError> for CompileError {
    fn from(e: sxr_opt::OptError) -> Self {
        CompileError::Opt(e)
    }
}

impl From<sxr_codegen::IntrinsicError> for CompileError {
    fn from(e: sxr_codegen::IntrinsicError) -> Self {
        CompileError::Intrinsic(e)
    }
}

impl From<sxr_ir::ValidateError> for CompileError {
    fn from(e: sxr_ir::ValidateError) -> Self {
        CompileError::Validate(e)
    }
}

impl From<sxr_analysis::VerifyError> for CompileError {
    fn from(e: sxr_analysis::VerifyError) -> Self {
        CompileError::Verify(e)
    }
}

impl From<sxr_codegen::CodegenError> for CompileError {
    fn from(e: sxr_codegen::CodegenError) -> Self {
        CompileError::Codegen(e)
    }
}
