//! `sxr` — command-line front end for the SchemeXerox reproduction.
//!
//! ```text
//! sxr [OPTIONS] <file.scm>       run a program
//! sxr [OPTIONS] -e '<expr>'      run an expression
//! sxr lint <file.scm>            rep-safety static analysis (no execution)
//! sxr lint --bytecode <file.scm> load-time bytecode verification of the
//!                                generated code (no execution)
//!
//! OPTIONS:
//!   --mode <abstract|traditional|noopt>   pipeline (default: abstract)
//!   --ablate <pass>                       disable one optimizer pass
//!   --counters                            print dynamic instruction counters
//!   --dis <name>                          disassemble a procedure and exit
//!   --heap <words>                        initial heap size in words
//!   --verify-passes                       verify IR after every optimizer pass
//! ```

use sxr::{lint_source, Compiler, PipelineConfig};

fn usage() -> ! {
    eprintln!(
        "usage: sxr [--mode abstract|traditional|noopt] [--ablate PASS] \
         [--counters] [--dis NAME] [--heap WORDS] [--verify-passes] \
         (FILE.scm | -e EXPR)\n       sxr lint [--bytecode] FILE.scm"
    );
    std::process::exit(2)
}

/// `sxr lint FILE.scm`: compile under the lint configuration, run the
/// rep-safety analyzer, print `file:line:col:`-prefixed findings.  Exit
/// status 0 = clean, 1 = error-severity findings (or a compile failure).
fn run_lint(mut args: impl Iterator<Item = String>) -> ! {
    let Some(mut path) = args.next() else { usage() };
    let mut bytecode = false;
    if path == "--bytecode" {
        bytecode = true;
        match args.next() {
            Some(p) => path = p,
            None => usage(),
        }
    }
    if args.next().is_some() {
        usage();
    }
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sxr: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    if bytecode {
        match sxr::lint::lint_bytecode(&source) {
            Ok(report) => {
                println!("{report}");
                std::process::exit(if report.is_clean() { 0 } else { 1 });
            }
            Err(e) => {
                eprintln!("sxr: {e}");
                std::process::exit(1);
            }
        }
    }
    match lint_source(&source) {
        Ok(report) => {
            print!("{}", report.render(&path));
            let errors = report.diagnostics.iter().filter(|d| d.is_error()).count();
            let warnings = report.diagnostics.len() - errors;
            eprintln!("sxr lint: {errors} error(s), {warnings} warning(s)");
            std::process::exit(if report.has_errors() { 1 } else { 0 });
        }
        Err(e) => {
            eprintln!("sxr: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("lint") {
        args.next();
        run_lint(args);
    }
    let mut mode = "abstract".to_string();
    let mut ablate: Option<String> = None;
    let mut counters = false;
    let mut dis: Option<String> = None;
    let mut heap: Option<usize> = None;
    let mut source: Option<String> = None;
    let mut verify_passes = false;

    while let Some(a) = args.next() {
        match a.as_str() {
            "--mode" => mode = args.next().unwrap_or_else(|| usage()),
            "--ablate" => ablate = Some(args.next().unwrap_or_else(|| usage())),
            "--counters" => counters = true,
            "--verify-passes" => verify_passes = true,
            "--dis" => dis = Some(args.next().unwrap_or_else(|| usage())),
            "--heap" => {
                heap = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "-e" => source = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            path if !path.starts_with('-') && source.is_none() => {
                source = Some(match std::fs::read_to_string(path) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("sxr: cannot read {path}: {e}");
                        std::process::exit(1);
                    }
                })
            }
            _ => usage(),
        }
    }
    let Some(source) = source else { usage() };

    let mut cfg = match mode.as_str() {
        "abstract" | "opt" => PipelineConfig::abstract_optimized(),
        "traditional" | "trad" => PipelineConfig::traditional(),
        "noopt" => PipelineConfig::abstract_unoptimized(),
        other => {
            eprintln!("sxr: unknown mode `{other}`");
            std::process::exit(2);
        }
    };
    if let Some(pass) = ablate {
        cfg.opt = cfg.opt.without(&pass);
    }
    if let Some(words) = heap {
        cfg = cfg.with_heap_words(words);
    }
    if verify_passes {
        cfg = cfg.with_verify_passes(true);
    }

    let compiled = match Compiler::new(cfg).compile(&source) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("sxr: {e}");
            std::process::exit(1);
        }
    };

    if let Some(name) = dis {
        match compiled.disassemble(&name) {
            Some(text) => print!("{text}"),
            None => {
                eprintln!("sxr: no procedure named `{name}`");
                std::process::exit(1);
            }
        }
        return;
    }

    match compiled.run() {
        Ok(outcome) => {
            print!("{}", outcome.output);
            if outcome.value != "#<unspecified>" {
                println!("{}", outcome.value);
            }
            if counters {
                eprintln!("; {}", outcome.counters.summary());
            }
        }
        Err(e) => {
            eprintln!("sxr: {e}");
            std::process::exit(1);
        }
    }
}
