//! `sxr` — command-line front end for the SchemeXerox reproduction.
//!
//! ```text
//! sxr [OPTIONS] <file.scm>       run a program
//! sxr [OPTIONS] -e '<expr>'      run an expression
//!
//! OPTIONS:
//!   --mode <abstract|traditional|noopt>   pipeline (default: abstract)
//!   --ablate <pass>                       disable one optimizer pass
//!   --counters                            print dynamic instruction counters
//!   --dis <name>                          disassemble a procedure and exit
//!   --heap <words>                        initial heap size in words
//! ```

use sxr::{Compiler, PipelineConfig};

fn usage() -> ! {
    eprintln!(
        "usage: sxr [--mode abstract|traditional|noopt] [--ablate PASS] \
         [--counters] [--dis NAME] [--heap WORDS] (FILE.scm | -e EXPR)"
    );
    std::process::exit(2)
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut mode = "abstract".to_string();
    let mut ablate: Option<String> = None;
    let mut counters = false;
    let mut dis: Option<String> = None;
    let mut heap: Option<usize> = None;
    let mut source: Option<String> = None;

    while let Some(a) = args.next() {
        match a.as_str() {
            "--mode" => mode = args.next().unwrap_or_else(|| usage()),
            "--ablate" => ablate = Some(args.next().unwrap_or_else(|| usage())),
            "--counters" => counters = true,
            "--dis" => dis = Some(args.next().unwrap_or_else(|| usage())),
            "--heap" => {
                heap = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "-e" => source = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            path if !path.starts_with('-') && source.is_none() => {
                source = Some(match std::fs::read_to_string(path) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("sxr: cannot read {path}: {e}");
                        std::process::exit(1);
                    }
                })
            }
            _ => usage(),
        }
    }
    let Some(source) = source else { usage() };

    let mut cfg = match mode.as_str() {
        "abstract" | "opt" => PipelineConfig::abstract_optimized(),
        "traditional" | "trad" => PipelineConfig::traditional(),
        "noopt" => PipelineConfig::abstract_unoptimized(),
        other => {
            eprintln!("sxr: unknown mode `{other}`");
            std::process::exit(2);
        }
    };
    if let Some(pass) = ablate {
        cfg.opt = cfg.opt.without(&pass);
    }
    if let Some(words) = heap {
        cfg = cfg.with_heap_words(words);
    }

    let compiled = match Compiler::new(cfg).compile(&source) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("sxr: {e}");
            std::process::exit(1);
        }
    };

    if let Some(name) = dis {
        match compiled.disassemble(&name) {
            Some(text) => print!("{text}"),
            None => {
                eprintln!("sxr: no procedure named `{name}`");
                std::process::exit(1);
            }
        }
        return;
    }

    match compiled.run() {
        Ok(outcome) => {
            print!("{}", outcome.output);
            if outcome.value != "#<unspecified>" {
                println!("{}", outcome.value);
            }
            if counters {
                eprintln!("; {}", outcome.counters.summary());
            }
        }
        Err(e) => {
            eprintln!("sxr: {e}");
            std::process::exit(1);
        }
    }
}
