//! `sxr` — a reproduction of *First-Class Data-Type Representations in
//! SchemeXerox* (Adams, Curtis & Spreitzer, PLDI 1993).
//!
//! In this system the compiler has almost no knowledge of primitive data
//! types.  The tagging scheme, the layouts of pairs / vectors / strings /
//! symbols, and every primitive operation (`car`, `fx+`, `vector-ref`, …)
//! are defined by *ordinary library code* over first-class **representation
//! types** ([`sxr_ir::rep`]).  A handful of generally-useful optimizations
//! (inlining, constant propagation, representation specialization,
//! known-bits algebraic simplification, CSE, DCE — see [`sxr_opt`]) make
//! that abstract code compile to the same instructions a conventional
//! compiler's hand-written primitive templates produce.
//!
//! Three pipeline configurations make the claim measurable:
//!
//! * [`PipelineConfig::abstract_optimized`] — the paper's system,
//! * [`PipelineConfig::traditional`] — hand-written intrinsic expansions,
//! * [`PipelineConfig::abstract_unoptimized`] — the abstraction without the
//!   optimizer.
//!
//! # Quick start
//!
//! ```
//! use sxr::{Compiler, PipelineConfig};
//!
//! let compiler = Compiler::new(PipelineConfig::abstract_optimized());
//! let compiled = compiler
//!     .compile("(define (square x) (fx* x x)) (display (square 7))")
//!     .unwrap();
//! let outcome = compiled.run().unwrap();
//! assert_eq!(outcome.output, "49");
//! ```

mod config;
mod error;
pub mod lint;
mod pipeline;
pub mod report;

pub use config::{PipelineConfig, PrimitiveMode};
pub use error::CompileError;
pub use lint::{lint_bytecode, lint_source, LintDiagnostic, LintReport};
pub use pipeline::{
    Compiled, Compiler, Outcome, LIBRARY_SCM, PRIMS_ABSTRACT_CHECKED_SCM, PRIMS_ABSTRACT_SCM,
    PRIMS_TRADITIONAL_SCM, REPS_SCM,
};

// Re-exports for downstream tools (benches, examples).
pub use sxr_analysis::{DiagClass, Diagnostic, Severity, VerifyError};
pub use sxr_opt::{OptOptions, OptReport};
pub use sxr_vm::{
    ChaosRng, Counters, FaultPlan, InstClass, OomPhase, StepResult, SuspendReason, VmError,
    VmErrorKind,
};
