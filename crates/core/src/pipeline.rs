//! The compilation pipeline: source text → loadable VM program.

use crate::config::{PipelineConfig, PrimitiveMode};
use crate::error::CompileError;
use std::collections::HashMap;
use sxr_analysis::Diagnostic;
use sxr_ast::{convert_assignments, Expander};
use sxr_codegen::{generate, lower_intrinsics_expr};
use sxr_ir::anf::{GlobalId, Module};
use sxr_ir::lower::Lowered;
use sxr_ir::rep::{RepId, RepRegistry};
use sxr_ir::{closure_convert, lower_program, validate_module};
use sxr_opt::{optimize, scan_representations, OptReport};
use sxr_sexp::parse_all;
use sxr_vm::{CodeFun, CodeProgram, Counters, FaultPlan, Machine, MachineConfig, VmError};

/// The representation declarations (shared by every configuration).
pub const REPS_SCM: &str = include_str!("../scheme/reps.scm");
/// The abstract primitive layer (rep-type-based).
pub const PRIMS_ABSTRACT_SCM: &str = include_str!("../scheme/prims_abstract.scm");
/// The abstract primitive layer with library-level type and bounds checks
/// ("safety is library policy"; see `tests/integration_checked.rs`).
pub const PRIMS_ABSTRACT_CHECKED_SCM: &str = include_str!("../scheme/prims_abstract_checked.scm");
/// The traditional primitive layer (intrinsic-based baseline).
pub const PRIMS_TRADITIONAL_SCM: &str = include_str!("../scheme/prims_traditional.scm");
/// The shared portable library.
pub const LIBRARY_SCM: &str = include_str!("../scheme/library.scm");

/// A compiler for one pipeline configuration.
///
/// # Example
///
/// ```
/// use sxr::{Compiler, PipelineConfig};
///
/// let compiler = Compiler::new(PipelineConfig::abstract_optimized());
/// let compiled = compiler.compile("(display (fx+ 20 22))").unwrap();
/// let outcome = compiled.run().unwrap();
/// assert_eq!(outcome.output, "42");
/// ```
#[derive(Debug, Clone)]
pub struct Compiler {
    config: PipelineConfig,
}

impl Compiler {
    /// Creates a compiler with the given configuration.
    pub fn new(config: PipelineConfig) -> Compiler {
        Compiler { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Compiles `source` against the configured prelude.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] describing the first failing stage.
    pub fn compile(&self, source: &str) -> Result<Compiled, CompileError> {
        let prims = match self.config.mode {
            PrimitiveMode::Abstract => PRIMS_ABSTRACT_SCM,
            PrimitiveMode::Traditional => PRIMS_TRADITIONAL_SCM,
        };
        self.compile_with_prelude(&[REPS_SCM, prims, LIBRARY_SCM], source)
    }

    /// Compiles with explicit prelude sources (used by the re-tagging tests
    /// and examples that substitute their own representation layer).
    ///
    /// The pipeline's tree walks recurse per top-level binding, so the work
    /// runs on a dedicated thread with a generous stack (the standard
    /// arrangement for recursive compilers).
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] describing the first failing stage.
    ///
    /// # Panics
    ///
    /// Propagates panics from compiler bugs.
    pub fn compile_with_prelude(
        &self,
        prelude_sources: &[&str],
        source: &str,
    ) -> Result<Compiled, CompileError> {
        let config = self.config.clone();
        let preludes: Vec<String> = prelude_sources.iter().map(|s| s.to_string()).collect();
        let source = source.to_string();
        std::thread::Builder::new()
            .name("sxr-compile".to_string())
            .stack_size(512 << 20)
            .spawn(move || {
                let refs: Vec<&str> = preludes.iter().map(String::as_str).collect();
                Compiler { config }.compile_inner(&refs, &source)
            })
            .expect("spawn compile thread")
            .join()
            .unwrap_or_else(|p| std::panic::resume_unwind(p))
    }

    fn compile_inner(
        &self,
        prelude_sources: &[&str],
        source: &str,
    ) -> Result<Compiled, CompileError> {
        // 1. Read + expand everything through one expander so global ids
        //    are shared.
        let mut expander = Expander::new();
        let mut units = Vec::new();
        for src in prelude_sources {
            let forms = parse_all(src)?;
            units.push(expander.expand_unit(&forms)?);
        }
        let user_forms = parse_all(source)?;
        units.push(expander.expand_unit(&user_forms)?);
        let mut program = expander.into_program(units);

        // 2. Assignment conversion (set! of lexicals -> library boxes).
        convert_assignments(&mut program).map_err(CompileError::Assign)?;

        // 3. Lower to ANF.
        let Lowered {
            main_body,
            mut supply,
            global_names,
        } = lower_program(program)?;

        // 4. Stage A: interpret the library's representation declarations.
        let mut registry = RepRegistry::new();
        let rep_globals = scan_representations(&main_body, &mut registry)?;

        // 5. Traditional baseline: expand intrinsics *before* the general
        //    optimizer so inlining exposes the templates to cleanup.
        let main_body = match self.config.mode {
            PrimitiveMode::Traditional => lower_intrinsics_expr(main_body, &registry, &mut supply)?,
            PrimitiveMode::Abstract => main_body,
        };

        // 6. The generally-useful transformations.  `verify_passes` makes
        //    the optimizer re-verify the IR after every enabled pass, so a
        //    broken rewrite is attributed to the pass that made it.
        let mut opt_options = self.config.opt.clone();
        opt_options.verify = self.config.verify_passes;
        let (main_body, opt_report) = optimize(
            main_body,
            &mut registry,
            &rep_globals,
            &mut supply,
            &opt_options,
        )?;

        // 7. Closure-convert, validate, generate.  With `verify_passes` the
        //    deeper semantic verifier (structural invariants plus
        //    representation-registry consistency) replaces the plain
        //    structural validation.
        let module = closure_convert(Lowered {
            main_body,
            supply,
            global_names,
        });
        if self.config.verify_passes {
            sxr_analysis::verify_module(&module, &registry, &rep_globals)?;
        } else {
            validate_module(&module)?;
        }
        let code = generate(&module, &registry)?;
        Ok(Compiled {
            code,
            module,
            registry,
            rep_globals,
            opt_report,
            heap_words: self.config.heap_words,
            instruction_limit: self.config.instruction_limit,
            fault: self.config.fault.clone(),
        })
    }
}

/// A compiled program plus everything needed to run and inspect it.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The loadable program.
    pub code: CodeProgram,
    /// The final IR (for reports and the compiler-explorer example).
    pub module: Module,
    /// The representation registry the library built.
    pub registry: RepRegistry,
    /// What the optimizer did.
    pub opt_report: OptReport,
    /// Which globals hold representation-type values (from the
    /// representation scan) — the seed for the static analyzer.
    pub rep_globals: HashMap<GlobalId, RepId>,
    heap_words: usize,
    instruction_limit: Option<u64>,
    fault: FaultPlan,
}

/// The observable result of running a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// The program's final value, rendered via the library's
    /// representations.
    pub value: String,
    /// Everything written through `%write-char`.
    pub output: String,
    /// Dynamic execution counters.
    pub counters: Counters,
}

impl Compiled {
    /// Creates a fresh machine loaded with this program, under the fault
    /// plan the pipeline configuration installed (none by default).
    ///
    /// The load-time bytecode verifier (`sxr-analysis::bcverify`) runs
    /// before the first instruction: compiled programs it proves safe run
    /// on the VM's unchecked dispatch fast path, and a rejected program
    /// never starts ([`sxr_vm::VmErrorKind::RejectedByVerifier`]).
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] if the program's registry is incomplete, the
    /// verifier rejects the code, or a structured out-of-memory error when
    /// the plan's heap cap cannot hold the constant pool.
    pub fn machine(&self) -> Result<Machine, VmError> {
        self.machine_with_fault(self.fault.clone())
    }

    /// Creates a fresh machine under an explicit fault plan, overriding the
    /// configuration's (chaos harnesses use this to sweep many schedules
    /// over one compilation).
    ///
    /// # Errors
    ///
    /// As for [`Compiled::machine`].
    pub fn machine_with_fault(&self, fault: FaultPlan) -> Result<Machine, VmError> {
        Machine::new(
            self.code.clone(),
            MachineConfig {
                heap_words: self.heap_words,
                instruction_limit: self.instruction_limit,
                fault,
                verifier: Some(sxr_analysis::verifier_hook),
            },
        )
    }

    /// Creates a fresh machine that skips bytecode verification and runs
    /// on the fully bounds-checked dispatch loop (the benchmark harness
    /// uses this as the baseline against the verified fast path).
    ///
    /// # Errors
    ///
    /// As for [`Compiled::machine`].
    pub fn machine_unverified(&self) -> Result<Machine, VmError> {
        Machine::new(
            self.code.clone(),
            MachineConfig {
                heap_words: self.heap_words,
                instruction_limit: self.instruction_limit,
                fault: self.fault.clone(),
                verifier: None,
            },
        )
    }

    /// Runs the program to completion on a fresh machine.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] raised during loading or execution.
    pub fn run(&self) -> Result<Outcome, VmError> {
        self.run_with_fault(self.fault.clone())
    }

    /// Runs the program on a fresh machine under an explicit fault plan.
    /// The fault-injection contract: the result is either identical to a
    /// fault-free run or an `Err` with a structured kind (for memory
    /// schedules, [`sxr_vm::VmErrorKind::OutOfMemory`]) — never a panic or
    /// a silently wrong value.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] raised during loading or execution, including
    /// any the plan injects.
    pub fn run_with_fault(&self, fault: FaultPlan) -> Result<Outcome, VmError> {
        let mut m = self.machine_with_fault(fault)?;
        let w = m.run()?;
        Ok(Outcome {
            value: m.describe(w),
            output: m.output().to_string(),
            counters: m.counters.clone(),
        })
    }

    /// Runs the rep-safety static analyzer over the compiled module and
    /// returns every finding (warnings included), followed by any
    /// load-time bytecode verifier rejections of the generated code.
    ///
    /// The analyzer is conservative: it reports only *provable* misuse —
    /// a projection through a representation the value cannot have, a raw
    /// memory operation on a word that is never a tagged pointer, a
    /// constant field index outside a known allocation size, or a
    /// representation test with a statically-known outcome.  Bytecode
    /// rejections are always errors: the machine would refuse to load
    /// this program.
    pub fn analyze(&self) -> Vec<Diagnostic> {
        let mut diags =
            sxr_analysis::analyze_module(&self.module, &self.registry, &self.rep_globals);
        for r in self.verify_bytecode().rejections {
            let fun_name = self
                .code
                .funs
                .get(r.fun as usize)
                .map(|f| f.name.clone())
                .filter(|n| !n.is_empty());
            diags.push(Diagnostic {
                class: sxr_analysis::DiagClass::BytecodeReject,
                fun: r.fun,
                fun_name,
                message: r.to_string(),
            });
        }
        diags
    }

    /// Runs the load-time bytecode verifier over the generated code and
    /// returns its full report (clean for every compiler-produced
    /// program; see `sxr-analysis::bcverify`).
    pub fn verify_bytecode(&self) -> sxr_analysis::VerifyReport {
        sxr_analysis::verify_program(&self.code)
    }

    /// Error-severity analyzer findings, rendered for display.  Empty for
    /// any program free of provable representation misuse.
    pub fn analyze_errors(&self) -> Vec<String> {
        self.analyze()
            .into_iter()
            .filter(|d| d.is_error())
            .map(|d| d.to_string())
            .collect()
    }

    /// Finds the compiled code of a (top-level, named) procedure.
    pub fn fun_by_name(&self, name: &str) -> Option<&CodeFun> {
        self.code.funs.iter().find(|f| f.name == name)
    }

    /// Static instruction count of a named procedure's body.
    pub fn static_count(&self, name: &str) -> Option<usize> {
        self.fun_by_name(name).map(|f| f.insts.len())
    }

    /// A rendering of a named procedure's instructions.
    pub fn disassemble(&self, name: &str) -> Option<String> {
        let f = self.fun_by_name(name)?;
        let mut out = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(out, ";; {} (arity {}, {} regs)", f.name, f.arity, f.nregs);
        for (i, inst) in f.insts.iter().enumerate() {
            let _ = writeln!(out, "{i:4}  {inst:?}");
        }
        Some(out)
    }
}
