//! `sxr lint` — source-level representation-safety diagnostics.
//!
//! The rep-safety analyzer works on the closure-converted IR, where every
//! primitive has been inlined down to generic representation operations
//! (`%rep-project`, `%rep-ref`, …).  To *lint a source file* we compile it
//! under a dedicated pipeline configuration — inlining and constant folding
//! on (so library primitives expose their rep operations and rep-type
//! constants propagate to their use sites), but representation
//! specialization, bits, CSE and DCE off (so the generic operations the
//! analyzer understands survive, and no dead misuse is silently deleted
//! before it can be reported) — then run [`Compiled::analyze`] and map each
//! finding back to the span of the top-level `define` it lives in.

use crate::config::PipelineConfig;
use crate::error::CompileError;
use crate::pipeline::Compiler;
use std::collections::HashMap;
use sxr_analysis::{DiagClass, Diagnostic, Severity};
use sxr_opt::OptOptions;
use sxr_sexp::{parse_all_spanned, Datum, Span};

/// The pipeline configuration linting compiles under: abstract primitives,
/// inlining + constant folding only.
pub fn lint_config() -> PipelineConfig {
    let mut cfg = PipelineConfig::abstract_optimized();
    cfg.opt = OptOptions {
        repspec: false,
        bits: false,
        cse: false,
        dce: false,
        rounds: 3,
        ..OptOptions::default()
    };
    cfg
}

/// One analyzer finding located in the linted source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintDiagnostic {
    /// The underlying analyzer finding.
    pub diagnostic: Diagnostic,
    /// The span of the enclosing top-level form in the *user* source, when
    /// the finding's function corresponds to one (findings in top-level
    /// expressions or prelude code have no user span).
    pub span: Option<Span>,
}

impl LintDiagnostic {
    /// The severity (derived from the diagnostic class).
    pub fn severity(&self) -> Severity {
        self.diagnostic.severity()
    }

    /// True for error-severity findings.
    pub fn is_error(&self) -> bool {
        self.diagnostic.is_error()
    }

    /// Renders as `file:line:col: severity[code]: message`, the shape
    /// editors and CI log scrapers expect.
    pub fn render(&self, file: &str) -> String {
        let (line, col) = match &self.span {
            Some(s) => (s.line, s.col),
            None => (1, 1),
        };
        format!("{file}:{line}:{col}: {}", self.diagnostic)
    }
}

/// The result of linting one source file.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Every finding, errors first.
    pub diagnostics: Vec<LintDiagnostic>,
}

impl LintReport {
    /// True if any finding is error severity.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(LintDiagnostic::is_error)
    }

    /// Renders every finding, one per line.
    pub fn render(&self, file: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render(file));
            out.push('\n');
        }
        out
    }
}

/// The name a top-level `(define (f ...) ...)` or `(define f (lambda ...))`
/// binds, if the datum is such a form.
fn define_name(d: &Datum) -> Option<&str> {
    let items = d.as_list()?;
    if items.first()?.as_symbol()? != "define" {
        return None;
    }
    match items.get(1)? {
        Datum::Symbol(s) => Some(s),
        Datum::List(head) => head.first()?.as_symbol(),
        Datum::Improper(head, _) => head.first()?.as_symbol(),
        _ => None,
    }
}

/// Lints `source`: compiles it under [`lint_config`] against the standard
/// prelude, runs the rep-safety analyzer, and attributes each finding to
/// the span of the top-level `define` whose name matches the finding's
/// function.
///
/// # Errors
///
/// Returns a [`CompileError`] if the program does not compile at all (a
/// program that fails to parse or expand cannot be analyzed).
pub fn lint_source(source: &str) -> Result<LintReport, CompileError> {
    // Span table: top-level define name -> span in the user source.
    let mut spans: HashMap<String, Span> = HashMap::new();
    for (d, span) in parse_all_spanned(source)? {
        if let Some(name) = define_name(&d) {
            spans.entry(name.to_string()).or_insert(span);
        }
    }

    let compiled = Compiler::new(lint_config()).compile(source)?;
    let mut diagnostics: Vec<LintDiagnostic> = compiled
        .analyze()
        .into_iter()
        .map(|diagnostic| {
            let span = diagnostic
                .fun_name
                .as_ref()
                .and_then(|n| spans.get(n))
                .copied();
            LintDiagnostic { diagnostic, span }
        })
        .collect();
    // The lint pipeline keeps DCE off, so a function that was inlined at
    // its call sites still exists under its own name and reports the same
    // finding there.  Keep the located copy, drop the inlined duplicates.
    let located: std::collections::HashSet<(DiagClass, String)> = diagnostics
        .iter()
        .filter(|d| d.span.is_some())
        .map(|d| (d.diagnostic.class, d.diagnostic.message.clone()))
        .collect();
    diagnostics.retain(|d| {
        d.span.is_some() || !located.contains(&(d.diagnostic.class, d.diagnostic.message.clone()))
    });
    // A total, deterministic order: source position (line, col — findings
    // without a span sort first), then rule code, then message text.  The
    // output for a given source file is byte-identical across runs and
    // platforms, which CI log diffing and the golden test below rely on.
    diagnostics.sort_by(|a, b| {
        let key = |d: &LintDiagnostic| {
            (
                d.span.map_or((0, 0), |s| (s.line, s.col)),
                d.diagnostic.class.code(),
                d.diagnostic.message.clone(),
            )
        };
        key(a).cmp(&key(b))
    });
    diagnostics.dedup();
    Ok(LintReport { diagnostics })
}

/// Compiles `source` under the standard optimized configuration and runs
/// the load-time bytecode verifier over the generated code (the
/// `sxr lint --bytecode` mode).  A clean report means the machine will
/// accept the program and run it on the unchecked fast path.
///
/// # Errors
///
/// Returns a [`CompileError`] if the program does not compile; verifier
/// rejections are reported in the returned [`sxr_analysis::VerifyReport`],
/// not as errors.
pub fn lint_bytecode(source: &str) -> Result<sxr_analysis::VerifyReport, CompileError> {
    let compiled = Compiler::new(PipelineConfig::abstract_optimized()).compile(source)?;
    Ok(compiled.verify_bytecode())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_name_shapes() {
        let forms =
            sxr_sexp::parse_all("(define (f x) x) (define g 1) (define (h . r) r) (display 2)")
                .unwrap();
        assert_eq!(define_name(&forms[0]), Some("f"));
        assert_eq!(define_name(&forms[1]), Some("g"));
        assert_eq!(define_name(&forms[2]), Some("h"));
        assert_eq!(define_name(&forms[3]), None);
    }

    #[test]
    fn lint_config_keeps_generic_ops() {
        let cfg = lint_config();
        assert!(cfg.opt.inline && cfg.opt.constfold);
        assert!(!cfg.opt.repspec && !cfg.opt.bits && !cfg.opt.cse && !cfg.opt.dce);
    }

    #[test]
    fn clean_program_lints_clean() {
        let report = lint_source("(define (add a b) (fx+ a b)) (display (add 1 2))").unwrap();
        assert!(!report.has_errors(), "{}", report.render("t.scm"));
    }

    #[test]
    fn report_order_is_pinned() {
        // Golden test for the deterministic (file, line, col, rule) order:
        // the rendered report is byte-identical across runs.
        let src = "(define (bad-car) (car 5))\n(define (bad-ref) (vector-ref 7 0))\n\
                   (display (bad-car))\n(display (bad-ref))";
        let report = lint_source(src).unwrap();
        assert_eq!(
            report.render("t.scm"),
            "t.scm:1:1: error[raw-mem-immediate]: `%rep-ref` on an immediate value of \
             representation `fixnum` — not a heap object (in `bad-car`)\n\
             t.scm:2:1: error[raw-mem-immediate]: `%rep-ref` on an immediate value of \
             representation `fixnum` — not a heap object (in `bad-ref`)\n"
        );
    }

    #[test]
    fn bytecode_lint_is_clean_for_compiled_code() {
        let report = lint_bytecode("(define (add a b) (fx+ a b)) (display (add 1 2))").unwrap();
        assert!(report.is_clean(), "{report}");
        assert!(report.funs > 0 && report.insts > 0);
    }

    #[test]
    fn misuse_is_located() {
        let src = "(define (id x) x)\n(define (bad) (car 5))\n(display (bad))";
        let report = lint_source(src).unwrap();
        assert!(report.has_errors(), "expected errors");
        let d = report.diagnostics.iter().find(|d| d.is_error()).unwrap();
        assert_eq!(d.diagnostic.fun_name.as_deref(), Some("bad"));
        let span = d.span.expect("span attributed");
        assert_eq!(span.line, 2);
        let rendered = d.render("t.scm");
        assert!(rendered.starts_with("t.scm:2:1: error["), "{rendered}");
    }
}
