//! Report helpers shared by the benchmark harness (Tables 1–3, Figures
//! 1–2, `bench_vm`) and the examples.

use crate::{Compiled, Compiler, FaultPlan, Outcome, PipelineConfig, VmError};
use std::time::{Duration, Instant};
use sxr_vm::{StepResult, SuspendReason};

/// The primitive operations whose generated code Table 1 compares.
pub const TABLE1_PRIMS: &[&str] = &[
    "car",
    "cdr",
    "cons",
    "set-car!",
    "pair?",
    "null?",
    "fx+",
    "fx-",
    "fx*",
    "fxquotient",
    "fx<",
    "fx=",
    "eq?",
    "fixnum?",
    "vector-ref",
    "vector-set!",
    "vector-length",
    "make-vector",
    "string-ref",
    "string-length",
    "char->integer",
    "integer->char",
    "box",
    "unbox",
    "set-box!",
    "procedure?",
];

/// Compiles an (essentially empty) program under `config` so the prelude's
/// primitive bodies can be inspected.
///
/// # Errors
///
/// Propagates any [`crate::CompileError`] (the prelude must compile).
pub fn compile_prelude_probe(config: PipelineConfig) -> Result<Compiled, crate::CompileError> {
    Compiler::new(config).compile("0")
}

/// Runs `compiled` once on a fresh machine, reporting how long the *run*
/// took (machine construction — including instruction pre-decoding and
/// pool building — is excluded, so the number is the interpreter's
/// steady-state cost, which is what `BENCH_vm.json` records).
///
/// # Errors
///
/// Propagates any [`VmError`] raised during loading or execution.
pub fn run_timed(compiled: &Compiled) -> Result<(Duration, Outcome), VmError> {
    let m = compiled.machine()?;
    time_run(m)
}

/// As [`run_timed`], but on a machine with no load-time verifier — every
/// step runs the interpreter's checked (bounds-tested) path.  This is the
/// baseline the `BENCH_vm.json` checked-vs-verified comparison measures
/// the fast path against.
///
/// # Errors
///
/// Propagates any [`VmError`] raised during loading or execution.
pub fn run_timed_checked(compiled: &Compiled) -> Result<(Duration, Outcome), VmError> {
    let m = compiled.machine_unverified()?;
    time_run(m)
}

fn time_run(mut m: sxr_vm::Machine) -> Result<(Duration, Outcome), VmError> {
    let start = Instant::now();
    let w = m.run()?;
    let elapsed = start.elapsed();
    Ok((
        elapsed,
        Outcome {
            value: m.describe(w),
            output: m.output().to_string(),
            counters: m.counters.clone(),
        },
    ))
}

/// Runs `compiled` on a fresh machine in fuel slices of `slice`
/// instructions, suspending and resuming until completion.  Returns the
/// outcome plus the number of fuel-exhaustion suspensions taken.
///
/// The suspension machinery is required to be *invisible*: for any slice
/// size the outcome (final value, output, and every counter) is bitwise
/// identical to an uninterrupted run.  The resumption batteries in
/// `tests/` and `chaos_vm --resume` assert exactly that.
///
/// # Errors
///
/// Propagates any [`VmError`] raised during loading or execution.
pub fn run_resumable(compiled: &Compiled, slice: u64) -> Result<(Outcome, u64), VmError> {
    run_resumable_with(compiled, || slice)
}

/// As [`run_resumable`], but each slice's budget is drawn from
/// `next_slice` — the differential fuzzer uses this to replay random
/// suspension schedules from a seed.
///
/// # Errors
///
/// Propagates any [`VmError`] raised during loading or execution.
pub fn run_resumable_with(
    compiled: &Compiled,
    mut next_slice: impl FnMut() -> u64,
) -> Result<(Outcome, u64), VmError> {
    let mut m = compiled.machine()?;
    m.set_fuel(Some(next_slice().max(1)));
    let mut suspensions = 0u64;
    let mut step = m.start()?;
    loop {
        match step {
            StepResult::Done(w) => {
                return Ok((
                    Outcome {
                        value: m.describe(w),
                        output: m.output().to_string(),
                        counters: m.counters.clone(),
                    },
                    suspensions,
                ));
            }
            StepResult::Suspended(SuspendReason::FuelExhausted) => {
                suspensions += 1;
                step = m.resume(next_slice().max(1))?;
            }
            StepResult::Suspended(SuspendReason::HostCall) => {
                step = m.resume(0)?;
            }
        }
    }
}

/// How one run under a fault plan relates to the fault-free oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosOutcome {
    /// The run finished and its observable behaviour (final value plus
    /// `%write-char` output) matched the fault-free run exactly.
    Agrees,
    /// The run finished but its observable behaviour diverged — a
    /// miscompilation or GC bug; the chaos battery treats this as fatal.
    Diverged {
        /// What the faulted run produced (`value\noutput`).
        got: String,
        /// What the fault-free oracle produced.
        want: String,
    },
    /// The run failed with a structured error (for memory fault plans this
    /// is the expected alternative to agreement).
    Failed(VmError),
}

/// Runs `compiled` under `plan` and classifies the result against the
/// fault-free oracle outcome — the primitive the chaos battery and
/// `sxr-bench` build their sweeps from.
pub fn run_under_fault(compiled: &Compiled, plan: FaultPlan, oracle: &Outcome) -> ChaosOutcome {
    match compiled.run_with_fault(plan) {
        Ok(out) if out.value == oracle.value && out.output == oracle.output => ChaosOutcome::Agrees,
        Ok(out) => ChaosOutcome::Diverged {
            got: format!("{}\n{}", out.value, out.output),
            want: format!("{}\n{}", oracle.value, oracle.output),
        },
        Err(e) => ChaosOutcome::Failed(e),
    }
}

/// One primitive's static instruction counts across the three
/// configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimRow {
    /// Primitive name.
    pub name: String,
    /// Instruction count under `Traditional`.
    pub traditional: usize,
    /// Instruction count under `AbstractOpt`.
    pub abstract_opt: usize,
    /// Instruction count under `AbstractNoOpt`.
    pub abstract_noopt: usize,
}

/// Builds Table 1: per-primitive static instruction counts (including the
/// final return) for each configuration.
///
/// # Errors
///
/// Propagates compile errors from any configuration.
pub fn table1_rows() -> Result<Vec<PrimRow>, crate::CompileError> {
    let trad = compile_prelude_probe(PipelineConfig::traditional())?;
    let aopt = compile_prelude_probe(PipelineConfig::abstract_optimized())?;
    let anop = compile_prelude_probe(PipelineConfig::abstract_unoptimized())?;
    Ok(TABLE1_PRIMS
        .iter()
        .filter_map(|name| {
            Some(PrimRow {
                name: (*name).to_string(),
                traditional: trad.static_count(name)?,
                abstract_opt: aopt.static_count(name)?,
                abstract_noopt: anop.static_count(name)?,
            })
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_compiles_everywhere() {
        for cfg in [
            PipelineConfig::traditional(),
            PipelineConfig::abstract_optimized(),
            PipelineConfig::abstract_unoptimized(),
        ] {
            let c = compile_prelude_probe(cfg).unwrap();
            assert!(c.static_count("car").is_some(), "car exists");
        }
    }

    #[test]
    fn run_timed_reports_outcome_and_duration() {
        let c = Compiler::new(PipelineConfig::abstract_optimized())
            .compile("(display (fx+ 40 2))")
            .unwrap();
        let (dt, out) = run_timed(&c).unwrap();
        assert_eq!(out.output, "42");
        assert!(out.counters.total > 0);
        assert!(dt > Duration::ZERO);
    }
}
