;;; reps.scm --- the representation layer's POLICY, as ordinary library code.
;;;
;;; This file is the heart of the reproduction: the compiler has no idea
;;; what a fixnum or a pair looks like until this library tells it.  Each
;;; declaration constructs a first-class representation type; %provide-rep!
;;; volunteers types for the structural roles the machine layer consults
;;; (literal encoding, the GC's pointer test, closure allocation).
;;;
;;; The scheme below is the classic 64-bit low-tag layout:
;;;
;;;   xxx...xxx000   fixnum (61 bits, tag 0 so add/sub work tagged)
;;;   ttttt...010    other immediates, sub-tagged in bits 3-7
;;;   addr | 001     pair            addr | 011   vector
;;;   addr | 100     records (discriminated by header type id)
;;;   addr | 101     string          addr | 110   symbol
;;;   addr | 111     closure
;;;
;;; Swapping this file for another layout (see tests/alt-tagging) changes
;;; every tag in the system without touching the compiler.

(define fixnum-rep      (%make-immediate-type 'fixnum 3 0 3))
(define boolean-rep     (%make-immediate-type 'boolean 8 2 8))    ; 00000 010
(define char-rep        (%make-immediate-type 'char 8 18 8))      ; 00010 010
(define null-rep        (%make-immediate-type 'null 8 34 8))      ; 00100 010
(define unspecified-rep (%make-immediate-type 'unspecified 8 50 8)) ; 00110 010
(define eof-rep         (%make-immediate-type 'eof 8 66 8))       ; 01000 010

(define pair-rep        (%make-pointer-type 'pair 1 #f))
(define vector-rep      (%make-pointer-type 'vector 3 #f))
(define rep-type-rep    (%make-pointer-type 'rep-type 4 #t))
(define box-rep         (%make-pointer-type 'box 4 #t))
(define string-rep      (%make-pointer-type 'string 5 #f))
(define symbol-rep      (%make-pointer-type 'symbol 6 #f))
(define closure-rep     (%make-pointer-type 'closure 7 #f))

(%provide-rep! 'fixnum fixnum-rep)
(%provide-rep! 'boolean boolean-rep)
(%provide-rep! 'char char-rep)
(%provide-rep! 'null null-rep)
(%provide-rep! 'unspecified unspecified-rep)
(%provide-rep! 'eof eof-rep)
(%provide-rep! 'pair pair-rep)
(%provide-rep! 'vector vector-rep)
(%provide-rep! 'rep-type rep-type-rep)
(%provide-rep! 'string string-rep)
(%provide-rep! 'symbol symbol-rep)
(%provide-rep! 'closure closure-rep)

;; The tag user record types share (discriminated by header type id);
;; consumed by the define-record-type desugaring.
(define record-tag 4)

;; Condition objects — the values trap handlers receive — are an ordinary
;; discriminated record type defined here, not a compiler intrinsic.  The
;; machine's trap path looks the `condition` role up at delivery time and
;; builds a 4-field record [kind-symbol p1 p2 p3] with this layout; the
;; accessors in library.scm read it back with the same generic rep
;; operations every other data type uses.
(define condition-rep (%make-pointer-type 'condition 4 #t))  ; = record-tag
(%provide-rep! 'condition condition-rep)
