;;; prims_abstract.scm --- every "primitive" as plain procedural code.
;;;
;;; Nothing here is special to the compiler: these are ordinary definitions
;;; in terms of the generic representation facility.  They are written in
;;; the most naively abstract style (always project, operate raw, inject)
;;; precisely so the burden of making them fast falls on the general
;;; optimizer, as the paper claims it can.

;; -- fixnums ---------------------------------------------------------------
(define (fixnum? x) (%rep-inject boolean-rep (%rep-test fixnum-rep x)))
(define (fx+ a b)
  (%rep-inject fixnum-rep
               (%word+ (%rep-project fixnum-rep a) (%rep-project fixnum-rep b))))
(define (fx- a b)
  (%rep-inject fixnum-rep
               (%word- (%rep-project fixnum-rep a) (%rep-project fixnum-rep b))))
(define (fx* a b)
  (%rep-inject fixnum-rep
               (%word* (%rep-project fixnum-rep a) (%rep-project fixnum-rep b))))
(define (fxquotient a b)
  (%rep-inject fixnum-rep
               (%word-quotient (%rep-project fixnum-rep a) (%rep-project fixnum-rep b))))
(define (fxremainder a b)
  (%rep-inject fixnum-rep
               (%word-remainder (%rep-project fixnum-rep a) (%rep-project fixnum-rep b))))
(define (fx< a b)
  (%rep-inject boolean-rep
               (%word<? (%rep-project fixnum-rep a) (%rep-project fixnum-rep b))))
(define (fx= a b)
  (%rep-inject boolean-rep
               (%word=? (%rep-project fixnum-rep a) (%rep-project fixnum-rep b))))

;; -- identity --------------------------------------------------------------
(define (eq? a b) (%rep-inject boolean-rep (%eq? a b)))

;; -- pairs -----------------------------------------------------------------
(define (cons a d)
  (let ((p (%rep-alloc pair-rep (%rep-project fixnum-rep 2) a)))
    (%rep-set! pair-rep p (%rep-project fixnum-rep 1) d)
    p))
(define (car p) (%rep-ref pair-rep p (%rep-project fixnum-rep 0)))
(define (cdr p) (%rep-ref pair-rep p (%rep-project fixnum-rep 1)))
(define (set-car! p v) (%rep-set! pair-rep p (%rep-project fixnum-rep 0) v))
(define (set-cdr! p v) (%rep-set! pair-rep p (%rep-project fixnum-rep 1) v))
(define (pair? x) (%rep-inject boolean-rep (%rep-test pair-rep x)))
(define (null? x) (%rep-inject boolean-rep (%rep-test null-rep x)))

;; -- vectors ---------------------------------------------------------------
(define (make-vector n fill) (%rep-alloc vector-rep (%rep-project fixnum-rep n) fill))
(define (vector-ref v i) (%rep-ref vector-rep v (%rep-project fixnum-rep i)))
(define (vector-set! v i x) (%rep-set! vector-rep v (%rep-project fixnum-rep i) x))
(define (vector-length v) (%rep-inject fixnum-rep (%rep-length vector-rep v)))
(define (vector? x) (%rep-inject boolean-rep (%rep-test vector-rep x)))

;; -- strings (character fields) ---------------------------------------------
(define (make-string n fill) (%rep-alloc string-rep (%rep-project fixnum-rep n) fill))
(define (string-ref s i) (%rep-ref string-rep s (%rep-project fixnum-rep i)))
(define (string-set! s i c) (%rep-set! string-rep s (%rep-project fixnum-rep i) c))
(define (string-length s) (%rep-inject fixnum-rep (%rep-length string-rep s)))
(define (string? x) (%rep-inject boolean-rep (%rep-test string-rep x)))

;; -- characters --------------------------------------------------------------
(define (char->integer c) (%rep-inject fixnum-rep (%rep-project char-rep c)))
(define (integer->char n) (%rep-inject char-rep (%rep-project fixnum-rep n)))
(define (char? x) (%rep-inject boolean-rep (%rep-test char-rep x)))

;; -- other type tests --------------------------------------------------------
(define (boolean? x) (%rep-inject boolean-rep (%rep-test boolean-rep x)))
(define (symbol? x) (%rep-inject boolean-rep (%rep-test symbol-rep x)))
(define (procedure? x) (%rep-inject boolean-rep (%rep-test closure-rep x)))
(define (eof-object? x) (%rep-inject boolean-rep (%rep-test eof-rep x)))
(define (eof-object) (%rep-inject eof-rep 0))

;; -- symbols -----------------------------------------------------------------
(define (symbol->string s) (%rep-ref symbol-rep s (%rep-project fixnum-rep 0)))
(define (string->symbol s) (%intern s))

;; -- boxes (used by assignment conversion) -----------------------------------
(define (box v) (%rep-alloc box-rep (%rep-project fixnum-rep 1) v))
(define (unbox b) (%rep-ref box-rep b (%rep-project fixnum-rep 0)))
(define (set-box! b v) (%rep-set! box-rep b (%rep-project fixnum-rep 0) v))
(define (box? x) (%rep-inject boolean-rep (%rep-test box-rep x)))

;; -- i/o and errors ----------------------------------------------------------
(define (write-char c) (%write-char c))
(define (error v) (%error v))
