;;; selftest.scm --- a Scheme-level conformance corpus.
;;;
;;; Runs a few hundred assertions against the library and primitive layer.
;;; The Rust harness executes this file under every pipeline configuration
;;; and requires the final line to report zero failures. Because the checks
;;; are written in the object language, they exercise the whole stack:
;;; reader, expander, optimizer, code generator, VM, and GC.

(define failures 0)
(define checks 0)

(define (check! name ok)
  (set! checks (fx+ checks 1))
  (unless ok
    (set! failures (fx+ failures 1))
    (display "FAIL: ") (display name) (newline)))

(define (check-equal! name actual expected)
  (check! name (equal? actual expected)))

;; --- fixnum arithmetic ---
(check-equal! 'add (fx+ 2 3) 5)
(check-equal! 'add-neg (fx+ -2 -3) -5)
(check-equal! 'sub (fx- 2 3) -1)
(check-equal! 'mul (fx* -4 6) -24)
(check-equal! 'quot (fxquotient 17 5) 3)
(check-equal! 'quot-neg (fxquotient -17 5) -3)
(check-equal! 'rem (fxremainder 17 5) 2)
(check-equal! 'rem-neg (fxremainder -17 5) -2)
(check! 'lt (fx< 1 2))
(check! 'lt-neg (fx< -2 -1))
(check! 'not-lt (not (fx< 2 1)))
(check! 'eq-fix (fx= 7 7))
(check-equal! 'max (max 1 9 3) 9)
(check-equal! 'min (min 4 2 8) 2)
(check-equal! 'variadic-plus (+ 1 2 3 4 5) 15)
(check-equal! 'variadic-minus (- 10 1 2 3) 4)
(check-equal! 'unary-minus (- 5) -5)
(check-equal! 'abs (fxabs -9) 9)
(check! 'even (even? 4))
(check! 'odd (odd? 5))
(check! 'zero (zero? 0))
(check! 'positive (positive? 3))
(check! 'negative (negative? -3))

;; --- booleans and predicates ---
(check! 'not-false (not #f))
(check! 'not-zero-truthy (not (not 0)))        ; 0 is true in Scheme
(check! 'null-truthy (not (not '())))          ; so is ()
(check! 'fixnum-pred (fixnum? 3))
(check! 'fixnum-pred-neg (not (fixnum? 'a)))
(check! 'boolean-pred (boolean? #f))
(check! 'char-pred (char? #\a))
(check! 'string-pred (string? "s"))
(check! 'symbol-pred (symbol? 'sym))
(check! 'pair-pred (pair? '(1)))
(check! 'null-pred (null? '()))
(check! 'vector-pred (vector? '#(1)))
(check! 'procedure-pred (procedure? car))
(check! 'procedure-pred-neg (not (procedure? 5)))

;; --- pairs and lists ---
(check-equal! 'car (car '(1 2)) 1)
(check-equal! 'cdr (cdr '(1 2)) '(2))
(check-equal! 'cons-chain (caddr '(1 2 3)) 3)
(let ((p (cons 1 2)))
  (set-car! p 10)
  (set-cdr! p 20)
  (check-equal! 'set-car (car p) 10)
  (check-equal! 'set-cdr (cdr p) 20))
(check-equal! 'length (length '(a b c)) 3)
(check-equal! 'length-empty (length '()) 0)
(check-equal! 'append (append '(1 2) '(3)) '(1 2 3))
(check-equal! 'append-empty (append '() '(1)) '(1))
(check-equal! 'reverse (reverse '(1 2 3)) '(3 2 1))
(check-equal! 'list-tail (list-tail '(1 2 3 4) 2) '(3 4))
(check-equal! 'list-ref (list-ref '(a b c) 1) 'b)
(check-equal! 'last-pair (last-pair '(1 2 3)) '(3))
(check! 'list-pred (list? '(1 2)))
(check! 'list-pred-improper (not (list? '(1 . 2))))
(check-equal! 'memq (memq 'b '(a b c)) '(b c))
(check! 'memq-miss (not (memq 'z '(a b))))
(check-equal! 'member (member "b" '("a" "b")) '("b"))
(check-equal! 'assq (assq 'b '((a . 1) (b . 2))) '(b . 2))
(check-equal! 'assoc (assoc "k" '(("j" . 1) ("k" . 2))) '("k" . 2))
(check-equal! 'map (map add1 '(1 2 3)) '(2 3 4))
(check-equal! 'map2 (map2 fx+ '(1 2) '(10 20)) '(11 22))
(check-equal! 'filter (filter odd? '(1 2 3 4 5)) '(1 3 5))
(check-equal! 'fold-left (fold-left fx- 0 '(1 2 3)) -6)
(check-equal! 'fold-right (fold-right cons '() '(1 2)) '(1 2))
(check-equal! 'iota (iota 4) '(0 1 2 3))
(check-equal! 'list-var (list 1 2 3) '(1 2 3))
(check-equal! 'list-empty (list) '())
(check-equal! 'apply-spread (apply fx+ '(20 22)) 42)
(check-equal! 'apply-zero (apply list '()) '())
(let ((counted 0))
  (for-each (lambda (x) (set! counted (fx+ counted x))) '(1 2 3))
  (check-equal! 'for-each counted 6))

;; --- equality ---
(check! 'eq-sym (eq? 'a 'a))
(check! 'eqv-char (eqv? #\x #\x))
(check! 'equal-nested (equal? '(1 (2 #(3 "4"))) '(1 (2 #(3 "4")))))
(check! 'equal-neg (not (equal? '(1 2) '(1 3))))
(check! 'equal-vec-len (not (equal? '#(1) '#(1 2))))

;; --- characters and strings ---
(check-equal! 'char-int (char->integer #\A) 65)
(check-equal! 'int-char (integer->char 97) #\a)
(check! 'char-lt (char<? #\a #\b))
(check-equal! 'string-length (string-length "hello") 5)
(check-equal! 'string-ref (string-ref "abc" 2) #\c)
(let ((s (make-string 3 #\z)))
  (string-set! s 1 #\q)
  (check-equal! 'string-set (string-ref s 1) #\q))
(check! 'string-eq (string=? "abc" "abc"))
(check! 'string-eq-neg (not (string=? "abc" "abd")))
(check-equal! 'substring (substring "hello" 1 4) "ell")
(check-equal! 'string-append (string-append "foo" "bar") "foobar")
(check-equal! 'string-list (string->list "ab") '(#\a #\b))
(check-equal! 'list-string (list->string '(#\x #\y)) "xy")
(check-equal! 'num-string (number->string 1234) "1234")
(check-equal! 'num-string-neg (number->string -56) "-56")
(check-equal! 'num-string-zero (number->string 0) "0")
(check! 'sym-string (string=? (symbol->string 'howdy) "howdy"))
(check! 'string-sym (eq? (string->symbol "abc") 'abc))

;; --- vectors ---
(let ((v (make-vector 4 7)))
  (check-equal! 'vector-length (vector-length v) 4)
  (check-equal! 'vector-fill-init (vector-ref v 3) 7)
  (vector-set! v 2 42)
  (check-equal! 'vector-set (vector-ref v 2) 42)
  (vector-fill! v 9)
  (check-equal! 'vector-fill (vector-ref v 2) 9))
(check-equal! 'vector-list (vector->list '#(1 2)) '(1 2))
(check-equal! 'list-vector (list->vector '(1 2)) '#(1 2))
(check-equal! 'vector-map (vector-map add1 '#(1 2)) '#(2 3))

;; --- control and binding forms ---
(check-equal! 'named-let
              (let loop ((i 0) (acc '()))
                (if (fx= i 3) (reverse acc) (loop (fx+ i 1) (cons i acc))))
              '(0 1 2))
(check-equal! 'do-loop (do ((i 0 (fx+ i 1)) (s 0 (fx+ s i))) ((fx= i 5) s)) 10)
(check-equal! 'case (case 2 ((1) 'one) ((2 3) 'few) (else 'many)) 'few)
(check-equal! 'cond-arrow (cond ((assq 'b '((b . 7))) => cdr) (else 'no)) 7)
(check-equal! 'when-t (when #t 1 2) 2)
(check-equal! 'and-short (and 1 2 3) 3)
(check-equal! 'or-short (or #f #f 9) 9)
(check-equal! 'let* (let* ((a 1) (b (fx+ a 1))) (fx* a b)) 2)
(check-equal! 'letrec
              (letrec ((e? (lambda (n) (if (fx= n 0) #t (o? (fx- n 1)))))
                       (o? (lambda (n) (if (fx= n 0) #f (e? (fx- n 1))))))
                (list (e? 6) (o? 6)))
              '(#t #f))
(check-equal! 'quasi (let ((x 5)) `(a ,x ,@(list 1 2) . ,x)) '(a 5 1 2 . 5))

;; --- closures and state ---
(define (make-counter)
  (let ((n 0)) (lambda () (set! n (fx+ n 1)) n)))
(let ((c1 (make-counter)) (c2 (make-counter)))
  (c1) (c1)
  (check-equal! 'counter-independent (list (c1) (c2)) '(3 1)))
(check-equal! 'boxes (let ((b (box 1))) (set-box! b 2) (unbox b)) 2)

;; --- records over first-class representations ---
(define-record-type seg
  (make-seg lo hi)
  seg?
  (lo seg-lo)
  (hi seg-hi set-seg-hi!))
(let ((s (make-seg 1 9)))
  (check! 'record-pred (seg? s))
  (check! 'record-pred-neg (not (seg? (cons 1 9))))
  (check-equal! 'record-ref (seg-hi s) 9)
  (set-seg-hi! s 10)
  (check-equal! 'record-set (seg-hi s) 10))

;; --- the representation facility itself ---
;; Wrapping any value in a fresh immediate type and projecting it back
;; round-trips the underlying word exactly.
(check! 'rep-first-class
        (let ((r (%make-immediate-type 'self-test-imm 8 98 8)))
          (fx= 5 (%rep-project r (%rep-inject r 5)))))

;; --- report ---
(display checks) (display " checks, ")
(display failures) (display " failures")
(newline)
(if (fx= failures 0) 'ok 'FAILED)
