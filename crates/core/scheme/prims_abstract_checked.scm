;;; prims_abstract_checked.scm --- the abstract primitive layer, with safety.
;;;
;;; The paper's framing makes safety a *library policy* question, not a
;;; compiler one: this file is the same ordinary code as
;;; prims_abstract.scm, plus type and bounds checks — written with the same
;;; rep-type operations the checks protect. The compiler is unchanged; the
;;; cost of safety is measured in tests/integration_checked.rs.

;; -- helpers ------------------------------------------------------------------
(define (checked-fail what) (%error what))

;; -- fixnums ---------------------------------------------------------------
(define (fixnum? x) (%rep-inject boolean-rep (%rep-test fixnum-rep x)))
(define (check-fx x)
  (if (%rep-inject boolean-rep (%rep-test fixnum-rep x)) x (checked-fail 'not-a-fixnum)))
(define (fx+ a b)
  (%rep-inject fixnum-rep
               (%word+ (%rep-project fixnum-rep (check-fx a))
                       (%rep-project fixnum-rep (check-fx b)))))
(define (fx- a b)
  (%rep-inject fixnum-rep
               (%word- (%rep-project fixnum-rep (check-fx a))
                       (%rep-project fixnum-rep (check-fx b)))))
(define (fx* a b)
  (%rep-inject fixnum-rep
               (%word* (%rep-project fixnum-rep (check-fx a))
                       (%rep-project fixnum-rep (check-fx b)))))
(define (fxquotient a b)
  (%rep-inject fixnum-rep
               (%word-quotient (%rep-project fixnum-rep (check-fx a))
                               (%rep-project fixnum-rep (check-fx b)))))
(define (fxremainder a b)
  (%rep-inject fixnum-rep
               (%word-remainder (%rep-project fixnum-rep (check-fx a))
                                (%rep-project fixnum-rep (check-fx b)))))
(define (fx< a b)
  (%rep-inject boolean-rep
               (%word<? (%rep-project fixnum-rep (check-fx a))
                        (%rep-project fixnum-rep (check-fx b)))))
(define (fx= a b)
  (%rep-inject boolean-rep
               (%word=? (%rep-project fixnum-rep (check-fx a))
                        (%rep-project fixnum-rep (check-fx b)))))

;; -- identity --------------------------------------------------------------
(define (eq? a b) (%rep-inject boolean-rep (%eq? a b)))

;; -- pairs (type-checked access) ---------------------------------------------
(define (cons a d)
  (let ((p (%rep-alloc pair-rep (%rep-project fixnum-rep 2) a)))
    (%rep-set! pair-rep p (%rep-project fixnum-rep 1) d)
    p))
(define (check-pair p)
  (if (%rep-inject boolean-rep (%rep-test pair-rep p)) p (checked-fail 'not-a-pair)))
(define (car p) (%rep-ref pair-rep (check-pair p) (%rep-project fixnum-rep 0)))
(define (cdr p) (%rep-ref pair-rep (check-pair p) (%rep-project fixnum-rep 1)))
(define (set-car! p v) (%rep-set! pair-rep (check-pair p) (%rep-project fixnum-rep 0) v))
(define (set-cdr! p v) (%rep-set! pair-rep (check-pair p) (%rep-project fixnum-rep 1) v))
(define (pair? x) (%rep-inject boolean-rep (%rep-test pair-rep x)))
(define (null? x) (%rep-inject boolean-rep (%rep-test null-rep x)))

;; -- vectors (type- and bounds-checked) ----------------------------------------
(define (check-vector v)
  (if (%rep-inject boolean-rep (%rep-test vector-rep v)) v (checked-fail 'not-a-vector)))
(define (check-index-raw ri n)
  (if (%rep-inject boolean-rep (%word<? ri 0))
      (checked-fail 'index-negative)
      (if (%rep-inject boolean-rep (%word<? ri n))
          ri
          (checked-fail 'index-out-of-range))))
(define (make-vector n fill)
  (let ((rn (%rep-project fixnum-rep (check-fx n))))
    (if (%rep-inject boolean-rep (%word<? rn 0))
        (checked-fail 'negative-size)
        (%rep-alloc vector-rep rn fill))))
(define (vector-ref v i)
  (let ((cv (check-vector v)))
    (%rep-ref vector-rep cv
              (check-index-raw (%rep-project fixnum-rep (check-fx i))
                               (%rep-length vector-rep cv)))))
(define (vector-set! v i x)
  (let ((cv (check-vector v)))
    (%rep-set! vector-rep cv
               (check-index-raw (%rep-project fixnum-rep (check-fx i))
                                (%rep-length vector-rep cv))
               x)))
(define (vector-length v)
  (%rep-inject fixnum-rep (%rep-length vector-rep (check-vector v))))
(define (vector? x) (%rep-inject boolean-rep (%rep-test vector-rep x)))

;; -- strings (type- and bounds-checked) -----------------------------------------
(define (check-string s)
  (if (%rep-inject boolean-rep (%rep-test string-rep s)) s (checked-fail 'not-a-string)))
(define (make-string n fill)
  (let ((rn (%rep-project fixnum-rep (check-fx n))))
    (if (%rep-inject boolean-rep (%word<? rn 0))
        (checked-fail 'negative-size)
        (%rep-alloc string-rep rn fill))))
(define (string-ref s i)
  (let ((cs (check-string s)))
    (%rep-ref string-rep cs
              (check-index-raw (%rep-project fixnum-rep (check-fx i))
                               (%rep-length string-rep cs)))))
(define (string-set! s i c)
  (let ((cs (check-string s)))
    (%rep-set! string-rep cs
               (check-index-raw (%rep-project fixnum-rep (check-fx i))
                                (%rep-length string-rep cs))
               c)))
(define (string-length s)
  (%rep-inject fixnum-rep (%rep-length string-rep (check-string s))))
(define (string? x) (%rep-inject boolean-rep (%rep-test string-rep x)))

;; -- characters --------------------------------------------------------------
(define (char->integer c) (%rep-inject fixnum-rep (%rep-project char-rep c)))
(define (integer->char n) (%rep-inject char-rep (%rep-project fixnum-rep (check-fx n))))
(define (char? x) (%rep-inject boolean-rep (%rep-test char-rep x)))

;; -- other type tests --------------------------------------------------------
(define (boolean? x) (%rep-inject boolean-rep (%rep-test boolean-rep x)))
(define (symbol? x) (%rep-inject boolean-rep (%rep-test symbol-rep x)))
(define (procedure? x) (%rep-inject boolean-rep (%rep-test closure-rep x)))
(define (eof-object? x) (%rep-inject boolean-rep (%rep-test eof-rep x)))
(define (eof-object) (%rep-inject eof-rep 0))

;; -- symbols -----------------------------------------------------------------
(define (symbol->string s)
  (if (%rep-inject boolean-rep (%rep-test symbol-rep s))
      (%rep-ref symbol-rep s (%rep-project fixnum-rep 0))
      (checked-fail 'not-a-symbol)))
(define (string->symbol s) (%intern (check-string s)))

;; -- boxes ----------------------------------------------------------------------
(define (box v) (%rep-alloc box-rep (%rep-project fixnum-rep 1) v))
(define (check-box b)
  (if (%rep-inject boolean-rep (%rep-test box-rep b)) b (checked-fail 'not-a-box)))
(define (unbox b) (%rep-ref box-rep (check-box b) (%rep-project fixnum-rep 0)))
(define (set-box! b v) (%rep-set! box-rep (check-box b) (%rep-project fixnum-rep 0) v))
(define (box? x) (%rep-inject boolean-rep (%rep-test box-rep x)))

;; -- i/o and errors ----------------------------------------------------------
(define (write-char c) (%write-char c))
(define (error v) (%error v))
