;;; prims_traditional.scm --- the baseline: primitives as compiler intrinsics.
;;;
;;; Each %i-… form is expanded by the code generator's hand-written,
;;; layout-aware templates (see sxr-codegen/src/intrinsics.rs) — the
;;; "contorted, traditional technique" the abstract pipeline competes with.

(define (fixnum? x) (%i-fixnum? x))
(define (fx+ a b) (%i-fx+ a b))
(define (fx- a b) (%i-fx- a b))
(define (fx* a b) (%i-fx* a b))
(define (fxquotient a b) (%i-fxquotient a b))
(define (fxremainder a b) (%i-fxremainder a b))
(define (fx< a b) (%i-fx< a b))
(define (fx= a b) (%i-fx= a b))

(define (eq? a b) (%i-eq? a b))

(define (cons a d) (%i-cons a d))
(define (car p) (%i-car p))
(define (cdr p) (%i-cdr p))
(define (set-car! p v) (%i-set-car! p v))
(define (set-cdr! p v) (%i-set-cdr! p v))
(define (pair? x) (%i-pair? x))
(define (null? x) (%i-null? x))

(define (make-vector n fill) (%i-make-vector n fill))
(define (vector-ref v i) (%i-vector-ref v i))
(define (vector-set! v i x) (%i-vector-set! v i x))
(define (vector-length v) (%i-vector-length v))
(define (vector? x) (%i-vector? x))

(define (make-string n fill) (%i-make-string n fill))
(define (string-ref s i) (%i-string-ref s i))
(define (string-set! s i c) (%i-string-set! s i c))
(define (string-length s) (%i-string-length s))
(define (string? x) (%i-string? x))

(define (char->integer c) (%i-char->integer c))
(define (integer->char n) (%i-integer->char n))
(define (char? x) (%i-char? x))

(define (boolean? x) (%i-boolean? x))
(define (symbol? x) (%i-symbol? x))
(define (procedure? x) (%i-procedure? x))
;; The traditional baseline has no eof intrinsics; reuse the rep facility
;; (cold path, not part of any measured primitive).
(define (eof-object? x) (%rep-inject boolean-rep (%rep-test eof-rep x)))
(define (eof-object) (%rep-inject eof-rep 0))

(define (symbol->string s) (%i-symbol->string s))
(define (string->symbol s) (%intern s))

;; Boxes: a traditional compiler would use a one-slot record; reuse the
;; rep facility's box type through generic ops' specialized forms is not
;; available here, so pairs stand in (same asymptotics, one extra word).
(define (box v) (%i-cons v '()))
(define (unbox b) (%i-car b))
(define (set-box! b v) (%i-set-car! b v))
(define (box? x) (%i-pair? x))

(define (write-char c) (%write-char c))
(define (error v) (%error v))
