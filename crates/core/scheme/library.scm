;;; library.scm --- the portable library, shared verbatim by both pipelines.
;;;
;;; Everything here is written against the primitive layer only; it neither
;;; knows nor cares whether that layer is abstract (rep types) or
;;; traditional (intrinsics).

;; -- booleans and predicates -------------------------------------------------
(define (not x) (if x #f #t))
(define (eqv? a b) (eq? a b))        ; fixnums/chars are immediates here
(define (zero? n) (fx= n 0))
(define (positive? n) (fx< 0 n))
(define (negative? n) (fx< n 0))
(define (fx> a b) (fx< b a))
(define (fx<= a b) (not (fx< b a)))
(define (fx>= a b) (not (fx< a b)))
(define (fxmax a b) (if (fx< a b) b a))
(define (fxmin a b) (if (fx< a b) a b))
(define (fxabs n) (if (fx< n 0) (fx- 0 n) n))
(define (add1 n) (fx+ n 1))
(define (sub1 n) (fx- n 1))
(define (even? n) (fx= (fxremainder n 2) 0))
(define (odd? n) (not (even? n)))

;; -- lists --------------------------------------------------------------------
(define (caar p) (car (car p)))
(define (cadr p) (car (cdr p)))
(define (cdar p) (cdr (car p)))
(define (cddr p) (cdr (cdr p)))
(define (caddr p) (car (cddr p)))
(define (cdddr p) (cdr (cddr p)))

(define (list1 a) (cons a '()))
(define (list2 a b) (cons a (list1 b)))
(define (list3 a b c) (cons a (list2 b c)))
(define (list4 a b c d) (cons a (list3 b c d)))
(define (list5 a b c d e) (cons a (list4 b c d e)))

(define (length xs)
  (let loop ((xs xs) (n 0))
    (if (null? xs) n (loop (cdr xs) (fx+ n 1)))))

(define (append a b)
  (if (null? a) b (cons (car a) (append (cdr a) b))))

(define (reverse xs)
  (let loop ((xs xs) (acc '()))
    (if (null? xs) acc (loop (cdr xs) (cons (car xs) acc)))))

(define (list-tail xs k)
  (if (fx= k 0) xs (list-tail (cdr xs) (fx- k 1))))

(define (list-ref xs k) (car (list-tail xs k)))

(define (last-pair xs)
  (if (null? (cdr xs)) xs (last-pair (cdr xs))))

(define (list? xs)
  (cond ((null? xs) #t)
        ((pair? xs) (list? (cdr xs)))
        (else #f)))

(define (memq x xs)
  (cond ((null? xs) #f)
        ((eq? x (car xs)) xs)
        (else (memq x (cdr xs)))))
(define (memv x xs) (memq x xs))
(define (member x xs)
  (cond ((null? xs) #f)
        ((equal? x (car xs)) xs)
        (else (member x (cdr xs)))))

(define (assq x alist)
  (cond ((null? alist) #f)
        ((eq? x (caar alist)) (car alist))
        (else (assq x (cdr alist)))))
(define (assv x alist) (assq x alist))
(define (assoc x alist)
  (cond ((null? alist) #f)
        ((equal? x (caar alist)) (car alist))
        (else (assoc x (cdr alist)))))

(define (map f xs)
  (if (null? xs) '() (cons (f (car xs)) (map f (cdr xs)))))
(define (map2 f xs ys)
  (if (null? xs) '() (cons (f (car xs) (car ys)) (map2 f (cdr xs) (cdr ys)))))
(define (for-each f xs)
  (if (null? xs) (if #f #f) (begin (f (car xs)) (for-each f (cdr xs)))))
(define (filter keep? xs)
  (cond ((null? xs) '())
        ((keep? (car xs)) (cons (car xs) (filter keep? (cdr xs))))
        (else (filter keep? (cdr xs)))))
(define (fold-left f acc xs)
  (if (null? xs) acc (fold-left f (f acc (car xs)) (cdr xs))))
(define (fold-right f acc xs)
  (if (null? xs) acc (f (car xs) (fold-right f acc (cdr xs)))))
(define (iota n)
  (let loop ((i (fx- n 1)) (acc '()))
    (if (fx< i 0) acc (loop (fx- i 1) (cons i acc)))))

;; -- structural equality -------------------------------------------------------
(define (equal? a b)
  (cond ((eq? a b) #t)
        ((pair? a)
         (and (pair? b) (equal? (car a) (car b)) (equal? (cdr a) (cdr b))))
        ((string? a) (and (string? b) (string=? a b)))
        ((vector? a)
         (and (vector? b)
              (fx= (vector-length a) (vector-length b))
              (let loop ((i 0))
                (cond ((fx= i (vector-length a)) #t)
                      ((equal? (vector-ref a i) (vector-ref b i)) (loop (fx+ i 1)))
                      (else #f)))))
        (else #f)))

;; -- characters ----------------------------------------------------------------
(define (char=? a b) (fx= (char->integer a) (char->integer b)))
(define (char<? a b) (fx< (char->integer a) (char->integer b)))
(define (char-numeric? c) (and (char<? #\0 c) (char<? c #\9)))

;; -- strings ---------------------------------------------------------------------
(define (string=? a b)
  (let ((n (string-length a)))
    (and (fx= n (string-length b))
         (let loop ((i 0))
           (cond ((fx= i n) #t)
                 ((char=? (string-ref a i) (string-ref b i)) (loop (fx+ i 1)))
                 (else #f))))))

(define (substring s start end)
  (let ((out (make-string (fx- end start) #\space)))
    (let loop ((i start))
      (if (fx< i end)
          (begin (string-set! out (fx- i start) (string-ref s i))
                 (loop (fx+ i 1)))
          out))))

(define (string-append a b)
  (let ((na (string-length a)) (nb (string-length b)))
    (let ((out (make-string (fx+ na nb) #\space)))
      (let loop ((i 0))
        (when (fx< i na)
          (string-set! out i (string-ref a i))
          (loop (fx+ i 1))))
      (let loop ((i 0))
        (when (fx< i nb)
          (string-set! out (fx+ na i) (string-ref b i))
          (loop (fx+ i 1))))
      out)))

(define (string->list s)
  (let loop ((i (fx- (string-length s) 1)) (acc '()))
    (if (fx< i 0) acc (loop (fx- i 1) (cons (string-ref s i) acc)))))

(define (list->string cs)
  (let ((out (make-string (length cs) #\space)))
    (let loop ((cs cs) (i 0))
      (if (null? cs)
          out
          (begin (string-set! out i (car cs)) (loop (cdr cs) (fx+ i 1)))))))

(define (string-hash s)
  (let ((n (string-length s)))
    (let loop ((i 0) (h 0))
      (if (fx= i n)
          h
          (loop (fx+ i 1)
                (fxremainder (fx+ (fx* h 31) (char->integer (string-ref s i)))
                             16777213))))))

;; -- vectors -----------------------------------------------------------------------
(define (vector->list v)
  (let loop ((i (fx- (vector-length v) 1)) (acc '()))
    (if (fx< i 0) acc (loop (fx- i 1) (cons (vector-ref v i) acc)))))

(define (list->vector xs)
  (let ((out (make-vector (length xs) 0)))
    (let loop ((xs xs) (i 0))
      (if (null? xs)
          out
          (begin (vector-set! out i (car xs)) (loop (cdr xs) (fx+ i 1)))))))

(define (vector-fill! v x)
  (let ((n (vector-length v)))
    (let loop ((i 0))
      (when (fx< i n)
        (vector-set! v i x)
        (loop (fx+ i 1))))))

(define (vector-map f v)
  (let ((n (vector-length v)))
    (let ((out (make-vector n 0)))
      (let loop ((i 0))
        (if (fx= i n)
            out
            (begin (vector-set! out i (f (vector-ref v i)))
                   (loop (fx+ i 1))))))))

;; -- numeric printing -----------------------------------------------------------------
(define (number->string n)
  (if (fx= n 0)
      "0"
      (let ((neg (fx< n 0)))
        (let loop ((m (if neg n (fx- 0 n))) (acc '()))
          ;; Work with negative magnitudes so the most-negative fixnum works.
          (if (fx= m 0)
              (list->string (if neg (cons #\- acc) acc))
              (loop (fxquotient m 10)
                    (cons (integer->char (fx+ 48 (fx- 0 (fxremainder m 10)))) acc)))))))

;; -- output -------------------------------------------------------------------------
(define (write-string s)
  (let ((n (string-length s)))
    (let loop ((i 0))
      (when (fx< i n)
        (write-char (string-ref s i))
        (loop (fx+ i 1))))))

(define (newline) (write-char #\newline))

(define (display x)
  (cond ((fixnum? x) (write-string (number->string x)))
        ((string? x) (write-string x))
        ((char? x) (write-char x))
        ((symbol? x) (write-string (symbol->string x)))
        ((null? x) (write-string "()"))
        ((eq? x #t) (write-string "#t"))
        ((eq? x #f) (write-string "#f"))
        ((pair? x) (display-list x))
        ((vector? x) (display-vector x))
        ((procedure? x) (write-string "#<procedure>"))
        ((eof-object? x) (write-string "#<eof>"))
        (else (write-string "#<unknown>"))))

(define (display-list xs)
  (write-char #\()
  (let loop ((xs xs) (first #t))
    (cond ((null? xs) (write-char #\)))
          ((pair? xs)
           (begin (unless first (write-char #\space))
                  (display (car xs))
                  (loop (cdr xs) #f)))
          (else (begin (write-string " . ") (display xs) (write-char #\))))))
  (if #f #f))

(define (display-vector v)
  (write-string "#(")
  (let ((n (vector-length v)))
    (let loop ((i 0))
      (when (fx< i n)
        (unless (fx= i 0) (write-char #\space))
        (display (vector-ref v i))
        (loop (fx+ i 1)))))
  (write-char #\)))

(define (write x)
  (cond ((string? x)
         (begin (write-char #\")
                (write-string x)
                (write-char #\")))
        ((char? x) (begin (write-string "#\\") (write-char x)))
        ((pair? x) (write-list x))
        (else (display x))))

(define (write-list xs)
  (write-char #\()
  (let loop ((xs xs) (first #t))
    (cond ((null? xs) (write-char #\)))
          ((pair? xs)
           (begin (unless first (write-char #\space))
                  (write (car xs))
                  (loop (cdr xs) #f)))
          (else (begin (write-string " . ") (write xs) (write-char #\))))))
  (if #f #f))

;; -- variadic conveniences ------------------------------------------------------
;; The runtime delivers rest arguments as a library list (built through the
;; `pair`/`null` representations), so `list` is just the identity on them.
(define (list . xs) xs)

(define (+ . xs) (fold-left fx+ 0 xs))
(define (* . xs) (fold-left fx* 1 xs))
(define (- a . xs)
  (if (null? xs) (fx- 0 a) (fold-left fx- a xs)))
(define (max a . xs) (fold-left fxmax a xs))
(define (min a . xs) (fold-left fxmin a xs))
(define (< a b) (fx< a b))
(define (> a b) (fx> a b))
(define (= a b) (fx= a b))
(define (<= a b) (fx<= a b))
(define (>= a b) (fx>= a b))

;; -- conditions and recoverable traps -----------------------------------------
;; A condition is an ordinary 4-field record of the `condition` rep type
;; declared in reps.scm: [kind-symbol p1 p2 p3].  The VM's trap path builds
;; these on delivery; the accessors below read them back with the same
;; generic rep operations every other data type uses, so they behave
;; identically under the traditional and abstract pipelines.
;;
;; Field meaning by kind:
;;   out-of-memory   p1 = requested words, p2 = capacity words, p3 = phase
;;                   symbol ('alloc or 'collect)
;;   scheme-error / uncaught-condition
;;                   p1 = the raised/irritant value
;;   anything else   payload fields are #f

(define (raise c) (%raise c))

;; `(with-exception-handler h thunk)` runs `thunk` with `h` installed; if a
;; recoverable trap fires inside, `h` receives the condition and its return
;; value becomes the value of the whole form.  `guard` expands into this.
(define (with-exception-handler handler thunk) (%trap-call handler thunk))

(define (condition? x) (%rep-inject boolean-rep (%rep-test condition-rep x)))
(define (condition-kind c) (%rep-ref condition-rep c (%rep-project fixnum-rep 0)))
(define (condition-irritant c) (%rep-ref condition-rep c (%rep-project fixnum-rep 1)))
(define (condition-requested c) (%rep-ref condition-rep c (%rep-project fixnum-rep 1)))
(define (condition-capacity c) (%rep-ref condition-rep c (%rep-project fixnum-rep 2)))
(define (condition-phase c) (%rep-ref condition-rep c (%rep-project fixnum-rep 3)))

;; `apply` spreads a list of arguments into a call. Without compiler
;; support for dynamic arities this is library code with a documented
;; bound of 8 spread arguments (plenty for the classic workloads).
(define (apply f args)
  (let ((n (length args)))
    (cond ((fx= n 0) (f))
          ((fx= n 1) (f (car args)))
          ((fx= n 2) (f (car args) (cadr args)))
          ((fx= n 3) (f (car args) (cadr args) (caddr args)))
          ((fx= n 4) (f (car args) (cadr args) (caddr args) (list-ref args 3)))
          ((fx= n 5) (f (car args) (cadr args) (caddr args) (list-ref args 3)
                        (list-ref args 4)))
          ((fx= n 6) (f (car args) (cadr args) (caddr args) (list-ref args 3)
                        (list-ref args 4) (list-ref args 5)))
          ((fx= n 7) (f (car args) (cadr args) (caddr args) (list-ref args 3)
                        (list-ref args 4) (list-ref args 5) (list-ref args 6)))
          ((fx= n 8) (f (car args) (cadr args) (caddr args) (list-ref args 3)
                        (list-ref args 4) (list-ref args 5) (list-ref args 6)
                        (list-ref args 7)))
          (else (error 'apply-supports-at-most-8-arguments)))))
