//! Representation-declaration scanning ("stage A" of the pipeline).
//!
//! Walks the top-level binding spine of the lowered program and *abstractly
//! interprets* the library's representation declarations:
//!
//! ```scheme
//! (define fixnum-rep (%make-immediate-type 'fixnum 3 0 3))
//! (%provide-rep! 'fixnum fixnum-rep)
//! ```
//!
//! populating the compile-time [`RepRegistry`] and recording which globals
//! hold which representation types.  This runs in **every** pipeline
//! configuration (the loader, GC, and literal encoder need the registry even
//! when the optimizer is off); it never rewrites code.

use std::collections::HashMap;
use std::fmt;
use sxr_ir::anf::{Atom, Bound, Expr, GlobalId, Literal, VarId};
use sxr_ir::prim::PrimOp;
use sxr_ir::rep::{RepId, RepRegistry};
use sxr_sexp::Datum;

/// A problem in the library's representation declarations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanError(pub String);

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "representation scan error: {}", self.0)
    }
}

impl std::error::Error for ScanError {}

/// Scans `main_body`'s top-level spine, registering declarations into
/// `registry`. Returns the map from globals to the representation types they
/// hold.
///
/// # Errors
///
/// Returns [`ScanError`] when a declaration is malformed (non-constant
/// arguments at top level, conflicting parameters, bad roles).
pub fn scan_representations(
    main_body: &Expr,
    registry: &mut RepRegistry,
) -> Result<HashMap<GlobalId, RepId>, ScanError> {
    let mut vars: HashMap<VarId, RepId> = HashMap::new();
    let mut globals: HashMap<GlobalId, RepId> = HashMap::new();
    let mut e = main_body;
    // Walk the straight top-level binding spine.
    while let Expr::Let(v, b, body) = e {
        match b {
            Bound::Prim(PrimOp::MakeImmType, args) => {
                if let Some(rid) = fold_make_imm(args, registry)? {
                    vars.insert(*v, rid);
                }
            }
            Bound::Prim(PrimOp::MakePtrType, args) => {
                if let Some(rid) = fold_make_ptr(args, registry)? {
                    vars.insert(*v, rid);
                }
            }
            Bound::Prim(PrimOp::ProvideRep, args) => {
                let role = const_symbol(&args[0]);
                let rep = rep_of_atom(&args[1], &vars, &globals);
                match (role, rep) {
                    (Some(role), Some(rid)) => {
                        registry
                            .provide_role(&role, rid)
                            .map_err(|err| ScanError(err.0))?;
                    }
                    _ => {
                        return Err(ScanError(
                            "top-level %provide-rep! needs a quoted role symbol and a \
                             statically known representation"
                                .to_string(),
                        ))
                    }
                }
            }
            Bound::GlobalSet(g, a) => {
                if let Some(rid) = rep_of_atom(a, &vars, &globals) {
                    globals.insert(*g, rid);
                } else {
                    // Redefinition of a rep global to a non-rep value
                    // would invalidate the map.
                    globals.remove(g);
                }
            }
            Bound::GlobalGet(g) => {
                if let Some(&rid) = globals.get(g) {
                    vars.insert(*v, rid);
                }
            }
            Bound::Atom(a) => {
                if let Some(rid) = rep_of_atom(a, &vars, &globals) {
                    vars.insert(*v, rid);
                }
            }
            _ => {}
        }
        e = body;
    }
    // Declarations are only recognized on the straight top-level spine;
    // anything past a branch/letrec is runtime-only.
    Ok(globals)
}

fn const_symbol(a: &Atom) -> Option<String> {
    match a {
        Atom::Lit(Literal::Datum(Datum::Symbol(s))) => Some(s.clone()),
        _ => None,
    }
}

fn const_fixnum(a: &Atom) -> Option<i64> {
    match a {
        Atom::Lit(Literal::Datum(Datum::Fixnum(n))) => Some(*n),
        Atom::Lit(Literal::Raw(n)) => Some(*n),
        _ => None,
    }
}

fn const_bool(a: &Atom) -> Option<bool> {
    match a {
        Atom::Lit(Literal::Datum(Datum::Bool(b))) => Some(*b),
        _ => None,
    }
}

fn rep_of_atom(
    a: &Atom,
    vars: &HashMap<VarId, RepId>,
    _globals: &HashMap<GlobalId, RepId>,
) -> Option<RepId> {
    match a {
        Atom::Var(v) => vars.get(v).copied(),
        Atom::Lit(Literal::Rep(r)) => Some(*r),
        _ => None,
    }
}

/// Folds `%make-immediate-type` with constant arguments. Returns `None` when
/// arguments are not constants (a run-time type creation, legal anywhere
/// but not a top-level declaration).
fn fold_make_imm(args: &[Atom], registry: &mut RepRegistry) -> Result<Option<RepId>, ScanError> {
    let (Some(name), Some(tag_bits), Some(tag), Some(shift)) = (
        const_symbol(&args[0]),
        const_fixnum(&args[1]),
        const_fixnum(&args[2]),
        const_fixnum(&args[3]),
    ) else {
        return Ok(None);
    };
    registry
        .intern_immediate(&name, tag_bits as u32, tag as u64, shift as u32)
        .map(Some)
        .map_err(|e| ScanError(e.0))
}

/// Folds `%make-pointer-type` with constant arguments.
fn fold_make_ptr(args: &[Atom], registry: &mut RepRegistry) -> Result<Option<RepId>, ScanError> {
    let (Some(name), Some(tag), Some(disc)) = (
        const_symbol(&args[0]),
        const_fixnum(&args[1]),
        const_bool(&args[2]),
    ) else {
        return Ok(None);
    };
    registry
        .intern_pointer(&name, tag as u64, disc)
        .map(Some)
        .map_err(|e| ScanError(e.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxr_ast::{convert_assignments, Expander};
    use sxr_ir::lower_program;
    use sxr_sexp::parse_all;

    fn scan(src: &str) -> (RepRegistry, HashMap<GlobalId, RepId>, sxr_ast::Program) {
        let mut ex = Expander::new();
        let unit = ex.expand_unit(&parse_all(src).unwrap()).unwrap();
        let prog = ex.into_program(vec![unit]);
        let prog2 = prog.clone();
        let mut p = prog;
        convert_assignments(&mut p).unwrap();
        let lowered = lower_program(p).unwrap();
        let mut reg = RepRegistry::new();
        let globals = scan_representations(&lowered.main_body, &mut reg).unwrap();
        (reg, globals, prog2)
    }

    #[test]
    fn declarations_build_registry() {
        let (reg, globals, prog) = scan(
            "(define fixnum-rep (%make-immediate-type 'fixnum 3 0 3))
             (define pair-rep (%make-pointer-type 'pair 1 #f))
             (%provide-rep! 'fixnum fixnum-rep)
             (%provide-rep! 'pair pair-rep)",
        );
        assert_eq!(reg.len(), 2);
        assert!(reg.role("fixnum").is_some());
        assert!(reg.role("pair").is_some());
        let g_fix = prog.global_by_name("fixnum-rep").unwrap();
        assert_eq!(globals.get(&g_fix), Some(&reg.by_name("fixnum").unwrap()));
    }

    #[test]
    fn non_constant_declaration_is_runtime_only() {
        let (reg, globals, _) = scan(
            "(define bits 3)
             (define dyn-rep (%make-immediate-type 'dyn bits 0 3))",
        );
        // `bits` is a global reference, not a constant: no compile-time entry.
        assert_eq!(reg.len(), 0);
        assert!(globals.is_empty());
    }

    #[test]
    fn provide_requires_known_rep() {
        let mut ex = Expander::new();
        let unit = ex
            .expand_unit(&parse_all("(define x 1) (%provide-rep! 'fixnum x)").unwrap())
            .unwrap();
        let mut p = ex.into_program(vec![unit]);
        convert_assignments(&mut p).unwrap();
        let lowered = lower_program(p).unwrap();
        let mut reg = RepRegistry::new();
        let err = scan_representations(&lowered.main_body, &mut reg).unwrap_err();
        assert!(err.0.contains("provide-rep"));
    }

    #[test]
    fn conflicting_redeclaration_reported() {
        let mut ex = Expander::new();
        let unit = ex
            .expand_unit(
                &parse_all(
                    "(define a (%make-immediate-type 'fixnum 3 0 3))
                     (define b (%make-immediate-type 'fixnum 3 0 4))",
                )
                .unwrap(),
            )
            .unwrap();
        let mut p = ex.into_program(vec![unit]);
        convert_assignments(&mut p).unwrap();
        let lowered = lower_program(p).unwrap();
        let mut reg = RepRegistry::new();
        assert!(scan_representations(&lowered.main_body, &mut reg).is_err());
    }
}
