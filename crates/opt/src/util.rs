//! Shared helpers for the optimizer passes.

use sxr_ir::anf::{Atom, Bound, Expr, Literal, NameSupply, VarId};
use sxr_ir::rep::{roles, RepKind, RepRegistry};
use sxr_sexp::Datum;

/// The machine word a literal encodes to, when that is statically known
/// without a heap (immediates only).
pub fn lit_word(lit: &Literal, reg: &RepRegistry) -> Option<i64> {
    let enc = |role: &str, payload: i64| -> Option<i64> {
        let id = reg.role(role)?;
        match reg.info(id).kind {
            RepKind::Immediate { .. } => Some(reg.encode_immediate(id, payload)),
            RepKind::Pointer { .. } => None,
        }
    };
    match lit {
        Literal::Raw(w) => Some(*w),
        Literal::Unspecified => enc(roles::UNSPECIFIED, 0),
        Literal::Rep(_) => None,
        Literal::Datum(d) => match d {
            Datum::Fixnum(n) => enc(roles::FIXNUM, *n),
            Datum::Bool(b) => enc(roles::BOOLEAN, *b as i64),
            Datum::Char(c) => enc(roles::CHAR, *c as i64),
            Datum::List(items) if items.is_empty() => enc(roles::NULL, 0),
            _ => None,
        },
    }
}

/// Scheme truthiness of a literal, when statically decidable.
pub fn truthiness(lit: &Literal, reg: &RepRegistry) -> Option<bool> {
    match lit {
        Literal::Datum(Datum::Bool(b)) => Some(*b),
        Literal::Datum(_) | Literal::Rep(_) | Literal::Unspecified => Some(true),
        Literal::Raw(w) => {
            let id = reg.role(roles::BOOLEAN)?;
            match reg.info(id).kind {
                RepKind::Immediate { .. } => Some(*w != reg.encode_immediate(id, 0)),
                RepKind::Pointer { .. } => None,
            }
        }
    }
}

/// Rewrites tail calls in `e` into bound calls so the expression can sit in
/// a value position (`Bound::Body`).
pub fn convert_tails(e: Expr, supply: &mut NameSupply) -> Expr {
    match e {
        Expr::TailCall(f, args) => {
            let t = supply.fresh("ret");
            Expr::Let(t, Bound::Call(f, args), Box::new(Expr::Ret(Atom::Var(t))))
        }
        Expr::TailCallKnown(fid, clo, args) => {
            let t = supply.fresh("ret");
            Expr::Let(
                t,
                Bound::CallKnown(fid, clo, args),
                Box::new(Expr::Ret(Atom::Var(t))),
            )
        }
        Expr::Let(v, b, body) => Expr::Let(v, b, Box::new(convert_tails(*body, supply))),
        Expr::If(t, a, b) => Expr::If(
            t,
            Box::new(convert_tails(*a, supply)),
            Box::new(convert_tails(*b, supply)),
        ),
        Expr::LetRec(binds, body) => Expr::LetRec(binds, Box::new(convert_tails(*body, supply))),
        Expr::Ret(_) => e,
    }
}

/// Attempts to splice a straight-line value expression (a chain of lets and
/// letrecs ending in a single `Ret`) in front of `k`, binding the result to
/// `v`. Returns `Err` with the inputs when `e` branches.
#[allow(clippy::result_large_err)] // the Err hands the caller its inputs back
pub fn try_splice(e: Expr, v: VarId, k: Expr) -> Result<Expr, (Expr, Expr)> {
    fn straight(e: &Expr) -> bool {
        match e {
            Expr::Ret(_) => true,
            Expr::Let(_, _, body) => straight(body),
            Expr::LetRec(_, body) => straight(body),
            Expr::If(..) | Expr::TailCall(..) | Expr::TailCallKnown(..) => false,
        }
    }
    if !straight(&e) {
        return Err((e, k));
    }
    fn go(e: Expr, v: VarId, k: Expr) -> Expr {
        match e {
            Expr::Ret(a) => Expr::Let(v, Bound::Atom(a), Box::new(k)),
            Expr::Let(w, b, body) => Expr::Let(w, b, Box::new(go(*body, v, k))),
            Expr::LetRec(binds, body) => Expr::LetRec(binds, Box::new(go(*body, v, k))),
            _ => unreachable!("checked straight-line"),
        }
    }
    Ok(go(e, v, k))
}

/// True when executing `e` can never deliver a value (every path reaches
/// `%error` first).
pub fn diverges(e: &Expr) -> bool {
    match e {
        Expr::Let(_, Bound::Prim(sxr_ir::prim::PrimOp::Error, _), _) => true,
        Expr::Let(_, Bound::If(_, a, b), body) => (diverges(a) && diverges(b)) || diverges(body),
        Expr::Let(_, Bound::Body(inner), body) => diverges(inner) || diverges(body),
        Expr::Let(_, _, body) => diverges(body),
        Expr::If(_, a, b) => diverges(a) && diverges(b),
        Expr::LetRec(_, body) => diverges(body),
        Expr::Ret(_) | Expr::TailCall(..) | Expr::TailCallKnown(..) => false,
    }
}

/// Sinks the continuation `k` into a value expression: produces code equal
/// to "bind `e`'s value to `v`, then `k`", without ever duplicating `k`.
/// Conditionals are crossed only when one branch diverges (the continuation
/// then belongs entirely to the other branch — which is also what lets
/// dominance facts from passed checks survive).
///
/// Returns `Err` with the inputs when `e` branches two live ways.
#[allow(clippy::result_large_err)] // Err gives the caller its inputs back
pub fn sink_value(e: Expr, v: VarId, k: Expr) -> Result<Expr, (Expr, Expr)> {
    fn sinkable(e: &Expr) -> bool {
        match e {
            Expr::Ret(_) => true,
            Expr::Let(_, _, body) => sinkable(body),
            Expr::LetRec(_, body) => sinkable(body),
            Expr::If(_, a, b) => (diverges(b) && sinkable(a)) || (diverges(a) && sinkable(b)),
            Expr::TailCall(..) | Expr::TailCallKnown(..) => false,
        }
    }
    if !sinkable(&e) {
        return Err((e, k));
    }
    fn go(e: Expr, v: VarId, k: Expr) -> Expr {
        match e {
            Expr::Ret(a) => Expr::Let(v, Bound::Atom(a), Box::new(k)),
            Expr::Let(w, b, body) => Expr::Let(w, b, Box::new(go(*body, v, k))),
            Expr::LetRec(binds, body) => Expr::LetRec(binds, Box::new(go(*body, v, k))),
            Expr::If(t, a, b) => {
                if diverges(&b) {
                    Expr::If(t, Box::new(go(*a, v, k)), b)
                } else {
                    Expr::If(t, a, Box::new(go(*b, v, k)))
                }
            }
            Expr::TailCall(..) | Expr::TailCallKnown(..) => {
                unreachable!("checked by sinkable")
            }
        }
    }
    Ok(go(e, v, k))
}

/// True when dropping an unused binding of `b` cannot change behaviour.
pub fn bound_deletable(b: &Bound) -> bool {
    match b {
        Bound::Atom(_)
        | Bound::GlobalGet(_)
        | Bound::Lambda(_)
        | Bound::MakeClosure(..)
        | Bound::ClosureRef(_) => true,
        Bound::Prim(op, _) => op.deletable(),
        Bound::Call(..) | Bound::CallKnown(..) | Bound::GlobalSet(..) | Bound::ClosurePatch(..) => {
            false
        }
        Bound::If(_, t, e) => expr_deletable(t) && expr_deletable(e),
        Bound::Body(e) => expr_deletable(e),
    }
}

fn expr_deletable(e: &Expr) -> bool {
    match e {
        Expr::Ret(_) => true,
        Expr::Let(_, b, body) => bound_deletable(b) && expr_deletable(body),
        Expr::If(_, t, e2) => expr_deletable(t) && expr_deletable(e2),
        Expr::LetRec(_, body) => expr_deletable(body),
        Expr::TailCall(..) | Expr::TailCallKnown(..) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxr_ir::prim::PrimOp;

    #[test]
    fn lit_word_roles() {
        let mut reg = RepRegistry::new();
        let fx = reg.intern_immediate("fixnum", 3, 0, 3).unwrap();
        reg.provide_role("fixnum", fx).unwrap();
        assert_eq!(lit_word(&Literal::Datum(Datum::Fixnum(5)), &reg), Some(40));
        assert_eq!(lit_word(&Literal::Raw(9), &reg), Some(9));
        assert_eq!(
            lit_word(&Literal::Datum(Datum::Bool(true)), &reg),
            None,
            "no role"
        );
    }

    #[test]
    fn truthiness_rules() {
        let mut reg = RepRegistry::new();
        let bo = reg.intern_immediate("boolean", 8, 0b010, 8).unwrap();
        reg.provide_role("boolean", bo).unwrap();
        assert_eq!(
            truthiness(&Literal::Datum(Datum::Bool(false)), &reg),
            Some(false)
        );
        assert_eq!(
            truthiness(&Literal::Datum(Datum::Fixnum(0)), &reg),
            Some(true)
        );
        assert_eq!(truthiness(&Literal::Raw(0b010), &reg), Some(false));
        assert_eq!(truthiness(&Literal::Raw(0b1_0000_0010), &reg), Some(true));
    }

    #[test]
    fn splice_straight_line() {
        let e = Expr::Let(
            1,
            Bound::Prim(PrimOp::WordAdd, vec![Atom::raw(1), Atom::raw(2)]),
            Box::new(Expr::Ret(Atom::Var(1))),
        );
        let spliced = try_splice(e, 7, Expr::Ret(Atom::Var(7))).unwrap();
        match spliced {
            Expr::Let(1, _, rest) => match *rest {
                Expr::Let(7, Bound::Atom(Atom::Var(1)), _) => {}
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn splice_rejects_branches() {
        let e = Expr::If(
            sxr_ir::anf::Test::NonZero(Atom::raw(1)),
            Box::new(Expr::Ret(Atom::raw(1))),
            Box::new(Expr::Ret(Atom::raw(2))),
        );
        assert!(try_splice(e, 7, Expr::Ret(Atom::Var(7))).is_err());
    }

    #[test]
    fn tails_converted() {
        let mut supply = NameSupply::from_names(vec![]);
        let e = Expr::TailCall(Atom::Var(0), vec![]);
        let out = convert_tails(e, &mut supply);
        assert!(matches!(out, Expr::Let(_, Bound::Call(..), _)));
    }
}
