//! Whole-program global analysis.
//!
//! Identifies globals that are defined exactly once at top level and never
//! assigned again; those bound to lambdas become inlining candidates, those
//! bound to constants become propagatable. Globals participating in a
//! reference cycle (mutual recursion) are excluded from inlining to keep the
//! inliner terminating.

use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use sxr_ir::anf::{Atom, Bound, Expr, FunDef, GlobalId, Literal, VarId};

/// What is statically known about a global.
#[derive(Debug, Clone)]
pub enum GlobalInfo {
    /// Single definition to a constant.
    Const(Literal),
    /// Single definition to a lambda (inlinable unless `recursive`).
    Fun {
        /// The definition (shared; the inliner refreshes copies).
        def: Rc<FunDef>,
        /// True when the global participates in a reference cycle.
        recursive: bool,
    },
}

/// Computes [`GlobalInfo`] for every eligible global.
pub fn analyze_globals(
    main_body: &Expr,
    rep_globals: &HashMap<GlobalId, sxr_ir::rep::RepId>,
) -> HashMap<GlobalId, GlobalInfo> {
    // 1. Count assignments everywhere.
    let mut set_counts: HashMap<GlobalId, usize> = HashMap::new();
    count_sets(main_body, &mut set_counts);

    // 2. Walk the top-level spine collecting single definitions.
    let mut lambda_vars: HashMap<VarId, Rc<FunDef>> = HashMap::new();
    let mut out: HashMap<GlobalId, GlobalInfo> = HashMap::new();
    let mut e = main_body;
    while let Expr::Let(v, b, body) = e {
        match b {
            Bound::Lambda(f) => {
                lambda_vars.insert(*v, Rc::new(f.clone()));
            }
            Bound::GlobalSet(g, a) if set_counts.get(g) == Some(&1) => match a {
                Atom::Lit(l) => {
                    out.insert(*g, GlobalInfo::Const(l.clone()));
                }
                Atom::Var(src) => {
                    if let Some(def) = lambda_vars.get(src) {
                        out.insert(
                            *g,
                            GlobalInfo::Fun {
                                def: Rc::clone(def),
                                recursive: false,
                            },
                        );
                    }
                }
            },
            _ => {}
        }
        e = body;
    }
    // Representation globals are constants of rep type.
    for (g, rid) in rep_globals {
        if set_counts.get(g) == Some(&1) {
            out.insert(*g, GlobalInfo::Const(Literal::Rep(*rid)));
        }
    }

    // 3. Mark cycle members as recursive.
    let graph: HashMap<GlobalId, HashSet<GlobalId>> = out
        .iter()
        .filter_map(|(g, info)| match info {
            GlobalInfo::Fun { def, .. } => {
                let mut refs = HashSet::new();
                collect_global_refs(&def.body, &mut refs);
                Some((*g, refs))
            }
            _ => None,
        })
        .collect();
    let cyclic = find_cyclic(&graph);
    for g in cyclic {
        if let Some(GlobalInfo::Fun { recursive, .. }) = out.get_mut(&g) {
            *recursive = true;
        }
    }
    out
}

fn count_sets(e: &Expr, out: &mut HashMap<GlobalId, usize>) {
    match e {
        Expr::Let(_, b, body) => {
            match b {
                Bound::GlobalSet(g, _) => *out.entry(*g).or_insert(0) += 1,
                Bound::Lambda(f) => count_sets(&f.body, out),
                Bound::If(_, t, e2) => {
                    count_sets(t, out);
                    count_sets(e2, out);
                }
                Bound::Body(inner) => count_sets(inner, out),
                _ => {}
            }
            count_sets(body, out);
        }
        Expr::If(_, t, e2) => {
            count_sets(t, out);
            count_sets(e2, out);
        }
        Expr::LetRec(binds, body) => {
            for (_, f) in binds {
                count_sets(&f.body, out);
            }
            count_sets(body, out);
        }
        Expr::Ret(_) | Expr::TailCall(..) | Expr::TailCallKnown(..) => {}
    }
}

fn collect_global_refs(e: &Expr, out: &mut HashSet<GlobalId>) {
    match e {
        Expr::Let(_, b, body) => {
            match b {
                Bound::GlobalGet(g) | Bound::GlobalSet(g, _) => {
                    out.insert(*g);
                }
                Bound::Lambda(f) => collect_global_refs(&f.body, out),
                Bound::If(_, t, e2) => {
                    collect_global_refs(t, out);
                    collect_global_refs(e2, out);
                }
                Bound::Body(inner) => collect_global_refs(inner, out),
                _ => {}
            }
            collect_global_refs(body, out);
        }
        Expr::If(_, t, e2) => {
            collect_global_refs(t, out);
            collect_global_refs(e2, out);
        }
        Expr::LetRec(binds, body) => {
            for (_, f) in binds {
                collect_global_refs(&f.body, out);
            }
            collect_global_refs(body, out);
        }
        Expr::Ret(_) | Expr::TailCall(..) | Expr::TailCallKnown(..) => {}
    }
}

/// Returns every node that can reach itself (members of nontrivial SCCs,
/// plus direct self-loops).
fn find_cyclic(graph: &HashMap<GlobalId, HashSet<GlobalId>>) -> HashSet<GlobalId> {
    // Simple DFS-based reachability; graphs here are small (library size).
    let mut cyclic = HashSet::new();
    for &start in graph.keys() {
        let mut stack: Vec<GlobalId> = graph
            .get(&start)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let mut seen: HashSet<GlobalId> = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == start {
                cyclic.insert(start);
                break;
            }
            if seen.insert(n) {
                if let Some(next) = graph.get(&n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
    }
    cyclic
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxr_ast::{convert_assignments, Expander};
    use sxr_ir::lower_program;
    use sxr_sexp::parse_all;

    fn analyze(src: &str) -> (HashMap<GlobalId, GlobalInfo>, sxr_ast::Program) {
        let mut ex = Expander::new();
        let unit = ex.expand_unit(&parse_all(src).unwrap()).unwrap();
        let keep = ex.into_program(vec![unit]);
        let mut p = keep.clone();
        convert_assignments(&mut p).unwrap();
        let lowered = lower_program(p).unwrap();
        (analyze_globals(&lowered.main_body, &HashMap::new()), keep)
    }

    #[test]
    fn single_def_lambda_is_known() {
        let (info, prog) = analyze("(define (id x) x)");
        let g = prog.global_by_name("id").unwrap();
        assert!(matches!(
            info.get(&g),
            Some(GlobalInfo::Fun {
                recursive: false,
                ..
            })
        ));
    }

    #[test]
    fn const_global_is_known() {
        let (info, prog) = analyze("(define limit 100)");
        let g = prog.global_by_name("limit").unwrap();
        assert!(matches!(info.get(&g), Some(GlobalInfo::Const(_))));
    }

    #[test]
    fn reassigned_global_is_unknown() {
        let (info, prog) = analyze("(define x 1) (set! x 2)");
        let g = prog.global_by_name("x").unwrap();
        assert!(!info.contains_key(&g));
    }

    #[test]
    fn self_recursion_marked() {
        let (info, prog) = analyze("(define (loop n) (loop n))");
        let g = prog.global_by_name("loop").unwrap();
        assert!(matches!(
            info.get(&g),
            Some(GlobalInfo::Fun {
                recursive: true,
                ..
            })
        ));
    }

    #[test]
    fn mutual_recursion_marked() {
        let (info, prog) = analyze(
            "(define (even? n) (if (%word=? n 0) #t (odd? (%word- n 8))))
             (define (odd? n) (if (%word=? n 0) #f (even? (%word- n 8))))
             (define (leaf x) x)",
        );
        let ge = prog.global_by_name("even?").unwrap();
        let go = prog.global_by_name("odd?").unwrap();
        let gl = prog.global_by_name("leaf").unwrap();
        assert!(matches!(
            info.get(&ge),
            Some(GlobalInfo::Fun {
                recursive: true,
                ..
            })
        ));
        assert!(matches!(
            info.get(&go),
            Some(GlobalInfo::Fun {
                recursive: true,
                ..
            })
        ));
        assert!(matches!(
            info.get(&gl),
            Some(GlobalInfo::Fun {
                recursive: false,
                ..
            })
        ));
    }
}
