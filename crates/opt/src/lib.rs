//! The optimizer: the paper's "few generally-useful optimizing
//! transformations".
//!
//! Nothing in this crate knows what a pair or a fixnum is.  The passes are:
//!
//! | pass | module | what it knows |
//! |------|--------|----------------|
//! | inlining | [`inline`] | call structure |
//! | constant & copy propagation | [`constfold`] | algebra of constants (incl. folding the rep-type constructors themselves) |
//! | representation specialization | [`repspec`] | that a *constant* rep-type operand lets a generic op become word/memory ops |
//! | known-bits algebraic simplification | [`bits`] | bit arithmetic + the type assumptions rep operations carry |
//! | common-subexpression elimination | [`cse`] | purity |
//! | dead-code elimination / cleanup | [`cleanup`] | effect-freeness |
//!
//! The pass manager ([`optimize`]) runs them in rounds to a fixpoint. Every
//! pass can be disabled individually — the ablation experiment (Table 3)
//! measures exactly how much each one matters.

mod bits;
mod cleanup;
mod constfold;
mod cse;
mod globals;
mod inline;
mod repspec;
mod scan;
mod util;

pub use bits::bits;
pub use cleanup::cleanup;
pub use constfold::{constfold, FoldError};
pub use cse::cse;
pub use globals::{analyze_globals, GlobalInfo};
pub use inline::{inline, InlineOptions};
pub use repspec::{repspec, Assumptions};
pub use scan::{scan_representations, ScanError};
pub use util::{lit_word, truthiness};

use sxr_ir::anf::{Expr, NameSupply};
use sxr_ir::rep::RepRegistry;

/// Which passes run, and their knobs.
#[derive(Debug, Clone)]
pub struct OptOptions {
    /// Enable procedure inlining.
    pub inline: bool,
    /// Inlining size threshold (IR nodes).
    pub inline_threshold: usize,
    /// Enable constant/copy propagation and folding.
    pub constfold: bool,
    /// Enable representation specialization.
    pub repspec: bool,
    /// Enable known-bits algebraic simplification.
    pub bits: bool,
    /// Enable common-subexpression elimination.
    pub cse: bool,
    /// Enable dead-code elimination / cleanup.
    pub dce: bool,
    /// Maximum optimization rounds.
    pub rounds: usize,
    /// Run the semantic verifier after every pass, attributing any broken
    /// IR invariant to the pass that broke it. Defaults on in debug builds.
    pub verify: bool,
}

impl Default for OptOptions {
    fn default() -> OptOptions {
        OptOptions {
            inline: true,
            inline_threshold: 48,
            constfold: true,
            repspec: true,
            bits: true,
            cse: true,
            dce: true,
            rounds: 5,
            verify: cfg!(debug_assertions),
        }
    }
}

impl OptOptions {
    /// All passes off (the `AbstractNoOpt` configuration still runs the
    /// representation scan, but nothing rewrites).
    pub fn none() -> OptOptions {
        OptOptions {
            inline: false,
            inline_threshold: 0,
            constfold: false,
            repspec: false,
            bits: false,
            cse: false,
            dce: false,
            rounds: 0,
            verify: cfg!(debug_assertions),
        }
    }

    /// Returns a copy with the named pass disabled (for ablations).
    /// Recognized names: `inline`, `constfold`, `repspec`, `bits`, `cse`,
    /// `dce`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown pass name.
    pub fn without(mut self, pass: &str) -> OptOptions {
        match pass {
            "inline" => self.inline = false,
            "constfold" => self.constfold = false,
            "repspec" => self.repspec = false,
            "bits" => self.bits = false,
            "cse" => self.cse = false,
            "dce" => self.dce = false,
            other => panic!("unknown pass `{other}`"),
        }
        self
    }
}

/// What the optimizer did (for reports and tests).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptReport {
    /// Rounds actually executed.
    pub rounds: usize,
    /// Total call sites inlined.
    pub inlined: usize,
    /// Total algebraic rewrites.
    pub bit_rewrites: usize,
    /// Total subexpressions eliminated.
    pub cse_hits: usize,
    /// Total cleanup rewrites.
    pub cleaned: usize,
}

/// Optimization failure (malformed representation declarations discovered
/// while folding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptError(pub String);

impl std::fmt::Display for OptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "optimization error: {}", self.0)
    }
}

impl std::error::Error for OptError {}

/// Verifies the program against the inter-pass invariants, attributing any
/// violation to `pass`. Called by [`optimize`] after every enabled pass
/// when [`OptOptions::verify`] is set; public so pass authors can wrap
/// experimental rewrites the same way.
///
/// # Errors
///
/// Returns [`OptError`] naming `pass` and the violated invariant, with a
/// pretty-printed IR excerpt when one is available.
pub fn verify_pass(pass: &str, e: &Expr, registry: &RepRegistry) -> Result<(), OptError> {
    sxr_analysis::verify_expr(e, registry)
        .map_err(|err| OptError(format!("IR verification failed after pass `{pass}`: {err}")))
}

/// Runs the full pass pipeline over the whole-program expression.
///
/// `registry` must already contain the representation declarations (run
/// [`scan_representations`] first); `rep_globals` is that scan's output.
///
/// When [`OptOptions::verify`] is set (the default in debug builds), the
/// inter-pass verifier runs after every enabled pass and a broken invariant
/// surfaces as an [`OptError`] naming the offending pass.
///
/// # Errors
///
/// Returns [`OptError`] if constant-folding a representation declaration
/// fails, or if inter-pass verification catches a pass breaking the IR.
pub fn optimize(
    mut e: Expr,
    registry: &mut RepRegistry,
    rep_globals: &std::collections::HashMap<sxr_ir::anf::GlobalId, sxr_ir::rep::RepId>,
    supply: &mut NameSupply,
    options: &OptOptions,
) -> Result<(Expr, OptReport), OptError> {
    let mut report = OptReport::default();
    let mut assumptions = Assumptions::new();
    if options.verify {
        // Check the input first so pre-existing damage is not pinned on
        // the first pass of the round.
        verify_pass("input", &e, registry)?;
    }
    for _ in 0..options.rounds {
        let size_before = e.size();
        let mut round_changed = 0usize;

        if options.inline {
            let ginfo = analyze_globals(&e, rep_globals);
            let iopts = InlineOptions {
                threshold: options.inline_threshold,
                ..InlineOptions::default()
            };
            let (e2, n) = inline(e, &ginfo, supply, &iopts);
            e = e2;
            report.inlined += n;
            round_changed += n;
            if options.verify {
                verify_pass("inline", &e, registry)?;
            }
        }
        if options.constfold {
            let ginfo = analyze_globals(&e, rep_globals);
            e = constfold(e, &ginfo, registry).map_err(|err| OptError(err.0))?;
            if options.verify {
                verify_pass("constfold", &e, registry)?;
            }
        }
        if options.repspec {
            let (e2, assume) = repspec(e, registry, supply);
            e = e2;
            assumptions.extend(assume);
            if options.verify {
                verify_pass("repspec", &e, registry)?;
            }
        }
        if options.bits {
            let (e2, n) = bits(e, registry, &assumptions);
            e = e2;
            report.bit_rewrites += n;
            round_changed += n;
            if options.verify {
                verify_pass("bits", &e, registry)?;
            }
            if options.constfold {
                // Bit rewrites expose constants (e.g. folded type tests).
                let ginfo = analyze_globals(&e, rep_globals);
                e = constfold(e, &ginfo, registry).map_err(|err| OptError(err.0))?;
                if options.verify {
                    verify_pass("constfold", &e, registry)?;
                }
            }
        }
        if options.cse {
            let (e2, n) = cse(e);
            e = e2;
            report.cse_hits += n;
            round_changed += n;
            if options.verify {
                verify_pass("cse", &e, registry)?;
            }
        }
        if options.dce {
            loop {
                let (e2, n) = cleanup(e);
                e = e2;
                report.cleaned += n;
                round_changed += n;
                if n == 0 {
                    break;
                }
            }
            if options.verify {
                verify_pass("dce", &e, registry)?;
            }
        }
        report.rounds += 1;
        if round_changed == 0 && e.size() == size_before {
            break;
        }
    }
    Ok((e, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use sxr_ir::anf::{Atom, Bound};

    /// A deliberately broken "pass": duplicates the outermost binding,
    /// violating single assignment.
    fn broken_rewrite(e: Expr) -> Expr {
        match e {
            Expr::Let(v, b, body) => {
                let inner = Expr::Let(v, b.clone(), body);
                Expr::Let(v, b, Box::new(inner))
            }
            other => other,
        }
    }

    #[test]
    fn broken_pass_is_caught_and_attributed() {
        let reg = RepRegistry::new();
        let good = Expr::Let(
            1,
            Bound::Atom(Atom::raw(5)),
            Box::new(Expr::Ret(Atom::Var(1))),
        );
        assert!(verify_pass("bits", &good, &reg).is_ok());
        let bad = broken_rewrite(good);
        let err = verify_pass("bits", &bad, &reg).unwrap_err();
        assert!(err.0.contains("after pass `bits`"), "{err}");
        assert!(err.0.contains("defined twice"), "{err}");
    }

    #[test]
    fn optimize_rejects_broken_input_before_blaming_a_pass() {
        let mut reg = RepRegistry::new();
        let mut supply = NameSupply::default();
        let bad = Expr::Ret(Atom::Var(7));
        let opts = OptOptions {
            verify: true,
            ..OptOptions::default()
        };
        let err = optimize(bad, &mut reg, &HashMap::new(), &mut supply, &opts).unwrap_err();
        assert!(err.0.contains("after pass `input`"), "{err}");
        assert!(err.0.contains("v7"), "{err}");
    }

    #[test]
    fn optimize_passes_clean_programs_with_verification_on() {
        let mut reg = RepRegistry::new();
        let fx = reg.intern_immediate("fixnum", 3, 0, 3).unwrap();
        let mut supply = NameSupply::from_names(vec!["v".into(); 10]);
        let e = Expr::Let(
            1,
            Bound::Prim(
                sxr_ir::prim::PrimOp::RepInject,
                vec![Atom::Lit(sxr_ir::anf::Literal::Rep(fx)), Atom::raw(5)],
            ),
            Box::new(Expr::Ret(Atom::Var(1))),
        );
        let opts = OptOptions {
            verify: true,
            ..OptOptions::default()
        };
        let (out, _) = optimize(e, &mut reg, &HashMap::new(), &mut supply, &opts).unwrap();
        sxr_analysis::verify_expr(&out, &reg).unwrap();
    }
}
