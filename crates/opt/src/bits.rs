//! Known-bits analysis and algebraic simplification.
//!
//! This is the pass that makes abstractly-written primitives compile like
//! hand-written ones.  After inlining + specialization, `(fx+ a b)` is
//!
//! ```text
//! let pa = a >> 3        ; binding justifies: a's low 3 bits are 0
//! let pb = b >> 3
//! let s  = pa + pb
//! let r  = s << 3
//! ```
//!
//! Tracking which low bits of each value are known — from shifts, masks,
//! constants, and the *type assumptions* that specialized representation
//! operations justify — the pass rewrites `r` to a single `a + b`, turns
//! comparisons of projections into comparisons of the tagged values, folds
//! statically-decided type tests, and rewrites `truthy` tests of freshly
//! made booleans into raw zero tests so the code generator can fuse them
//! into one branch.
//!
//! **Facts are flow-scoped.** A fact becomes active at the binding that
//! justifies it and applies only to code dominated by that binding; facts
//! arising inside one branch never reach a sibling branch or the join.
//! (An unscoped version of this pass once folded `display`'s type dispatch
//! into the symbol arm, because the symbol arm's field access "proved" the
//! argument was a symbol everywhere.)

use crate::repspec::Assumptions;
use std::collections::HashMap;
use sxr_ir::anf::{Atom, Bound, Expr, Literal, Test, VarId};
use sxr_ir::prim::PrimOp;
use sxr_ir::rep::{roles, RepKind, RepRegistry};

/// Runs the pass. Returns the rewritten program and a change count.
pub fn bits(e: Expr, registry: &RepRegistry, assumptions: &Assumptions) -> (Expr, usize) {
    let bool_pattern = registry
        .role(roles::BOOLEAN)
        .and_then(|id| match registry.info(id).kind {
            RepKind::Immediate { tag, shift, .. } => Some((tag as i64, shift as i64)),
            RepKind::Pointer { .. } => None,
        });
    let false_word = registry
        .role(roles::BOOLEAN)
        .and_then(|id| match registry.info(id).kind {
            RepKind::Immediate { .. } => Some(registry.encode_immediate(id, 0)),
            RepKind::Pointer { .. } => None,
        });
    let mut st = Bits {
        registry,
        assumptions,
        defs: HashMap::new(),
        bool_pattern,
        false_word,
        changed: 0,
    };
    let mut facts = Facts::new();
    let out = st.walk(e, &mut facts);
    (out, st.changed)
}

const MAXK: u32 = 48;
const DEPTH: u32 = 32;

fn mask(k: u32) -> u64 {
    if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

/// Dominance-scoped facts: `var -> (k, t)` meaning the low `k` bits equal
/// `t` on every path reaching the current program point.
type Facts = HashMap<VarId, (u32, u64)>;

struct Bits<'a> {
    registry: &'a RepRegistry,
    assumptions: &'a Assumptions,
    /// Definitions of pure prim-bound variables (SSA-global).
    defs: HashMap<VarId, (PrimOp, Vec<Atom>)>,
    bool_pattern: Option<(i64, i64)>,
    false_word: Option<i64>,
    changed: usize,
}

impl Bits<'_> {
    fn lowtag(&self, a: &Atom, facts: &Facts, depth: u32) -> (u32, u64) {
        match a {
            Atom::Lit(Literal::Raw(c)) => (MAXK, *c as u64 & mask(MAXK)),
            Atom::Lit(_) => (0, 0),
            Atom::Var(v) => {
                let from_fact = facts.get(v).copied().unwrap_or((0, 0));
                if depth == 0 {
                    return from_fact;
                }
                let from_def = self.derive(*v, facts, depth - 1);
                if from_def.0 >= from_fact.0 {
                    from_def
                } else {
                    from_fact
                }
            }
        }
    }

    fn derive(&self, v: VarId, facts: &Facts, depth: u32) -> (u32, u64) {
        let Some((op, args)) = self.defs.get(&v) else {
            return (0, 0);
        };
        use PrimOp::*;
        match op {
            WordShl => {
                let (kx, tx) = self.lowtag(&args[0], facts, depth);
                if let Atom::Lit(Literal::Raw(s)) = args[1] {
                    let s = (s & 63) as u32;
                    let k = (kx + s).min(MAXK);
                    (k, (tx << s) & mask(k))
                } else {
                    (0, 0)
                }
            }
            WordShr => {
                let (kx, tx) = self.lowtag(&args[0], facts, depth);
                if let Atom::Lit(Literal::Raw(s)) = args[1] {
                    let s = (s & 63) as u32;
                    if kx > s {
                        (kx - s, tx >> s)
                    } else {
                        (0, 0)
                    }
                } else {
                    (0, 0)
                }
            }
            WordAnd => {
                let (kx, tx) = self.lowtag(&args[0], facts, depth);
                if let Atom::Lit(Literal::Raw(m)) = args[1] {
                    let tz = (m as u64).trailing_zeros().min(MAXK);
                    let k = kx.max(tz);
                    (k, (tx & m as u64) & mask(k))
                } else {
                    let (ky, ty) = self.lowtag(&args[1], facts, depth);
                    let k = kx.min(ky);
                    (k, (tx & ty) & mask(k))
                }
            }
            WordOr | WordXor => {
                let (kx, tx) = self.lowtag(&args[0], facts, depth);
                let (ky, ty) = self.lowtag(&args[1], facts, depth);
                let k = kx.min(ky);
                let t = if *op == WordOr { tx | ty } else { tx ^ ty };
                (k, t & mask(k))
            }
            WordAdd | WordSub => {
                let (kx, tx) = self.lowtag(&args[0], facts, depth);
                let (ky, ty) = self.lowtag(&args[1], facts, depth);
                let k = kx.min(ky);
                let t = if *op == WordAdd {
                    tx.wrapping_add(ty)
                } else {
                    tx.wrapping_sub(ty)
                };
                (k, t & mask(k))
            }
            WordMul => {
                let (kx, tx) = self.lowtag(&args[0], facts, depth);
                let (ky, ty) = self.lowtag(&args[1], facts, depth);
                let k = kx.min(ky);
                (k, tx.wrapping_mul(ty) & mask(k))
            }
            _ => (0, 0),
        }
    }

    fn def_of(&self, a: &Atom) -> Option<&(PrimOp, Vec<Atom>)> {
        self.defs.get(&a.as_var()?)
    }

    /// `x << s` reconstructed without the shift, when possible.
    fn reconstruct_shl(&self, x: &Atom, s: u32, facts: &Facts) -> Option<Bound> {
        if let Some(a) = self.reconstruct_atom(x, s, facts) {
            return Some(Bound::Atom(a));
        }
        let (op, args) = self.def_of(x)?.clone();
        use PrimOp::*;
        match op {
            WordAdd | WordSub => {
                let ra = self.reconstruct_atom(&args[0], s, facts)?;
                let rb = self.reconstruct_atom(&args[1], s, facts)?;
                Some(Bound::Prim(op, vec![ra, rb]))
            }
            WordMul => {
                if let Some(ra) = self.reconstruct_atom(&args[0], s, facts) {
                    Some(Bound::Prim(WordMul, vec![ra, args[1].clone()]))
                } else {
                    self.reconstruct_atom(&args[1], s, facts)
                        .map(|rb| Bound::Prim(WordMul, vec![args[0].clone(), rb]))
                }
            }
            _ => None,
        }
    }

    /// An atom equal to `x << s`, when statically available.
    fn reconstruct_atom(&self, x: &Atom, s: u32, facts: &Facts) -> Option<Atom> {
        if let Atom::Lit(Literal::Raw(c)) = x {
            return Some(Atom::Lit(Literal::Raw(c << s)));
        }
        let (op, args) = self.def_of(x)?.clone();
        if op == PrimOp::WordShr {
            if let Atom::Lit(Literal::Raw(s2)) = args[1] {
                if s2 as u32 == s {
                    let (k, t) = self.lowtag(&args[0], facts, DEPTH);
                    if k >= s && t & mask(s) == 0 {
                        return Some(args[0].clone());
                    }
                }
            }
        }
        None
    }

    /// Tries to rewrite one prim binding; returns the replacement.
    fn rewrite(&self, op: PrimOp, args: &[Atom], facts: &Facts) -> Option<Bound> {
        use PrimOp::*;
        match op {
            WordShl => {
                if let Atom::Lit(Literal::Raw(s)) = args[1] {
                    if s == 0 {
                        return Some(Bound::Atom(args[0].clone()));
                    }
                    let s2 = s as u32;
                    if let Some(b) = self.reconstruct_shl(&args[0], s2, facts) {
                        return Some(b);
                    }
                    // Shift combining across unequal widths:
                    //   (x >> s1) << s2  ==  x >> (s1-s2)   when x's low
                    //     s1 bits t satisfy t >> (s1-s2) == 0,
                    //   (x >> s1) << s2  ==  x << (s2-s1)   when x's low
                    //     s1 bits are 0.
                    // These are what let abstract char<->fixnum conversions
                    // reach the traditional single-shift forms.
                    if let Some((PrimOp::WordShr, inner)) = self.def_of(&args[0]).cloned() {
                        if let Atom::Lit(Literal::Raw(s1)) = inner[1] {
                            let s1 = s1 as u32;
                            let (k, t) = self.lowtag(&inner[0], facts, DEPTH);
                            if k >= s1 {
                                if s1 > s2 && (t >> (s1 - s2)) == 0 {
                                    return Some(Bound::Prim(
                                        PrimOp::WordShr,
                                        vec![
                                            inner[0].clone(),
                                            Atom::Lit(Literal::Raw((s1 - s2) as i64)),
                                        ],
                                    ));
                                }
                                if s2 > s1 && t == 0 {
                                    return Some(Bound::Prim(
                                        PrimOp::WordShl,
                                        vec![
                                            inner[0].clone(),
                                            Atom::Lit(Literal::Raw((s2 - s1) as i64)),
                                        ],
                                    ));
                                }
                            }
                        }
                    }
                    return None;
                }
                None
            }
            WordShr => {
                if let Atom::Lit(Literal::Raw(s)) = args[1] {
                    if s == 0 {
                        return Some(Bound::Atom(args[0].clone()));
                    }
                    // shr(shl(a, s), s) == a under the no-overflow contract
                    // of unchecked fixnum arithmetic.
                    if let Some((PrimOp::WordShl, inner)) = self.def_of(&args[0]).cloned() {
                        if inner[1] == Atom::Lit(Literal::Raw(s)) {
                            return Some(Bound::Atom(inner[0].clone()));
                        }
                    }
                }
                None
            }
            WordAdd | WordSub | WordOr | WordXor => {
                if args[1] == Atom::Lit(Literal::Raw(0)) {
                    return Some(Bound::Atom(args[0].clone()));
                }
                if (op == WordAdd || op == WordOr || op == WordXor)
                    && args[0] == Atom::Lit(Literal::Raw(0))
                {
                    return Some(Bound::Atom(args[1].clone()));
                }
                None
            }
            WordMul => {
                if args[1] == Atom::Lit(Literal::Raw(1)) {
                    return Some(Bound::Atom(args[0].clone()));
                }
                if args[0] == Atom::Lit(Literal::Raw(1)) {
                    return Some(Bound::Atom(args[1].clone()));
                }
                None
            }
            WordAnd => {
                if let Atom::Lit(Literal::Raw(m)) = args[1] {
                    if m == -1 {
                        return Some(Bound::Atom(args[0].clone()));
                    }
                    // Fold when every masked bit is statically known — this
                    // is how dominated (redundant) type tests disappear.
                    let (k, t) = self.lowtag(&args[0], facts, DEPTH);
                    if m as u64 & !mask(k) == 0 {
                        return Some(Bound::Atom(Atom::Lit(Literal::Raw((t & m as u64) as i64))));
                    }
                }
                None
            }
            WordEq | WordLt => self.rewrite_cmp(op, args, facts),
            _ => None,
        }
    }

    /// Comparisons of two same-shift projections become comparisons of the
    /// unprojected (tagged) values.
    fn rewrite_cmp(&self, op: PrimOp, args: &[Atom], facts: &Facts) -> Option<Bound> {
        let shr_of = |a: &Atom| -> Option<(Atom, u32)> {
            let (o, inner) = self.def_of(a)?.clone();
            if o != PrimOp::WordShr {
                return None;
            }
            if let Atom::Lit(Literal::Raw(s)) = inner[1] {
                Some((inner[0].clone(), s as u32))
            } else {
                None
            }
        };
        match (shr_of(&args[0]), shr_of(&args[1])) {
            (Some((a, sa)), Some((b, sb))) if sa == sb => {
                let (ka, ta) = self.lowtag(&a, facts, DEPTH);
                let (kb, tb) = self.lowtag(&b, facts, DEPTH);
                if ka >= sa && kb >= sa && (ta & mask(sa)) == (tb & mask(sa)) {
                    return Some(Bound::Prim(op, vec![a, b]));
                }
                None
            }
            (Some((a, s)), None) => {
                if let Atom::Lit(Literal::Raw(c)) = args[1] {
                    let (ka, ta) = self.lowtag(&a, facts, DEPTH);
                    if ka >= s {
                        let c2 = (c << s) | (ta & mask(s)) as i64;
                        if c2 >> s == c {
                            return Some(Bound::Prim(op, vec![a, Atom::Lit(Literal::Raw(c2))]));
                        }
                    }
                }
                None
            }
            (None, Some((b, s))) => {
                if op != PrimOp::WordEq {
                    return None; // only the symmetric op commutes freely
                }
                if let Atom::Lit(Literal::Raw(c)) = args[0] {
                    let (kb, tb) = self.lowtag(&b, facts, DEPTH);
                    if kb >= s {
                        let c2 = (c << s) | (tb & mask(s)) as i64;
                        if c2 >> s == c {
                            return Some(Bound::Prim(op, vec![Atom::Lit(Literal::Raw(c2)), b]));
                        }
                    }
                }
                None
            }
            _ => None,
        }
    }

    /// Rewrites a test: fresh-boolean truthiness becomes a raw zero test,
    /// and values statically distinguishable from `#f` fold.
    fn rewrite_test(&mut self, t: Test, facts: &Facts) -> Test {
        let Test::Truthy(a) = &t else { return t };
        if let Some(v) = a.as_var() {
            if let Some((op, args)) = self.defs.get(&v).cloned() {
                if let (Some((btag, bshift)), true) = (self.bool_pattern, op == PrimOp::WordOr) {
                    // or(shl(c, bshift), btag)
                    if args[1] == Atom::Lit(Literal::Raw(btag)) {
                        if let Some((PrimOp::WordShl, inner)) = self.def_of(&args[0]).cloned() {
                            if inner[1] == Atom::Lit(Literal::Raw(bshift)) {
                                self.changed += 1;
                                return Test::NonZero(inner[0].clone());
                            }
                        }
                    }
                }
                if let Some((0, bshift)) = self.bool_pattern {
                    if op == PrimOp::WordShl && args[1] == Atom::Lit(Literal::Raw(bshift)) {
                        self.changed += 1;
                        return Test::NonZero(args[0].clone());
                    }
                }
            }
            // A value whose known low bits differ from #f's cannot be false.
            if let Some(fw) = self.false_word {
                let (k, tl) = self.lowtag(a, facts, DEPTH);
                if k > 0 && (fw as u64 & mask(k)) != tl {
                    self.changed += 1;
                    return Test::NonZero(Atom::Lit(Literal::Raw(1)));
                }
            }
        }
        t
    }

    /// Branch refinement: when the test is `nonzero((x & mask) == tag)`
    /// with a low-bit mask, the *then* branch learns `x`'s low bits — the
    /// shape every rep-type test specializes to. This is what lets a passed
    /// type check eliminate the identical checks dominated by it.
    fn refine_from_test(&self, t: &Test, then_facts: &mut Facts) {
        let Test::NonZero(a) = t else { return };
        let Some((PrimOp::WordEq, eq_args)) = a.as_var().and_then(|v| self.defs.get(&v)) else {
            return;
        };
        let (masked, tagv) = match (&eq_args[0], &eq_args[1]) {
            (m, Atom::Lit(Literal::Raw(k))) => (m, *k as u64),
            (Atom::Lit(Literal::Raw(k)), m) => (m, *k as u64),
            _ => return,
        };
        let Some((PrimOp::WordAnd, and_args)) = masked.as_var().and_then(|v| self.defs.get(&v))
        else {
            return;
        };
        let (subject, mask_v) = match (&and_args[0], &and_args[1]) {
            (Atom::Var(x), Atom::Lit(Literal::Raw(m))) => (*x, *m as u64),
            (Atom::Lit(Literal::Raw(m)), Atom::Var(x)) => (*x, *m as u64),
            _ => return,
        };
        // Low-bit masks only: mask = 2^b - 1.
        if mask_v == 0 || mask_v.wrapping_add(1) & mask_v != 0 {
            return;
        }
        let b = mask_v.trailing_ones();
        if tagv & !mask_v != 0 {
            return;
        }
        insert_fact(then_facts, subject, b, tagv);
    }

    /// Facts justified by executing `bound` (specialized memory operations
    /// assert their base pointer's tag).
    fn facts_from_bound(&self, v: VarId, bound: &Bound, facts: &mut Facts) {
        if let Some(&(subject, bits_n, tag)) = self.assumptions.get(&v) {
            insert_fact(facts, subject, bits_n, tag);
        }
        if let Bound::Prim(op, args) = bound {
            use PrimOp::*;
            let (rid, base) = match op {
                SpecRef(r) | SpecSet(r) | SpecHeader(r) => (*r, &args[0]),
                _ => return,
            };
            if let RepKind::Pointer { tag, .. } = self.registry.info(rid).kind {
                if let Some(bv) = base.as_var() {
                    insert_fact(facts, bv, 3, tag);
                }
            }
        }
    }

    fn walk(&mut self, e: Expr, facts: &mut Facts) -> Expr {
        match e {
            Expr::Let(v, Bound::Prim(op, args), body) => {
                let replacement = self.rewrite(op, &args, facts);
                let b = match replacement {
                    Some(nb) => {
                        self.changed += 1;
                        nb
                    }
                    None => Bound::Prim(op, args),
                };
                if let Bound::Prim(op2, args2) = &b {
                    if op2.pure() {
                        self.defs.insert(v, (*op2, args2.clone()));
                    }
                }
                self.facts_from_bound(v, &b, facts);
                Expr::Let(v, b, Box::new(self.walk(*body, facts)))
            }
            Expr::Let(v, b, body) => {
                let b = match b {
                    Bound::Lambda(mut f) => {
                        // Dominance holds: the closure can only run after
                        // this point. Use a copy so nothing leaks back.
                        let mut inner = facts.clone();
                        f.body = Box::new(self.walk(*f.body, &mut inner));
                        Bound::Lambda(f)
                    }
                    Bound::If(t, x, y) => {
                        let t = self.rewrite_test(t, facts);
                        let mut fx = facts.clone();
                        let mut fy = facts.clone();
                        self.refine_from_test(&t, &mut fx);
                        Bound::If(
                            t,
                            Box::new(self.walk(*x, &mut fx)),
                            Box::new(self.walk(*y, &mut fy)),
                        )
                    }
                    Bound::Body(inner) => {
                        let mut fi = facts.clone();
                        Bound::Body(Box::new(self.walk(*inner, &mut fi)))
                    }
                    other => other,
                };
                Expr::Let(v, b, Box::new(self.walk(*body, facts)))
            }
            Expr::If(t, x, y) => {
                let t = self.rewrite_test(t, facts);
                let mut fx = facts.clone();
                let mut fy = facts.clone();
                self.refine_from_test(&t, &mut fx);
                Expr::If(
                    t,
                    Box::new(self.walk(*x, &mut fx)),
                    Box::new(self.walk(*y, &mut fy)),
                )
            }
            Expr::LetRec(binds, body) => Expr::LetRec(
                binds
                    .into_iter()
                    .map(|(v, mut f)| {
                        let mut inner = facts.clone();
                        f.body = Box::new(self.walk(*f.body, &mut inner));
                        (v, f)
                    })
                    .collect(),
                Box::new(self.walk(*body, facts)),
            ),
            other => other,
        }
    }
}

fn insert_fact(facts: &mut Facts, v: VarId, k: u32, t: u64) {
    let entry = facts.entry(v).or_insert((0, 0));
    if k > entry.0 {
        *entry = (k, t & mask(k));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fx_registry() -> RepRegistry {
        let mut reg = RepRegistry::new();
        let fx = reg.intern_immediate("fixnum", 3, 0, 3).unwrap();
        let bo = reg.intern_immediate("boolean", 8, 0b010, 8).unwrap();
        reg.provide_role("fixnum", fx).unwrap();
        reg.provide_role("boolean", bo).unwrap();
        reg
    }

    /// Builds the post-specialization shape of `(fx+ a b)`:
    /// shr, shr, add, shl, ret — with the projections justifying the
    /// fixnum facts (as repspec records them, keyed by binding).
    fn fxadd_shape() -> (Expr, Assumptions) {
        use PrimOp::*;
        let e = Expr::Let(
            10,
            Bound::Prim(WordShr, vec![Atom::Var(1), Atom::raw(3)]),
            Box::new(Expr::Let(
                11,
                Bound::Prim(WordShr, vec![Atom::Var(2), Atom::raw(3)]),
                Box::new(Expr::Let(
                    12,
                    Bound::Prim(WordAdd, vec![Atom::Var(10), Atom::Var(11)]),
                    Box::new(Expr::Let(
                        13,
                        Bound::Prim(WordShl, vec![Atom::Var(12), Atom::raw(3)]),
                        Box::new(Expr::Ret(Atom::Var(13))),
                    )),
                )),
            )),
        );
        let mut assume = Assumptions::new();
        assume.insert(10, (1, 3, 0));
        assume.insert(11, (2, 3, 0));
        (e, assume)
    }

    #[test]
    fn fxadd_collapses_to_single_add() {
        let reg = fx_registry();
        let (e, assume) = fxadd_shape();
        let (out, changed) = bits(e, &reg, &assume);
        assert!(changed >= 1);
        fn find_final_add(e: &Expr) -> bool {
            match e {
                Expr::Let(13, Bound::Prim(PrimOp::WordAdd, args), _) => {
                    args == &vec![Atom::Var(1), Atom::Var(2)]
                }
                Expr::Let(_, _, b) => find_final_add(b),
                _ => false,
            }
        }
        assert!(
            find_final_add(&out),
            "expected `let v13 = a + b`, got:\n{}",
            sxr_ir::pretty::expr_to_string(&out)
        );
    }

    #[test]
    fn without_assumptions_no_collapse() {
        let reg = fx_registry();
        let (e, _) = fxadd_shape();
        let (out, _) = bits(e, &reg, &Assumptions::new());
        fn still_shifted(e: &Expr) -> bool {
            match e {
                Expr::Let(13, Bound::Prim(PrimOp::WordShl, _), _) => true,
                Expr::Let(_, _, b) => still_shifted(b),
                _ => false,
            }
        }
        assert!(
            still_shifted(&out),
            "soundness: cannot drop shifts without type facts"
        );
    }

    #[test]
    fn cmp_of_projections_uses_tagged_values() {
        use PrimOp::*;
        let reg = fx_registry();
        let mut assume = Assumptions::new();
        assume.insert(10, (1, 3, 0));
        assume.insert(11, (2, 3, 0));
        let e = Expr::Let(
            10,
            Bound::Prim(WordShr, vec![Atom::Var(1), Atom::raw(3)]),
            Box::new(Expr::Let(
                11,
                Bound::Prim(WordShr, vec![Atom::Var(2), Atom::raw(3)]),
                Box::new(Expr::Let(
                    12,
                    Bound::Prim(WordLt, vec![Atom::Var(10), Atom::Var(11)]),
                    Box::new(Expr::Ret(Atom::Var(12))),
                )),
            )),
        );
        let (out, _) = bits(e, &reg, &assume);
        fn find(e: &Expr) -> bool {
            match e {
                Expr::Let(12, Bound::Prim(PrimOp::WordLt, args), _) => {
                    args == &vec![Atom::Var(1), Atom::Var(2)]
                }
                Expr::Let(_, _, b) => find(b),
                _ => false,
            }
        }
        assert!(find(&out));
    }

    #[test]
    fn cmp_projection_with_constant() {
        use PrimOp::*;
        let reg = fx_registry();
        let mut assume = Assumptions::new();
        assume.insert(10, (1, 3, 0));
        // (word=? (shr a 3) 0)  =>  (word=? a 0)
        let e = Expr::Let(
            10,
            Bound::Prim(WordShr, vec![Atom::Var(1), Atom::raw(3)]),
            Box::new(Expr::Let(
                11,
                Bound::Prim(WordEq, vec![Atom::Var(10), Atom::raw(0)]),
                Box::new(Expr::Ret(Atom::Var(11))),
            )),
        );
        let (out, _) = bits(e, &reg, &assume);
        fn find(e: &Expr) -> bool {
            match e {
                Expr::Let(11, Bound::Prim(PrimOp::WordEq, args), _) => {
                    args == &vec![Atom::Var(1), Atom::raw(0)]
                }
                Expr::Let(_, _, b) => find(b),
                _ => false,
            }
        }
        assert!(find(&out));
    }

    #[test]
    fn truthy_of_fresh_boolean_becomes_nonzero() {
        use PrimOp::*;
        let reg = fx_registry();
        // c = word<? a b ; v = or(shl(c,8), 2) ; if (truthy v) ...
        let e = Expr::Let(
            10,
            Bound::Prim(WordLt, vec![Atom::Var(1), Atom::Var(2)]),
            Box::new(Expr::Let(
                11,
                Bound::Prim(WordShl, vec![Atom::Var(10), Atom::raw(8)]),
                Box::new(Expr::Let(
                    12,
                    Bound::Prim(WordOr, vec![Atom::Var(11), Atom::raw(2)]),
                    Box::new(Expr::If(
                        Test::Truthy(Atom::Var(12)),
                        Box::new(Expr::Ret(Atom::raw(1))),
                        Box::new(Expr::Ret(Atom::raw(0))),
                    )),
                )),
            )),
        );
        let (out, _) = bits(e, &reg, &Assumptions::new());
        fn find(e: &Expr) -> bool {
            match e {
                Expr::If(Test::NonZero(Atom::Var(10)), _, _) => true,
                Expr::Let(_, _, b) => find(b),
                _ => false,
            }
        }
        assert!(find(&out), "got:\n{}", sxr_ir::pretty::expr_to_string(&out));
    }

    #[test]
    fn known_type_test_folds_only_when_dominated() {
        use PrimOp::*;
        let reg = fx_registry();
        let mut assume = Assumptions::new();
        // The projection at v9 justifies "v1 is a fixnum".
        assume.insert(9, (1, 3, 0));
        // project first, then test: folds.
        let e = Expr::Let(
            9,
            Bound::Prim(WordShr, vec![Atom::Var(1), Atom::raw(3)]),
            Box::new(Expr::Let(
                10,
                Bound::Prim(WordAnd, vec![Atom::Var(1), Atom::raw(7)]),
                Box::new(Expr::Ret(Atom::Var(10))),
            )),
        );
        let (out, _) = bits(e, &reg, &assume);
        fn folded(e: &Expr) -> bool {
            match e {
                Expr::Let(10, Bound::Atom(Atom::Lit(Literal::Raw(0))), _) => true,
                Expr::Let(_, _, b) => folded(b),
                _ => false,
            }
        }
        assert!(folded(&out));
    }

    #[test]
    fn branch_facts_do_not_leak_to_siblings() {
        use PrimOp::*;
        let reg = fx_registry();
        let mut assume = Assumptions::new();
        assume.insert(20, (1, 3, 0)); // the then-branch projection
                                      // if c { v20 = shr(v1,3); ret v20 } else { v21 = and(v1,7); ret v21 }
                                      // The else branch's type test must NOT fold from the then branch's
                                      // assumption.
        let e = Expr::If(
            Test::NonZero(Atom::Var(2)),
            Box::new(Expr::Let(
                20,
                Bound::Prim(WordShr, vec![Atom::Var(1), Atom::raw(3)]),
                Box::new(Expr::Ret(Atom::Var(20))),
            )),
            Box::new(Expr::Let(
                21,
                Bound::Prim(WordAnd, vec![Atom::Var(1), Atom::raw(7)]),
                Box::new(Expr::Ret(Atom::Var(21))),
            )),
        );
        let (out, _) = bits(e, &reg, &assume);
        let Expr::If(_, _, els) = &out else { panic!() };
        assert!(
            matches!(&**els, Expr::Let(21, Bound::Prim(PrimOp::WordAnd, _), _)),
            "else-branch test survived: {}",
            sxr_ir::pretty::expr_to_string(els)
        );
    }

    #[test]
    fn facts_do_not_survive_past_joins() {
        use PrimOp::*;
        let reg = fx_registry();
        let mut assume = Assumptions::new();
        assume.insert(20, (1, 3, 0));
        // v5 = if c { v20 = shr(v1,3); ret v20 } else { ret raw 0 }
        // then: v22 = and(v1, 7)  -- must NOT fold
        let e = Expr::Let(
            5,
            Bound::If(
                Test::NonZero(Atom::Var(2)),
                Box::new(Expr::Let(
                    20,
                    Bound::Prim(WordShr, vec![Atom::Var(1), Atom::raw(3)]),
                    Box::new(Expr::Ret(Atom::Var(20))),
                )),
                Box::new(Expr::Ret(Atom::raw(0))),
            ),
            Box::new(Expr::Let(
                22,
                Bound::Prim(WordAnd, vec![Atom::Var(1), Atom::raw(7)]),
                Box::new(Expr::Ret(Atom::Var(22))),
            )),
        );
        let (out, _) = bits(e, &reg, &assume);
        fn survived(e: &Expr) -> bool {
            match e {
                Expr::Let(22, Bound::Prim(PrimOp::WordAnd, _), _) => true,
                Expr::Let(_, _, b) => survived(b),
                _ => false,
            }
        }
        assert!(survived(&out), "join must clear branch facts");
    }

    #[test]
    fn shift_combining_narrow() {
        use PrimOp::*;
        let reg = fx_registry();
        let mut assume = Assumptions::new();
        // v9 justifies: v1 has low 8 bits equal to the char tag 0b10010.
        assume.insert(9, (1, 8, 0b1_0010));
        // char->integer under classic tags: (v1 >> 8) << 3  ==>  v1 >> 5,
        // because the char tag's bits above bit 5 are zero.
        let e = Expr::Let(
            9,
            Bound::Prim(WordShr, vec![Atom::Var(1), Atom::raw(8)]),
            Box::new(Expr::Let(
                10,
                Bound::Prim(WordShl, vec![Atom::Var(9), Atom::raw(3)]),
                Box::new(Expr::Ret(Atom::Var(10))),
            )),
        );
        let (out, _) = bits(e, &reg, &assume);
        fn find(e: &Expr) -> bool {
            match e {
                Expr::Let(10, Bound::Prim(PrimOp::WordShr, args), _) => {
                    args == &vec![Atom::Var(1), Atom::raw(5)]
                }
                Expr::Let(_, _, b) => find(b),
                _ => false,
            }
        }
        assert!(find(&out), "got:\n{}", sxr_ir::pretty::expr_to_string(&out));
    }

    #[test]
    fn shift_combining_widen() {
        use PrimOp::*;
        let reg = fx_registry();
        let mut assume = Assumptions::new();
        assume.insert(9, (1, 3, 0)); // fixnum
                                     // integer->char: (v1 >> 3) << 8  ==>  v1 << 5.
        let e = Expr::Let(
            9,
            Bound::Prim(WordShr, vec![Atom::Var(1), Atom::raw(3)]),
            Box::new(Expr::Let(
                10,
                Bound::Prim(WordShl, vec![Atom::Var(9), Atom::raw(8)]),
                Box::new(Expr::Ret(Atom::Var(10))),
            )),
        );
        let (out, _) = bits(e, &reg, &assume);
        fn find(e: &Expr) -> bool {
            match e {
                Expr::Let(10, Bound::Prim(PrimOp::WordShl, args), _) => {
                    args == &vec![Atom::Var(1), Atom::raw(5)]
                }
                Expr::Let(_, _, b) => find(b),
                _ => false,
            }
        }
        assert!(find(&out), "got:\n{}", sxr_ir::pretty::expr_to_string(&out));
    }

    #[test]
    fn passed_type_test_refines_then_branch() {
        use PrimOp::*;
        let reg = fx_registry();
        // c = ((x & 7) == 0); if (nonzero c) { redundant = (x & 7); ... }
        let e = Expr::Let(
            10,
            Bound::Prim(WordAnd, vec![Atom::Var(1), Atom::raw(7)]),
            Box::new(Expr::Let(
                11,
                Bound::Prim(WordEq, vec![Atom::Var(10), Atom::raw(0)]),
                Box::new(Expr::If(
                    Test::NonZero(Atom::Var(11)),
                    Box::new(Expr::Let(
                        12,
                        Bound::Prim(WordAnd, vec![Atom::Var(1), Atom::raw(7)]),
                        Box::new(Expr::Ret(Atom::Var(12))),
                    )),
                    Box::new(Expr::Let(
                        13,
                        Bound::Prim(WordAnd, vec![Atom::Var(1), Atom::raw(7)]),
                        Box::new(Expr::Ret(Atom::Var(13))),
                    )),
                )),
            )),
        );
        let (out, _) = bits(e, &reg, &Assumptions::new());
        fn then_folded(e: &Expr) -> (bool, bool) {
            fn find(e: &Expr, id: u32) -> Option<bool> {
                match e {
                    Expr::Let(v, b, body) => {
                        if *v == id {
                            Some(matches!(b, Bound::Atom(Atom::Lit(Literal::Raw(0)))))
                        } else {
                            find(body, id)
                        }
                    }
                    Expr::If(_, t, e2) => find(t, id).or_else(|| find(e2, id)),
                    _ => None,
                }
            }
            (find(e, 12).unwrap_or(false), find(e, 13).unwrap_or(false))
        }
        let (then_f, else_f) = then_folded(&out);
        assert!(then_f, "then-branch check folds after the passed test");
        assert!(!else_f, "else-branch must not be refined");
    }

    #[test]
    fn truthy_of_known_non_false_folds() {
        use PrimOp::*;
        let reg = fx_registry();
        let mut assume = Assumptions::new();
        assume.insert(9, (1, 3, 0));
        let e = Expr::Let(
            9,
            Bound::Prim(WordShr, vec![Atom::Var(1), Atom::raw(3)]),
            Box::new(Expr::If(
                Test::Truthy(Atom::Var(1)),
                Box::new(Expr::Ret(Atom::raw(1))),
                Box::new(Expr::Ret(Atom::raw(0))),
            )),
        );
        let (out, _) = bits(e, &reg, &assume);
        fn find(e: &Expr) -> bool {
            match e {
                Expr::If(Test::NonZero(Atom::Lit(Literal::Raw(1))), _, _) => true,
                Expr::Let(_, _, b) => find(b),
                _ => false,
            }
        }
        assert!(find(&out));
    }
}
