//! Dead-code elimination and structural simplification.
//!
//! * drops unused bindings of deletable right-hand sides,
//! * dissolves `Bound::Body` wrappers whose contents are straight-line,
//! * simplifies trivial value-ifs.
//!
//! Run to fixpoint by the pass manager (deleting one binding can make
//! another's operands dead).

use crate::util::{bound_deletable, diverges, sink_value};
use std::collections::HashMap;
#[cfg(test)]
use sxr_ir::anf::Atom;
use sxr_ir::anf::{Bound, Expr, VarId};

/// One cleanup sweep; returns the new expression and how many rewrites
/// happened.
pub fn cleanup(e: Expr) -> (Expr, usize) {
    let mut uses = HashMap::new();
    e.use_counts(&mut uses);
    let mut st = Clean { uses, changed: 0 };
    let out = st.walk(e);
    (out, st.changed)
}

struct Clean {
    uses: HashMap<VarId, usize>,
    changed: usize,
}

impl Clean {
    fn used(&self, v: VarId) -> bool {
        self.uses.get(&v).copied().unwrap_or(0) > 0
    }

    fn walk(&mut self, e: Expr) -> Expr {
        match e {
            Expr::Let(v, b, body) => {
                let body = self.walk(*body);
                // Simplify the binding first.
                let b = match b {
                    Bound::Body(inner) => {
                        let inner = self.walk(*inner);
                        // Sink the continuation through the body when that
                        // does not duplicate code (straight lines, or
                        // conditionals with a divergent branch).
                        match sink_value(inner, v, body) {
                            Ok(sunk) => {
                                self.changed += 1;
                                return sunk;
                            }
                            Err((inner, body)) => {
                                return self.finish_let(v, Bound::Body(Box::new(inner)), body)
                            }
                        }
                    }
                    Bound::If(t, x, y) => {
                        let x = self.walk(*x);
                        let y = self.walk(*y);
                        match (&x, &y) {
                            (Expr::Ret(a), Expr::Ret(bb)) if a == bb => {
                                self.changed += 1;
                                Bound::Atom(a.clone())
                            }
                            _ => {
                                if diverges(&x) || diverges(&y) {
                                    let rebuilt = Expr::If(t, Box::new(x), Box::new(y));
                                    match sink_value(rebuilt, v, body) {
                                        Ok(sunk) => {
                                            self.changed += 1;
                                            return sunk;
                                        }
                                        Err((rebuilt, body)) => {
                                            let Expr::If(t, x, y) = rebuilt else {
                                                unreachable!()
                                            };
                                            return self.finish_let(v, Bound::If(t, x, y), body);
                                        }
                                    }
                                }
                                Bound::If(t, Box::new(x), Box::new(y))
                            }
                        }
                    }
                    Bound::Lambda(mut f) => {
                        f.body = Box::new(self.walk(*f.body));
                        Bound::Lambda(f)
                    }
                    other => other,
                };
                self.finish_let(v, b, body)
            }
            Expr::If(t, x, y) => Expr::If(t, Box::new(self.walk(*x)), Box::new(self.walk(*y))),
            Expr::LetRec(binds, body) => {
                let body = self.walk(*body);
                // Drop letrec groups none of whose members are referenced.
                let any_used = binds.iter().any(|(v, _)| self.used(*v));
                if !any_used {
                    self.changed += 1;
                    return body;
                }
                Expr::LetRec(
                    binds
                        .into_iter()
                        .map(|(v, mut f)| {
                            f.body = Box::new(self.walk(*f.body));
                            (v, f)
                        })
                        .collect(),
                    Box::new(body),
                )
            }
            other => other,
        }
    }

    fn finish_let(&mut self, v: VarId, b: Bound, body: Expr) -> Expr {
        if !self.used(v) && bound_deletable(&b) {
            self.changed += 1;
            // The dropped binding's operand uses disappear with it; the
            // next fixpoint iteration picks up newly dead bindings.
            return body;
        }
        Expr::Let(v, b, Box::new(body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxr_ir::prim::PrimOp;

    #[test]
    fn unused_pure_binding_dropped() {
        let e = Expr::Let(
            1,
            Bound::Prim(PrimOp::WordAdd, vec![Atom::raw(1), Atom::raw(2)]),
            Box::new(Expr::Ret(Atom::raw(0))),
        );
        let (out, n) = cleanup(e);
        assert_eq!(n, 1);
        assert_eq!(out, Expr::Ret(Atom::raw(0)));
    }

    #[test]
    fn unused_effect_kept() {
        let e = Expr::Let(
            1,
            Bound::Prim(PrimOp::WriteChar, vec![Atom::raw(65)]),
            Box::new(Expr::Ret(Atom::raw(0))),
        );
        let (out, n) = cleanup(e);
        assert_eq!(n, 0);
        assert!(matches!(out, Expr::Let(..)));
    }

    #[test]
    fn chains_die_over_iterations() {
        // b depends on a; both unused after two sweeps.
        let e = Expr::Let(
            1,
            Bound::Prim(PrimOp::WordAdd, vec![Atom::raw(1), Atom::raw(2)]),
            Box::new(Expr::Let(
                2,
                Bound::Prim(PrimOp::WordAdd, vec![Atom::Var(1), Atom::raw(3)]),
                Box::new(Expr::Ret(Atom::raw(0))),
            )),
        );
        let (out, n1) = cleanup(e);
        assert_eq!(n1, 1);
        let (out, n2) = cleanup(out);
        assert_eq!(n2, 1);
        assert_eq!(out, Expr::Ret(Atom::raw(0)));
    }

    #[test]
    fn body_of_ret_collapses() {
        let e = Expr::Let(
            1,
            Bound::Body(Box::new(Expr::Ret(Atom::raw(5)))),
            Box::new(Expr::Ret(Atom::Var(1))),
        );
        let (out, _) = cleanup(e);
        assert!(matches!(out, Expr::Let(1, Bound::Atom(_), _)));
    }

    #[test]
    fn straight_line_body_splices() {
        let inner = Expr::Let(
            2,
            Bound::Prim(PrimOp::WordAdd, vec![Atom::Var(0), Atom::raw(1)]),
            Box::new(Expr::Ret(Atom::Var(2))),
        );
        let e = Expr::Let(
            1,
            Bound::Body(Box::new(inner)),
            Box::new(Expr::Ret(Atom::Var(1))),
        );
        let (out, _) = cleanup(e);
        // let v2 = add in let v1 = v2 in ret v1
        assert!(matches!(out, Expr::Let(2, Bound::Prim(..), _)));
    }

    #[test]
    fn trivial_if_same_branches() {
        let e = Expr::Let(
            1,
            Bound::If(
                sxr_ir::anf::Test::NonZero(Atom::Var(0)),
                Box::new(Expr::Ret(Atom::raw(9))),
                Box::new(Expr::Ret(Atom::raw(9))),
            ),
            Box::new(Expr::Ret(Atom::Var(1))),
        );
        let (out, _) = cleanup(e);
        assert!(matches!(out, Expr::Let(1, Bound::Atom(Atom::Lit(_)), _)));
    }

    #[test]
    fn unused_letrec_dropped() {
        let e = Expr::LetRec(
            vec![(
                5,
                sxr_ir::anf::FunDef {
                    params: vec![],
                    rest: None,
                    body: Box::new(Expr::Ret(Atom::raw(0))),
                    name: None,
                },
            )],
            Box::new(Expr::Ret(Atom::raw(1))),
        );
        let (out, n) = cleanup(e);
        assert_eq!(n, 1);
        assert_eq!(out, Expr::Ret(Atom::raw(1)));
    }
}
