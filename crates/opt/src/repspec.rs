//! Representation specialization.
//!
//! When a generic representation operation's rep-type operand is a
//! compile-time constant (the common case after inlining and constant
//! propagation), rewrite it into raw word and memory operations.  This pass
//! is the hinge of the whole reproduction: it converts the *generic,
//! dynamically-dispatched* facility into the same sub-word operations a
//! traditional compiler would emit — and records the **type assumptions**
//! that each operation carries (`%rep-project fixnum-rep x` asserts that
//! `x`'s low bits are the fixnum tag), which the algebraic pass then uses to
//! cancel tag traffic.
//!
//! Pointer-type `%rep-inject`/`%rep-project` are deliberately *not*
//! specialized: a raw untagged heap address in a register would be invisible
//! to the precise collector. (The library never needs them on hot paths;
//! field access is specialized through [`PrimOp::SpecRef`]/[`PrimOp::SpecSet`],
//! which keep the base pointer tagged.)

use std::collections::HashMap;
use sxr_ir::anf::{Atom, Bound, Expr, Literal, NameSupply, Test, VarId};
use sxr_ir::prim::PrimOp;
#[cfg(test)]
use sxr_ir::rep::RepId;
use sxr_ir::rep::{RepKind, RepRegistry};

/// Type assumptions gathered from specialized operations, keyed by the
/// *binding* whose execution justifies them: when the binding for the key
/// variable has executed, the subject variable's low `bits` bits equal
/// `tag`.  The algebraic pass activates each fact only for code dominated
/// by that binding — facts from one branch never leak into another (see the
/// `display` dispatch regression test).
pub type Assumptions = HashMap<VarId, (VarId, u32, u64)>;

/// Runs representation specialization. Returns the rewritten program and
/// the gathered assumptions.
pub fn repspec(e: Expr, registry: &RepRegistry, supply: &mut NameSupply) -> (Expr, Assumptions) {
    let mut st = Spec {
        registry,
        supply,
        assume: HashMap::new(),
        pending: None,
    };
    let out = st.walk(e);
    (out, st.assume)
}

struct Spec<'a> {
    registry: &'a RepRegistry,
    supply: &'a mut NameSupply,
    assume: Assumptions,
    /// Assertion produced by the current `specialize` call:
    /// `(subject, bits, tag)`, attached to the final binding by `walk`.
    pending: Option<(VarId, u32, u64)>,
}

fn raw(w: i64) -> Atom {
    Atom::Lit(Literal::Raw(w))
}

impl Spec<'_> {
    fn assume_tag(&mut self, a: &Atom, bits: u32, tag: u64) {
        if let Atom::Var(v) = a {
            self.pending = Some((*v, bits, tag));
        }
    }

    /// Builds `let tmp... in let v = last op in body` from a chain of ops,
    /// where the final element binds to `v`.
    fn chain(&mut self, v: VarId, ops: Vec<Bound>, body: Expr) -> Expr {
        let mut out = body;
        let n = ops.len();
        let mut temps: Vec<VarId> = Vec::with_capacity(n);
        for i in 0..n - 1 {
            let _ = i;
            temps.push(self.supply.fresh("spec"));
        }
        temps.push(v);
        // Each op may refer to the previous temp via the placeholder
        // Atom::Var(u32::MAX); patch as we fold right-to-left.
        for (i, mut op) in ops.into_iter().enumerate().rev() {
            if i > 0 {
                let prev = temps[i - 1];
                op.for_each_atom_shallow_mut(&mut |a| {
                    if *a == Atom::Var(u32::MAX) {
                        *a = Atom::Var(prev);
                    }
                });
            }
            out = Expr::Let(temps[i], op, Box::new(out));
        }
        out
    }

    /// Attempts to specialize one rep prim; returns the replacement chain
    /// (last op binds the result) or `None` to keep the generic form.
    fn specialize(&mut self, op: PrimOp, args: &[Atom]) -> Option<Vec<Bound>> {
        use PrimOp::*;
        let Some(Atom::Lit(Literal::Rep(rid))) = args.first() else {
            return None;
        };
        let rid = *rid;
        let info = self.registry.info(rid);
        let prev = || Atom::Var(u32::MAX); // placeholder for previous temp
        match (op, &info.kind) {
            (RepInject, RepKind::Immediate { tag, shift, .. }) => {
                let (tag, shift) = (*tag as i64, *shift as i64);
                let w = args[1].clone();
                if shift == 0 && tag == 0 {
                    return Some(vec![Bound::Atom(w)]);
                }
                let mut ops = vec![Bound::Prim(WordShl, vec![w, raw(shift)])];
                if tag != 0 {
                    ops.push(Bound::Prim(WordOr, vec![prev(), raw(tag)]));
                }
                Some(ops)
            }
            (
                RepProject,
                RepKind::Immediate {
                    tag_bits,
                    tag,
                    shift,
                },
            ) => {
                self.assume_tag(&args[1], *tag_bits, *tag);
                Some(vec![Bound::Prim(
                    WordShr,
                    vec![args[1].clone(), raw(*shift as i64)],
                )])
            }
            (RepTest, RepKind::Immediate { tag_bits, tag, .. }) => {
                let mask = (1i64 << tag_bits) - 1;
                Some(vec![
                    Bound::Prim(WordAnd, vec![args[1].clone(), raw(mask)]),
                    Bound::Prim(WordEq, vec![prev(), raw(*tag as i64)]),
                ])
            }
            (RepTest, RepKind::Pointer { tag, discriminated }) => {
                let mut ops = vec![
                    Bound::Prim(WordAnd, vec![args[1].clone(), raw(7)]),
                    Bound::Prim(WordEq, vec![prev(), raw(*tag as i64)]),
                ];
                if *discriminated {
                    // Guarded header check: only dereference when the tag
                    // matched.
                    let h = self.supply.fresh("hdr");
                    let t2 = self.supply.fresh("tid");
                    let c2 = self.supply.fresh("tideq");
                    let then = Expr::Let(
                        h,
                        Bound::Prim(SpecHeader(rid), vec![args[1].clone()]),
                        Box::new(Expr::Let(
                            t2,
                            Bound::Prim(WordAnd, vec![Atom::Var(h), raw(0xFFFF)]),
                            Box::new(Expr::Let(
                                c2,
                                Bound::Prim(WordEq, vec![Atom::Var(t2), raw(rid as i64)]),
                                Box::new(Expr::Ret(Atom::Var(c2))),
                            )),
                        )),
                    );
                    ops.push(Bound::If(
                        Test::NonZero(prev()),
                        Box::new(then),
                        Box::new(Expr::Ret(raw(0))),
                    ));
                }
                Some(ops)
            }
            (RepAlloc, RepKind::Pointer { .. }) => Some(vec![Bound::Prim(
                SpecAlloc(rid),
                vec![args[1].clone(), args[2].clone()],
            )]),
            (RepRef, RepKind::Pointer { tag, .. }) => {
                self.assume_tag(&args[1], 3, *tag);
                match &args[2] {
                    Atom::Lit(Literal::Raw(k)) => Some(vec![Bound::Prim(
                        SpecRef(rid),
                        vec![args[1].clone(), raw(k * 8)],
                    )]),
                    idx => Some(vec![
                        Bound::Prim(WordShl, vec![idx.clone(), raw(3)]),
                        Bound::Prim(SpecRef(rid), vec![args[1].clone(), prev()]),
                    ]),
                }
            }
            (RepSet, RepKind::Pointer { tag, .. }) => {
                self.assume_tag(&args[1], 3, *tag);
                match &args[2] {
                    Atom::Lit(Literal::Raw(k)) => Some(vec![Bound::Prim(
                        SpecSet(rid),
                        vec![args[1].clone(), raw(k * 8), args[3].clone()],
                    )]),
                    idx => Some(vec![
                        Bound::Prim(WordShl, vec![idx.clone(), raw(3)]),
                        Bound::Prim(SpecSet(rid), vec![args[1].clone(), prev(), args[3].clone()]),
                    ]),
                }
            }
            (RepLen, RepKind::Pointer { tag, .. }) => {
                self.assume_tag(&args[1], 3, *tag);
                Some(vec![
                    Bound::Prim(SpecHeader(rid), vec![args[1].clone()]),
                    Bound::Prim(WordShr, vec![prev(), raw(16)]),
                ])
            }
            _ => None,
        }
    }

    fn walk(&mut self, e: Expr) -> Expr {
        match e {
            Expr::Let(v, Bound::Prim(op, args), body) => {
                let body = self.walk(*body);
                self.pending = None;
                match self.specialize(op, &args) {
                    Some(ops) => {
                        if let Some((subject, bits, tag)) = self.pending.take() {
                            self.assume.insert(v, (subject, bits, tag));
                        }
                        self.chain(v, ops, body)
                    }
                    None => Expr::Let(v, Bound::Prim(op, args), Box::new(body)),
                }
            }
            Expr::Let(v, b, body) => {
                let b = match b {
                    Bound::Lambda(mut f) => {
                        f.body = Box::new(self.walk(*f.body));
                        Bound::Lambda(f)
                    }
                    Bound::If(t, a, b2) => {
                        Bound::If(t, Box::new(self.walk(*a)), Box::new(self.walk(*b2)))
                    }
                    Bound::Body(inner) => Bound::Body(Box::new(self.walk(*inner))),
                    other => other,
                };
                Expr::Let(v, b, Box::new(self.walk(*body)))
            }
            Expr::If(t, a, b) => Expr::If(t, Box::new(self.walk(*a)), Box::new(self.walk(*b))),
            Expr::LetRec(binds, body) => Expr::LetRec(
                binds
                    .into_iter()
                    .map(|(v, mut f)| {
                        f.body = Box::new(self.walk(*f.body));
                        (v, f)
                    })
                    .collect(),
                Box::new(self.walk(*body)),
            ),
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> (RepRegistry, RepId, RepId) {
        let mut reg = RepRegistry::new();
        let fx = reg.intern_immediate("fixnum", 3, 0, 3).unwrap();
        let pair = reg.intern_pointer("pair", 1, false).unwrap();
        (reg, fx, pair)
    }

    fn spec_one(op: PrimOp, args: Vec<Atom>) -> Expr {
        let (reg, _, _) = registry();
        let mut supply = NameSupply::from_names(vec!["v".into(); 300]);
        let e = Expr::Let(
            10,
            Bound::Prim(op, args),
            Box::new(Expr::Ret(Atom::Var(10))),
        );
        let (out, _) = repspec(e, &reg, &mut supply);
        out
    }

    #[test]
    fn project_becomes_shift_with_assumption() {
        let (reg, fx, _) = registry();
        let mut supply = NameSupply::from_names(vec!["v".into(); 300]);
        let e = Expr::Let(
            10,
            Bound::Prim(
                PrimOp::RepProject,
                vec![Atom::Lit(Literal::Rep(fx)), Atom::Var(5)],
            ),
            Box::new(Expr::Ret(Atom::Var(10))),
        );
        let (out, assume) = repspec(e, &reg, &mut supply);
        assert!(matches!(
            out,
            Expr::Let(10, Bound::Prim(PrimOp::WordShr, _), _)
        ));
        // Keyed by the binding (v10) and naming the subject (v5).
        assert_eq!(assume.get(&10), Some(&(5, 3, 0)));
    }

    #[test]
    fn inject_fixnum_is_single_shift() {
        let (_, fx, _) = registry();
        let e = spec_one(
            PrimOp::RepInject,
            vec![Atom::Lit(Literal::Rep(fx)), Atom::Var(5)],
        );
        // tag 0: shift only, bound directly to the result var.
        assert!(matches!(
            e,
            Expr::Let(10, Bound::Prim(PrimOp::WordShl, _), _)
        ));
    }

    #[test]
    fn ref_with_constant_index_is_single_specref() {
        let (_, _, pair) = registry();
        let e = spec_one(
            PrimOp::RepRef,
            vec![Atom::Lit(Literal::Rep(pair)), Atom::Var(5), raw(1)],
        );
        match e {
            Expr::Let(10, Bound::Prim(PrimOp::SpecRef(_), args), _) => {
                assert_eq!(args[1], raw(8), "byte offset");
            }
            other => panic!("expected spec-ref, got {other:?}"),
        }
    }

    #[test]
    fn ref_with_variable_index_shifts_then_loads() {
        let (_, _, pair) = registry();
        let e = spec_one(
            PrimOp::RepRef,
            vec![Atom::Lit(Literal::Rep(pair)), Atom::Var(5), Atom::Var(6)],
        );
        let Expr::Let(t, Bound::Prim(PrimOp::WordShl, _), rest) = e else {
            panic!("expected shl first")
        };
        match *rest {
            Expr::Let(10, Bound::Prim(PrimOp::SpecRef(_), args), _) => {
                assert_eq!(args[1], Atom::Var(t));
            }
            other => panic!("expected spec-ref, got {other:?}"),
        }
    }

    #[test]
    fn test_on_pointer_is_and_cmp() {
        let (_, _, pair) = registry();
        let e = spec_one(
            PrimOp::RepTest,
            vec![Atom::Lit(Literal::Rep(pair)), Atom::Var(5)],
        );
        let Expr::Let(_, Bound::Prim(PrimOp::WordAnd, _), rest) = e else {
            panic!()
        };
        assert!(matches!(
            *rest,
            Expr::Let(10, Bound::Prim(PrimOp::WordEq, _), _)
        ));
    }

    #[test]
    fn discriminated_test_guards_header_load() {
        let mut reg = RepRegistry::new();
        reg.intern_immediate("fixnum", 3, 0, 3).unwrap();
        let rec = reg.intern_pointer("point", 4, true).unwrap();
        let mut supply = NameSupply::from_names(vec!["v".into(); 300]);
        let e = Expr::Let(
            10,
            Bound::Prim(
                PrimOp::RepTest,
                vec![Atom::Lit(Literal::Rep(rec)), Atom::Var(5)],
            ),
            Box::new(Expr::Ret(Atom::Var(10))),
        );
        let (out, _) = repspec(e, &reg, &mut supply);
        fn has_guarded_header(e: &Expr) -> bool {
            match e {
                Expr::Let(_, Bound::If(_, t, _), body) => {
                    fn has_header(e: &Expr) -> bool {
                        matches!(e, Expr::Let(_, Bound::Prim(PrimOp::SpecHeader(_), _), _))
                    }
                    has_header(t) || has_guarded_header(body)
                }
                Expr::Let(_, _, body) => has_guarded_header(body),
                _ => false,
            }
        }
        assert!(has_guarded_header(&out));
    }

    #[test]
    fn generic_stays_when_rep_unknown() {
        let e = spec_one(PrimOp::RepProject, vec![Atom::Var(4), Atom::Var(5)]);
        assert!(matches!(
            e,
            Expr::Let(10, Bound::Prim(PrimOp::RepProject, _), _)
        ));
    }

    #[test]
    fn pointer_inject_stays_generic() {
        let (_, _, pair) = registry();
        let e = spec_one(
            PrimOp::RepInject,
            vec![Atom::Lit(Literal::Rep(pair)), Atom::Var(5)],
        );
        assert!(matches!(
            e,
            Expr::Let(10, Bound::Prim(PrimOp::RepInject, _), _)
        ));
    }
}
