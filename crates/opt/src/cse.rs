//! Common-subexpression elimination on pure operations.
//!
//! In the abstract pipeline, repeated tag/untag traffic (two `car`s of the
//! same pair, a projection computed twice) is common after inlining; CSE
//! collapses it.  Availability maps are cloned at branches; function bodies
//! inherit the enclosing map (an available pure value stays valid however
//! many times the closure runs).

use std::collections::HashMap;
use sxr_ir::anf::{Atom, Bound, Expr, VarId};
use sxr_ir::prim::PrimOp;

/// Runs CSE; returns the rewritten program and the replacement count.
pub fn cse(e: Expr) -> (Expr, usize) {
    let mut st = Cse { changed: 0 };
    let out = st.walk(e, &mut HashMap::new());
    (out, st.changed)
}

type Avail = HashMap<(PrimOp, Vec<Atom>), VarId>;

struct Cse {
    changed: usize,
}

impl Cse {
    fn walk(&mut self, e: Expr, avail: &mut Avail) -> Expr {
        match e {
            Expr::Let(v, Bound::Prim(op, args), body) => {
                if op.pure() {
                    if let Some(&prev) = avail.get(&(op, args.clone())) {
                        self.changed += 1;
                        let b = Bound::Atom(Atom::Var(prev));
                        return Expr::Let(v, b, Box::new(self.walk(*body, avail)));
                    }
                    avail.insert((op, args.clone()), v);
                }
                Expr::Let(v, Bound::Prim(op, args), Box::new(self.walk(*body, avail)))
            }
            Expr::Let(v, b, body) => {
                let b = match b {
                    Bound::Lambda(mut f) => {
                        let mut inner = avail.clone();
                        f.body = Box::new(self.walk(*f.body, &mut inner));
                        Bound::Lambda(f)
                    }
                    Bound::If(t, x, y) => {
                        let mut ax = avail.clone();
                        let mut ay = avail.clone();
                        Bound::If(
                            t,
                            Box::new(self.walk(*x, &mut ax)),
                            Box::new(self.walk(*y, &mut ay)),
                        )
                    }
                    Bound::Body(inner) => {
                        // A straight-line body shares the parent scope.
                        Bound::Body(Box::new(self.walk(*inner, avail)))
                    }
                    other => other,
                };
                Expr::Let(v, b, Box::new(self.walk(*body, avail)))
            }
            Expr::If(t, x, y) => {
                let mut ax = avail.clone();
                let mut ay = avail.clone();
                Expr::If(
                    t,
                    Box::new(self.walk(*x, &mut ax)),
                    Box::new(self.walk(*y, &mut ay)),
                )
            }
            Expr::LetRec(binds, body) => Expr::LetRec(
                binds
                    .into_iter()
                    .map(|(v, mut f)| {
                        let mut inner = avail.clone();
                        f.body = Box::new(self.walk(*f.body, &mut inner));
                        (v, f)
                    })
                    .collect(),
                Box::new(self.walk(*body, avail)),
            ),
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxr_ir::anf::Test;

    #[test]
    fn duplicate_pure_op_replaced() {
        use PrimOp::*;
        let e = Expr::Let(
            1,
            Bound::Prim(WordShr, vec![Atom::Var(0), Atom::raw(3)]),
            Box::new(Expr::Let(
                2,
                Bound::Prim(WordShr, vec![Atom::Var(0), Atom::raw(3)]),
                Box::new(Expr::Ret(Atom::Var(2))),
            )),
        );
        let (out, n) = cse(e);
        assert_eq!(n, 1);
        let Expr::Let(1, _, rest) = out else { panic!() };
        assert!(matches!(*rest, Expr::Let(2, Bound::Atom(Atom::Var(1)), _)));
    }

    #[test]
    fn branches_do_not_leak_into_each_other() {
        use PrimOp::*;
        let mk = || Bound::Prim(WordShr, vec![Atom::Var(0), Atom::raw(3)]);
        let e = Expr::If(
            Test::NonZero(Atom::Var(0)),
            Box::new(Expr::Let(1, mk(), Box::new(Expr::Ret(Atom::Var(1))))),
            Box::new(Expr::Let(2, mk(), Box::new(Expr::Ret(Atom::Var(2))))),
        );
        let (_, n) = cse(e);
        assert_eq!(n, 0, "sibling branches cannot share");
    }

    #[test]
    fn impure_not_csed() {
        use PrimOp::*;
        let mk = || Bound::Prim(RepRef, vec![Atom::Var(0), Atom::Var(1), Atom::raw(0)]);
        let e = Expr::Let(
            2,
            mk(),
            Box::new(Expr::Let(3, mk(), Box::new(Expr::Ret(Atom::Var(3))))),
        );
        let (_, n) = cse(e);
        assert_eq!(n, 0, "memory reads may not be merged across stores");
    }
}
