//! Constant & copy propagation with folding.
//!
//! Besides ordinary word arithmetic, this pass constant-folds the
//! *representation facility itself*: `%make-immediate-type` /
//! `%make-pointer-type` applications with constant arguments become
//! compile-time [`Literal::Rep`] constants (registered in the registry), and
//! `%provide-rep!` registers roles.  This is what makes *user-defined* data
//! types as optimizable as the library's own — the paper's first-classness
//! claim with teeth.

use crate::globals::GlobalInfo;
use crate::util::{lit_word, truthiness};
use std::collections::HashMap;
use sxr_ir::anf::{Atom, Bound, Expr, GlobalId, Literal, Test, VarId};
use sxr_ir::prim::PrimOp;
use sxr_ir::rep::{RepKind, RepRegistry};
use sxr_sexp::Datum;

/// A folding error (malformed representation declarations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldError(pub String);

impl std::fmt::Display for FoldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "constant folding error: {}", self.0)
    }
}

impl std::error::Error for FoldError {}

/// Runs constant/copy propagation and folding over the whole program.
///
/// # Errors
///
/// Returns [`FoldError`] when folding a representation declaration fails
/// (conflicting parameters, bad role).
pub fn constfold(
    e: Expr,
    globals: &HashMap<GlobalId, GlobalInfo>,
    registry: &mut RepRegistry,
) -> Result<Expr, FoldError> {
    let mut st = Folder {
        globals,
        registry,
        env: HashMap::new(),
    };
    st.walk(e)
}

struct Folder<'a> {
    globals: &'a HashMap<GlobalId, GlobalInfo>,
    registry: &'a mut RepRegistry,
    /// Fully resolved replacement for a variable.
    env: HashMap<VarId, Atom>,
}

impl Folder<'_> {
    fn resolve(&self, a: &Atom) -> Atom {
        match a {
            Atom::Var(v) => self.env.get(v).cloned().unwrap_or_else(|| a.clone()),
            lit => lit.clone(),
        }
    }

    fn resolve_all(&self, atoms: &[Atom]) -> Vec<Atom> {
        atoms.iter().map(|a| self.resolve(a)).collect()
    }

    fn const_sym(a: &Atom) -> Option<String> {
        match a {
            Atom::Lit(Literal::Datum(Datum::Symbol(s))) => Some(s.clone()),
            _ => None,
        }
    }

    fn const_int(a: &Atom) -> Option<i64> {
        match a {
            Atom::Lit(Literal::Datum(Datum::Fixnum(n))) => Some(*n),
            Atom::Lit(Literal::Raw(n)) => Some(*n),
            _ => None,
        }
    }

    fn word_of(&self, a: &Atom) -> Option<i64> {
        match a {
            Atom::Lit(l) => lit_word(l, self.registry),
            Atom::Var(_) => None,
        }
    }

    /// Attempts to fold a primitive application to a literal.
    fn fold_prim(&mut self, op: PrimOp, args: &[Atom]) -> Result<Option<Literal>, FoldError> {
        use PrimOp::*;
        let bin_words =
            |s: &Self| -> Option<(i64, i64)> { Some((s.word_of(&args[0])?, s.word_of(&args[1])?)) };
        Ok(match op {
            WordAdd | WordSub | WordMul | WordAnd | WordOr | WordXor | WordShl | WordShr
            | WordEq | WordLt | PtrEq => {
                let Some((a, b)) = bin_words(self) else {
                    return Ok(None);
                };
                let w = match op {
                    WordAdd => a.wrapping_add(b),
                    WordSub => a.wrapping_sub(b),
                    WordMul => a.wrapping_mul(b),
                    WordAnd => a & b,
                    WordOr => a | b,
                    WordXor => a ^ b,
                    WordShl => a.wrapping_shl((b & 63) as u32),
                    WordShr => a.wrapping_shr((b & 63) as u32),
                    WordEq | PtrEq => (a == b) as i64,
                    WordLt => (a < b) as i64,
                    _ => unreachable!(),
                };
                Some(Literal::Raw(w))
            }
            WordQuot | WordRem => {
                let Some((a, b)) = bin_words(self) else {
                    return Ok(None);
                };
                if b == 0 {
                    return Ok(None); // preserve the runtime error
                }
                Some(Literal::Raw(if op == WordQuot {
                    a.wrapping_div(b)
                } else {
                    a.wrapping_rem(b)
                }))
            }
            MakeImmType => {
                let (Some(name), Some(tb), Some(tag), Some(shift)) = (
                    Self::const_sym(&args[0]),
                    Self::const_int(&args[1]),
                    Self::const_int(&args[2]),
                    Self::const_int(&args[3]),
                ) else {
                    return Ok(None);
                };
                let rid = self
                    .registry
                    .intern_immediate(&name, tb as u32, tag as u64, shift as u32)
                    .map_err(|e| FoldError(e.0))?;
                Some(Literal::Rep(rid))
            }
            MakePtrType => {
                let (Some(name), Some(tag), Some(Atom::Lit(Literal::Datum(Datum::Bool(d))))) = (
                    Self::const_sym(&args[0]),
                    Self::const_int(&args[1]),
                    Some(&args[2]),
                ) else {
                    return Ok(None);
                };
                let rid = self
                    .registry
                    .intern_pointer(&name, tag as u64, *d)
                    .map_err(|e| FoldError(e.0))?;
                Some(Literal::Rep(rid))
            }
            ProvideRep => {
                let (Some(role), Atom::Lit(Literal::Rep(rid))) =
                    (Self::const_sym(&args[0]), &args[1])
                else {
                    return Ok(None);
                };
                self.registry
                    .provide_role(&role, *rid)
                    .map_err(|e| FoldError(e.0))?;
                Some(Literal::Unspecified)
            }
            RepInject => {
                let Atom::Lit(Literal::Rep(rid)) = &args[0] else {
                    return Ok(None);
                };
                let Some(w) = self.word_of(&args[1]) else {
                    return Ok(None);
                };
                match self.registry.info(*rid).kind {
                    RepKind::Immediate { tag, shift, .. } => {
                        Some(Literal::Raw((w << shift) | tag as i64))
                    }
                    RepKind::Pointer { .. } => None,
                }
            }
            RepProject => {
                let Atom::Lit(Literal::Rep(rid)) = &args[0] else {
                    return Ok(None);
                };
                let Some(w) = self.word_of(&args[1]) else {
                    return Ok(None);
                };
                match self.registry.info(*rid).kind {
                    RepKind::Immediate { shift, .. } => Some(Literal::Raw(w >> shift)),
                    RepKind::Pointer { .. } => None,
                }
            }
            RepTest => {
                let Atom::Lit(Literal::Rep(rid)) = &args[0] else {
                    return Ok(None);
                };
                let Some(w) = self.word_of(&args[1]) else {
                    return Ok(None);
                };
                Some(Literal::Raw(self.registry.tag_matches(*rid, w) as i64))
            }
            _ => None,
        })
    }

    fn fold_test(&self, t: &Test) -> Option<bool> {
        match t {
            Test::Truthy(Atom::Lit(l)) => truthiness(l, self.registry),
            Test::NonZero(Atom::Lit(l)) => Some(lit_word(l, self.registry)? != 0),
            _ => None,
        }
    }

    fn walk(&mut self, e: Expr) -> Result<Expr, FoldError> {
        Ok(match e {
            Expr::Let(v, b, body) => {
                let b = self.walk_bound(b)?;
                // Record substitutions for trivial bindings.
                if let Bound::Atom(a) = &b {
                    self.env.insert(v, a.clone());
                }
                Expr::Let(v, b, Box::new(self.walk(*body)?))
            }
            Expr::If(t, a, b) => {
                let t = self.resolve_test(t);
                match self.fold_test(&t) {
                    Some(true) => self.walk(*a)?,
                    Some(false) => self.walk(*b)?,
                    None => Expr::If(t, Box::new(self.walk(*a)?), Box::new(self.walk(*b)?)),
                }
            }
            Expr::Ret(a) => Expr::Ret(self.resolve(&a)),
            Expr::TailCall(f, args) => Expr::TailCall(self.resolve(&f), self.resolve_all(&args)),
            Expr::TailCallKnown(fid, clo, args) => {
                Expr::TailCallKnown(fid, self.resolve(&clo), self.resolve_all(&args))
            }
            Expr::LetRec(binds, body) => {
                let binds = binds
                    .into_iter()
                    .map(|(v, mut f)| {
                        f.body = Box::new(self.walk(*f.body)?);
                        Ok((v, f))
                    })
                    .collect::<Result<_, FoldError>>()?;
                Expr::LetRec(binds, Box::new(self.walk(*body)?))
            }
        })
    }

    fn resolve_test(&self, t: Test) -> Test {
        match t {
            Test::Truthy(a) => Test::Truthy(self.resolve(&a)),
            Test::NonZero(a) => Test::NonZero(self.resolve(&a)),
        }
    }

    fn walk_bound(&mut self, b: Bound) -> Result<Bound, FoldError> {
        Ok(match b {
            Bound::Atom(a) => Bound::Atom(self.resolve(&a)),
            Bound::Prim(op, args) => {
                let args = self.resolve_all(&args);
                match self.fold_prim(op, &args)? {
                    Some(lit) => Bound::Atom(Atom::Lit(lit)),
                    None => Bound::Prim(op, args),
                }
            }
            Bound::Call(f, args) => Bound::Call(self.resolve(&f), self.resolve_all(&args)),
            Bound::CallKnown(fid, clo, args) => {
                Bound::CallKnown(fid, self.resolve(&clo), self.resolve_all(&args))
            }
            Bound::GlobalGet(g) => match self.globals.get(&g) {
                Some(GlobalInfo::Const(lit)) => Bound::Atom(Atom::Lit(lit.clone())),
                _ => Bound::GlobalGet(g),
            },
            Bound::GlobalSet(g, a) => Bound::GlobalSet(g, self.resolve(&a)),
            Bound::Lambda(mut f) => {
                f.body = Box::new(self.walk(*f.body)?);
                Bound::Lambda(f)
            }
            Bound::MakeClosure(fid, frees) => Bound::MakeClosure(fid, self.resolve_all(&frees)),
            Bound::ClosureRef(i) => Bound::ClosureRef(i),
            Bound::ClosurePatch(c, i, x) => {
                Bound::ClosurePatch(self.resolve(&c), i, self.resolve(&x))
            }
            Bound::If(t, a, bexp) => {
                let t = self.resolve_test(t);
                match self.fold_test(&t) {
                    Some(true) => Bound::Body(Box::new(self.walk(*a)?)),
                    Some(false) => Bound::Body(Box::new(self.walk(*bexp)?)),
                    None => Bound::If(t, Box::new(self.walk(*a)?), Box::new(self.walk(*bexp)?)),
                }
            }
            Bound::Body(inner) => Bound::Body(Box::new(self.walk(*inner)?)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxr_ast::{convert_assignments, Expander};
    use sxr_ir::lower_program;
    use sxr_sexp::parse_all;

    fn fold_src(src: &str) -> (Expr, RepRegistry) {
        let mut ex = Expander::new();
        let unit = ex.expand_unit(&parse_all(src).unwrap()).unwrap();
        let mut p = ex.into_program(vec![unit]);
        convert_assignments(&mut p).unwrap();
        let lowered = lower_program(p).unwrap();
        let mut reg = RepRegistry::new();
        let rep_globals = crate::scan::scan_representations(&lowered.main_body, &mut reg).unwrap();
        let globals = crate::globals::analyze_globals(&lowered.main_body, &rep_globals);
        let mut e = constfold(lowered.main_body, &globals, &mut reg).unwrap();
        // Folding is interleaved with cleanup in the real pipeline; do the
        // same here so folded branches splice through.
        for _ in 0..4 {
            let (e2, _) = crate::cleanup::cleanup(e);
            e = constfold(e2, &globals, &mut reg).unwrap();
        }
        (e, reg)
    }

    fn final_ret(e: &Expr) -> &Expr {
        match e {
            Expr::Let(_, _, b) => final_ret(b),
            other => other,
        }
    }

    #[test]
    fn word_arith_folds() {
        let (e, _) = fold_src("(%word+ 2 3)");
        // literals 2 and 3 are *fixnum* literals; without a fixnum role they
        // cannot be encoded, so nothing folds...
        assert!(matches!(final_ret(&e), Expr::Ret(Atom::Var(_))));
        // ...but with a fixnum representation declared, they do.
        let (e, _) = fold_src(
            "(define fx (%make-immediate-type 'fixnum 3 0 3))
             (%provide-rep! 'fixnum fx)
             (%word+ 2 3)",
        );
        match final_ret(&e) {
            Expr::Ret(Atom::Lit(Literal::Raw(w))) => assert_eq!(*w, 40), // 16+24
            other => panic!("expected folded constant, got {other:?}"),
        }
    }

    #[test]
    fn rep_ops_fold_on_constants() {
        let (e, _) = fold_src(
            "(define fx (%make-immediate-type 'fixnum 3 0 3))
             (%provide-rep! 'fixnum fx)
             (%rep-project fx (%rep-inject fx 5))",
        );
        // The literal 5 is the *tagged* fixnum word 40; inject shifts it
        // again, project undoes that: the folded result is the word 40.
        match final_ret(&e) {
            Expr::Ret(Atom::Lit(Literal::Raw(40))) => {}
            other => panic!("expected raw 40, got {other:?}"),
        }
    }

    #[test]
    fn if_folding_selects_branch() {
        let (e, _) = fold_src("(if #f (%error \"no\") 42)");
        match final_ret(&e) {
            Expr::Ret(Atom::Lit(Literal::Datum(Datum::Fixnum(42)))) => {}
            other => panic!("expected 42 ret, got {other:?}"),
        }
    }

    #[test]
    fn copy_propagation() {
        // Copies are `Bound::Atom` chains in the IR; `let` itself is a call
        // (the inliner's job), so build the shape directly.
        let mut reg = RepRegistry::new();
        let e = Expr::Let(
            1,
            Bound::Atom(Atom::Lit(Literal::Raw(7))),
            Box::new(Expr::Let(
                2,
                Bound::Atom(Atom::Var(1)),
                Box::new(Expr::Ret(Atom::Var(2))),
            )),
        );
        let e = constfold(e, &HashMap::new(), &mut reg).unwrap();
        match final_ret(&e) {
            Expr::Ret(Atom::Lit(Literal::Raw(7))) => {}
            other => panic!("expected 7, got {other:?}"),
        }
    }

    #[test]
    fn user_rep_type_folds_like_library_ones() {
        // A *user* type declared with constants becomes compile-time known.
        let (_, reg) = fold_src(
            "(define my-rep (%make-pointer-type 'point 4 #t))
             my-rep",
        );
        assert!(reg.by_name("point").is_some());
    }

    #[test]
    fn quotient_by_zero_not_folded() {
        let (e, _) = fold_src(
            "(define fx (%make-immediate-type 'fixnum 3 0 3))
             (%provide-rep! 'fixnum fx)
             (%word-quotient 1 0)",
        );
        fn has_prim(e: &Expr) -> bool {
            match e {
                Expr::Let(_, Bound::Prim(PrimOp::WordQuot, _), _) => true,
                Expr::Let(_, _, b) => has_prim(b),
                _ => false,
            }
        }
        assert!(has_prim(&e), "runtime error preserved");
    }
}
