//! Procedure inlining — the first of the paper's "generally-useful
//! transformations", and the one that exposes everything else: once `car`'s
//! body is at the call site, constant propagation can see the rep type,
//! specialization can see the constant, and the algebraic passes can cancel
//! the tag traffic.

use crate::globals::GlobalInfo;
use crate::util::{convert_tails, try_splice};
use std::collections::HashMap;
use std::rc::Rc;
use sxr_ir::anf::{refresh, substitute, Atom, Bound, Expr, FunDef, GlobalId, NameSupply, VarId};

/// Inlining knobs.
#[derive(Debug, Clone)]
pub struct InlineOptions {
    /// Maximum callee body size (IR nodes) to inline.
    pub threshold: usize,
    /// Safety valve on total inlines per pass run.
    pub max_per_round: usize,
}

impl Default for InlineOptions {
    fn default() -> InlineOptions {
        InlineOptions {
            threshold: 48,
            max_per_round: 20_000,
        }
    }
}

/// Runs one inlining pass. Returns the rewritten program and the number of
/// call sites inlined.
pub fn inline(
    e: Expr,
    globals: &HashMap<GlobalId, GlobalInfo>,
    supply: &mut NameSupply,
    opts: &InlineOptions,
) -> (Expr, usize) {
    let mut st = Inliner {
        globals,
        supply,
        env: HashMap::new(),
        opts,
        inlined: 0,
    };
    let out = st.walk(e);
    (out, st.inlined)
}

struct Inliner<'a> {
    globals: &'a HashMap<GlobalId, GlobalInfo>,
    supply: &'a mut NameSupply,
    /// Variables statically bound to a known function definition.
    env: HashMap<VarId, Rc<FunDef>>,
    opts: &'a InlineOptions,
    inlined: usize,
}

impl Inliner<'_> {
    fn candidate(&self, f: &Atom, nargs: usize) -> Option<Rc<FunDef>> {
        if self.inlined >= self.opts.max_per_round {
            return None;
        }
        let v = f.as_var()?;
        let def = self.env.get(&v)?;
        if def.rest.is_some() {
            return None; // variadic: the machine builds the rest list
        }
        if def.params.len() != nargs {
            return None; // leave the arity error for run time
        }
        if def.body.size() > self.opts.threshold {
            return None;
        }
        Some(Rc::clone(def))
    }

    /// Produces the refreshed, argument-substituted body of `def`.
    fn instantiate(&mut self, def: &FunDef, args: &[Atom]) -> Expr {
        let mut body = refresh(&def.body, self.supply);
        // `refresh` renames bound variables but leaves the (free) parameters
        // alone, so params can be substituted directly.
        let map: HashMap<VarId, Atom> = def
            .params
            .iter()
            .copied()
            .zip(args.iter().cloned())
            .collect();
        substitute(&mut body, &map);
        self.inlined += 1;
        body
    }

    fn walk(&mut self, e: Expr) -> Expr {
        match e {
            Expr::Let(v, Bound::Lambda(mut f), body) => {
                f.body = Box::new(self.walk(*f.body));
                self.env.insert(v, Rc::new(f.clone()));
                Expr::Let(v, Bound::Lambda(f), Box::new(self.walk(*body)))
            }
            Expr::Let(v, Bound::GlobalGet(g), body) => {
                if let Some(GlobalInfo::Fun {
                    def,
                    recursive: false,
                }) = self.globals.get(&g)
                {
                    self.env.insert(v, Rc::clone(def));
                }
                Expr::Let(v, Bound::GlobalGet(g), Box::new(self.walk(*body)))
            }
            Expr::Let(v, Bound::Call(f, args), body) => {
                if let Some(def) = self.candidate(&f, args.len()) {
                    let inlined = self.instantiate(&def, &args);
                    let inlined = convert_tails(inlined, self.supply);
                    let rest = self.walk(*body);
                    let grafted = match try_splice(inlined, v, rest) {
                        Ok(spliced) => spliced,
                        Err((inlined, rest)) => {
                            Expr::Let(v, Bound::Body(Box::new(inlined)), Box::new(rest))
                        }
                    };
                    // Re-walk the grafted code: the callee body may itself
                    // contain inlinable calls (wrappers over wrappers).
                    return self.walk(grafted);
                }
                Expr::Let(v, Bound::Call(f, args), Box::new(self.walk(*body)))
            }
            Expr::TailCall(f, args) => {
                if let Some(def) = self.candidate(&f, args.len()) {
                    let inlined = self.instantiate(&def, &args);
                    return self.walk(inlined);
                }
                Expr::TailCall(f, args)
            }
            Expr::Let(v, Bound::If(t, a, b), body) => {
                let a = Box::new(self.walk(*a));
                let b = Box::new(self.walk(*b));
                Expr::Let(v, Bound::If(t, a, b), Box::new(self.walk(*body)))
            }
            Expr::Let(v, Bound::Body(inner), body) => {
                let inner = Box::new(self.walk(*inner));
                Expr::Let(v, Bound::Body(inner), Box::new(self.walk(*body)))
            }
            Expr::Let(v, Bound::Atom(a), body) => {
                // Copies of known functions remain known.
                if let Some(def) = a.as_var().and_then(|w| self.env.get(&w)).cloned() {
                    self.env.insert(v, def);
                }
                Expr::Let(v, Bound::Atom(a), Box::new(self.walk(*body)))
            }
            Expr::Let(v, b, body) => Expr::Let(v, b, Box::new(self.walk(*body))),
            Expr::If(t, a, b) => Expr::If(t, Box::new(self.walk(*a)), Box::new(self.walk(*b))),
            Expr::LetRec(binds, body) => {
                // Letrec-bound functions are loop headers; leave their call
                // sites alone but optimize inside their bodies.
                let binds = binds
                    .into_iter()
                    .map(|(v, mut f)| {
                        f.body = Box::new(self.walk(*f.body));
                        (v, f)
                    })
                    .collect();
                Expr::LetRec(binds, Box::new(self.walk(*body)))
            }
            Expr::Ret(_) | Expr::TailCallKnown(..) => e,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::globals::analyze_globals;
    use sxr_ast::{convert_assignments, Expander};
    use sxr_ir::lower_program;
    use sxr_sexp::parse_all;

    fn run(src: &str) -> (Expr, usize) {
        let mut ex = Expander::new();
        let unit = ex.expand_unit(&parse_all(src).unwrap()).unwrap();
        let mut p = ex.into_program(vec![unit]);
        convert_assignments(&mut p).unwrap();
        let lowered = lower_program(p).unwrap();
        let globals = analyze_globals(&lowered.main_body, &HashMap::new());
        let mut supply = lowered.supply;
        inline(
            lowered.main_body,
            &globals,
            &mut supply,
            &InlineOptions::default(),
        )
    }

    fn count_calls(e: &Expr) -> usize {
        let mut n = 0;
        fn go(e: &Expr, n: &mut usize) {
            match e {
                Expr::Let(_, b, body) => {
                    match b {
                        Bound::Call(..) | Bound::CallKnown(..) => *n += 1,
                        Bound::If(_, t, e2) => {
                            go(t, n);
                            go(e2, n);
                        }
                        Bound::Body(inner) => go(inner, n),
                        Bound::Lambda(f) => go(&f.body, n),
                        _ => {}
                    }
                    go(body, n);
                }
                Expr::If(_, t, e2) => {
                    go(t, n);
                    go(e2, n);
                }
                Expr::TailCall(..) | Expr::TailCallKnown(..) => *n += 1,
                Expr::LetRec(binds, body) => {
                    for (_, f) in binds {
                        go(&f.body, n);
                    }
                    go(body, n);
                }
                Expr::Ret(_) => {}
            }
        }
        go(e, &mut n);
        n
    }

    #[test]
    fn inlines_global_wrapper() {
        let (e, n) = run("(define (add1 x) (%word+ x 8)) (add1 8)");
        assert_eq!(n, 1);
        assert_eq!(count_calls(&e), 0, "no residual calls");
    }

    #[test]
    fn inlines_through_wrapper_chains() {
        let (_, n) = run("(define (a x) (%word+ x 1))
             (define (b x) (a x))
             (define (c x) (b x))
             (c 5)");
        // c inlined at top, then b, then a (plus b/a bodies inlined inside
        // c's and b's own definitions).
        assert!(n >= 3, "expected chain inlining, got {n}");
    }

    #[test]
    fn recursive_global_not_inlined() {
        let (e, _) = run("(define (loop n) (loop n)) (loop 1)");
        assert!(count_calls(&e) >= 1, "recursive call survives");
    }

    #[test]
    fn branching_callee_uses_body() {
        let (e, n) = run("(define (abs x) (if (%word<? x 0) (%word- 0 x) x))
             (%word+ (abs -8) 0)");
        assert_eq!(n, 1);
        fn has_body(e: &Expr) -> bool {
            match e {
                Expr::Let(_, Bound::Body(_), _) => true,
                Expr::Let(_, Bound::If(_, t, e2), body) => {
                    has_body(t) || has_body(e2) || has_body(body)
                }
                Expr::Let(_, _, body) => has_body(body),
                Expr::If(_, t, e2) => has_body(t) || has_body(e2),
                _ => false,
            }
        }
        assert!(
            has_body(&e),
            "non-straight-line callee wrapped in Bound::Body"
        );
    }

    #[test]
    fn tail_call_site_splices_directly() {
        let (e, n) = run("(define (id x) x) (define (f y) (id y))");
        assert_eq!(n, 1);
        let _ = e;
    }

    #[test]
    fn arity_mismatch_left_for_runtime() {
        let (_, n) = run("(define (f x) x) (f 1 2)");
        assert_eq!(n, 0);
    }

    #[test]
    fn let_bound_lambda_inlined() {
        // Two inlines: `let` itself is an immediate lambda application, and
        // then the call to `f` inside it.
        let (e, n) = run("(let ((f (lambda (x) (%word+ x 8)))) (f 8))");
        assert_eq!(n, 2);
        // Residual calls remain only inside the (now dead) original lambda
        // bodies, which DCE removes later.
        let _ = e;
    }
}
