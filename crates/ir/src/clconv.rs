//! Closure conversion: nested functions → flat [`Module`].
//!
//! Free variables are captured by value into closure records; the current
//! function's closure is an implicit first parameter ([`Fun::self_var`]).
//! `letrec` knots are tied by allocating all closures first (with
//! unspecified placeholders in the mutually-recursive slots) and patching
//! them afterwards.
//!
//! The pass also performs *known-call resolution*: calls through a variable
//! whose value is statically a specific closure become
//! [`Bound::CallKnown`] / [`Expr::TailCallKnown`], sparing the code-pointer
//! load at each call site. Both pipeline configurations get this equally —
//! it is control-flow knowledge, not data-representation knowledge.

use crate::anf::{Atom, Bound, Expr, FnId, Fun, FunDef, Literal, Module, NameSupply, VarId};
use crate::lower::Lowered;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Runs closure conversion over a lowered program.
pub fn closure_convert(lowered: Lowered) -> Module {
    let Lowered {
        main_body,
        supply,
        global_names,
    } = lowered;
    let mut cc = Cc {
        funs: Vec::new(),
        supply,
        known: HashMap::new(),
    };
    // Reserve the main function slot first so `main` is id 0.
    cc.funs.push(Fun {
        name: Some("main".to_string()),
        self_var: 0,
        params: Vec::new(),
        rest: None,
        free_count: 0,
        body: Expr::Ret(Atom::Lit(Literal::Unspecified)),
    });
    let self_var = cc.supply.fresh("main-self");
    let body = cc.convert(main_body);
    cc.funs[0].self_var = self_var;
    cc.funs[0].body = body;
    Module {
        funs: cc.funs,
        main: 0,
        global_names,
        var_names: cc.supply.names,
    }
}

struct Cc {
    funs: Vec<Fun>,
    supply: NameSupply,
    /// Variables statically known to hold a closure of a given function.
    known: HashMap<VarId, FnId>,
}

impl Cc {
    /// Converts a function, returning its id and the (sorted) outer-scope
    /// variables it captures.
    ///
    /// `self_binding` is the letrec variable naming this function inside its
    /// own body (mapped to the closure register instead of a capture slot).
    fn convert_fun(
        &mut self,
        fun: FunDef,
        self_binding: Option<VarId>,
        reserved: Option<FnId>,
    ) -> (FnId, Vec<VarId>) {
        let fnid = match reserved {
            Some(id) => id,
            None => {
                let id = self.funs.len() as FnId;
                self.funs.push(Fun {
                    name: fun.name.clone(),
                    self_var: 0,
                    params: Vec::new(),
                    rest: None,
                    free_count: 0,
                    body: Expr::Ret(Atom::Lit(Literal::Unspecified)),
                });
                id
            }
        };
        let FunDef {
            params,
            rest,
            body,
            name,
        } = fun;
        let mut bound_params = params.clone();
        if let Some(r) = rest {
            bound_params.push(r);
        }
        let mut free = free_vars(&body, &bound_params);
        if let Some(sb) = self_binding {
            free.remove(&sb);
        }
        let free: Vec<VarId> = free.into_iter().collect();

        let self_var = self.supply.fresh("self");
        let mut subs: HashMap<VarId, Atom> = HashMap::new();
        if let Some(sb) = self_binding {
            subs.insert(sb, Atom::Var(self_var));
            self.known.insert(self_var, fnid);
        }
        let mut inner_ids = Vec::with_capacity(free.len());
        for &x in &free {
            let name = self.supply.name(x).to_string();
            let x_in = self.supply.fresh(&name);
            if let Some(&kf) = self.known.get(&x) {
                self.known.insert(x_in, kf);
            }
            subs.insert(x, Atom::Var(x_in));
            inner_ids.push(x_in);
        }
        let mut body = *body;
        crate::anf::substitute(&mut body, &subs);
        let mut body = self.convert(body);
        // Prepend free-variable loads (in reverse so index 0 is outermost).
        for (i, x_in) in inner_ids.into_iter().enumerate().rev() {
            body = Expr::Let(x_in, Bound::ClosureRef(i), Box::new(body));
        }
        self.funs[fnid as usize] = Fun {
            name,
            self_var,
            params,
            rest,
            free_count: free.len(),
            body,
        };
        (fnid, free)
    }

    fn convert(&mut self, e: Expr) -> Expr {
        match e {
            Expr::Let(v, Bound::Lambda(f), body) => {
                let variadic = f.rest.is_some();
                let (fnid, free) = self.convert_fun(f, None, None);
                if !variadic {
                    self.known.insert(v, fnid);
                }
                let atoms = free.into_iter().map(Atom::Var).collect();
                Expr::Let(
                    v,
                    Bound::MakeClosure(fnid, atoms),
                    Box::new(self.convert(*body)),
                )
            }
            Expr::LetRec(binds, body) => self.convert_letrec(binds, *body),
            Expr::Let(v, Bound::If(t, then, els), body) => {
                let then = Box::new(self.convert(*then));
                let els = Box::new(self.convert(*els));
                Expr::Let(v, Bound::If(t, then, els), Box::new(self.convert(*body)))
            }
            Expr::Let(v, Bound::Body(e), body) => {
                let e = Box::new(self.convert(*e));
                Expr::Let(v, Bound::Body(e), Box::new(self.convert(*body)))
            }
            Expr::Let(v, Bound::Call(callee, args), body) => {
                let call = match callee.as_var().and_then(|c| self.known.get(&c).copied()) {
                    Some(fnid) => Bound::CallKnown(fnid, callee, args),
                    None => Bound::Call(callee, args),
                };
                // Copies of known closures stay known.
                Expr::Let(v, call, Box::new(self.convert(*body)))
            }
            Expr::Let(v, Bound::Atom(a), body) => {
                if let Some(kf) = a.as_var().and_then(|w| self.known.get(&w).copied()) {
                    self.known.insert(v, kf);
                }
                Expr::Let(v, Bound::Atom(a), Box::new(self.convert(*body)))
            }
            Expr::Let(v, b, body) => Expr::Let(v, b, Box::new(self.convert(*body))),
            Expr::If(t, then, els) => Expr::If(
                t,
                Box::new(self.convert(*then)),
                Box::new(self.convert(*els)),
            ),
            Expr::TailCall(callee, args) => {
                match callee.as_var().and_then(|c| self.known.get(&c).copied()) {
                    Some(fnid) => Expr::TailCallKnown(fnid, callee, args),
                    None => Expr::TailCall(callee, args),
                }
            }
            Expr::Ret(_) | Expr::TailCallKnown(..) => e,
        }
    }

    fn convert_letrec(&mut self, binds: Vec<(VarId, FunDef)>, body: Expr) -> Expr {
        // Reserve function ids so mutual references resolve to known calls.
        let ids: Vec<FnId> = binds
            .iter()
            .map(|(v, f)| {
                let id = self.funs.len() as FnId;
                self.funs.push(Fun {
                    name: f.name.clone(),
                    self_var: 0,
                    params: Vec::new(),
                    rest: None,
                    free_count: 0,
                    body: Expr::Ret(Atom::Lit(Literal::Unspecified)),
                });
                // Variadic functions keep dynamic calls (the machine builds
                // the rest list on the generic path).
                if f.rest.is_none() {
                    self.known.insert(*v, id);
                }
                id
            })
            .collect();
        let rec_vars: Vec<VarId> = binds.iter().map(|(v, _)| *v).collect();
        let mut free_lists = Vec::new();
        for ((v, f), id) in binds.into_iter().zip(ids.iter()) {
            let (_, free) = self.convert_fun(f, Some(v), Some(*id));
            free_lists.push(free);
        }
        // Allocate all closures, placing unspecified placeholders in slots
        // that refer to letrec siblings, then patch.
        let mut patches: Vec<(VarId, usize, VarId)> = Vec::new();
        let mut out = self.convert(body);
        // Build in reverse: patches first (innermost), then allocations.
        for ((v, free), _id) in rec_vars.iter().zip(&free_lists).zip(&ids).rev() {
            for (slot, x) in free.iter().enumerate() {
                if rec_vars.contains(x) {
                    patches.push((*v, slot, *x));
                }
            }
        }
        for (c, slot, val) in patches {
            let t = self.supply.fresh("patch");
            out = Expr::Let(
                t,
                Bound::ClosurePatch(Atom::Var(c), slot, Atom::Var(val)),
                Box::new(out),
            );
        }
        for ((v, free), id) in rec_vars.iter().zip(&free_lists).zip(&ids).rev() {
            let atoms = free
                .iter()
                .map(|x| {
                    if rec_vars.contains(x) {
                        Atom::Lit(Literal::Unspecified)
                    } else {
                        Atom::Var(*x)
                    }
                })
                .collect();
            out = Expr::Let(*v, Bound::MakeClosure(*id, atoms), Box::new(out));
        }
        out
    }
}

/// Variables referenced by `body` but not bound within it or by `params`.
/// Returned in ascending order for determinism.
pub fn free_vars(body: &Expr, params: &[VarId]) -> BTreeSet<VarId> {
    let mut bound: HashSet<VarId> = params.iter().copied().collect();
    collect_bound(body, &mut bound);
    let mut free = BTreeSet::new();
    body.for_each_atom(&mut |a| {
        if let Atom::Var(v) = a {
            if !bound.contains(v) {
                free.insert(*v);
            }
        }
    });
    free
}

fn collect_bound(e: &Expr, out: &mut HashSet<VarId>) {
    match e {
        Expr::Let(v, b, body) => {
            out.insert(*v);
            match b {
                Bound::Lambda(l) => {
                    out.extend(l.params.iter().copied());
                    collect_bound(&l.body, out);
                }
                Bound::If(_, t, e2) => {
                    collect_bound(t, out);
                    collect_bound(e2, out);
                }
                Bound::Body(e2) => collect_bound(e2, out),
                _ => {}
            }
            collect_bound(body, out);
        }
        Expr::If(_, t, e2) => {
            collect_bound(t, out);
            collect_bound(e2, out);
        }
        Expr::Ret(_) | Expr::TailCall(..) | Expr::TailCallKnown(..) => {}
        Expr::LetRec(binds, body) => {
            for (v, l) in binds {
                out.insert(*v);
                out.extend(l.params.iter().copied());
                collect_bound(&l.body, out);
            }
            collect_bound(body, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use sxr_ast::{convert_assignments, Expander};
    use sxr_sexp::parse_all;

    fn convert_src(src: &str) -> Module {
        let mut ex = Expander::new();
        for g in ["box", "unbox", "set-box!", "cons", "f"] {
            ex.declare_global(g);
        }
        let unit = ex.expand_unit(&parse_all(src).unwrap()).unwrap();
        let mut prog = ex.into_program(vec![unit]);
        convert_assignments(&mut prog).unwrap();
        closure_convert(lower_program(prog).unwrap())
    }

    fn no_nested(e: &Expr) -> bool {
        match e {
            Expr::Let(_, Bound::Lambda(_), _) | Expr::LetRec(..) => false,
            Expr::Let(_, Bound::If(_, t, e2), body) => {
                no_nested(t) && no_nested(e2) && no_nested(body)
            }
            Expr::Let(_, _, body) => no_nested(body),
            Expr::If(_, t, e2) => no_nested(t) && no_nested(e2),
            _ => true,
        }
    }

    #[test]
    fn flat_after_conversion() {
        let m = convert_src("(define (add a b) (%word+ a b)) (add 1 2)");
        assert!(m.funs.len() >= 2);
        for f in &m.funs {
            assert!(no_nested(&f.body), "no nested lambdas after cc");
        }
    }

    #[test]
    fn capture_free_variable() {
        let m = convert_src("(lambda (x) (lambda (y) (%word+ x y)))");
        // Inner function captures x: free_count 1, body starts with ClosureRef.
        let inner = m
            .funs
            .iter()
            .find(|f| f.free_count == 1)
            .expect("an inner function with one capture");
        match &inner.body {
            Expr::Let(_, Bound::ClosureRef(0), _) => {}
            other => panic!("expected closure-ref prologue, got {other:?}"),
        }
    }

    #[test]
    fn letrec_becomes_known_calls() {
        let m = convert_src("(let loop ((i 0)) (if (%word=? i 10) i (loop (%word+ i 1))))");
        let loop_fun = m
            .funs
            .iter()
            .find(|f| f.name.as_deref() == Some("loop"))
            .expect("loop function exists");
        // The recursive call is a TailCallKnown through the self register.
        fn has_known_tail(e: &Expr) -> bool {
            match e {
                Expr::TailCallKnown(..) => true,
                Expr::Let(_, Bound::If(_, t, e2), body) => {
                    has_known_tail(t) || has_known_tail(e2) || has_known_tail(body)
                }
                Expr::Let(_, _, body) => has_known_tail(body),
                Expr::If(_, t, e2) => has_known_tail(t) || has_known_tail(e2),
                _ => false,
            }
        }
        assert!(
            has_known_tail(&loop_fun.body),
            "self call resolved statically"
        );
        // Self-recursion does not capture the loop variable.
        assert_eq!(loop_fun.free_count, 0);
    }

    #[test]
    fn mutual_letrec_patched() {
        let m = convert_src(
            "(letrec ((even? (lambda (n) (if (%word=? n 0) #t (odd? (%word- n 1)))))
                      (odd? (lambda (n) (if (%word=? n 0) #f (even? (%word- n 1))))))
               (even? 10))",
        );
        // Mutual references capture each other, so patches must appear.
        fn count_patches(e: &Expr) -> usize {
            match e {
                Expr::Let(_, Bound::ClosurePatch(..), body) => 1 + count_patches(body),
                Expr::Let(_, Bound::If(_, t, e2), body) => {
                    count_patches(t) + count_patches(e2) + count_patches(body)
                }
                Expr::Let(_, _, body) => count_patches(body),
                Expr::If(_, t, e2) => count_patches(t) + count_patches(e2),
                _ => 0,
            }
        }
        let main = &m.funs[m.main as usize];
        assert_eq!(
            count_patches(&main.body),
            2,
            "one patch per mutual reference"
        );
    }

    #[test]
    fn known_call_through_let_binding() {
        let m = convert_src("(let ((f (lambda (x) x))) (f 1))");
        let main = &m.funs[m.main as usize];
        fn has_known(e: &Expr) -> bool {
            match e {
                Expr::Let(_, Bound::CallKnown(..), _) | Expr::TailCallKnown(..) => true,
                Expr::Let(_, Bound::If(_, t, e2), body) => {
                    has_known(t) || has_known(e2) || has_known(body)
                }
                Expr::Let(_, _, body) => has_known(body),
                Expr::If(_, t, e2) => has_known(t) || has_known(e2),
                _ => false,
            }
        }
        assert!(has_known(&main.body));
    }

    #[test]
    fn free_vars_sorted_and_minimal() {
        // (lambda (y) (%word+ x3 (%word+ y x1)))  with frees x1 x3
        use crate::anf::*;
        let body = Expr::Let(
            100,
            Bound::Prim(
                crate::prim::PrimOp::WordAdd,
                vec![Atom::Var(50), Atom::Var(3)],
            ),
            Box::new(Expr::Let(
                101,
                Bound::Prim(
                    crate::prim::PrimOp::WordAdd,
                    vec![Atom::Var(1), Atom::Var(100)],
                ),
                Box::new(Expr::Ret(Atom::Var(101))),
            )),
        );
        let frees = free_vars(&body, &[50]);
        assert_eq!(frees.into_iter().collect::<Vec<_>>(), vec![1, 3]);
    }
}
