//! IR sanity checking. The validator is cheap enough to run after every
//! pass in debug builds, and the test suites run it constantly; it exists to
//! turn "miscompiled program" into "failed invariant at the pass that broke
//! it".

use crate::anf::{Atom, Bound, Expr, FnId, Fun, GlobalId, Module, VarId};
use crate::prim::PrimOp;
use std::collections::HashSet;
use std::fmt;

/// The specific IR invariant that was violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateErrorKind {
    /// A variable is used before (or without) being defined.
    UndefinedVar {
        /// The offending variable.
        var: VarId,
    },
    /// A variable is let-bound twice in one function (single assignment).
    RedefinedVar {
        /// The offending variable.
        var: VarId,
    },
    /// A parameter (or the self/rest slot) repeats another parameter.
    DuplicateParam {
        /// The offending variable.
        var: VarId,
    },
    /// A tail call appears where only non-tail expressions are allowed
    /// (inside a `Bound::If` branch or a `Bound::Body`).
    TailCallInNonTail,
    /// An [`Expr::LetRec`] survived closure conversion.
    LetRecSurvives,
    /// A [`Bound::Lambda`] survived closure conversion.
    LambdaSurvives,
    /// A `ClosureRef` index is outside the function's `free_count`.
    ClosureRefOutOfRange {
        /// The index used.
        index: usize,
        /// The function's free-slot count.
        free_count: usize,
    },
    /// A `CallKnown`/`MakeClosure`/`TailCallKnown` names a function id not
    /// in the module.
    FnIdOutOfRange {
        /// The function id used.
        fnid: FnId,
    },
    /// A known call's argument count differs from the callee's parameters.
    ArityMismatch {
        /// The callee.
        fnid: FnId,
        /// Parameters the callee declares.
        want: usize,
        /// Arguments supplied.
        got: usize,
    },
    /// A known call targets a variadic function (must stay dynamic).
    VariadicKnownCall {
        /// The callee.
        fnid: FnId,
    },
    /// A primitive application has the wrong number of operands.
    PrimArityMismatch {
        /// The primitive.
        op: PrimOp,
        /// Operands the primitive takes.
        want: usize,
        /// Operands supplied.
        got: usize,
    },
    /// A global id is outside the module's global table.
    GlobalOutOfRange {
        /// The global id used.
        global: GlobalId,
    },
    /// A `MakeClosure` capture count differs from the callee's
    /// `free_count`.
    CaptureCountMismatch {
        /// The closed-over function.
        fnid: FnId,
        /// Free slots the function declares.
        want: usize,
        /// Captures supplied.
        got: usize,
    },
    /// The module's entry function id is out of range.
    MainOutOfRange,
}

impl fmt::Display for ValidateErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ValidateErrorKind::*;
        match self {
            UndefinedVar { var } => write!(f, "use of undefined variable v{var}"),
            RedefinedVar { var } => write!(f, "variable v{var} defined twice"),
            DuplicateParam { var } => write!(f, "duplicate parameter v{var}"),
            TailCallInNonTail => write!(f, "tail call in non-tail position"),
            LetRecSurvives => write!(f, "letrec survives closure conversion"),
            LambdaSurvives => write!(f, "nested lambda survives closure conversion"),
            ClosureRefOutOfRange { index, free_count } => {
                write!(
                    f,
                    "closure-ref {index} out of range (free_count {free_count})"
                )
            }
            FnIdOutOfRange { fnid } => write!(f, "function id f{fnid} out of range"),
            ArityMismatch { fnid, want, got } => {
                write!(
                    f,
                    "known call to f{fnid} with {got} args; function takes {want}"
                )
            }
            VariadicKnownCall { fnid } => {
                write!(f, "known call to variadic f{fnid} (must stay dynamic)")
            }
            PrimArityMismatch { op, want, got } => {
                write!(f, "{op} arity mismatch: takes {want} operands, given {got}")
            }
            GlobalOutOfRange { global } => write!(f, "global {global} out of range"),
            CaptureCountMismatch { fnid, want, got } => {
                write!(
                    f,
                    "closure over f{fnid} with {got} captures; function expects {want}"
                )
            }
            MainOutOfRange => write!(f, "main function id out of range"),
        }
    }
}

/// A violated IR invariant, with the function it occurred in (when any).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// What went wrong.
    pub kind: ValidateErrorKind,
    /// The containing function: `(id, diagnostic name)`. `None` for
    /// module-level violations.
    pub fun: Option<(FnId, String)>,
}

impl ValidateError {
    fn new(kind: ValidateErrorKind) -> ValidateError {
        ValidateError { kind, fun: None }
    }
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IR invariant violated: ")?;
        if let Some((id, name)) = &self.fun {
            write!(f, "in f{id} ({name}): ")?;
        }
        self.kind.fmt(f)
    }
}

impl std::error::Error for ValidateError {}

/// Validates a closure-converted module:
///
/// * no nested lambdas / letrec,
/// * every variable defined before use, defined exactly once per function,
/// * `ClosureRef` indices within `free_count`,
/// * `CallKnown`/`MakeClosure` function ids in range, arities consistent,
/// * primitive operand counts match [`PrimOp::arity`],
/// * global ids within the module's global table,
/// * `Bound::If` branches end in `Ret` (no tail calls).
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn validate_module(m: &Module) -> Result<(), ValidateError> {
    for (i, f) in m.funs.iter().enumerate() {
        validate_fun(m, f).map_err(|mut e| {
            e.fun = Some((
                i as FnId,
                f.name.clone().unwrap_or_else(|| "anonymous".into()),
            ));
            e
        })?;
    }
    if m.main as usize >= m.funs.len() {
        return Err(ValidateError::new(ValidateErrorKind::MainOutOfRange));
    }
    Ok(())
}

fn validate_fun(m: &Module, f: &Fun) -> Result<(), ValidateError> {
    let mut defined: HashSet<VarId> = HashSet::new();
    defined.insert(f.self_var);
    for p in f.params.iter().chain(f.rest.iter()) {
        if !defined.insert(*p) {
            return Err(ValidateError::new(ValidateErrorKind::DuplicateParam {
                var: *p,
            }));
        }
    }
    check_expr(m, f, &f.body, &mut defined, true)
}

fn check_atom(a: &Atom, defined: &HashSet<VarId>) -> Result<(), ValidateError> {
    if let Atom::Var(v) = a {
        if !defined.contains(v) {
            return Err(ValidateError::new(ValidateErrorKind::UndefinedVar {
                var: *v,
            }));
        }
    }
    Ok(())
}

/// `tail` is true when tail calls are permitted in this position.
fn check_expr(
    m: &Module,
    f: &Fun,
    e: &Expr,
    defined: &mut HashSet<VarId>,
    tail: bool,
) -> Result<(), ValidateError> {
    match e {
        Expr::Let(v, b, body) => {
            check_bound(m, f, b, defined)?;
            if !defined.insert(*v) {
                return Err(ValidateError::new(ValidateErrorKind::RedefinedVar {
                    var: *v,
                }));
            }
            check_expr(m, f, body, defined, tail)
        }
        Expr::If(t, then, els) => {
            check_atom(t.atom(), defined)?;
            // Each branch sees the same scope; their bindings are disjoint
            // (globally unique ids), so a shared `defined` set is fine.
            check_expr(m, f, then, defined, tail)?;
            check_expr(m, f, els, defined, tail)
        }
        Expr::Ret(a) => check_atom(a, defined),
        Expr::TailCall(callee, args) => {
            if !tail {
                return Err(ValidateError::new(ValidateErrorKind::TailCallInNonTail));
            }
            check_atom(callee, defined)?;
            args.iter().try_for_each(|a| check_atom(a, defined))
        }
        Expr::TailCallKnown(fid, clo, args) => {
            if !tail {
                return Err(ValidateError::new(ValidateErrorKind::TailCallInNonTail));
            }
            check_fnid(m, *fid)?;
            check_arity(m, *fid, args.len())?;
            check_atom(clo, defined)?;
            args.iter().try_for_each(|a| check_atom(a, defined))
        }
        Expr::LetRec(..) => Err(ValidateError::new(ValidateErrorKind::LetRecSurvives)),
    }
}

fn check_fnid(m: &Module, fid: FnId) -> Result<(), ValidateError> {
    if fid as usize >= m.funs.len() {
        return Err(ValidateError::new(ValidateErrorKind::FnIdOutOfRange {
            fnid: fid,
        }));
    }
    Ok(())
}

fn check_arity(m: &Module, fid: FnId, nargs: usize) -> Result<(), ValidateError> {
    let f = &m.funs[fid as usize];
    let want = f.params.len();
    if f.rest.is_some() {
        return Err(ValidateError::new(ValidateErrorKind::VariadicKnownCall {
            fnid: fid,
        }));
    }
    if want != nargs {
        return Err(ValidateError::new(ValidateErrorKind::ArityMismatch {
            fnid: fid,
            want,
            got: nargs,
        }));
    }
    Ok(())
}

fn check_bound(
    m: &Module,
    f: &Fun,
    b: &Bound,
    defined: &mut HashSet<VarId>,
) -> Result<(), ValidateError> {
    match b {
        Bound::Atom(a) => check_atom(a, defined),
        Bound::Prim(op, args) => {
            if op.arity() != args.len() {
                return Err(ValidateError::new(ValidateErrorKind::PrimArityMismatch {
                    op: *op,
                    want: op.arity(),
                    got: args.len(),
                }));
            }
            args.iter().try_for_each(|a| check_atom(a, defined))
        }
        Bound::Call(callee, args) => {
            check_atom(callee, defined)?;
            args.iter().try_for_each(|a| check_atom(a, defined))
        }
        Bound::CallKnown(fid, clo, args) => {
            check_fnid(m, *fid)?;
            check_arity(m, *fid, args.len())?;
            check_atom(clo, defined)?;
            args.iter().try_for_each(|a| check_atom(a, defined))
        }
        Bound::GlobalGet(g) => check_global(m, *g),
        Bound::GlobalSet(g, a) => {
            check_global(m, *g)?;
            check_atom(a, defined)
        }
        Bound::Lambda(_) => Err(ValidateError::new(ValidateErrorKind::LambdaSurvives)),
        Bound::MakeClosure(fid, frees) => {
            check_fnid(m, *fid)?;
            let want = m.funs[*fid as usize].free_count;
            if frees.len() != want {
                return Err(ValidateError::new(
                    ValidateErrorKind::CaptureCountMismatch {
                        fnid: *fid,
                        want,
                        got: frees.len(),
                    },
                ));
            }
            frees.iter().try_for_each(|a| check_atom(a, defined))
        }
        Bound::ClosureRef(i) => {
            if *i >= f.free_count {
                return Err(ValidateError::new(
                    ValidateErrorKind::ClosureRefOutOfRange {
                        index: *i,
                        free_count: f.free_count,
                    },
                ));
            }
            Ok(())
        }
        Bound::ClosurePatch(c, _, x) => {
            check_atom(c, defined)?;
            check_atom(x, defined)
        }
        Bound::If(t, then, els) => {
            check_atom(t.atom(), defined)?;
            check_expr(m, f, then, defined, false)?;
            check_expr(m, f, els, defined, false)
        }
        Bound::Body(e) => check_expr(m, f, e, defined, false),
    }
}

fn check_global(m: &Module, g: GlobalId) -> Result<(), ValidateError> {
    if g as usize >= m.global_names.len() {
        return Err(ValidateError::new(ValidateErrorKind::GlobalOutOfRange {
            global: g,
        }));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anf::{Literal, Test};

    fn module_with_body(body: Expr) -> Module {
        Module {
            funs: vec![Fun {
                name: Some("main".into()),
                self_var: 0,
                params: vec![],
                rest: None,
                free_count: 0,
                body,
            }],
            main: 0,
            global_names: vec!["g".to_string()],
            var_names: vec![],
        }
    }

    fn kind_of(m: &Module) -> ValidateErrorKind {
        validate_module(m).unwrap_err().kind
    }

    #[test]
    fn accepts_well_formed() {
        let m = module_with_body(Expr::Let(
            1,
            Bound::GlobalGet(0),
            Box::new(Expr::Ret(Atom::Var(1))),
        ));
        assert!(validate_module(&m).is_ok());
    }

    // One test per `ValidateErrorKind` variant, each from a minimal
    // malformed module.

    #[test]
    fn rejects_undefined_use() {
        let m = module_with_body(Expr::Ret(Atom::Var(42)));
        assert_eq!(kind_of(&m), ValidateErrorKind::UndefinedVar { var: 42 });
    }

    #[test]
    fn rejects_double_definition() {
        let m = module_with_body(Expr::Let(
            1,
            Bound::Atom(Atom::Lit(Literal::Unspecified)),
            Box::new(Expr::Let(
                1,
                Bound::Atom(Atom::Lit(Literal::Unspecified)),
                Box::new(Expr::Ret(Atom::Var(1))),
            )),
        ));
        assert_eq!(kind_of(&m), ValidateErrorKind::RedefinedVar { var: 1 });
    }

    #[test]
    fn rejects_duplicate_parameter() {
        let mut m = module_with_body(Expr::Ret(Atom::Lit(Literal::Unspecified)));
        m.funs[0].params = vec![7, 7];
        assert_eq!(kind_of(&m), ValidateErrorKind::DuplicateParam { var: 7 });
    }

    #[test]
    fn rejects_tailcall_in_bound_if() {
        let m = module_with_body(Expr::Let(
            1,
            Bound::If(
                Test::Truthy(Atom::Lit(Literal::Unspecified)),
                Box::new(Expr::TailCall(Atom::Lit(Literal::Unspecified), vec![])),
                Box::new(Expr::Ret(Atom::Lit(Literal::Unspecified))),
            ),
            Box::new(Expr::Ret(Atom::Var(1))),
        ));
        assert_eq!(kind_of(&m), ValidateErrorKind::TailCallInNonTail);
    }

    #[test]
    fn rejects_surviving_letrec() {
        let m = module_with_body(Expr::LetRec(
            vec![],
            Box::new(Expr::Ret(Atom::Lit(Literal::Unspecified))),
        ));
        assert_eq!(kind_of(&m), ValidateErrorKind::LetRecSurvives);
    }

    #[test]
    fn rejects_surviving_lambda() {
        let m = module_with_body(Expr::Let(
            1,
            Bound::Lambda(crate::anf::FunDef {
                params: vec![],
                rest: None,
                body: Box::new(Expr::Ret(Atom::Lit(Literal::Unspecified))),
                name: None,
            }),
            Box::new(Expr::Ret(Atom::Var(1))),
        ));
        assert_eq!(kind_of(&m), ValidateErrorKind::LambdaSurvives);
    }

    #[test]
    fn rejects_bad_closure_ref() {
        let m = module_with_body(Expr::Let(
            1,
            Bound::ClosureRef(0),
            Box::new(Expr::Ret(Atom::Var(1))),
        ));
        assert_eq!(
            kind_of(&m),
            ValidateErrorKind::ClosureRefOutOfRange {
                index: 0,
                free_count: 0
            }
        );
    }

    #[test]
    fn rejects_fnid_out_of_range() {
        let m = module_with_body(Expr::Let(
            1,
            Bound::MakeClosure(9, vec![]),
            Box::new(Expr::Ret(Atom::Var(1))),
        ));
        assert_eq!(kind_of(&m), ValidateErrorKind::FnIdOutOfRange { fnid: 9 });
    }

    #[test]
    fn rejects_known_call_arity_mismatch() {
        let mut m = module_with_body(Expr::Let(
            1,
            Bound::CallKnown(0, Atom::Lit(Literal::Unspecified), vec![]),
            Box::new(Expr::Ret(Atom::Var(1))),
        ));
        m.funs[0].params = vec![9];
        // Calling main (which now takes 1 param) with 0 args. The param
        // list change also shifts the body's scope, so the bound var is
        // checked first: build the body so only the arity is wrong.
        assert_eq!(
            kind_of(&m),
            ValidateErrorKind::ArityMismatch {
                fnid: 0,
                want: 1,
                got: 0
            }
        );
    }

    #[test]
    fn rejects_known_call_to_variadic() {
        let mut m = module_with_body(Expr::TailCallKnown(
            0,
            Atom::Lit(Literal::Unspecified),
            vec![],
        ));
        m.funs[0].rest = Some(8);
        assert_eq!(
            kind_of(&m),
            ValidateErrorKind::VariadicKnownCall { fnid: 0 }
        );
    }

    #[test]
    fn rejects_prim_arity_mismatch() {
        let m = module_with_body(Expr::Let(
            1,
            Bound::Prim(PrimOp::WordAdd, vec![Atom::raw(1)]),
            Box::new(Expr::Ret(Atom::Var(1))),
        ));
        assert_eq!(
            kind_of(&m),
            ValidateErrorKind::PrimArityMismatch {
                op: PrimOp::WordAdd,
                want: 2,
                got: 1
            }
        );
    }

    #[test]
    fn rejects_global_out_of_range() {
        let m = module_with_body(Expr::Let(
            1,
            Bound::GlobalGet(5),
            Box::new(Expr::Ret(Atom::Var(1))),
        ));
        assert_eq!(
            kind_of(&m),
            ValidateErrorKind::GlobalOutOfRange { global: 5 }
        );

        let m = module_with_body(Expr::Let(
            1,
            Bound::GlobalSet(6, Atom::Lit(Literal::Unspecified)),
            Box::new(Expr::Ret(Atom::Var(1))),
        ));
        assert_eq!(
            kind_of(&m),
            ValidateErrorKind::GlobalOutOfRange { global: 6 }
        );
    }

    #[test]
    fn rejects_capture_count_mismatch() {
        let mut m = module_with_body(Expr::Let(
            1,
            Bound::MakeClosure(0, vec![]),
            Box::new(Expr::Ret(Atom::Var(1))),
        ));
        m.funs[0].free_count = 2;
        assert_eq!(
            kind_of(&m),
            ValidateErrorKind::CaptureCountMismatch {
                fnid: 0,
                want: 2,
                got: 0
            }
        );
    }

    #[test]
    fn rejects_main_out_of_range() {
        let mut m = module_with_body(Expr::Ret(Atom::Lit(Literal::Unspecified)));
        m.main = 3;
        assert_eq!(kind_of(&m), ValidateErrorKind::MainOutOfRange);
    }

    #[test]
    fn error_display_names_function() {
        let m = module_with_body(Expr::Ret(Atom::Var(42)));
        let msg = validate_module(&m).unwrap_err().to_string();
        assert!(msg.contains("in f0 (main)"), "{msg}");
        assert!(msg.contains("undefined variable v42"), "{msg}");
    }
}
