//! IR sanity checking. The validator is cheap enough to run after every
//! pass in debug builds, and the test suites run it constantly; it exists to
//! turn "miscompiled program" into "failed invariant at the pass that broke
//! it".

use crate::anf::{Atom, Bound, Expr, Fun, Module, VarId};
use std::collections::HashSet;
use std::fmt;

/// A violated IR invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError(pub String);

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IR invariant violated: {}", self.0)
    }
}

impl std::error::Error for ValidateError {}

/// Validates a closure-converted module:
///
/// * no nested lambdas / letrec,
/// * every variable defined before use, defined exactly once per function,
/// * `ClosureRef` indices within `free_count`,
/// * `CallKnown`/`MakeClosure` function ids in range,
/// * `Bound::If` branches end in `Ret` (no tail calls).
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn validate_module(m: &Module) -> Result<(), ValidateError> {
    for (i, f) in m.funs.iter().enumerate() {
        validate_fun(m, f).map_err(|e| {
            ValidateError(format!(
                "in f{i} ({}): {}",
                f.name.as_deref().unwrap_or("anonymous"),
                e.0
            ))
        })?;
    }
    if m.main as usize >= m.funs.len() {
        return Err(ValidateError("main function id out of range".to_string()));
    }
    Ok(())
}

fn validate_fun(m: &Module, f: &Fun) -> Result<(), ValidateError> {
    let mut defined: HashSet<VarId> = HashSet::new();
    defined.insert(f.self_var);
    for p in f.params.iter().chain(f.rest.iter()) {
        if !defined.insert(*p) {
            return Err(ValidateError(format!("duplicate parameter v{p}")));
        }
    }
    check_expr(m, f, &f.body, &mut defined, true)
}

fn check_atom(a: &Atom, defined: &HashSet<VarId>) -> Result<(), ValidateError> {
    if let Atom::Var(v) = a {
        if !defined.contains(v) {
            return Err(ValidateError(format!("use of undefined variable v{v}")));
        }
    }
    Ok(())
}

/// `tail` is true when tail calls are permitted in this position.
fn check_expr(
    m: &Module,
    f: &Fun,
    e: &Expr,
    defined: &mut HashSet<VarId>,
    tail: bool,
) -> Result<(), ValidateError> {
    match e {
        Expr::Let(v, b, body) => {
            check_bound(m, f, b, defined)?;
            if !defined.insert(*v) {
                return Err(ValidateError(format!("variable v{v} defined twice")));
            }
            check_expr(m, f, body, defined, tail)
        }
        Expr::If(t, then, els) => {
            check_atom(t.atom(), defined)?;
            // Each branch sees the same scope; their bindings are disjoint
            // (globally unique ids), so a shared `defined` set is fine.
            check_expr(m, f, then, defined, tail)?;
            check_expr(m, f, els, defined, tail)
        }
        Expr::Ret(a) => check_atom(a, defined),
        Expr::TailCall(callee, args) => {
            if !tail {
                return Err(ValidateError("tail call in non-tail position".to_string()));
            }
            check_atom(callee, defined)?;
            args.iter().try_for_each(|a| check_atom(a, defined))
        }
        Expr::TailCallKnown(fid, clo, args) => {
            if !tail {
                return Err(ValidateError("tail call in non-tail position".to_string()));
            }
            check_fnid(m, *fid)?;
            check_arity(m, *fid, args.len())?;
            check_atom(clo, defined)?;
            args.iter().try_for_each(|a| check_atom(a, defined))
        }
        Expr::LetRec(..) => {
            Err(ValidateError("letrec survives closure conversion".to_string()))
        }
    }
}

fn check_fnid(m: &Module, fid: u32) -> Result<(), ValidateError> {
    if fid as usize >= m.funs.len() {
        return Err(ValidateError(format!("function id f{fid} out of range")));
    }
    Ok(())
}

fn check_arity(m: &Module, fid: u32, nargs: usize) -> Result<(), ValidateError> {
    let f = &m.funs[fid as usize];
    let want = f.params.len();
    if f.rest.is_some() {
        return Err(ValidateError(format!(
            "known call to variadic f{fid} (must stay dynamic)"
        )));
    }
    if want != nargs {
        return Err(ValidateError(format!(
            "known call to f{fid} with {nargs} args; function takes {want}"
        )));
    }
    Ok(())
}

fn check_bound(
    m: &Module,
    f: &Fun,
    b: &Bound,
    defined: &mut HashSet<VarId>,
) -> Result<(), ValidateError> {
    match b {
        Bound::Atom(a) | Bound::GlobalSet(_, a) => check_atom(a, defined),
        Bound::Prim(op, args) => {
            if op.arity() != args.len() {
                return Err(ValidateError(format!("{op} arity mismatch")));
            }
            args.iter().try_for_each(|a| check_atom(a, defined))
        }
        Bound::Call(callee, args) => {
            check_atom(callee, defined)?;
            args.iter().try_for_each(|a| check_atom(a, defined))
        }
        Bound::CallKnown(fid, clo, args) => {
            check_fnid(m, *fid)?;
            check_arity(m, *fid, args.len())?;
            check_atom(clo, defined)?;
            args.iter().try_for_each(|a| check_atom(a, defined))
        }
        Bound::GlobalGet(g) => {
            if *g as usize >= m.global_names.len() {
                return Err(ValidateError(format!("global {g} out of range")));
            }
            Ok(())
        }
        Bound::Lambda(_) => {
            Err(ValidateError("nested lambda survives closure conversion".to_string()))
        }
        Bound::MakeClosure(fid, frees) => {
            check_fnid(m, *fid)?;
            let want = m.funs[*fid as usize].free_count;
            if frees.len() != want {
                return Err(ValidateError(format!(
                    "closure over f{fid} with {} captures; function expects {want}",
                    frees.len()
                )));
            }
            frees.iter().try_for_each(|a| check_atom(a, defined))
        }
        Bound::ClosureRef(i) => {
            if *i >= f.free_count {
                return Err(ValidateError(format!(
                    "closure-ref {i} out of range (free_count {})",
                    f.free_count
                )));
            }
            Ok(())
        }
        Bound::ClosurePatch(c, _, x) => {
            check_atom(c, defined)?;
            check_atom(x, defined)
        }
        Bound::If(t, then, els) => {
            check_atom(t.atom(), defined)?;
            check_expr(m, f, then, defined, false)?;
            check_expr(m, f, els, defined, false)
        }
        Bound::Body(e) => check_expr(m, f, e, defined, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anf::{Literal, Test};

    fn module_with_body(body: Expr) -> Module {
        Module {
            funs: vec![Fun {
                name: Some("main".into()),
                self_var: 0,
                params: vec![],
                rest: None,
                free_count: 0,
                body,
            }],
            main: 0,
            global_names: vec!["g".to_string()],
            var_names: vec![],
        }
    }

    #[test]
    fn accepts_well_formed() {
        let m = module_with_body(Expr::Let(
            1,
            Bound::GlobalGet(0),
            Box::new(Expr::Ret(Atom::Var(1))),
        ));
        assert!(validate_module(&m).is_ok());
    }

    #[test]
    fn rejects_undefined_use() {
        let m = module_with_body(Expr::Ret(Atom::Var(42)));
        assert!(validate_module(&m).unwrap_err().0.contains("undefined"));
    }

    #[test]
    fn rejects_double_definition() {
        let m = module_with_body(Expr::Let(
            1,
            Bound::Atom(Atom::Lit(Literal::Unspecified)),
            Box::new(Expr::Let(
                1,
                Bound::Atom(Atom::Lit(Literal::Unspecified)),
                Box::new(Expr::Ret(Atom::Var(1))),
            )),
        ));
        assert!(validate_module(&m).unwrap_err().0.contains("twice"));
    }

    #[test]
    fn rejects_tailcall_in_bound_if() {
        let m = module_with_body(Expr::Let(
            1,
            Bound::If(
                Test::Truthy(Atom::Lit(Literal::Unspecified)),
                Box::new(Expr::TailCall(Atom::Lit(Literal::Unspecified), vec![])),
                Box::new(Expr::Ret(Atom::Lit(Literal::Unspecified))),
            ),
            Box::new(Expr::Ret(Atom::Var(1))),
        ));
        assert!(validate_module(&m).unwrap_err().0.contains("non-tail"));
    }

    #[test]
    fn rejects_surviving_lambda() {
        let m = module_with_body(Expr::Let(
            1,
            Bound::Lambda(crate::anf::FunDef {
                params: vec![],
                rest: None,
                body: Box::new(Expr::Ret(Atom::Lit(Literal::Unspecified))),
                name: None,
            }),
            Box::new(Expr::Ret(Atom::Var(1))),
        ));
        assert!(validate_module(&m).unwrap_err().0.contains("nested lambda"));
    }

    #[test]
    fn rejects_bad_closure_ref() {
        let m = module_with_body(Expr::Let(
            1,
            Bound::ClosureRef(0),
            Box::new(Expr::Ret(Atom::Var(1))),
        ));
        assert!(validate_module(&m).unwrap_err().0.contains("closure-ref"));
    }

    #[test]
    fn rejects_known_call_arity_mismatch() {
        let mut m = module_with_body(Expr::Let(
            1,
            Bound::CallKnown(0, Atom::Lit(Literal::Unspecified), vec![]),
            Box::new(Expr::Ret(Atom::Var(1))),
        ));
        m.funs[0].params = vec![9];
        // Calling main (which now takes 1 param) with 0 args.
        assert!(validate_module(&m).unwrap_err().0.contains("takes 1"));
    }
}
