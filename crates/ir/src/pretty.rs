//! Human-readable printing of the IR (used by tests, debugging, and the
//! `compiler_explorer` example).

use crate::anf::{Atom, Bound, Expr, Fun, Literal, Module, Test};
use std::fmt::Write as _;

/// Renders a whole module.
pub fn module_to_string(m: &Module) -> String {
    let mut out = String::new();
    for (i, f) in m.funs.iter().enumerate() {
        let marker = if i as u32 == m.main { " ;; entry" } else { "" };
        let _ = writeln!(
            out,
            "(fun f{i} {}{marker}",
            f.name.as_deref().unwrap_or("anonymous")
        );
        let _ = writeln!(
            out,
            "  (self v{} params ({}) free {})",
            f.self_var,
            f.params
                .iter()
                .map(|p| format!("v{p}"))
                .collect::<Vec<_>>()
                .join(" "),
            f.free_count
        );
        write_expr(&mut out, &f.body, 1);
        let _ = writeln!(out, ")");
    }
    out
}

/// Renders one function.
pub fn fun_to_string(f: &Fun) -> String {
    let mut out = String::new();
    write_expr(&mut out, &f.body, 0);
    out
}

/// Renders one expression.
pub fn expr_to_string(e: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, e, 0);
    out
}

fn atom(a: &Atom) -> String {
    match a {
        Atom::Var(v) => format!("v{v}"),
        Atom::Lit(Literal::Datum(d)) => format!("'{d}"),
        Atom::Lit(Literal::Unspecified) => "#unspecified".to_string(),
        Atom::Lit(Literal::Rep(r)) => format!("#rep{r}"),
        Atom::Lit(Literal::Raw(w)) => format!("#raw{w}"),
    }
}

fn atoms(list: &[Atom]) -> String {
    list.iter().map(atom).collect::<Vec<_>>().join(" ")
}

fn test(t: &Test) -> String {
    match t {
        Test::Truthy(a) => format!("(truthy {})", atom(a)),
        Test::NonZero(a) => format!("(nonzero {})", atom(a)),
    }
}

fn write_expr(out: &mut String, e: &Expr, indent: usize) {
    let pad = "  ".repeat(indent);
    match e {
        Expr::Let(v, b, body) => {
            match b {
                Bound::Atom(a) => {
                    let _ = writeln!(out, "{pad}(let v{v} {})", atom(a));
                }
                Bound::Prim(op, args) => {
                    let _ = writeln!(out, "{pad}(let v{v} ({op} {}))", atoms(args));
                }
                Bound::Call(f, args) => {
                    let _ = writeln!(out, "{pad}(let v{v} (call {} {}))", atom(f), atoms(args));
                }
                Bound::CallKnown(fid, clo, args) => {
                    let _ = writeln!(
                        out,
                        "{pad}(let v{v} (call-known f{fid} {} {}))",
                        atom(clo),
                        atoms(args)
                    );
                }
                Bound::GlobalGet(g) => {
                    let _ = writeln!(out, "{pad}(let v{v} (global {g}))");
                }
                Bound::GlobalSet(g, a) => {
                    let _ = writeln!(out, "{pad}(let v{v} (global-set! {g} {}))", atom(a));
                }
                Bound::Lambda(l) => {
                    let _ = writeln!(
                        out,
                        "{pad}(let v{v} (lambda ({})",
                        l.params
                            .iter()
                            .map(|p| format!("v{p}"))
                            .collect::<Vec<_>>()
                            .join(" ")
                    );
                    write_expr(out, &l.body, indent + 1);
                    let _ = writeln!(out, "{pad}))");
                }
                Bound::MakeClosure(fid, frees) => {
                    let _ = writeln!(out, "{pad}(let v{v} (closure f{fid} {}))", atoms(frees));
                }
                Bound::ClosureRef(i) => {
                    let _ = writeln!(out, "{pad}(let v{v} (closure-ref {i}))");
                }
                Bound::ClosurePatch(c, i, x) => {
                    let _ = writeln!(
                        out,
                        "{pad}(let v{v} (closure-patch! {} {i} {}))",
                        atom(c),
                        atom(x)
                    );
                }
                Bound::If(t, then, els) => {
                    let _ = writeln!(out, "{pad}(let v{v} (if {}", test(t));
                    write_expr(out, then, indent + 1);
                    write_expr(out, els, indent + 1);
                    let _ = writeln!(out, "{pad}))");
                }
                Bound::Body(e) => {
                    let _ = writeln!(out, "{pad}(let v{v} (body");
                    write_expr(out, e, indent + 1);
                    let _ = writeln!(out, "{pad}))");
                }
            }
            write_expr(out, body, indent);
        }
        Expr::If(t, then, els) => {
            let _ = writeln!(out, "{pad}(if {}", test(t));
            write_expr(out, then, indent + 1);
            write_expr(out, els, indent + 1);
            let _ = writeln!(out, "{pad})");
        }
        Expr::Ret(a) => {
            let _ = writeln!(out, "{pad}(ret {})", atom(a));
        }
        Expr::TailCall(f, args) => {
            let _ = writeln!(out, "{pad}(tail-call {} {})", atom(f), atoms(args));
        }
        Expr::TailCallKnown(fid, clo, args) => {
            let _ = writeln!(
                out,
                "{pad}(tail-call-known f{fid} {} {})",
                atom(clo),
                atoms(args)
            );
        }
        Expr::LetRec(binds, body) => {
            let _ = writeln!(out, "{pad}(letrec");
            for (v, l) in binds {
                let _ = writeln!(
                    out,
                    "{pad}  (v{v} (lambda ({})",
                    l.params
                        .iter()
                        .map(|p| format!("v{p}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                );
                write_expr(out, &l.body, indent + 2);
                let _ = writeln!(out, "{pad}  ))");
            }
            write_expr(out, body, indent + 1);
            let _ = writeln!(out, "{pad})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prim::PrimOp;

    #[test]
    fn renders_lets_and_ifs() {
        let e = Expr::Let(
            1,
            Bound::Prim(PrimOp::WordAdd, vec![Atom::raw(1), Atom::raw(2)]),
            Box::new(Expr::If(
                Test::NonZero(Atom::Var(1)),
                Box::new(Expr::Ret(Atom::Var(1))),
                Box::new(Expr::Ret(Atom::Lit(Literal::Unspecified))),
            )),
        );
        let s = expr_to_string(&e);
        assert!(s.contains("(let v1 (%word+ #raw1 #raw2))"));
        assert!(s.contains("(if (nonzero v1)"));
        assert!(s.contains("(ret #unspecified)"));
    }
}
