//! Lowering: front-end core language → ANF.

use crate::anf::{Atom, Bound, Expr, FunDef, Literal, NameSupply, Test, VarId};
use crate::prim::PrimOp;
use std::fmt;
use sxr_ast as ast;

/// An error discovered while lowering (unknown sub-primitive, bad arity, or
/// an internal invariant violation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError(pub String);

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error: {}", self.0)
    }
}

impl std::error::Error for LowerError {}

/// The result of lowering a whole program: the body of the entry function
/// plus the tables the rest of the pipeline needs.
#[derive(Debug)]
pub struct Lowered {
    /// Entry-function body (still contains nested lambdas).
    pub main_body: Expr,
    /// Fresh-variable supply, seeded with the front end's names.
    pub supply: NameSupply,
    /// Global-slot names.
    pub global_names: Vec<String>,
}

/// Lowers a front-end [`ast::Program`] into ANF.
///
/// The program value is the value of its last top-level expression (or
/// unspecified). Assignment conversion must already have run.
///
/// # Errors
///
/// Returns [`LowerError`] on unknown sub-primitives, sub-primitive arity
/// mismatches, or leftover `set!` of lexical variables.
pub fn lower_program(prog: ast::Program) -> Result<Lowered, LowerError> {
    let mut lw = Lowerer {
        supply: NameSupply::from_names(prog.var_names),
    };
    // Fold items right-to-left so the last expression's value becomes the
    // program result.
    let mut tail: Option<Expr> = None;
    let mut steps_rev: Vec<Vec<Step>> = Vec::new();
    for item in prog.items.iter().rev() {
        match item {
            ast::TopItem::Expr(e) if tail.is_none() => {
                let (steps, atom) = lw.atom(e)?;
                tail = Some(wrap(steps, Expr::Ret(atom)));
            }
            ast::TopItem::Expr(e) => {
                let (steps, _ignored) = lw.atom(e)?;
                steps_rev.push(steps);
            }
            ast::TopItem::Def(g, e) => {
                let (mut steps, atom) = lw.atom(e)?;
                let t = lw.supply.fresh("set-global");
                steps.push(Step::Let(t, Bound::GlobalSet(*g, atom)));
                steps_rev.push(steps);
            }
        }
    }
    let mut body = tail.unwrap_or(Expr::Ret(Atom::Lit(Literal::Unspecified)));
    for steps in steps_rev {
        body = wrap(steps, body);
    }
    Ok(Lowered {
        main_body: body,
        supply: lw.supply,
        global_names: prog.global_names,
    })
}

/// Lowers a single expression for tests and tools: returns a function body
/// returning the expression's value.
///
/// # Errors
///
/// Same failure modes as [`lower_program`].
pub fn lower_expr(e: &ast::Expr, supply: &mut NameSupply) -> Result<Expr, LowerError> {
    let mut lw = Lowerer {
        supply: std::mem::take(supply),
    };
    let result = lw.tail(e);
    *supply = lw.supply;
    result
}

/// One accumulated binding step.
enum Step {
    Let(VarId, Bound),
    Rec(Vec<(VarId, FunDef)>),
}

fn wrap(steps: Vec<Step>, inner: Expr) -> Expr {
    let mut e = inner;
    for s in steps.into_iter().rev() {
        e = match s {
            Step::Let(v, b) => Expr::Let(v, b, Box::new(e)),
            Step::Rec(binds) => Expr::LetRec(binds, Box::new(e)),
        };
    }
    e
}

struct Lowerer {
    supply: NameSupply,
}

impl Lowerer {
    /// Lowers `e` to a sequence of binding steps plus the value atom.
    fn atom(&mut self, e: &ast::Expr) -> Result<(Vec<Step>, Atom), LowerError> {
        let mut steps = Vec::new();
        let atom = self.atom_into(e, &mut steps)?;
        Ok((steps, atom))
    }

    fn bind(&mut self, hint: &str, b: Bound, steps: &mut Vec<Step>) -> Atom {
        let v = self.supply.fresh(hint);
        steps.push(Step::Let(v, b));
        Atom::Var(v)
    }

    fn atom_into(&mut self, e: &ast::Expr, steps: &mut Vec<Step>) -> Result<Atom, LowerError> {
        match e {
            ast::Expr::Const(d) => Ok(Atom::Lit(Literal::Datum(d.clone()))),
            ast::Expr::Unspecified => Ok(Atom::Lit(Literal::Unspecified)),
            ast::Expr::Var(v) => Ok(Atom::Var(*v)),
            ast::Expr::Global(g) => Ok(self.bind("g", Bound::GlobalGet(*g), steps)),
            ast::Expr::If(c, t, els) => {
                let ca = self.atom_into(c, steps)?;
                let then_e = self.ret_style(t)?;
                let else_e = self.ret_style(els)?;
                Ok(self.bind(
                    "if-v",
                    Bound::If(Test::Truthy(ca), Box::new(then_e), Box::new(else_e)),
                    steps,
                ))
            }
            ast::Expr::Lambda(l) => {
                let fun = self.fundef(l)?;
                Ok(self.bind(
                    l.name.as_deref().unwrap_or("lambda"),
                    Bound::Lambda(fun),
                    steps,
                ))
            }
            ast::Expr::Call(f, args) => {
                let fa = self.atom_into(f, steps)?;
                let argatoms = args
                    .iter()
                    .map(|a| self.atom_into(a, steps))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(self.bind("call", Bound::Call(fa, argatoms), steps))
            }
            ast::Expr::Prim(name, args) => {
                let op = self.resolve_prim(name, args.len())?;
                let argatoms = args
                    .iter()
                    .map(|a| self.atom_into(a, steps))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(self.bind("prim", Bound::Prim(op, argatoms), steps))
            }
            ast::Expr::Seq(es) => {
                let (last, init) = es.split_last().ok_or_else(|| {
                    LowerError("internal: empty sequence survived expansion".to_string())
                })?;
                for e in init {
                    let _ = self.atom_into(e, steps)?;
                }
                self.atom_into(last, steps)
            }
            ast::Expr::SetVar(..) => Err(LowerError(
                "internal: set! of a lexical variable survived assignment conversion".to_string(),
            )),
            ast::Expr::SetGlobal(g, inner) => {
                let a = self.atom_into(inner, steps)?;
                let _ = self.bind("set-global", Bound::GlobalSet(*g, a), steps);
                Ok(Atom::Lit(Literal::Unspecified))
            }
            ast::Expr::LetRec(binds, body) => {
                let funs = binds
                    .iter()
                    .map(|(v, l)| Ok((*v, self.fundef(l)?)))
                    .collect::<Result<Vec<_>, LowerError>>()?;
                steps.push(Step::Rec(funs));
                self.atom_into(body, steps)
            }
        }
    }

    /// Lowers `e` so the result expression ends in `Ret` (never a tail
    /// call) — the shape required inside `Bound::If` branches.
    fn ret_style(&mut self, e: &ast::Expr) -> Result<Expr, LowerError> {
        match e {
            ast::Expr::If(c, t, els) => {
                let mut steps = Vec::new();
                let ca = self.atom_into(c, &mut steps)?;
                let then_e = self.ret_style(t)?;
                let else_e = self.ret_style(els)?;
                Ok(wrap(
                    steps,
                    Expr::If(Test::Truthy(ca), Box::new(then_e), Box::new(else_e)),
                ))
            }
            ast::Expr::Seq(es) => {
                let (last, init) = es.split_last().ok_or_else(|| {
                    LowerError("internal: empty sequence survived expansion".to_string())
                })?;
                let mut steps = Vec::new();
                for e in init {
                    let _ = self.atom_into(e, &mut steps)?;
                }
                let last_e = self.ret_style(last)?;
                Ok(wrap(steps, last_e))
            }
            _ => {
                let (steps, atom) = self.atom(e)?;
                Ok(wrap(steps, Expr::Ret(atom)))
            }
        }
    }

    /// Lowers `e` in tail position.
    fn tail(&mut self, e: &ast::Expr) -> Result<Expr, LowerError> {
        match e {
            ast::Expr::Call(f, args) => {
                let mut steps = Vec::new();
                let fa = self.atom_into(f, &mut steps)?;
                let argatoms = args
                    .iter()
                    .map(|a| self.atom_into(a, &mut steps))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(wrap(steps, Expr::TailCall(fa, argatoms)))
            }
            ast::Expr::If(c, t, els) => {
                let mut steps = Vec::new();
                let ca = self.atom_into(c, &mut steps)?;
                let then_e = self.tail(t)?;
                let else_e = self.tail(els)?;
                Ok(wrap(
                    steps,
                    Expr::If(Test::Truthy(ca), Box::new(then_e), Box::new(else_e)),
                ))
            }
            ast::Expr::Seq(es) => {
                let (last, init) = es.split_last().ok_or_else(|| {
                    LowerError("internal: empty sequence survived expansion".to_string())
                })?;
                let mut steps = Vec::new();
                for e in init {
                    let _ = self.atom_into(e, &mut steps)?;
                }
                let last_e = self.tail(last)?;
                Ok(wrap(steps, last_e))
            }
            ast::Expr::LetRec(binds, body) => {
                let funs = binds
                    .iter()
                    .map(|(v, l)| Ok((*v, self.fundef(l)?)))
                    .collect::<Result<Vec<_>, LowerError>>()?;
                Ok(Expr::LetRec(funs, Box::new(self.tail(body)?)))
            }
            _ => {
                let (steps, atom) = self.atom(e)?;
                Ok(wrap(steps, Expr::Ret(atom)))
            }
        }
    }

    fn fundef(&mut self, l: &ast::Lambda) -> Result<FunDef, LowerError> {
        let body = self.tail(&l.body)?;
        Ok(FunDef {
            params: l.params.clone(),
            rest: l.rest,
            body: Box::new(body),
            name: l.name.clone(),
        })
    }

    fn resolve_prim(&self, name: &str, nargs: usize) -> Result<PrimOp, LowerError> {
        let op = PrimOp::from_name(name)
            .ok_or_else(|| LowerError(format!("unknown sub-primitive `%{name}`")))?;
        if op.arity() != nargs {
            return Err(LowerError(format!(
                "sub-primitive `%{name}` takes {} arguments, got {nargs}",
                op.arity()
            )));
        }
        Ok(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxr_ast::{convert_assignments, Expander};
    use sxr_sexp::parse_all;

    fn lower_src(src: &str) -> Lowered {
        let mut ex = Expander::new();
        for g in [
            "box",
            "unbox",
            "set-box!",
            "cons",
            "append",
            "eqv?",
            "list->vector",
            "f",
            "g",
        ] {
            ex.declare_global(g);
        }
        let unit = ex.expand_unit(&parse_all(src).unwrap()).unwrap();
        let mut prog = ex.into_program(vec![unit]);
        convert_assignments(&mut prog).unwrap();
        lower_program(prog).unwrap()
    }

    #[test]
    fn constant_program() {
        let l = lower_src("42");
        assert!(matches!(
            l.main_body,
            Expr::Ret(Atom::Lit(Literal::Datum(_)))
        ));
    }

    #[test]
    fn define_then_use() {
        let l = lower_src("(define x 1) x");
        // set-global x, then read it back, then return.
        let Expr::Let(_, Bound::GlobalSet(..), rest) = &l.main_body else {
            panic!("expected global-set first, got {:?}", l.main_body)
        };
        let Expr::Let(v, Bound::GlobalGet(_), ret) = &**rest else {
            panic!()
        };
        assert_eq!(**ret, Expr::Ret(Atom::Var(*v)));
    }

    #[test]
    fn call_is_anf() {
        let l = lower_src("(f (g 1))");
        // g fetched, called, then f fetched... order: f's global-get comes first
        // (operator lowered before operands).
        let mut calls = 0;
        fn count_calls(e: &Expr, n: &mut usize) {
            if let Expr::Let(_, b, body) = e {
                if matches!(b, Bound::Call(..)) {
                    *n += 1;
                }
                if let Bound::If(_, t, e2) = b {
                    count_calls(t, n);
                    count_calls(e2, n);
                }
                count_calls(body, n);
            } else if let Expr::TailCall(..) = e {
                *n += 1;
            } else if let Expr::If(_, t, e2) = e {
                count_calls(t, n);
                count_calls(e2, n);
            }
        }
        count_calls(&l.main_body, &mut calls);
        assert_eq!(calls, 2);
    }

    #[test]
    fn lambda_tail_call() {
        let l = lower_src("(define (h x) (f x))");
        let Expr::Let(_, Bound::Lambda(fun), _) = &l.main_body else {
            panic!()
        };
        // body: let g = global f in tailcall g(x)
        let Expr::Let(_, Bound::GlobalGet(_), inner) = &*fun.body else {
            panic!()
        };
        assert!(matches!(**inner, Expr::TailCall(..)));
    }

    #[test]
    fn nontail_if_binds_value() {
        let l = lower_src("(f (if #t 1 2))");
        fn find_bound_if(e: &Expr) -> bool {
            match e {
                Expr::Let(_, Bound::If(..), _) => true,
                Expr::Let(_, _, body) => find_bound_if(body),
                _ => false,
            }
        }
        assert!(find_bound_if(&l.main_body));
    }

    #[test]
    fn branches_of_bound_if_end_in_ret() {
        let l = lower_src("(f (if #t (g 1) 2))");
        fn check(e: &Expr) {
            if let Expr::Let(_, Bound::If(_, t, els), body) = e {
                fn ends_in_ret(e: &Expr) -> bool {
                    match e {
                        Expr::Ret(_) => true,
                        Expr::Let(_, _, b) => ends_in_ret(b),
                        Expr::If(_, a, b) => ends_in_ret(a) && ends_in_ret(b),
                        _ => false,
                    }
                }
                assert!(ends_in_ret(t), "then branch must end in ret");
                assert!(ends_in_ret(els));
                check(body);
            } else if let Expr::Let(_, _, body) = e {
                check(body);
            }
        }
        check(&l.main_body);
    }

    #[test]
    fn prim_resolution_and_arity() {
        let l = lower_src("(%word+ 1 2)");
        assert!(matches!(
            l.main_body,
            Expr::Let(_, Bound::Prim(PrimOp::WordAdd, _), _)
        ));
        // bad arity
        let mut ex = Expander::new();
        let unit = ex.expand_unit(&parse_all("(%word+ 1)").unwrap()).unwrap();
        let prog = ex.into_program(vec![unit]);
        let err = lower_program(prog).unwrap_err();
        assert!(err.0.contains("takes 2 arguments"));
        // unknown prim
        let mut ex = Expander::new();
        let unit = ex.expand_unit(&parse_all("(%bogus 1)").unwrap()).unwrap();
        let prog = ex.into_program(vec![unit]);
        assert!(lower_program(prog)
            .unwrap_err()
            .0
            .contains("unknown sub-primitive"));
    }

    #[test]
    fn letrec_lowers_to_rec() {
        let l = lower_src("(let loop ((i 0)) (if (%word=? i 10) i (loop (%word+ i 1))))");
        assert!(matches!(l.main_body, Expr::LetRec(..)));
    }

    #[test]
    fn set_global_value_is_unspecified() {
        let l = lower_src("(define x 1) (f (set! x 2))");
        // The call's second argument (after the closure) is the unspecified literal.
        fn find_call(e: &Expr) -> Option<&Vec<Atom>> {
            match e {
                Expr::Let(_, Bound::Call(_, args), _) => Some(args),
                Expr::TailCall(_, args) => Some(args),
                Expr::Let(_, _, b) => find_call(b),
                _ => None,
            }
        }
        let args = find_call(&l.main_body).expect("call present");
        assert_eq!(args[0], Atom::Lit(Literal::Unspecified));
    }

    #[test]
    fn program_value_is_last_expression() {
        let l = lower_src("1 2 3");
        fn final_ret(e: &Expr) -> &Expr {
            match e {
                Expr::Let(_, _, b) => final_ret(b),
                other => other,
            }
        }
        match final_ret(&l.main_body) {
            Expr::Ret(Atom::Lit(Literal::Datum(d))) => assert_eq!(d.to_string(), "3"),
            other => panic!("expected ret of 3, got {other:?}"),
        }
    }
}
