//! Intermediate representation for the `sxr` SchemeXerox reproduction.
//!
//! This crate owns three things:
//!
//! 1. the **representation registry** ([`rep`]) — the first-class
//!    data-type-representation vocabulary shared by library code, optimizer,
//!    code generator, loader, and garbage collector;
//! 2. the **sub-primitive set** ([`prim`]) — the only operations the
//!    compiler itself understands;
//! 3. the **A-normal-form IR** ([`anf`]) with lowering from the front end
//!    ([`lower`]), closure conversion ([`clconv`]), pretty printing
//!    ([`pretty`]) and invariant checking ([`validate`]).
//!
//! # Example
//!
//! ```
//! use sxr_ast::{convert_assignments, Expander};
//! use sxr_ir::{closure_convert, lower_program, validate_module};
//! use sxr_sexp::parse_all;
//!
//! let mut ex = Expander::new();
//! let forms = parse_all("(define (inc x) (%word+ x 1)) (inc 41)").unwrap();
//! let unit = ex.expand_unit(&forms).unwrap();
//! let mut prog = ex.into_program(vec![unit]);
//! convert_assignments(&mut prog).unwrap();
//! let module = closure_convert(lower_program(prog).unwrap());
//! validate_module(&module).unwrap();
//! assert!(module.funs.len() >= 2);
//! ```

pub mod anf;
pub mod clconv;
pub mod lower;
pub mod pretty;
pub mod prim;
pub mod rep;
pub mod validate;

pub use anf::{
    Atom, Bound, Expr, FnId, Fun, FunDef, GlobalId, Literal, Module, NameSupply, Test, VarId,
};
pub use clconv::{closure_convert, free_vars};
pub use lower::{lower_expr, lower_program, LowerError, Lowered};
pub use prim::{Intrinsic, PrimOp};
pub use rep::{RepError, RepId, RepInfo, RepKind, RepRegistry};
pub use validate::{validate_module, ValidateError, ValidateErrorKind};
