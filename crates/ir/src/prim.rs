//! The sub-primitive vocabulary: everything the compiler knows how to do.
//!
//! This list is deliberately tiny and representation-free: raw word
//! arithmetic, the generic representation-type facility, and a few effects.
//! `car`, `cons`, `fx+`, … are **not** here — they are library code.
//!
//! The [`Intrinsic`] family exists only for the *Traditional* baseline
//! pipeline: it models a conventional compiler whose code generator has
//! hardwired knowledge of each primitive's representation.

use std::fmt;

/// A compiler sub-primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimOp {
    /// `%word+ a b` — raw wrapping addition.
    WordAdd,
    /// `%word- a b` — raw wrapping subtraction.
    WordSub,
    /// `%word* a b` — raw wrapping multiplication.
    WordMul,
    /// `%word-quotient a b` — raw truncating division (errors on 0).
    WordQuot,
    /// `%word-remainder a b` — raw remainder (errors on 0).
    WordRem,
    /// `%word-and a b`.
    WordAnd,
    /// `%word-or a b`.
    WordOr,
    /// `%word-xor a b`.
    WordXor,
    /// `%word-shl a b` — left shift by `b` (0..=63).
    WordShl,
    /// `%word-shr a b` — *arithmetic* right shift by `b`.
    WordShr,
    /// `%word=? a b` — raw 1/0.
    WordEq,
    /// `%word<? a b` — signed compare, raw 1/0.
    WordLt,
    /// `%eq? a b` — identity on tagged values, raw 1/0.
    PtrEq,
    /// `%make-immediate-type name tag-bits tag shift` — first-class rep type.
    MakeImmType,
    /// `%make-pointer-type name tag discriminated?` — first-class rep type.
    MakePtrType,
    /// `%provide-rep! role rep` — volunteer a rep for a compiler role.
    ProvideRep,
    /// `%rep-inject rt w` — raw word to tagged value.
    RepInject,
    /// `%rep-project rt v` — tagged value to raw payload / header address.
    RepProject,
    /// `%rep-test rt v` — type predicate, raw 1/0.
    RepTest,
    /// `%rep-alloc rt n fill` — allocate `n` (raw) fields, each `fill`.
    RepAlloc,
    /// `%rep-ref rt v i` — read field `i` (raw index).
    RepRef,
    /// `%rep-set! rt v i x` — write field `i`.
    RepSet,
    /// `%rep-length rt v` — raw field count.
    RepLen,
    /// `%intern s` — intern a string, yielding the canonical symbol.
    Intern,
    /// `%write-char c` — append a character to the VM output port.
    WriteChar,
    /// `%error v` — raise a runtime error carrying `v`.
    Error,
    /// `%counters-reset!` — zero the VM's dynamic instruction counters
    /// (measurement support; zero arguments).
    CounterReset,
    /// `%trap-call handler thunk` — call `thunk` with no arguments under a
    /// trap handler: if a recoverable trap fires during the call, the stack
    /// unwinds to this point and `handler` is called with the condition.
    TrapCall,
    /// `%raise c` — raise `c` as a condition, delivering it to the nearest
    /// enclosing trap handler (terminal error when none is installed).
    Raise,
    /// A Traditional-baseline intrinsic (see [`Intrinsic`]).
    Intrinsic(Intrinsic),
    // -- Specialized forms, produced by optimization / intrinsic lowering,
    //    never written in source (PrimOp::from_name does not know them) --
    /// `v -> raw header word` of an object of the given pointer rep.
    SpecHeader(crate::rep::RepId),
    /// `n_raw fill -> tagged pointer`: allocate with known representation.
    SpecAlloc(crate::rep::RepId),
    /// `v byteoff_raw -> field`: load a field at a raw byte offset
    /// (`8 * (index + 1)` relative to the header).
    SpecRef(crate::rep::RepId),
    /// `v byteoff_raw x -> unspecified`: store a field.
    SpecSet(crate::rep::RepId),
}

/// A hardwired primitive of the Traditional baseline compiler.
///
/// Each corresponds to the "contorted, traditional technique": the compiler
/// expands it directly into the ideal instruction sequence for the layout in
/// the representation registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // names mirror the obvious Scheme procedures
pub enum Intrinsic {
    Car,
    Cdr,
    Cons,
    SetCar,
    SetCdr,
    IsPair,
    IsNull,
    FxAdd,
    FxSub,
    FxMul,
    FxQuotient,
    FxRemainder,
    FxLt,
    FxEq,
    VectorRef,
    VectorSet,
    VectorLength,
    MakeVector,
    StringRef,
    StringSet,
    StringLength,
    MakeString,
    CharToInt,
    IntToChar,
    IsFixnum,
    IsBoolean,
    IsChar,
    IsVector,
    IsString,
    IsSymbol,
    IsProcedure,
    IsEq,
    SymbolToString,
}

impl Intrinsic {
    /// Argument count.
    pub fn arity(self) -> usize {
        use Intrinsic::*;
        match self {
            Car | Cdr | IsPair | IsNull | VectorLength | StringLength | CharToInt | IntToChar
            | IsFixnum | IsBoolean | IsChar | IsVector | IsString | IsSymbol | IsProcedure
            | SymbolToString => 1,
            Cons | SetCar | SetCdr | FxAdd | FxSub | FxMul | FxQuotient | FxRemainder | FxLt
            | FxEq | VectorRef | MakeVector | StringRef | MakeString | IsEq => 2,
            VectorSet | StringSet => 3,
        }
    }

    /// The `%i-…` surface name.
    pub fn name(self) -> &'static str {
        use Intrinsic::*;
        match self {
            Car => "i-car",
            Cdr => "i-cdr",
            Cons => "i-cons",
            SetCar => "i-set-car!",
            SetCdr => "i-set-cdr!",
            IsPair => "i-pair?",
            IsNull => "i-null?",
            FxAdd => "i-fx+",
            FxSub => "i-fx-",
            FxMul => "i-fx*",
            FxQuotient => "i-fxquotient",
            FxRemainder => "i-fxremainder",
            FxLt => "i-fx<",
            FxEq => "i-fx=",
            VectorRef => "i-vector-ref",
            VectorSet => "i-vector-set!",
            VectorLength => "i-vector-length",
            MakeVector => "i-make-vector",
            StringRef => "i-string-ref",
            StringSet => "i-string-set!",
            StringLength => "i-string-length",
            MakeString => "i-make-string",
            CharToInt => "i-char->integer",
            IntToChar => "i-integer->char",
            IsFixnum => "i-fixnum?",
            IsBoolean => "i-boolean?",
            IsChar => "i-char?",
            IsVector => "i-vector?",
            IsString => "i-string?",
            IsSymbol => "i-symbol?",
            IsProcedure => "i-procedure?",
            IsEq => "i-eq?",
            SymbolToString => "i-symbol->string",
        }
    }

    /// All intrinsics (for name resolution and docs).
    pub fn all() -> &'static [Intrinsic] {
        use Intrinsic::*;
        &[
            Car,
            Cdr,
            Cons,
            SetCar,
            SetCdr,
            IsPair,
            IsNull,
            FxAdd,
            FxSub,
            FxMul,
            FxQuotient,
            FxRemainder,
            FxLt,
            FxEq,
            VectorRef,
            VectorSet,
            VectorLength,
            MakeVector,
            StringRef,
            StringSet,
            StringLength,
            MakeString,
            CharToInt,
            IntToChar,
            IsFixnum,
            IsBoolean,
            IsChar,
            IsVector,
            IsString,
            IsSymbol,
            IsProcedure,
            IsEq,
            SymbolToString,
        ]
    }
}

impl PrimOp {
    /// Resolves a surface name (without the `%`) to a sub-primitive.
    pub fn from_name(name: &str) -> Option<PrimOp> {
        use PrimOp::*;
        let p = match name {
            "word+" => WordAdd,
            "word-" => WordSub,
            "word*" => WordMul,
            "word-quotient" => WordQuot,
            "word-remainder" => WordRem,
            "word-and" => WordAnd,
            "word-or" => WordOr,
            "word-xor" => WordXor,
            "word-shl" => WordShl,
            "word-shr" => WordShr,
            "word=?" => WordEq,
            "word<?" => WordLt,
            "eq?" => PtrEq,
            "make-immediate-type" => MakeImmType,
            "make-pointer-type" => MakePtrType,
            "provide-rep!" => ProvideRep,
            "rep-inject" => RepInject,
            "rep-project" => RepProject,
            "rep-test" => RepTest,
            "rep-alloc" => RepAlloc,
            "rep-ref" => RepRef,
            "rep-set!" => RepSet,
            "rep-length" => RepLen,
            "intern" => Intern,
            "write-char" => WriteChar,
            "error" => Error,
            "counters-reset!" => CounterReset,
            "trap-call" => TrapCall,
            "raise" => Raise,
            _ => {
                let intr = crate::prim::Intrinsic::all()
                    .iter()
                    .find(|i| i.name() == name)?;
                return Some(Intrinsic(*intr));
            }
        };
        Some(p)
    }

    /// Argument count.
    pub fn arity(self) -> usize {
        use PrimOp::*;
        match self {
            CounterReset => 0,
            Intern | WriteChar | Error | Raise => 1,
            WordAdd | WordSub | WordMul | WordQuot | WordRem | WordAnd | WordOr | WordXor
            | WordShl | WordShr | WordEq | WordLt | PtrEq | RepInject | RepProject | RepTest
            | RepLen | ProvideRep | TrapCall => 2,
            MakePtrType | RepAlloc | RepRef => 3,
            MakeImmType | RepSet => 4,
            SpecHeader(_) => 1,
            SpecAlloc(_) | SpecRef(_) => 2,
            SpecSet(_) => 3,
            Intrinsic(i) => i.arity(),
        }
    }

    /// True if the op has no side effects and no failure modes, so it may be
    /// freely duplicated, reordered past effects, or deleted when unused.
    ///
    /// Division ops are impure (divide-by-zero error); allocation is treated
    /// as impure (observable identity + heap growth); `rep-ref`/`rep-length`
    /// read mutable memory so they are *not* pure either (they may not be
    /// reordered past `rep-set!`), but they are [`PrimOp::deletable`].
    pub fn pure(self) -> bool {
        use PrimOp::*;
        matches!(
            self,
            WordAdd
                | WordSub
                | WordMul
                | WordAnd
                | WordOr
                | WordXor
                | WordShl
                | WordShr
                | WordEq
                | WordLt
                | PtrEq
                | RepInject
                | RepProject
                | RepTest
                | SpecHeader(_)
        )
    }

    /// True if an unused application may be deleted (no side effects), even
    /// though it may read mutable state.
    pub fn deletable(self) -> bool {
        use PrimOp::*;
        if self.pure() {
            return true;
        }
        if let Intrinsic(i) = self {
            use crate::prim::Intrinsic::*;
            return !matches!(
                i,
                SetCar | SetCdr | VectorSet | StringSet | FxQuotient | FxRemainder
            );
        }
        matches!(
            self,
            RepLen | RepRef | MakeImmType | MakePtrType | RepAlloc | SpecAlloc(_) | SpecRef(_)
        )
    }
}

impl fmt::Display for PrimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use PrimOp::*;
        let s = match self {
            WordAdd => "word+",
            WordSub => "word-",
            WordMul => "word*",
            WordQuot => "word-quotient",
            WordRem => "word-remainder",
            WordAnd => "word-and",
            WordOr => "word-or",
            WordXor => "word-xor",
            WordShl => "word-shl",
            WordShr => "word-shr",
            WordEq => "word=?",
            WordLt => "word<?",
            PtrEq => "eq?",
            MakeImmType => "make-immediate-type",
            MakePtrType => "make-pointer-type",
            ProvideRep => "provide-rep!",
            RepInject => "rep-inject",
            RepProject => "rep-project",
            RepTest => "rep-test",
            RepAlloc => "rep-alloc",
            RepRef => "rep-ref",
            RepSet => "rep-set!",
            RepLen => "rep-length",
            Intern => "intern",
            WriteChar => "write-char",
            Error => "error",
            CounterReset => "counters-reset!",
            TrapCall => "trap-call",
            Raise => "raise",
            Intrinsic(i) => i.name(),
            SpecHeader(r) => return write!(f, "%spec-header[{r}]"),
            SpecAlloc(r) => return write!(f, "%spec-alloc[{r}]"),
            SpecRef(r) => return write!(f, "%spec-ref[{r}]"),
            SpecSet(r) => return write!(f, "%spec-set[{r}]"),
        };
        write!(f, "%{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_roundtrip() {
        for op in [
            PrimOp::WordAdd,
            PrimOp::WordShr,
            PrimOp::RepInject,
            PrimOp::RepSet,
            PrimOp::Intern,
            PrimOp::TrapCall,
            PrimOp::Raise,
            PrimOp::Intrinsic(Intrinsic::Car),
            PrimOp::Intrinsic(Intrinsic::VectorSet),
        ] {
            let shown = op.to_string();
            let name = shown.strip_prefix('%').unwrap();
            assert_eq!(PrimOp::from_name(name), Some(op), "roundtrip {shown}");
        }
    }

    #[test]
    fn unknown_name() {
        assert_eq!(PrimOp::from_name("frobnicate"), None);
    }

    #[test]
    fn arities() {
        assert_eq!(PrimOp::WordAdd.arity(), 2);
        assert_eq!(PrimOp::MakeImmType.arity(), 4);
        assert_eq!(PrimOp::RepSet.arity(), 4);
        assert_eq!(PrimOp::TrapCall.arity(), 2);
        assert_eq!(PrimOp::Raise.arity(), 1);
        assert_eq!(PrimOp::Intrinsic(Intrinsic::VectorSet).arity(), 3);
    }

    #[test]
    fn purity_classification() {
        assert!(PrimOp::WordAdd.pure());
        assert!(!PrimOp::WordQuot.pure()); // can fail
        assert!(!PrimOp::RepAlloc.pure()); // allocates
        assert!(PrimOp::RepAlloc.deletable()); // but deletable when unused
        assert!(PrimOp::RepRef.deletable());
        assert!(!PrimOp::RepSet.deletable());
        assert!(!PrimOp::WriteChar.deletable());
        assert!(!PrimOp::TrapCall.pure());
        assert!(!PrimOp::TrapCall.deletable()); // calls arbitrary code
        assert!(!PrimOp::Raise.deletable()); // control effect
        assert!(PrimOp::Intrinsic(Intrinsic::Car).deletable());
        assert!(!PrimOp::Intrinsic(Intrinsic::SetCar).deletable());
    }

    #[test]
    fn all_intrinsics_resolve() {
        for i in Intrinsic::all() {
            assert_eq!(PrimOp::from_name(i.name()), Some(PrimOp::Intrinsic(*i)));
        }
    }
}
