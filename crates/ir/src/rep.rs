//! The representation registry: the shared vocabulary between library code,
//! the optimizer, the code generator, the loader, and the garbage collector.
//!
//! A [`RepInfo`] describes *how a data type is laid out in tagged machine
//! words*.  Crucially, nothing in this module decides what the layouts are:
//! entries are created by folding the prelude's `%make-immediate-type` /
//! `%make-pointer-type` calls (compile time) or by executing them (run
//! time).  The compiler proper consults the registry only through *roles*
//! (`"boolean"`, `"closure"`, …) that the library volunteers via
//! `%provide-rep!` — this is the paper's inversion: representation policy
//! lives in library code, the compiler merely looks it up.

use std::collections::HashMap;
use std::fmt;

/// Index of a representation type in a [`RepRegistry`].
pub type RepId = u32;

/// Number of low bits a pointer tag may occupy. The VM identifies heap
/// pointers from the low [`POINTER_TAG_BITS`] bits of a word, so every
/// pointer representation must use exactly this many tag bits.
pub const POINTER_TAG_BITS: u32 = 3;

/// How values of a representation type are encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepKind {
    /// `value = (payload << shift) | tag`, with `tag` occupying the low
    /// `tag_bits` bits and `shift >= tag_bits`.
    Immediate {
        /// Number of low bits holding the tag.
        tag_bits: u32,
        /// The tag pattern.
        tag: u64,
        /// Left shift applied to the payload.
        shift: u32,
    },
    /// `value = heap_address | tag`; the heap object is a header word
    /// followed by tagged fields.
    Pointer {
        /// The low-bit tag pattern (always [`POINTER_TAG_BITS`] bits wide).
        tag: u64,
        /// If true, the tag is shared with other pointer types and a type
        /// test must also compare the header's type id.
        discriminated: bool,
    },
}

/// One representation type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepInfo {
    /// The name given at construction (e.g. `fixnum`, `pair`).
    pub name: String,
    /// The encoding.
    pub kind: RepKind,
}

impl RepInfo {
    /// True if values of this type are heap pointers.
    pub fn is_pointer(&self) -> bool {
        matches!(self.kind, RepKind::Pointer { .. })
    }

    /// The tag mask for the type test.
    pub fn tag_mask(&self) -> u64 {
        match self.kind {
            RepKind::Immediate { tag_bits, .. } => (1u64 << tag_bits) - 1,
            RepKind::Pointer { .. } => (1u64 << POINTER_TAG_BITS) - 1,
        }
    }

    /// The tag pattern.
    pub fn tag(&self) -> u64 {
        match self.kind {
            RepKind::Immediate { tag, .. } | RepKind::Pointer { tag, .. } => tag,
        }
    }
}

/// Errors raised while registering representation types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepError(pub String);

impl fmt::Display for RepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "representation error: {}", self.0)
    }
}

impl std::error::Error for RepError {}

/// The registry of all known representation types plus the role table.
///
/// # Example
///
/// ```
/// use sxr_ir::rep::{RepRegistry, RepKind};
///
/// let mut reg = RepRegistry::new();
/// let fixnum = reg.intern_immediate("fixnum", 3, 0, 3).unwrap();
/// reg.provide_role("fixnum", fixnum).unwrap();
/// assert_eq!(reg.role("fixnum"), Some(fixnum));
/// assert!(matches!(reg.info(fixnum).kind, RepKind::Immediate { shift: 3, .. }));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RepRegistry {
    reps: Vec<RepInfo>,
    by_name: HashMap<String, RepId>,
    roles: HashMap<String, RepId>,
}

impl RepRegistry {
    /// Creates an empty registry.
    pub fn new() -> RepRegistry {
        RepRegistry::default()
    }

    /// Looks up the info for a rep id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this registry.
    pub fn info(&self, id: RepId) -> &RepInfo {
        &self.reps[id as usize]
    }

    /// Number of registered representation types.
    pub fn len(&self) -> usize {
        self.reps.len()
    }

    /// True if no types are registered.
    pub fn is_empty(&self) -> bool {
        self.reps.is_empty()
    }

    /// Looks up a representation type by name.
    pub fn by_name(&self, name: &str) -> Option<RepId> {
        self.by_name.get(name).copied()
    }

    /// Looks up the representation registered for a compiler role
    /// (`"boolean"`, `"pair"`, `"closure"`, …).
    pub fn role(&self, role: &str) -> Option<RepId> {
        self.roles.get(role).copied()
    }

    /// Registers `rep` as filling compiler `role`.
    ///
    /// # Errors
    ///
    /// Returns an error if the role is already filled by a *different* rep.
    pub fn provide_role(&mut self, role: &str, rep: RepId) -> Result<(), RepError> {
        match self.roles.get(role) {
            Some(&existing) if existing != rep => Err(RepError(format!(
                "role `{role}` already provided by `{}`",
                self.reps[existing as usize].name
            ))),
            _ => {
                self.roles.insert(role.to_string(), rep);
                Ok(())
            }
        }
    }

    /// Registers (or re-finds) an immediate type.
    ///
    /// Registration is *idempotent by name*: re-registering the same name
    /// with identical parameters returns the existing id, which is what
    /// makes compile-time folding and run-time execution of the same prelude
    /// agree on ids.
    ///
    /// # Errors
    ///
    /// Returns an error on parameter mismatch with an existing entry, on
    /// out-of-range parameters, or on a tag that collides with a pointer
    /// tag.
    pub fn intern_immediate(
        &mut self,
        name: &str,
        tag_bits: u32,
        tag: u64,
        shift: u32,
    ) -> Result<RepId, RepError> {
        if tag_bits > 32 || shift < tag_bits || shift > 56 {
            return Err(RepError(format!(
                "bad immediate parameters for `{name}`: tag_bits={tag_bits} shift={shift}"
            )));
        }
        if tag >= (1u64 << tag_bits) && tag_bits < 64 {
            return Err(RepError(format!(
                "tag {tag:#b} does not fit in {tag_bits} bits"
            )));
        }
        let info = RepInfo {
            name: name.to_string(),
            kind: RepKind::Immediate {
                tag_bits,
                tag,
                shift,
            },
        };
        self.check_immediate_conflicts(&info)?;
        self.intern(info)
    }

    /// Registers (or re-finds) a pointer type. See
    /// [`RepRegistry::intern_immediate`] for idempotence.
    ///
    /// # Errors
    ///
    /// Returns an error on parameter mismatch, on tags wider than
    /// [`POINTER_TAG_BITS`], or when a non-discriminated tag collides with
    /// another pointer type.
    pub fn intern_pointer(
        &mut self,
        name: &str,
        tag: u64,
        discriminated: bool,
    ) -> Result<RepId, RepError> {
        if tag >= (1 << POINTER_TAG_BITS) {
            return Err(RepError(format!(
                "pointer tag {tag:#b} must fit in {POINTER_TAG_BITS} bits"
            )));
        }
        // A heap address always has its low bits clear before tagging, so
        // tag 0 would make pointers indistinguishable from small fixnums.
        for existing in &self.reps {
            if existing.name == name {
                continue; // idempotent re-registration checked in intern()
            }
            match existing.kind {
                RepKind::Pointer {
                    tag: t,
                    discriminated: d,
                } if t == tag && !(discriminated && d) => {
                    return Err(RepError(format!(
                        "pointer tag {tag:#b} of `{name}` collides with `{}` (mark both discriminated to share)",
                        existing.name
                    )));
                }
                RepKind::Immediate {
                    tag_bits, tag: t, ..
                } => {
                    // Every immediate word's low 3 bits equal the low 3 bits
                    // of its tag (since shift >= tag_bits >= the overlap);
                    // they must not look like this pointer.
                    let low = t & ((1 << POINTER_TAG_BITS.min(tag_bits)) - 1);
                    if tag_bits >= POINTER_TAG_BITS && low == tag {
                        return Err(RepError(format!(
                            "pointer tag {tag:#b} of `{name}` collides with immediate `{}`",
                            existing.name
                        )));
                    }
                }
                _ => {}
            }
        }
        let info = RepInfo {
            name: name.to_string(),
            kind: RepKind::Pointer { tag, discriminated },
        };
        self.intern(info)
    }

    fn check_immediate_conflicts(&self, info: &RepInfo) -> Result<(), RepError> {
        let RepKind::Immediate { tag_bits, tag, .. } = info.kind else {
            unreachable!()
        };
        for existing in &self.reps {
            if existing.name == info.name {
                continue;
            }
            match existing.kind {
                RepKind::Pointer { tag: pt, .. } => {
                    let low = tag & ((1 << POINTER_TAG_BITS.min(tag_bits)) - 1);
                    if tag_bits >= POINTER_TAG_BITS && low == pt {
                        return Err(RepError(format!(
                            "immediate tag of `{}` collides with pointer `{}`",
                            info.name, existing.name
                        )));
                    }
                }
                RepKind::Immediate {
                    tag_bits: tb2,
                    tag: t2,
                    ..
                } => {
                    let overlap = tag_bits.min(tb2);
                    let mask = (1u64 << overlap) - 1;
                    if (tag & mask) == (t2 & mask) && tag_bits != 0 {
                        // Identical low bits with one tag a prefix of the
                        // other means values are ambiguous.
                        if tag_bits == tb2 && tag == t2 {
                            return Err(RepError(format!(
                                "immediate tag of `{}` identical to `{}`",
                                info.name, existing.name
                            )));
                        }
                        if tag_bits != tb2 {
                            return Err(RepError(format!(
                                "immediate tag of `{}` is a prefix of `{}`'s (ambiguous)",
                                info.name, existing.name
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn intern(&mut self, info: RepInfo) -> Result<RepId, RepError> {
        if let Some(&id) = self.by_name.get(&info.name) {
            if self.reps[id as usize] == info {
                return Ok(id);
            }
            return Err(RepError(format!(
                "representation `{}` re-registered with different parameters",
                info.name
            )));
        }
        let id = self.reps.len() as RepId;
        self.by_name.insert(info.name.clone(), id);
        self.reps.push(info);
        Ok(id)
    }

    /// The 8-entry table mapping a word's low 3 bits to "is a heap pointer".
    /// This — not any hardwired knowledge — is what the GC uses to find
    /// pointers.
    pub fn pointer_pattern_table(&self) -> [bool; 8] {
        let mut t = [false; 8];
        for r in &self.reps {
            if let RepKind::Pointer { tag, .. } = r.kind {
                t[tag as usize] = true;
            }
        }
        t
    }

    /// Encodes a raw payload as a tagged immediate of type `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an immediate type (encoding pointers requires a
    /// heap; see the VM's loader).
    pub fn encode_immediate(&self, id: RepId, payload: i64) -> i64 {
        match self.info(id).kind {
            RepKind::Immediate { tag, shift, .. } => (payload << shift) | tag as i64,
            RepKind::Pointer { .. } => panic!("encode_immediate on pointer type"),
        }
    }

    /// Decodes a tagged immediate of type `id` back to its payload
    /// (arithmetic shift, so payloads may be negative).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an immediate type.
    pub fn decode_immediate(&self, id: RepId, value: i64) -> i64 {
        match self.info(id).kind {
            RepKind::Immediate { shift, .. } => value >> shift,
            RepKind::Pointer { .. } => panic!("decode_immediate on pointer type"),
        }
    }

    /// Tests whether `value` belongs to immediate/pointer type `id` by tag
    /// pattern alone (the header check for discriminated pointer types is
    /// the VM's job, since it needs the heap).
    pub fn tag_matches(&self, id: RepId, value: i64) -> bool {
        let info = self.info(id);
        (value as u64 & info.tag_mask()) == info.tag()
    }

    /// Iterates over all `(id, info)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RepId, &RepInfo)> {
        self.reps.iter().enumerate().map(|(i, r)| (i as RepId, r))
    }
}

/// The role names the compiler and VM may consult. The *library* decides
/// which rep fills each role; this list only documents what the machine
/// layer will ask for.
pub mod roles {
    /// Fixnum literals and VM-internal small integers.
    pub const FIXNUM: &str = "fixnum";
    /// `#t`/`#f` literals; `if` tests against the false encoding.
    pub const BOOLEAN: &str = "boolean";
    /// Character literals.
    pub const CHAR: &str = "char";
    /// The empty list literal.
    pub const NULL: &str = "null";
    /// The unspecified value.
    pub const UNSPECIFIED: &str = "unspecified";
    /// The end-of-file object.
    pub const EOF: &str = "eof";
    /// Quoted pairs.
    pub const PAIR: &str = "pair";
    /// Quoted vectors.
    pub const VECTOR: &str = "vector";
    /// String literals.
    pub const STRING: &str = "string";
    /// Symbol literals (interned).
    pub const SYMBOL: &str = "symbol";
    /// Closures created by the code generator.
    pub const CLOSURE: &str = "closure";
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classic() -> (RepRegistry, RepId, RepId) {
        let mut reg = RepRegistry::new();
        let fx = reg.intern_immediate("fixnum", 3, 0, 3).unwrap();
        let pair = reg.intern_pointer("pair", 1, false).unwrap();
        (reg, fx, pair)
    }

    #[test]
    fn immediate_encode_decode() {
        let (reg, fx, _) = classic();
        assert_eq!(reg.encode_immediate(fx, 5), 40);
        assert_eq!(reg.decode_immediate(fx, 40), 5);
        assert_eq!(reg.decode_immediate(fx, reg.encode_immediate(fx, -7)), -7);
    }

    #[test]
    fn tag_matches_checks_low_bits() {
        let (reg, fx, pair) = classic();
        assert!(reg.tag_matches(fx, 40));
        assert!(!reg.tag_matches(fx, 41));
        assert!(reg.tag_matches(pair, 0x1001));
        assert!(!reg.tag_matches(pair, 0x1002));
    }

    #[test]
    fn idempotent_by_name() {
        let mut reg = RepRegistry::new();
        let a = reg.intern_immediate("fixnum", 3, 0, 3).unwrap();
        let b = reg.intern_immediate("fixnum", 3, 0, 3).unwrap();
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
        // Different parameters for the same name are an error.
        assert!(reg.intern_immediate("fixnum", 3, 0, 4).is_err());
    }

    #[test]
    fn pointer_tag_collisions_rejected() {
        let mut reg = RepRegistry::new();
        reg.intern_pointer("pair", 1, false).unwrap();
        assert!(reg.intern_pointer("other", 1, false).is_err());
        // Discriminated types may share a tag.
        reg.intern_pointer("rec-a", 4, true).unwrap();
        reg.intern_pointer("rec-b", 4, true).unwrap();
    }

    #[test]
    fn immediate_pointer_collision_rejected() {
        let mut reg = RepRegistry::new();
        reg.intern_pointer("pair", 1, false).unwrap();
        // An immediate whose low 3 bits read 001 would look like a pair.
        assert!(reg.intern_immediate("bad", 3, 1, 3).is_err());
        // And the reverse direction.
        let mut reg2 = RepRegistry::new();
        reg2.intern_immediate("imm", 8, 0b010, 8).unwrap();
        assert!(reg2.intern_pointer("bad", 0b010, false).is_err());
    }

    #[test]
    fn ambiguous_immediate_prefix_rejected() {
        let mut reg = RepRegistry::new();
        reg.intern_immediate("imm", 8, 0b0000_0010, 8).unwrap();
        // 3-bit tag 010 is a prefix of the 8-bit tag above.
        assert!(reg.intern_immediate("bad", 3, 0b010, 3).is_err());
        // But a different 8-bit tag with the same low 3 bits is fine.
        reg.intern_immediate("imm2", 8, 0b0001_0010, 8).unwrap();
    }

    #[test]
    fn roles() {
        let (mut reg, fx, pair) = classic();
        reg.provide_role("fixnum", fx).unwrap();
        reg.provide_role("pair", pair).unwrap();
        assert_eq!(reg.role("fixnum"), Some(fx));
        assert_eq!(reg.role("nope"), None);
        // Re-providing the same rep is fine; a different one is not.
        reg.provide_role("fixnum", fx).unwrap();
        assert!(reg.provide_role("fixnum", pair).is_err());
    }

    #[test]
    fn pointer_pattern_table() {
        let (mut reg, _, _) = classic();
        reg.intern_pointer("vector", 3, false).unwrap();
        let t = reg.pointer_pattern_table();
        assert!(t[1] && t[3]);
        assert!(!t[0] && !t[2] && !t[4]);
    }

    #[test]
    fn bad_parameters() {
        let mut reg = RepRegistry::new();
        assert!(reg.intern_immediate("x", 3, 0, 2).is_err()); // shift < tag_bits
        assert!(reg.intern_immediate("x", 4, 16, 4).is_err()); // tag too wide
        assert!(reg.intern_pointer("x", 8, false).is_err()); // tag too wide
    }
}
