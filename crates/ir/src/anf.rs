//! A-normal-form intermediate representation.
//!
//! Invariants (checked by [`crate::validate`]):
//!
//! * every intermediate value is let-bound to a unique [`VarId`]
//!   (single assignment; alpha-renamed),
//! * operands are [`Atom`]s (variables or literals),
//! * a value-producing `if` is a [`Bound::If`] whose branches end in
//!   [`Expr::Ret`] ("yield to the bound variable"),
//! * tail calls appear only in tail position.
//!
//! Before closure conversion, functions are nested ([`Bound::Lambda`],
//! [`Expr::LetRec`]); afterwards the program is a flat [`Module`] of
//! first-order functions and explicit [`Bound::MakeClosure`] allocations.

use crate::prim::PrimOp;
use crate::rep::RepId;
use sxr_sexp::Datum;

/// Alpha-renamed variable id (shared numbering with the front end).
pub type VarId = u32;
/// Global-table slot.
pub type GlobalId = u32;
/// Index of a function in a [`Module`].
pub type FnId = u32;

/// A compile-time constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Literal {
    /// A (possibly structured) quoted datum, encoded by the loader using
    /// the representation registry.
    Datum(Datum),
    /// The unspecified value.
    Unspecified,
    /// A compile-time-known representation type (result of folding
    /// `%make-*-type`).
    Rep(RepId),
    /// An untagged machine word (appears after rep specialization).
    Raw(i64),
}

/// A trivial operand.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Atom {
    /// A variable reference.
    Var(VarId),
    /// A constant.
    Lit(Literal),
}

impl Atom {
    /// Convenience constructor for raw-word literals.
    pub fn raw(w: i64) -> Atom {
        Atom::Lit(Literal::Raw(w))
    }

    /// The variable id, if this is a variable.
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            Atom::Var(v) => Some(*v),
            Atom::Lit(_) => None,
        }
    }
}

/// A nested function (pre-closure-conversion).
#[derive(Debug, Clone, PartialEq)]
pub struct FunDef {
    /// Fixed parameters.
    pub params: Vec<VarId>,
    /// Rest parameter for variadic functions (receives a library list).
    pub rest: Option<VarId>,
    /// The body.
    pub body: Box<Expr>,
    /// Diagnostic name.
    pub name: Option<String>,
}

/// The condition of a branch.
#[derive(Debug, Clone, PartialEq)]
pub enum Test {
    /// Scheme truth: the value is not the false object.
    Truthy(Atom),
    /// The raw word is non-zero (produced by optimization; cheaper because
    /// it composes with comparison results).
    NonZero(Atom),
}

impl Test {
    /// The tested atom.
    pub fn atom(&self) -> &Atom {
        match self {
            Test::Truthy(a) | Test::NonZero(a) => a,
        }
    }

    /// Mutable access to the tested atom.
    pub fn atom_mut(&mut self) -> &mut Atom {
        match self {
            Test::Truthy(a) | Test::NonZero(a) => a,
        }
    }
}

/// The right-hand side of a `let`.
#[derive(Debug, Clone, PartialEq)]
pub enum Bound {
    /// A trivial binding (copy).
    Atom(Atom),
    /// A sub-primitive application.
    Prim(PrimOp, Vec<Atom>),
    /// A call to a computed procedure.
    Call(Atom, Vec<Atom>),
    /// A call whose target function is statically known (post-cc). The atom
    /// is the closure value passed as the callee's environment.
    CallKnown(FnId, Atom, Vec<Atom>),
    /// Read a global.
    GlobalGet(GlobalId),
    /// Write a global; the bound variable receives an unspecified value and
    /// is conventionally unused.
    GlobalSet(GlobalId, Atom),
    /// A nested function (pre-cc only).
    Lambda(FunDef),
    /// Allocate a closure over the given free-variable values (post-cc).
    MakeClosure(FnId, Vec<Atom>),
    /// Read free-variable slot `idx` of the current function's own closure
    /// (post-cc).
    ClosureRef(usize),
    /// Overwrite free-variable slot `1`-based `idx` of a closure (post-cc;
    /// used to tie `letrec` knots).
    ClosurePatch(Atom, usize, Atom),
    /// A value-producing conditional; branches end in [`Expr::Ret`], whose
    /// atom becomes the bound value.
    If(Test, Box<Expr>, Box<Expr>),
    /// A value-producing sub-expression ending in [`Expr::Ret`] (introduced
    /// by the inliner when splicing a callee body into a non-tail site).
    Body(Box<Expr>),
}

/// An ANF expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `let v = bound in body`.
    Let(VarId, Bound, Box<Expr>),
    /// A conditional in tail position.
    If(Test, Box<Expr>, Box<Expr>),
    /// Return / yield a value.
    Ret(Atom),
    /// A call in tail position.
    TailCall(Atom, Vec<Atom>),
    /// A statically-resolved tail call (post-cc).
    TailCallKnown(FnId, Atom, Vec<Atom>),
    /// Mutually recursive nested functions (pre-cc only).
    LetRec(Vec<(VarId, FunDef)>, Box<Expr>),
}

/// A first-order function after closure conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct Fun {
    /// Diagnostic name.
    pub name: Option<String>,
    /// The variable holding the function's own closure (register 0).
    pub self_var: VarId,
    /// Fixed parameters (registers 1..).
    pub params: Vec<VarId>,
    /// Rest parameter (register 1 + params.len()) for variadic functions;
    /// the machine delivers extra arguments there as a list.
    pub rest: Option<VarId>,
    /// Number of free-variable slots in the closure.
    pub free_count: usize,
    /// The body. `Bound::Lambda` / `Expr::LetRec` do not occur.
    pub body: Expr,
}

/// A closure-converted program.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// All functions; `funs[main]` is the program entry.
    pub funs: Vec<Fun>,
    /// Entry function (no parameters, ignores its closure).
    pub main: FnId,
    /// Global-slot names.
    pub global_names: Vec<String>,
    /// Variable names for diagnostics.
    pub var_names: Vec<String>,
}

/// A fresh-variable supply backed by the diagnostic name table.
#[derive(Debug, Default)]
pub struct NameSupply {
    /// `VarId ->` name.
    pub names: Vec<String>,
}

impl NameSupply {
    /// Wraps an existing name table (e.g. from the front end).
    pub fn from_names(names: Vec<String>) -> NameSupply {
        NameSupply { names }
    }

    /// Allocates a fresh variable.
    pub fn fresh(&mut self, hint: &str) -> VarId {
        let v = self.names.len() as VarId;
        self.names.push(hint.to_string());
        v
    }

    /// The name of `v`.
    pub fn name(&self, v: VarId) -> &str {
        self.names
            .get(v as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }
}

// ---------------------------------------------------------------------------
// Traversal utilities
// ---------------------------------------------------------------------------

impl Bound {
    /// Visits every atom operand.
    pub fn for_each_atom(&self, f: &mut impl FnMut(&Atom)) {
        match self {
            Bound::Atom(a) => f(a),
            Bound::Prim(_, atoms) | Bound::MakeClosure(_, atoms) => atoms.iter().for_each(f),
            Bound::Call(callee, args) => {
                f(callee);
                args.iter().for_each(f);
            }
            Bound::CallKnown(_, clo, args) => {
                f(clo);
                args.iter().for_each(f);
            }
            Bound::GlobalGet(_) | Bound::ClosureRef(_) => {}
            Bound::GlobalSet(_, a) => f(a),
            Bound::Lambda(_) => {}
            Bound::ClosurePatch(c, _, v) => {
                f(c);
                f(v);
            }
            Bound::If(t, then, els) => {
                f(t.atom());
                then.for_each_atom(f);
                els.for_each_atom(f);
            }
            Bound::Body(e) => e.for_each_atom(f),
        }
    }

    /// Mutably visits every *directly owned* atom operand (not atoms inside
    /// nested expressions or lambdas).
    pub fn for_each_atom_shallow_mut(&mut self, f: &mut impl FnMut(&mut Atom)) {
        match self {
            Bound::Atom(a) => f(a),
            Bound::Prim(_, atoms) | Bound::MakeClosure(_, atoms) => atoms.iter_mut().for_each(f),
            Bound::Call(callee, args) => {
                f(callee);
                args.iter_mut().for_each(f);
            }
            Bound::CallKnown(_, clo, args) => {
                f(clo);
                args.iter_mut().for_each(f);
            }
            Bound::GlobalGet(_) | Bound::ClosureRef(_) => {}
            Bound::GlobalSet(_, a) => f(a),
            Bound::Lambda(_) => {}
            Bound::ClosurePatch(c, _, v) => {
                f(c);
                f(v);
            }
            Bound::If(t, _, _) => f(t.atom_mut()),
            Bound::Body(_) => {}
        }
    }
}

impl Expr {
    /// Visits every atom in the expression, including inside nested lambdas.
    pub fn for_each_atom(&self, f: &mut impl FnMut(&Atom)) {
        match self {
            Expr::Let(_, b, body) => {
                b.for_each_atom(f);
                if let Bound::Lambda(l) = b {
                    l.body.for_each_atom(f);
                }
                body.for_each_atom(f);
            }
            Expr::If(t, then, els) => {
                f(t.atom());
                then.for_each_atom(f);
                els.for_each_atom(f);
            }
            Expr::Ret(a) => f(a),
            Expr::TailCall(callee, args) => {
                f(callee);
                args.iter().for_each(f);
            }
            Expr::TailCallKnown(_, clo, args) => {
                f(clo);
                args.iter().for_each(f);
            }
            Expr::LetRec(binds, body) => {
                for (_, l) in binds {
                    l.body.for_each_atom(f);
                }
                body.for_each_atom(f);
            }
        }
    }

    /// Approximate node count (inlining heuristics, tests).
    pub fn size(&self) -> usize {
        match self {
            Expr::Let(_, b, body) => {
                let bsize = match b {
                    Bound::Lambda(l) => 1 + l.body.size(),
                    Bound::If(_, t, e) => 1 + t.size() + e.size(),
                    Bound::Body(e) => 1 + e.size(),
                    _ => 1,
                };
                bsize + body.size()
            }
            Expr::If(_, t, e) => 1 + t.size() + e.size(),
            Expr::Ret(_) => 1,
            Expr::TailCall(..) | Expr::TailCallKnown(..) => 1,
            Expr::LetRec(binds, body) => {
                1 + binds.iter().map(|(_, l)| 1 + l.body.size()).sum::<usize>() + body.size()
            }
        }
    }

    /// Counts uses of each variable as an operand (definitions excluded).
    pub fn use_counts(&self, out: &mut std::collections::HashMap<VarId, usize>) {
        self.for_each_atom(&mut |a| {
            if let Atom::Var(v) = a {
                *out.entry(*v).or_insert(0) += 1;
            }
        });
    }
}

/// Substitutes atoms for variables throughout `e` (including inside nested
/// lambdas). Bound variable ids are globally unique, so no capture is
/// possible.
pub fn substitute(e: &mut Expr, map: &std::collections::HashMap<VarId, Atom>) {
    fn subst_atom(a: &mut Atom, map: &std::collections::HashMap<VarId, Atom>) {
        if let Atom::Var(v) = a {
            if let Some(rep) = map.get(v) {
                *a = rep.clone();
            }
        }
    }
    fn go_bound(b: &mut Bound, map: &std::collections::HashMap<VarId, Atom>) {
        b.for_each_atom_shallow_mut(&mut |a| subst_atom(a, map));
        match b {
            Bound::Lambda(l) => substitute(&mut l.body, map),
            Bound::If(_, then, els) => {
                substitute(then, map);
                substitute(els, map);
            }
            Bound::Body(e) => substitute(e, map),
            _ => {}
        }
    }
    match e {
        Expr::Let(_, b, body) => {
            go_bound(b, map);
            substitute(body, map);
        }
        Expr::If(t, then, els) => {
            subst_atom(t.atom_mut(), map);
            substitute(then, map);
            substitute(els, map);
        }
        Expr::Ret(a) => subst_atom(a, map),
        Expr::TailCall(callee, args) => {
            subst_atom(callee, map);
            args.iter_mut().for_each(|a| subst_atom(a, map));
        }
        Expr::TailCallKnown(_, clo, args) => {
            subst_atom(clo, map);
            args.iter_mut().for_each(|a| subst_atom(a, map));
        }
        Expr::LetRec(binds, body) => {
            for (_, l) in binds.iter_mut() {
                substitute(&mut l.body, map);
            }
            substitute(body, map);
        }
    }
}

/// Produces an alpha-converted copy of `e`: every variable *bound inside*
/// `e` gets a fresh id; free variables are left alone. Used by the inliner
/// to keep the single-assignment invariant.
pub fn refresh(e: &Expr, supply: &mut NameSupply) -> Expr {
    let mut map = std::collections::HashMap::new();
    refresh_with(e, supply, &mut map)
}

fn refresh_var(
    v: VarId,
    supply: &mut NameSupply,
    map: &mut std::collections::HashMap<VarId, VarId>,
) -> VarId {
    let name = supply.name(v).to_string();
    let fresh = supply.fresh(&name);
    map.insert(v, fresh);
    fresh
}

fn rename_atom(a: &Atom, map: &std::collections::HashMap<VarId, VarId>) -> Atom {
    match a {
        Atom::Var(v) => Atom::Var(*map.get(v).unwrap_or(v)),
        lit => lit.clone(),
    }
}

fn refresh_fundef(
    l: &FunDef,
    supply: &mut NameSupply,
    map: &mut std::collections::HashMap<VarId, VarId>,
) -> FunDef {
    let params = l
        .params
        .iter()
        .map(|p| refresh_var(*p, supply, map))
        .collect();
    let rest = l.rest.map(|r| refresh_var(r, supply, map));
    let body = Box::new(refresh_with(&l.body, supply, map));
    FunDef {
        params,
        rest,
        body,
        name: l.name.clone(),
    }
}

fn refresh_with(
    e: &Expr,
    supply: &mut NameSupply,
    map: &mut std::collections::HashMap<VarId, VarId>,
) -> Expr {
    match e {
        Expr::Let(v, b, body) => {
            let b = match b {
                Bound::Atom(a) => Bound::Atom(rename_atom(a, map)),
                Bound::Prim(op, atoms) => {
                    Bound::Prim(*op, atoms.iter().map(|a| rename_atom(a, map)).collect())
                }
                Bound::Call(callee, args) => Bound::Call(
                    rename_atom(callee, map),
                    args.iter().map(|a| rename_atom(a, map)).collect(),
                ),
                Bound::CallKnown(f, clo, args) => Bound::CallKnown(
                    *f,
                    rename_atom(clo, map),
                    args.iter().map(|a| rename_atom(a, map)).collect(),
                ),
                Bound::GlobalGet(g) => Bound::GlobalGet(*g),
                Bound::ClosureRef(i) => Bound::ClosureRef(*i),
                Bound::GlobalSet(g, a) => Bound::GlobalSet(*g, rename_atom(a, map)),
                Bound::Lambda(l) => Bound::Lambda(refresh_fundef(l, supply, map)),
                Bound::MakeClosure(f, atoms) => {
                    Bound::MakeClosure(*f, atoms.iter().map(|a| rename_atom(a, map)).collect())
                }
                Bound::ClosurePatch(c, i, x) => {
                    Bound::ClosurePatch(rename_atom(c, map), *i, rename_atom(x, map))
                }
                Bound::If(t, then, els) => {
                    let t = match t {
                        Test::Truthy(a) => Test::Truthy(rename_atom(a, map)),
                        Test::NonZero(a) => Test::NonZero(rename_atom(a, map)),
                    };
                    let then = Box::new(refresh_with(then, supply, map));
                    let els = Box::new(refresh_with(els, supply, map));
                    Bound::If(t, then, els)
                }
                Bound::Body(e) => Bound::Body(Box::new(refresh_with(e, supply, map))),
            };
            let v2 = refresh_var(*v, supply, map);
            let body = Box::new(refresh_with(body, supply, map));
            Expr::Let(v2, b, body)
        }
        Expr::If(t, then, els) => {
            let t = match t {
                Test::Truthy(a) => Test::Truthy(rename_atom(a, map)),
                Test::NonZero(a) => Test::NonZero(rename_atom(a, map)),
            };
            Expr::If(
                t,
                Box::new(refresh_with(then, supply, map)),
                Box::new(refresh_with(els, supply, map)),
            )
        }
        Expr::Ret(a) => Expr::Ret(rename_atom(a, map)),
        Expr::TailCall(callee, args) => Expr::TailCall(
            rename_atom(callee, map),
            args.iter().map(|a| rename_atom(a, map)).collect(),
        ),
        Expr::TailCallKnown(f, clo, args) => Expr::TailCallKnown(
            *f,
            rename_atom(clo, map),
            args.iter().map(|a| rename_atom(a, map)).collect(),
        ),
        Expr::LetRec(binds, body) => {
            // Bind all names first (mutual recursion), then refresh bodies.
            let vars: Vec<VarId> = binds
                .iter()
                .map(|(v, _)| refresh_var(*v, supply, map))
                .collect();
            let binds = vars
                .into_iter()
                .zip(binds.iter())
                .map(|(v2, (_, l))| (v2, refresh_fundef(l, supply, map)))
                .collect();
            Expr::LetRec(binds, Box::new(refresh_with(body, supply, map)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn sample() -> Expr {
        // let a = %word+ x y in ret a
        Expr::Let(
            10,
            Bound::Prim(PrimOp::WordAdd, vec![Atom::Var(1), Atom::Var(2)]),
            Box::new(Expr::Ret(Atom::Var(10))),
        )
    }

    #[test]
    fn use_counts() {
        let mut counts = HashMap::new();
        sample().use_counts(&mut counts);
        assert_eq!(counts.get(&1), Some(&1));
        assert_eq!(counts.get(&10), Some(&1));
    }

    #[test]
    fn substitution() {
        let mut e = sample();
        let mut map = HashMap::new();
        map.insert(1u32, Atom::raw(7));
        substitute(&mut e, &map);
        match e {
            Expr::Let(_, Bound::Prim(_, atoms), _) => {
                assert_eq!(atoms[0], Atom::raw(7));
                assert_eq!(atoms[1], Atom::Var(2));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn refresh_renames_bound_not_free() {
        let mut supply = NameSupply::from_names(vec!["x".into(); 11]);
        let e = sample();
        let e2 = refresh(&e, &mut supply);
        match e2 {
            Expr::Let(v, Bound::Prim(_, atoms), body) => {
                assert_ne!(v, 10, "bound var renamed");
                assert_eq!(atoms[0], Atom::Var(1), "free var untouched");
                assert_eq!(*body, Expr::Ret(Atom::Var(v)), "uses follow the rename");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn refresh_handles_letrec_mutual() {
        let f = FunDef {
            params: vec![5],
            rest: None,
            body: Box::new(Expr::TailCall(Atom::Var(21), vec![Atom::Var(5)])),
            name: None,
        };
        let g = FunDef {
            params: vec![6],
            rest: None,
            body: Box::new(Expr::TailCall(Atom::Var(20), vec![Atom::Var(6)])),
            name: None,
        };
        let e = Expr::LetRec(vec![(20, f), (21, g)], Box::new(Expr::Ret(Atom::Var(20))));
        let mut supply = NameSupply::from_names(vec!["v".into(); 22]);
        let e2 = refresh(&e, &mut supply);
        let Expr::LetRec(binds, body) = e2 else {
            panic!()
        };
        let (f2, g2) = (binds[0].0, binds[1].0);
        assert_ne!(f2, 20);
        // f's body calls the renamed g, and vice versa.
        let Expr::TailCall(Atom::Var(callee), _) = &*binds[0].1.body else {
            panic!()
        };
        assert_eq!(*callee, g2);
        let Expr::TailCall(Atom::Var(callee2), _) = &*binds[1].1.body else {
            panic!()
        };
        assert_eq!(*callee2, f2);
        assert_eq!(*body, Expr::Ret(Atom::Var(f2)));
    }

    #[test]
    fn size_counts() {
        assert_eq!(sample().size(), 2);
    }

    #[test]
    fn for_each_atom_covers_nested_if() {
        let e = Expr::Let(
            3,
            Bound::If(
                Test::Truthy(Atom::Var(1)),
                Box::new(Expr::Ret(Atom::Var(7))),
                Box::new(Expr::Ret(Atom::Var(8))),
            ),
            Box::new(Expr::Ret(Atom::Var(3))),
        );
        let mut seen = Vec::new();
        e.for_each_atom(&mut |a| {
            if let Atom::Var(v) = a {
                seen.push(*v);
            }
        });
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 3, 7, 8]);
    }
}
