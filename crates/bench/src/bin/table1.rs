//! Table 1 — static instruction counts of each primitive operation's
//! compiled body (including the final return), per configuration.
//!
//! Regenerate with: `cargo run -p sxr-bench --bin table1`

use sxr::report::table1_rows;

fn main() {
    let rows = table1_rows().expect("all configurations compile");
    println!("Table 1: static instruction counts per primitive (body incl. return)");
    println!();
    println!(
        "{:<16} {:>12} {:>12} {:>6} {:>14} {:>6}",
        "primitive", "Traditional", "AbstractOpt", "Δ", "AbstractNoOpt", "×"
    );
    println!("{}", "-".repeat(72));
    let (mut eq, mut within1) = (0, 0);
    for r in &rows {
        let delta = r.abstract_opt as i64 - r.traditional as i64;
        let blowup = r.abstract_noopt as f64 / r.traditional as f64;
        if delta == 0 {
            eq += 1;
        }
        if delta.abs() <= 1 {
            within1 += 1;
        }
        println!(
            "{:<16} {:>12} {:>12} {:>+6} {:>14} {:>6.1}",
            r.name, r.traditional, r.abstract_opt, delta, r.abstract_noopt, blowup
        );
    }
    println!("{}", "-".repeat(72));
    println!(
        "{} of {} primitives identical; {} within one instruction",
        eq,
        rows.len(),
        within1
    );
}
