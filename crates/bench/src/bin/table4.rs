//! Table 4 (extension) — "safety is library policy": dynamic instruction
//! cost of the *checked* abstract primitive layer (library-level type and
//! bounds checks, prims_abstract_checked.scm) relative to the unchecked
//! one, under the same optimizer.
//!
//! Regenerate with: `cargo run -p sxr-bench --bin table4`

use sxr::{Compiler, PipelineConfig, LIBRARY_SCM, PRIMS_ABSTRACT_CHECKED_SCM, REPS_SCM};
use sxr_bench::BENCHMARKS;

fn main() {
    println!("Table 4: cost of library-level safety (checked / unchecked, AbstractOpt)");
    println!();
    println!(
        "{:<8} {:>12} {:>12} {:>7}",
        "bench", "unchecked", "checked", "ratio"
    );
    println!("{}", "-".repeat(44));
    let mut prod = 1.0f64;
    for b in BENCHMARKS {
        let unchecked = Compiler::new(PipelineConfig::abstract_optimized())
            .compile(b.source)
            .unwrap()
            .run()
            .unwrap();
        let checked = Compiler::new(PipelineConfig::abstract_optimized())
            .compile_with_prelude(
                &[REPS_SCM, PRIMS_ABSTRACT_CHECKED_SCM, LIBRARY_SCM],
                b.source,
            )
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(unchecked.value, b.expect, "{} oracle", b.name);
        assert_eq!(checked.value, b.expect, "{} oracle (checked)", b.name);
        let ratio = checked.counters.total as f64 / unchecked.counters.total as f64;
        prod *= ratio;
        println!(
            "{:<8} {:>12} {:>12} {:>7.2}",
            b.name, unchecked.counters.total, checked.counters.total, ratio
        );
    }
    println!("{}", "-".repeat(44));
    println!(
        "geomean ratio: {:.2}",
        prod.powf(1.0 / BENCHMARKS.len() as f64)
    );
}
