//! Figure 2 — the cost of first-classness: instructions per field access
//! when the representation type is a compile-time constant (specialized)
//! versus a run-time value (generic dispatch), as record size sweeps.
//!
//! Regenerate with: `cargo run -p sxr-bench --bin figure2`

use sxr::{Compiler, PipelineConfig};

const ITERS: usize = 2000;

/// Builds a program that sums all `n` fields of a record `ITERS` times.
/// `generic` routes the rep type through a mutated global so the optimizer
/// cannot treat it as a constant.
fn program(n: usize, generic: bool) -> String {
    let rep_expr = if generic { "dyn-rep" } else { "sweep-rep" };
    let mut sum = String::from("0");
    for i in 0..n {
        sum = format!(
            "(fx+ {sum} (%rep-inject fixnum-rep (%rep-ref {rep_expr} r (%rep-project fixnum-rep {i}))))"
        );
    }
    format!(
        "(define sweep-rep (%make-pointer-type 'sweep 4 #t))
         (define dyn-rep sweep-rep)
         (set! dyn-rep sweep-rep) ; second assignment defeats constant folding
         (define r (%rep-alloc sweep-rep (%rep-project fixnum-rep {n}) 7))
         (%counters-reset!)
         (let loop ((k {ITERS}) (acc 0))
           (if (fx= k 0) acc (loop (fx- k 1) (fx+ acc {sum}))))"
    )
}

fn main() {
    println!("Figure 2: instructions per field access, record size sweep");
    println!();
    println!(
        "{:<6} {:>12} {:>10} {:>8}",
        "fields", "specialized", "generic", "ratio"
    );
    println!("{}", "-".repeat(40));
    for n in [1usize, 2, 4, 8, 16, 32] {
        let run = |generic: bool| {
            let out = Compiler::new(PipelineConfig::abstract_optimized())
                .compile(&program(n, generic))
                .unwrap()
                .run()
                .unwrap();
            out.counters.total as f64 / (ITERS * n) as f64
        };
        let spec = run(false);
        let gen = run(true);
        println!("{:<6} {:>12.2} {:>10.2} {:>8.2}", n, spec, gen, gen / spec);
    }
    println!();
    println!("(per-access cost includes the loop's share; both series share it equally)");
}
