//! Figure 1 — what the optimizer buys: per-benchmark speedup of
//! AbstractOpt over AbstractNoOpt (dynamic instructions), as a text bar
//! series.
//!
//! Regenerate with: `cargo run -p sxr-bench --bin figure1`

use sxr::{Compiler, PipelineConfig};
use sxr_bench::BENCHMARKS;

fn main() {
    println!("Figure 1: speedup of AbstractOpt over AbstractNoOpt (dynamic instructions)");
    println!();
    for b in BENCHMARKS {
        let a = Compiler::new(PipelineConfig::abstract_optimized())
            .compile(b.source)
            .unwrap()
            .run()
            .unwrap();
        let n = Compiler::new(PipelineConfig::abstract_unoptimized())
            .compile(b.source)
            .unwrap()
            .run()
            .unwrap();
        let speedup = n.counters.total as f64 / a.counters.total as f64;
        let bar = "#".repeat((speedup * 4.0).round() as usize);
        println!("{:<8} {:>6.2}x |{bar}", b.name, speedup);
    }
    println!();
    println!("(each # is 0.25x)");
}
