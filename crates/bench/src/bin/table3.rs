//! Table 3 — ablation: dynamic instruction inflation when each optimizer
//! pass is disabled in turn (relative to the full AbstractOpt pipeline).
//!
//! Regenerate with: `cargo run -p sxr-bench --bin table3`

use sxr::{Compiler, PipelineConfig};
use sxr_bench::BENCHMARKS;

const PASSES: &[&str] = &["inline", "constfold", "repspec", "bits", "cse", "dce"];

fn main() {
    println!("Table 3: instruction-count inflation with one pass disabled (1.00 = full pipeline)");
    println!();
    print!("{:<8} {:>12}", "bench", "full");
    for p in PASSES {
        print!(" {:>10}", format!("-{p}"));
    }
    println!();
    println!("{}", "-".repeat(8 + 12 + PASSES.len() * 11));
    let mut prods = vec![1.0f64; PASSES.len()];
    for b in BENCHMARKS {
        let full = Compiler::new(PipelineConfig::abstract_optimized())
            .compile(b.source)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(full.value, b.expect, "{} oracle", b.name);
        print!("{:<8} {:>12}", b.name, full.counters.total);
        for (i, pass) in PASSES.iter().enumerate() {
            let ablated = Compiler::new(PipelineConfig::ablated(pass))
                .compile(b.source)
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(ablated.value, b.expect, "{} oracle (-{pass})", b.name);
            let ratio = ablated.counters.total as f64 / full.counters.total as f64;
            prods[i] *= ratio;
            print!(" {:>10.2}", ratio);
        }
        println!();
    }
    println!("{}", "-".repeat(8 + 12 + PASSES.len() * 11));
    print!("{:<8} {:>12}", "geomean", "");
    let n = BENCHMARKS.len() as f64;
    for p in &prods {
        print!(" {:>10.2}", p.powf(1.0 / n));
    }
    println!();
}
