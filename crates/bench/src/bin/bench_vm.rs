//! `bench_vm` — the interpreter's wall-clock measurement harness.
//!
//! Runs every suite benchmark under every pipeline configuration on both
//! interpreter paths (checked, and verified fast path) N times on fresh
//! machines, prints a median/mean table, and writes the machine-readable
//! `BENCH_vm.json` (schema `sxr-bench-vm/v2`).
//!
//! Regenerate the checked-in numbers with:
//!
//! ```text
//! cargo run --release -p sxr-bench --bin bench_vm -- --iters 15 --out BENCH_vm.json
//! ```
//!
//! Flags: `--iters N` (timed runs per benchmark×config×path, default 15),
//! `--out PATH` (default `BENCH_vm.json`; `-` prints JSON to stdout only).

use sxr_bench::{measure_suite, suite_json};

fn usage() -> ! {
    eprintln!("usage: bench_vm [--iters N] [--out PATH]");
    std::process::exit(2);
}

fn main() {
    let mut iters: usize = 15;
    let mut out_path = String::from("BENCH_vm.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--out" => out_path = args.next().unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }

    eprintln!("bench_vm: {iters} timed iterations per benchmark x config x path");
    let measurements = measure_suite(iters);

    println!(
        "{:<8} {:<15} {:<9} {:>12} {:>12} {:>12} {:>12} {:>5} {:>3}",
        "bench", "config", "path", "median", "mean", "min", "instrs", "GCs", "ok"
    );
    println!("{}", "-".repeat(96));
    for m in &measurements {
        println!(
            "{:<8} {:<15} {:<9} {:>10.3?} {:>10.3?} {:>10.3?} {:>12} {:>5} {:>3}",
            m.name,
            m.config,
            if m.verified { "verified" } else { "checked" },
            m.median,
            m.mean,
            m.min,
            m.counters.total,
            m.counters.gc_count,
            if m.ok { "yes" } else { "NO" },
        );
    }

    let bad: Vec<&str> = measurements
        .iter()
        .filter(|m| !m.ok)
        .map(|m| m.name.as_str())
        .collect();

    let json = suite_json(iters, &measurements);
    if out_path == "-" {
        print!("{json}");
    } else {
        std::fs::write(&out_path, json).unwrap_or_else(|e| {
            eprintln!("bench_vm: cannot write {out_path}: {e}");
            std::process::exit(1);
        });
        eprintln!("bench_vm: wrote {out_path}");
    }

    if !bad.is_empty() {
        eprintln!("bench_vm: ORACLE MISMATCH in: {}", bad.join(", "));
        std::process::exit(1);
    }
}
