//! `chaos_vm` — runs the benchmark corpus under deterministic fault
//! schedules and checks the chaos contract: every run either reproduces
//! the fault-free oracle exactly or fails with a structured out-of-memory
//! error.  Divergent values or unexpected error kinds are violations.
//!
//! The default sweep (also what CI's `chaos-smoke` job runs):
//! GC-on-every-allocation, two seeded jitter schedules, two tight heap
//! caps, and allocation failures at half of each configuration's own
//! fault-free allocation count.
//!
//! ```text
//! cargo run --release -p sxr-bench --bin chaos_vm
//! cargo run --release -p sxr-bench --bin chaos_vm -- --seed 99 --heap-words 65536
//! ```
//!
//! Flags: `--heap-words N` (initial heap, default 65536), `--seed N`
//! (extra jitter schedule), `--probe` (print per-target allocation
//! profiles instead of sweeping).

use sxr::report::ChaosOutcome;
use sxr::FaultPlan;
use sxr_bench::{chaos_targets, run_chaos};

fn usage() -> ! {
    eprintln!("usage: chaos_vm [--heap-words N] [--seed N] [--probe]");
    std::process::exit(2);
}

fn main() {
    let mut heap_words: usize = 1 << 16;
    let mut extra_seed: Option<u64> = None;
    let mut probe = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--heap-words" => {
                heap_words = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                extra_seed = args.next().and_then(|v| v.parse().ok());
                if extra_seed.is_none() {
                    usage();
                }
            }
            "--probe" => probe = true,
            _ => usage(),
        }
    }

    eprintln!("chaos_vm: compiling corpus (heap {heap_words} words)...");
    let targets = chaos_targets(heap_words);

    if probe {
        println!(
            "{:<8} {:<15} {:>9} {:>9}",
            "bench", "config", "allocs", "gcs"
        );
        for t in &targets {
            println!(
                "{:<8} {:<15} {:>9} {:>9}",
                t.name, t.config, t.total_allocs, t.oracle.counters.gc_count
            );
        }
        return;
    }

    let mut plans: Vec<(String, FaultPlan)> = vec![
        (
            "gc-every-alloc".into(),
            FaultPlan::none().with_gc_every_alloc(),
        ),
        ("jitter(1)".into(), FaultPlan::none().with_gc_jitter_seed(1)),
        ("jitter(2)".into(), FaultPlan::none().with_gc_jitter_seed(2)),
        (
            "cap(4096)".into(),
            FaultPlan::none().with_heap_cap_words(4096),
        ),
        (
            "cap(16384)".into(),
            FaultPlan::none().with_heap_cap_words(16384),
        ),
    ];
    if let Some(seed) = extra_seed {
        plans.push((
            format!("jitter({seed})"),
            FaultPlan::none().with_gc_jitter_seed(seed),
        ));
    }

    let mut runs = 0usize;
    let mut agreed = 0usize;
    let mut oomed = 0usize;
    let mut violations = Vec::new();
    for t in &targets {
        // Per-target plan: fail half-way through this config's own
        // allocation stream (always inside the run, so always an OOM).
        let fail_mid = FaultPlan::none().with_fail_alloc_at((t.total_allocs / 2).max(1));
        for (label, plan) in plans.iter().cloned().chain(std::iter::once((
            format!("fail-alloc({})", (t.total_allocs / 2).max(1)),
            fail_mid,
        ))) {
            runs += 1;
            match run_chaos(t, plan) {
                ChaosOutcome::Agrees => agreed += 1,
                ChaosOutcome::Failed(e) if e.is_oom() => oomed += 1,
                ChaosOutcome::Failed(e) => violations.push(format!(
                    "{}/{} under {label}: unexpected error kind: {e}",
                    t.name, t.config
                )),
                ChaosOutcome::Diverged { got, want } => violations.push(format!(
                    "{}/{} under {label}: DIVERGED\n  got:  {got}\n  want: {want}",
                    t.name, t.config
                )),
            }
        }
    }

    println!(
        "chaos_vm: {runs} runs over {} targets: {agreed} agreed with the oracle, \
         {oomed} failed with structured OOM, {} violations",
        targets.len(),
        violations.len()
    );
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}
