//! `chaos_vm` — runs the benchmark corpus under deterministic fault
//! schedules and checks the chaos contract: every run either reproduces
//! the fault-free oracle exactly or fails with a structured out-of-memory
//! error.  Divergent values or unexpected error kinds are violations.
//!
//! The default sweep (also what CI's `chaos-smoke` job runs):
//! GC-on-every-allocation, two seeded jitter schedules, two tight heap
//! caps, and allocation failures at half of each configuration's own
//! fault-free allocation count.  Every fault outcome is tallied in a
//! per-class summary table (out-of-memory split by phase).
//!
//! `--resume` switches to the recoverable-trap battery instead: the whole
//! corpus runs under fuel-sliced suspend/resume (the outcome must be
//! bitwise identical to the uninterrupted oracle — value, output, and all
//! counters), and a guarded Scheme program must catch an injected
//! out-of-memory condition, recover, and finish with the expected answer
//! in every pipeline configuration.
//!
//! `--verify` runs the load-time bytecode verifier over the whole corpus
//! instead: every benchmark under every configuration must verify with
//! zero rejections (a rejection of compiler-produced code is a codegen
//! bug, and would force the machine off its unchecked fast path).
//!
//! ```text
//! cargo run --release -p sxr-bench --bin chaos_vm
//! cargo run --release -p sxr-bench --bin chaos_vm -- --seed 99 --heap-words 65536
//! cargo run --release -p sxr-bench --bin chaos_vm -- --resume --slice 4096
//! cargo run --release -p sxr-bench --bin chaos_vm -- --verify
//! ```
//!
//! Flags: `--heap-words N` (initial heap, default 65536), `--seed N`
//! (extra jitter schedule), `--probe` (print per-target allocation
//! profiles instead of sweeping), `--resume` (fuel-sliced resumption +
//! in-guest recovery battery), `--slice N` (resumption fuel slice,
//! default 4096), `--verify` (bytecode-verify the corpus, no execution).

use std::collections::BTreeMap;
use sxr::report::{run_resumable, ChaosOutcome};
use sxr::{Compiler, FaultPlan, PipelineConfig, VmError, VmErrorKind};
use sxr_bench::{chaos_targets, measured_configs, run_chaos, BENCHMARKS};

fn usage() -> ! {
    eprintln!(
        "usage: chaos_vm [--heap-words N] [--seed N] [--probe] [--resume] [--slice N] [--verify]"
    );
    std::process::exit(2);
}

/// Tally key for one fault outcome: the stable error-kind label, with
/// out-of-memory split by the phase that detected it.
fn fault_class(e: &VmError) -> String {
    match &e.kind {
        VmErrorKind::OutOfMemory { phase, .. } => format!("{}/{phase}", e.kind.label()),
        k => k.label().to_string(),
    }
}

fn print_class_table(classes: &BTreeMap<String, usize>) {
    if classes.is_empty() {
        return;
    }
    println!("{:<28} {:>6}", "fault class", "count");
    for (class, count) in classes {
        println!("{class:<28} {count:>6}");
    }
}

/// The in-guest recovery probe: allocation far over the injected cap, a
/// `guard` that inspects the delivered out-of-memory condition, and a
/// retry that fits.  Must print `alloc 64` in every configuration.
const OOM_RECOVERY_SRC: &str = r#"
(define (alloc-len n) (vector-length (make-vector n 1)))
(define (alloc-robust big small)
  (guard (c ((eq? (condition-kind c) 'out-of-memory)
             (begin
               (display (condition-phase c))
               (write-char #\space)
               (alloc-len small))))
    (alloc-len big)))
(display (alloc-robust 200000 64))
"#;

/// The `--verify` battery: every corpus program under every measured
/// configuration must pass the load-time bytecode verifier with zero
/// rejections.  Returns the number of violations.
fn verify_battery() -> usize {
    let mut violations = 0usize;
    let mut programs = 0usize;
    let mut funs = 0usize;
    let mut insts = 0usize;
    for b in BENCHMARKS {
        for (label, cfg) in measured_configs() {
            let report = match Compiler::new(cfg).compile(b.source) {
                Ok(c) => c.verify_bytecode(),
                Err(e) => {
                    violations += 1;
                    eprintln!("VIOLATION: {}/{label}: compile failed: {e}", b.name);
                    continue;
                }
            };
            programs += 1;
            funs += report.funs;
            insts += report.insts;
            if !report.is_clean() {
                violations += 1;
                eprintln!(
                    "VIOLATION: {}/{label}: bytecode verifier rejected compiler \
                     output:\n{report}",
                    b.name
                );
            }
        }
    }
    println!(
        "chaos_vm --verify: {programs} corpus programs verified \
         ({funs} functions, {insts} instructions), {violations} rejections"
    );
    violations
}

/// The `--resume` battery.  Returns the number of violations.
fn resume_battery(heap_words: usize, slice: u64) -> usize {
    eprintln!("chaos_vm: compiling corpus (heap {heap_words} words)...");
    let targets = chaos_targets(heap_words);
    let mut violations = 0usize;
    let mut runs = 0usize;
    let mut total_suspensions = 0u64;
    for t in &targets {
        runs += 1;
        match run_resumable(&t.compiled, slice) {
            Ok((out, suspensions)) => {
                total_suspensions += suspensions;
                if out != t.oracle {
                    violations += 1;
                    eprintln!(
                        "VIOLATION: {}/{} slice {slice}: sliced run diverged from \
                         the uninterrupted oracle",
                        t.name, t.config
                    );
                }
            }
            Err(e) => {
                violations += 1;
                eprintln!("VIOLATION: {}/{} slice {slice}: {e}", t.name, t.config);
            }
        }
    }
    println!(
        "chaos_vm --resume: {runs} corpus runs at slice {slice}: \
         {total_suspensions} suspensions, all outcomes bitwise-checked"
    );

    // In-guest recovery: a Scheme-level handler catches the injected OOM.
    for (label, cfg) in [
        ("traditional", PipelineConfig::traditional()),
        ("abstract-opt", PipelineConfig::abstract_optimized()),
        ("abstract-noopt", PipelineConfig::abstract_unoptimized()),
    ] {
        let result = Compiler::new(cfg.with_heap_words(heap_words))
            .compile(OOM_RECOVERY_SRC)
            .map_err(|e| e.to_string())
            .and_then(|c| {
                c.run_with_fault(FaultPlan::none().with_heap_cap_words(1 << 13))
                    .map_err(|e| e.to_string())
            });
        match result {
            Ok(out) if out.output == "alloc 64" => {
                println!("chaos_vm --resume: {label}: guard caught injected OOM and recovered");
            }
            Ok(out) => {
                violations += 1;
                eprintln!(
                    "VIOLATION: {label}: recovery probe produced {:?}, want \"alloc 64\"",
                    out.output
                );
            }
            Err(e) => {
                violations += 1;
                eprintln!("VIOLATION: {label}: recovery probe failed: {e}");
            }
        }
    }
    violations
}

fn main() {
    let mut heap_words: usize = 1 << 16;
    let mut extra_seed: Option<u64> = None;
    let mut probe = false;
    let mut resume = false;
    let mut verify = false;
    let mut slice: u64 = 4096;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--heap-words" => {
                heap_words = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                extra_seed = args.next().and_then(|v| v.parse().ok());
                if extra_seed.is_none() {
                    usage();
                }
            }
            "--slice" => {
                slice = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--probe" => probe = true,
            "--resume" => resume = true,
            "--verify" => verify = true,
            _ => usage(),
        }
    }

    if verify {
        let violations = verify_battery();
        if violations > 0 {
            std::process::exit(1);
        }
        return;
    }

    if resume {
        let violations = resume_battery(heap_words, slice);
        if violations > 0 {
            std::process::exit(1);
        }
        return;
    }

    eprintln!("chaos_vm: compiling corpus (heap {heap_words} words)...");
    let targets = chaos_targets(heap_words);

    if probe {
        println!(
            "{:<8} {:<15} {:>9} {:>9}",
            "bench", "config", "allocs", "gcs"
        );
        for t in &targets {
            println!(
                "{:<8} {:<15} {:>9} {:>9}",
                t.name, t.config, t.total_allocs, t.oracle.counters.gc_count
            );
        }
        return;
    }

    let mut plans: Vec<(String, FaultPlan)> = vec![
        (
            "gc-every-alloc".into(),
            FaultPlan::none().with_gc_every_alloc(),
        ),
        ("jitter(1)".into(), FaultPlan::none().with_gc_jitter_seed(1)),
        ("jitter(2)".into(), FaultPlan::none().with_gc_jitter_seed(2)),
        (
            "cap(4096)".into(),
            FaultPlan::none().with_heap_cap_words(4096),
        ),
        (
            "cap(16384)".into(),
            FaultPlan::none().with_heap_cap_words(16384),
        ),
    ];
    if let Some(seed) = extra_seed {
        plans.push((
            format!("jitter({seed})"),
            FaultPlan::none().with_gc_jitter_seed(seed),
        ));
    }

    let mut runs = 0usize;
    let mut agreed = 0usize;
    let mut oomed = 0usize;
    let mut classes: BTreeMap<String, usize> = BTreeMap::new();
    let mut violations = Vec::new();
    for t in &targets {
        // Per-target plan: fail half-way through this config's own
        // allocation stream (always inside the run, so always an OOM).
        let fail_mid = FaultPlan::none().with_fail_alloc_at((t.total_allocs / 2).max(1));
        for (label, plan) in plans.iter().cloned().chain(std::iter::once((
            format!("fail-alloc({})", (t.total_allocs / 2).max(1)),
            fail_mid,
        ))) {
            runs += 1;
            match run_chaos(t, plan) {
                ChaosOutcome::Agrees => agreed += 1,
                ChaosOutcome::Failed(e) if e.is_oom() => {
                    oomed += 1;
                    *classes.entry(fault_class(&e)).or_default() += 1;
                }
                ChaosOutcome::Failed(e) => {
                    *classes.entry(fault_class(&e)).or_default() += 1;
                    violations.push(format!(
                        "{}/{} under {label}: unexpected error kind: {e}",
                        t.name, t.config
                    ));
                }
                ChaosOutcome::Diverged { got, want } => violations.push(format!(
                    "{}/{} under {label}: DIVERGED\n  got:  {got}\n  want: {want}",
                    t.name, t.config
                )),
            }
        }
    }

    println!(
        "chaos_vm: {runs} runs over {} targets: {agreed} agreed with the oracle, \
         {oomed} failed with structured OOM, {} violations",
        targets.len(),
        violations.len()
    );
    print_class_table(&classes);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}
