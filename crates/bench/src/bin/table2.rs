//! Table 2 — dynamic instruction counts, allocation, and ratios on the
//! benchmark suite, per configuration.
//!
//! Regenerate with: `cargo run -p sxr-bench --bin table2`
//! (wall-clock times come from `cargo bench -p sxr-bench`)

use sxr::{Compiler, PipelineConfig};
use sxr_bench::BENCHMARKS;

fn main() {
    println!("Table 2: dynamic instruction counts (kernel only; %counters-reset! after setup)");
    println!();
    println!(
        "{:<8} {:>12} {:>12} {:>7} {:>13} {:>7} {:>10} {:>5}",
        "bench", "Traditional", "AbstractOpt", "A/T", "AbstractNoOpt", "N/T", "alloc-w", "GCs"
    );
    println!("{}", "-".repeat(82));
    let mut prod_at = 1.0f64;
    let mut prod_nt = 1.0f64;
    for b in BENCHMARKS {
        let run = |cfg: PipelineConfig| {
            Compiler::new(cfg)
                .compile(b.source)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name))
                .run()
                .unwrap_or_else(|e| panic!("{}: {e}", b.name))
        };
        let t = run(PipelineConfig::traditional());
        let a = run(PipelineConfig::abstract_optimized());
        let n = run(PipelineConfig::abstract_unoptimized());
        assert_eq!(t.value, b.expect, "{} oracle (traditional)", b.name);
        assert_eq!(a.value, b.expect, "{} oracle (abstract)", b.name);
        assert_eq!(n.value, b.expect, "{} oracle (noopt)", b.name);
        let at = a.counters.total as f64 / t.counters.total as f64;
        let nt = n.counters.total as f64 / t.counters.total as f64;
        prod_at *= at;
        prod_nt *= nt;
        println!(
            "{:<8} {:>12} {:>12} {:>7.3} {:>13} {:>7.2} {:>10} {:>5}",
            b.name,
            t.counters.total,
            a.counters.total,
            at,
            n.counters.total,
            nt,
            a.counters.allocated_words,
            a.counters.gc_count
        );
    }
    let n = BENCHMARKS.len() as f64;
    println!("{}", "-".repeat(82));
    println!(
        "geometric mean: AbstractOpt/Traditional = {:.3}, AbstractNoOpt/Traditional = {:.2}",
        prod_at.powf(1.0 / n),
        prod_nt.powf(1.0 / n)
    );
}
