//! The benchmark suite: classic Scheme kernels of the era (Gabriel-style),
//! exercising exactly the primitive operations whose generated code the
//! paper is about. Shared by the integration tests, the table binaries,
//! and the Criterion wall-time benches.

/// One benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// Short name used in tables.
    pub name: &'static str,
    /// What it stresses.
    pub stresses: &'static str,
    /// Scheme source. Each program calls `(%counters-reset!)` after setup
    /// so dynamic counts measure the kernel, then leaves a checksum as its
    /// value.
    pub source: &'static str,
    /// Expected final value (differential oracle).
    pub expect: &'static str,
}

/// All benchmarks, in report order.
pub const BENCHMARKS: &[Benchmark] = &[
    Benchmark {
        name: "fib",
        stresses: "fixnum arith, non-tail calls",
        source: "
          (define (fib n) (if (fx< n 2) n (fx+ (fib (fx- n 1)) (fib (fx- n 2)))))
          (%counters-reset!)
          (fib 22)",
        expect: "17711",
    },
    Benchmark {
        name: "tak",
        stresses: "fixnum compare, deep calls",
        source: "
          (define (tak x y z)
            (if (not (fx< y x))
                z
                (tak (tak (fx- x 1) y z)
                     (tak (fx- y 1) z x)
                     (tak (fx- z 1) x y))))
          (%counters-reset!)
          (tak 18 12 6)",
        expect: "7",
    },
    Benchmark {
        name: "sieve",
        stresses: "vectors, loops",
        source: "
          (define (sieve n)
            (let ((v (make-vector n #t)))
              (let loop ((i 2) (count 0))
                (cond ((fx< n i) count)
                      ((fx= i n) count)
                      ((vector-ref v i)
                       (begin
                         (let mark ((j (fx* i i)))
                           (when (fx< j n)
                             (vector-set! v j #f)
                             (mark (fx+ j i))))
                         (loop (fx+ i 1) (fx+ count 1))))
                      (else (loop (fx+ i 1) count))))))
          (%counters-reset!)
          (sieve 1000)",
        expect: "168",
    },
    Benchmark {
        name: "nrev",
        stresses: "pairs, allocation, GC",
        source: "
          (define (nrev-iter k acc)
            (if (fx= k 0) acc (nrev-iter (fx- k 1) (length (reverse acc)))))
          (define base (iota 400))
          (%counters-reset!)
          (let loop ((k 60) (sum 0))
            (if (fx= k 0)
                sum
                (loop (fx- k 1) (fx+ sum (length (reverse base))))))",
        expect: "24000",
    },
    Benchmark {
        name: "vsum",
        stresses: "vector-ref in a tight loop",
        source: "
          (define v (list->vector (iota 10000)))
          (%counters-reset!)
          (let loop ((i 0) (sum 0))
            (if (fx= i 10000) sum (loop (fx+ i 1) (fx+ sum (vector-ref v i)))))",
        expect: "49995000",
    },
    Benchmark {
        name: "strhash",
        stresses: "string-ref, char->integer",
        source: "
          (define s \"the quick brown fox jumps over the lazy dog\")
          (%counters-reset!)
          (let loop ((k 0) (h 0))
            (if (fx= k 500) h (loop (fx+ k 1) (fxremainder (fx+ h (string-hash s)) 1000003))))",
        expect: "286570",
    },
    Benchmark {
        name: "assq",
        stresses: "symbol identity, list walking",
        source: "
          (define table
            (map (lambda (i) (cons i (fx* i i))) (iota 64)))
          (%counters-reset!)
          (let loop ((k 0) (sum 0))
            (if (fx= k 2000)
                sum
                (loop (fx+ k 1)
                      (fx+ sum (cdr (assq (fxremainder k 64) table))))))",
        expect: "2646904",
    },
    Benchmark {
        name: "deriv",
        stresses: "quoted structure, dispatch",
        source: "
          (define (deriv e x)
            (cond ((symbol? e) (if (eq? e x) 1 0))
                  ((fixnum? e) 0)
                  ((eq? (car e) '+)
                   (list3 '+ (deriv (cadr e) x) (deriv (caddr e) x))
                  )
                  ((eq? (car e) '*)
                   (list3 '+
                          (list3 '* (cadr e) (deriv (caddr e) x))
                          (list3 '* (caddr e) (deriv (cadr e) x))))
                  (else (error 'deriv))))
          (define expr '(+ (* x x) (* 3 (+ x (* x x)))))
          (%counters-reset!)
          (let loop ((k 0) (n 0))
            (if (fx= k 300)
                n
                (loop (fx+ k 1) (fx+ n (length (deriv expr 'x))))))",
        expect: "900",
    },
    Benchmark {
        name: "queens",
        stresses: "branching, lists, recursion",
        source: "
          (define (ok? row dist placed)
            (if (null? placed)
                #t
                (and (not (fx= (car placed) (fx+ row dist)))
                     (not (fx= (car placed) (fx- row dist)))
                     (ok? row (fx+ dist 1) (cdr placed)))))
          (define (try x y z)
            (if (null? x)
                (if (null? y) 1 0)
                (fx+ (if (ok? (car x) 1 z)
                         (try (append (cdr x) y) '() (cons (car x) z))
                         0)
                     (try (cdr x) (cons (car x) y) z))))
          (define (queens n) (try (iota n) '() '()))
          (%counters-reset!)
          (queens 8)",
        expect: "92",
    },
    Benchmark {
        name: "boxes",
        stresses: "mutable state via the library's boxes",
        source: "
          (define (make-acc) (let ((t 0)) (lambda (d) (set! t (fx+ t d)) t)))
          (define acc (make-acc))
          (%counters-reset!)
          (let loop ((i 0) (last 0))
            (if (fx= i 20000) last (loop (fx+ i 1) (acc 1))))",
        expect: "20000",
    },
];

/// Looks a benchmark up by name.
pub fn benchmark(name: &str) -> Option<&'static Benchmark> {
    BENCHMARKS.iter().find(|b| b.name == name)
}

// ---------------------------------------------------------------------------
// Measurement harness (`bench_vm`)
// ---------------------------------------------------------------------------

use std::time::Duration;
use sxr::report::{run_timed, run_timed_checked, run_under_fault, ChaosOutcome};
use sxr::{Compiled, Compiler, Counters, FaultPlan, Outcome, PipelineConfig};

/// The pipeline configurations the wall-clock harness measures, with their
/// report labels.
pub fn measured_configs() -> Vec<(&'static str, PipelineConfig)> {
    vec![
        ("traditional", PipelineConfig::traditional()),
        ("abstract-opt", PipelineConfig::abstract_optimized()),
        ("abstract-noopt", PipelineConfig::abstract_unoptimized()),
    ]
}

/// One (benchmark, configuration, path) measurement: wall-clock statistics
/// over `iters` fresh-machine runs plus the dynamic counters of the final
/// run (counters are deterministic across runs, so any run's will do).
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name (see [`BENCHMARKS`]).
    pub name: String,
    /// Configuration label (see [`measured_configs`]).
    pub config: String,
    /// Which interpreter path ran: `true` = the program passed the
    /// load-time bytecode verifier and ran on the unchecked fast path,
    /// `false` = no verifier, every step bounds-checked.
    pub verified: bool,
    /// Median per-run wall-clock time.
    pub median: Duration,
    /// Mean per-run wall-clock time.
    pub mean: Duration,
    /// Fastest run.
    pub min: Duration,
    /// The program's final value.
    pub value: String,
    /// Whether `value` matched the benchmark's differential oracle.
    pub ok: bool,
    /// Dynamic counters from the last run.
    pub counters: Counters,
}

/// Runs every benchmark under every configuration on both interpreter
/// paths — checked (no verifier, every step bounds-tested) and verified
/// (bytecode verifier at load, unchecked fast path) — `iters` timed runs
/// each (after one warmup run), and returns the measurements in report
/// order.  Both paths must hit the differential oracle; the verifier's
/// own cost is load-time and excluded (see [`run_timed`]).
///
/// # Panics
///
/// Panics when a benchmark fails to compile or run — the suite is part of
/// the repository's contract, so a broken benchmark is a bug, not a datum.
pub fn measure_suite(iters: usize) -> Vec<Measurement> {
    assert!(iters > 0, "need at least one timed iteration");
    let mut out = Vec::with_capacity(BENCHMARKS.len() * 3 * 2);
    for b in BENCHMARKS {
        for (label, cfg) in measured_configs() {
            let compiled = Compiler::new(cfg)
                .compile(b.source)
                .unwrap_or_else(|e| panic!("{}/{label}: compile failed: {e}", b.name));
            for verified in [false, true] {
                let run = if verified {
                    run_timed
                } else {
                    run_timed_checked
                };
                // Warmup: one untimed run (touches the heap, faults pages).
                run(&compiled).unwrap_or_else(|e| panic!("{}/{label}: {e}", b.name));
                let mut times = Vec::with_capacity(iters);
                let mut last = None;
                for _ in 0..iters {
                    let (dt, outcome) =
                        run(&compiled).unwrap_or_else(|e| panic!("{}/{label}: {e}", b.name));
                    times.push(dt);
                    last = Some(outcome);
                }
                times.sort();
                let outcome = last.expect("iters > 0");
                let mean = times.iter().sum::<Duration>() / iters as u32;
                out.push(Measurement {
                    name: b.name.to_string(),
                    config: label.to_string(),
                    verified,
                    median: times[times.len() / 2],
                    mean,
                    min: times[0],
                    ok: outcome.value == b.expect,
                    value: outcome.value,
                    counters: outcome.counters,
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Chaos harness (fault-injection sweeps over the corpus)
// ---------------------------------------------------------------------------

/// One (benchmark, configuration) compilation with its fault-free oracle —
/// the unit a chaos sweep runs fault schedules against.
#[derive(Debug)]
pub struct ChaosTarget {
    /// Benchmark name (see [`BENCHMARKS`]).
    pub name: &'static str,
    /// Expected final value from the suite's differential oracle.
    pub expect: &'static str,
    /// Configuration label (see [`measured_configs`]).
    pub config: &'static str,
    /// The compiled program (compile once, run under many plans).
    pub compiled: Compiled,
    /// The fault-free outcome (verified against `expect`).
    pub oracle: Outcome,
    /// Total object allocations of the fault-free run, pool included —
    /// the ordinal space `FaultPlan::fail_alloc_at` indexes, so sweeps can
    /// scale fail points to each configuration's own allocation profile.
    pub total_allocs: u64,
}

/// Compiles the whole corpus under every measured configuration with
/// `heap_words` of initial heap, runs each fault-free once, and returns the
/// targets for a chaos sweep.
///
/// # Panics
///
/// Panics when a benchmark fails to compile, fails to run fault-free, or
/// misses its oracle — the fault-free corpus is the suite's contract.
pub fn chaos_targets(heap_words: usize) -> Vec<ChaosTarget> {
    let mut out = Vec::with_capacity(BENCHMARKS.len() * 3);
    for b in BENCHMARKS {
        for (label, cfg) in measured_configs() {
            let compiled = Compiler::new(cfg.with_heap_words(heap_words))
                .compile(b.source)
                .unwrap_or_else(|e| panic!("{}/{label}: compile failed: {e}", b.name));
            let mut m = compiled
                .machine()
                .unwrap_or_else(|e| panic!("{}/{label}: load failed: {e}", b.name));
            let w = m
                .run()
                .unwrap_or_else(|e| panic!("{}/{label}: fault-free run failed: {e}", b.name));
            let oracle = Outcome {
                value: m.describe(w),
                output: m.output().to_string(),
                counters: m.counters.clone(),
            };
            assert_eq!(
                oracle.value, b.expect,
                "{}/{label}: fault-free run missed the oracle",
                b.name
            );
            out.push(ChaosTarget {
                name: b.name,
                expect: b.expect,
                config: label,
                compiled,
                oracle,
                total_allocs: m.allocations(),
            });
        }
    }
    out
}

/// Runs one target under `plan` and classifies the result against the
/// target's fault-free oracle (see [`ChaosOutcome`]).
pub fn run_chaos(target: &ChaosTarget, plan: FaultPlan) -> ChaosOutcome {
    run_under_fault(&target.compiled, plan, &target.oracle)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the whole suite as the `BENCH_vm.json` document (schema
/// `sxr-bench-vm/v2` — v2 added the per-row `verified` field for the
/// checked-vs-fast-path comparison).  Serialization is hand-rolled: the
/// build environment is offline, so no serde.
pub fn suite_json(iters: usize, measurements: &[Measurement]) -> String {
    let mut rows = Vec::with_capacity(measurements.len());
    for m in measurements {
        rows.push(format!(
            concat!(
                "    {{\"name\":\"{}\",\"config\":\"{}\",\"verified\":{},",
                "\"median_ns\":{},\"mean_ns\":{},\"min_ns\":{},",
                "\"value\":\"{}\",\"ok\":{},\"counters\":{}}}"
            ),
            json_escape(&m.name),
            json_escape(&m.config),
            m.verified,
            m.median.as_nanos(),
            m.mean.as_nanos(),
            m.min.as_nanos(),
            json_escape(&m.value),
            m.ok,
            m.counters.to_json(),
        ));
    }
    format!(
        "{{\n  \"schema\": \"sxr-bench-vm/v2\",\n  \"iters\": {iters},\n  \"benchmarks\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn suite_json_shape() {
        let m = Measurement {
            name: "fib".into(),
            config: "abstract-opt".into(),
            verified: true,
            median: Duration::from_nanos(1500),
            mean: Duration::from_nanos(1600),
            min: Duration::from_nanos(1400),
            value: "17711".into(),
            ok: true,
            counters: Counters::default(),
        };
        let j = suite_json(3, &[m]);
        assert!(j.contains("\"schema\": \"sxr-bench-vm/v2\""));
        assert!(j.contains("\"iters\": 3"));
        assert!(j.contains("\"verified\":true"));
        assert!(j.contains("\"median_ns\":1500"));
        assert!(j.contains("\"ok\":true"));
        assert!(j.contains("\"counters\":{\"total\":0"));
    }
}
