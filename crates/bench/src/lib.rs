//! The benchmark suite: classic Scheme kernels of the era (Gabriel-style),
//! exercising exactly the primitive operations whose generated code the
//! paper is about. Shared by the integration tests, the table binaries,
//! and the Criterion wall-time benches.

/// One benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// Short name used in tables.
    pub name: &'static str,
    /// What it stresses.
    pub stresses: &'static str,
    /// Scheme source. Each program calls `(%counters-reset!)` after setup
    /// so dynamic counts measure the kernel, then leaves a checksum as its
    /// value.
    pub source: &'static str,
    /// Expected final value (differential oracle).
    pub expect: &'static str,
}

/// All benchmarks, in report order.
pub const BENCHMARKS: &[Benchmark] = &[
    Benchmark {
        name: "fib",
        stresses: "fixnum arith, non-tail calls",
        source: "
          (define (fib n) (if (fx< n 2) n (fx+ (fib (fx- n 1)) (fib (fx- n 2)))))
          (%counters-reset!)
          (fib 22)",
        expect: "17711",
    },
    Benchmark {
        name: "tak",
        stresses: "fixnum compare, deep calls",
        source: "
          (define (tak x y z)
            (if (not (fx< y x))
                z
                (tak (tak (fx- x 1) y z)
                     (tak (fx- y 1) z x)
                     (tak (fx- z 1) x y))))
          (%counters-reset!)
          (tak 18 12 6)",
        expect: "7",
    },
    Benchmark {
        name: "sieve",
        stresses: "vectors, loops",
        source: "
          (define (sieve n)
            (let ((v (make-vector n #t)))
              (let loop ((i 2) (count 0))
                (cond ((fx< n i) count)
                      ((fx= i n) count)
                      ((vector-ref v i)
                       (begin
                         (let mark ((j (fx* i i)))
                           (when (fx< j n)
                             (vector-set! v j #f)
                             (mark (fx+ j i))))
                         (loop (fx+ i 1) (fx+ count 1))))
                      (else (loop (fx+ i 1) count))))))
          (%counters-reset!)
          (sieve 1000)",
        expect: "168",
    },
    Benchmark {
        name: "nrev",
        stresses: "pairs, allocation, GC",
        source: "
          (define (nrev-iter k acc)
            (if (fx= k 0) acc (nrev-iter (fx- k 1) (length (reverse acc)))))
          (define base (iota 400))
          (%counters-reset!)
          (let loop ((k 60) (sum 0))
            (if (fx= k 0)
                sum
                (loop (fx- k 1) (fx+ sum (length (reverse base))))))",
        expect: "24000",
    },
    Benchmark {
        name: "vsum",
        stresses: "vector-ref in a tight loop",
        source: "
          (define v (list->vector (iota 10000)))
          (%counters-reset!)
          (let loop ((i 0) (sum 0))
            (if (fx= i 10000) sum (loop (fx+ i 1) (fx+ sum (vector-ref v i)))))",
        expect: "49995000",
    },
    Benchmark {
        name: "strhash",
        stresses: "string-ref, char->integer",
        source: "
          (define s \"the quick brown fox jumps over the lazy dog\")
          (%counters-reset!)
          (let loop ((k 0) (h 0))
            (if (fx= k 500) h (loop (fx+ k 1) (fxremainder (fx+ h (string-hash s)) 1000003))))",
        expect: "286570",
    },
    Benchmark {
        name: "assq",
        stresses: "symbol identity, list walking",
        source: "
          (define table
            (map (lambda (i) (cons i (fx* i i))) (iota 64)))
          (%counters-reset!)
          (let loop ((k 0) (sum 0))
            (if (fx= k 2000)
                sum
                (loop (fx+ k 1)
                      (fx+ sum (cdr (assq (fxremainder k 64) table))))))",
        expect: "2646904",
    },
    Benchmark {
        name: "deriv",
        stresses: "quoted structure, dispatch",
        source: "
          (define (deriv e x)
            (cond ((symbol? e) (if (eq? e x) 1 0))
                  ((fixnum? e) 0)
                  ((eq? (car e) '+)
                   (list3 '+ (deriv (cadr e) x) (deriv (caddr e) x))
                  )
                  ((eq? (car e) '*)
                   (list3 '+
                          (list3 '* (cadr e) (deriv (caddr e) x))
                          (list3 '* (caddr e) (deriv (cadr e) x))))
                  (else (error 'deriv))))
          (define expr '(+ (* x x) (* 3 (+ x (* x x)))))
          (%counters-reset!)
          (let loop ((k 0) (n 0))
            (if (fx= k 300)
                n
                (loop (fx+ k 1) (fx+ n (length (deriv expr 'x))))))",
        expect: "900",
    },
    Benchmark {
        name: "queens",
        stresses: "branching, lists, recursion",
        source: "
          (define (ok? row dist placed)
            (if (null? placed)
                #t
                (and (not (fx= (car placed) (fx+ row dist)))
                     (not (fx= (car placed) (fx- row dist)))
                     (ok? row (fx+ dist 1) (cdr placed)))))
          (define (try x y z)
            (if (null? x)
                (if (null? y) 1 0)
                (fx+ (if (ok? (car x) 1 z)
                         (try (append (cdr x) y) '() (cons (car x) z))
                         0)
                     (try (cdr x) (cons (car x) y) z))))
          (define (queens n) (try (iota n) '() '()))
          (%counters-reset!)
          (queens 8)",
        expect: "92",
    },
    Benchmark {
        name: "boxes",
        stresses: "mutable state via the library's boxes",
        source: "
          (define (make-acc) (let ((t 0)) (lambda (d) (set! t (fx+ t d)) t)))
          (define acc (make-acc))
          (%counters-reset!)
          (let loop ((i 0) (last 0))
            (if (fx= i 20000) last (loop (fx+ i 1) (acc 1))))",
        expect: "20000",
    },
];

/// Looks a benchmark up by name.
pub fn benchmark(name: &str) -> Option<&'static Benchmark> {
    BENCHMARKS.iter().find(|b| b.name == name)
}
