//! Wall-clock benchmarks: each suite program under each pipeline
//! configuration. Programs are compiled once; the measured unit is a fresh
//! machine executing the program.
//!
//! This is a plain `harness = false` bench (the build environment is
//! offline, so no external benchmarking crates): each (program, config)
//! pair is warmed up once and then timed over a fixed number of
//! iterations, reporting the per-iteration mean.

use std::time::Instant;
use sxr::{Compiler, PipelineConfig};
use sxr_bench::BENCHMARKS;

const WARMUP: usize = 2;
const ITERS: usize = 10;

fn main() {
    println!("{:<12} {:<15} {:>12}", "bench", "config", "mean");
    for b in BENCHMARKS {
        for (label, cfg) in [
            ("traditional", PipelineConfig::traditional()),
            ("abstract-opt", PipelineConfig::abstract_optimized()),
            ("abstract-noopt", PipelineConfig::abstract_unoptimized()),
        ] {
            let compiled = Compiler::new(cfg)
                .compile(b.source)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            // Machine construction (program clone, pre-decode, pool build)
            // happens outside the timed region: the measured unit is the
            // interpreter's steady-state execution, matching `bench_vm`.
            let run_once = || {
                let mut m = compiled.machine().expect("loads");
                let start = Instant::now();
                let w = m.run().expect("runs");
                let dt = start.elapsed();
                std::hint::black_box(w);
                dt
            };
            for _ in 0..WARMUP {
                run_once();
            }
            let mut total = std::time::Duration::ZERO;
            for _ in 0..ITERS {
                total += run_once();
            }
            let mean = total / ITERS as u32;
            println!("{:<12} {:<15} {:>10.3?}", b.name, label, mean);
        }
    }
}
