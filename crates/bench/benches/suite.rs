//! Wall-clock benchmarks (Criterion): each suite program under each
//! pipeline configuration. Programs are compiled once; the measured unit
//! is a fresh machine executing the program.

use criterion::{criterion_group, criterion_main, Criterion};
use sxr::{Compiler, PipelineConfig};
use sxr_bench::BENCHMARKS;

fn bench_suite(c: &mut Criterion) {
    for b in BENCHMARKS {
        let mut group = c.benchmark_group(b.name);
        group.sample_size(10);
        for (label, cfg) in [
            ("traditional", PipelineConfig::traditional()),
            ("abstract-opt", PipelineConfig::abstract_optimized()),
            ("abstract-noopt", PipelineConfig::abstract_unoptimized()),
        ] {
            let compiled = Compiler::new(cfg)
                .compile(b.source)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            group.bench_function(label, |bench| {
                bench.iter(|| {
                    let mut m = compiled.machine().expect("loads");
                    let w = m.run().expect("runs");
                    std::hint::black_box(w)
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_suite);
criterion_main!(benches);
