//! Property test: printing any datum and re-parsing it yields an equal
//! datum. Random datums come from a deterministic in-tree PRNG (the build
//! environment is offline, so no external property-testing crates);
//! failures reproduce exactly from `SEED`.

use sxr_sexp::{parse_one, Datum};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

const SYMBOL_HEAD: &[u8] = b"abcxyzABC%!?*<>=_+-";
const SYMBOL_TAIL: &[u8] = b"abcxyzABC0123456789%!?*<>=_+-";
const STRING_CHARS: &[char] = &['a', '"', '\\', '\n', '\t', '\u{3c0}', ' '];
const CHARS: &[char] = &[
    'a', 'Z', '0', '(', ')', '#', ';', '\u{3c0}', ' ', '\n', '\t',
];

fn gen_symbol(rng: &mut Rng) -> String {
    loop {
        let mut s = String::new();
        s.push(SYMBOL_HEAD[rng.below(SYMBOL_HEAD.len())] as char);
        for _ in 0..rng.below(8) {
            s.push(SYMBOL_TAIL[rng.below(SYMBOL_TAIL.len())] as char);
        }
        // Keep only symbols the lexer reads back as symbols.
        if s != "." && s.parse::<i64>().is_err() && !s.starts_with('#') {
            return s;
        }
    }
}

fn gen_leaf(rng: &mut Rng) -> Datum {
    match rng.below(5) {
        0 => Datum::Fixnum(rng.next() as i64 >> rng.below(64)),
        1 => Datum::Bool(rng.below(2) == 0),
        2 => Datum::Char(CHARS[rng.below(CHARS.len())]),
        3 => {
            let n = rng.below(12);
            Datum::String(
                (0..n)
                    .map(|_| STRING_CHARS[rng.below(STRING_CHARS.len())])
                    .collect(),
            )
        }
        _ => Datum::Symbol(gen_symbol(rng)),
    }
}

fn gen_datum(rng: &mut Rng, fuel: usize) -> Datum {
    if fuel == 0 {
        return gen_leaf(rng);
    }
    match rng.below(5) {
        0 | 1 => gen_leaf(rng),
        2 => Datum::List(
            (0..rng.below(6))
                .map(|_| gen_datum(rng, fuel - 1))
                .collect(),
        ),
        3 => Datum::Vector(
            (0..rng.below(6))
                .map(|_| gen_datum(rng, fuel - 1))
                .collect(),
        ),
        _ => {
            let items: Vec<Datum> = (0..1 + rng.below(3))
                .map(|_| gen_datum(rng, fuel - 1))
                .collect();
            // Keep the improper invariant: the tail is never a list.
            match gen_datum(rng, fuel - 1) {
                Datum::List(rest) => {
                    let mut all = items;
                    all.extend(rest);
                    Datum::List(all)
                }
                Datum::Improper(mid, t) => {
                    let mut all = items;
                    all.extend(mid);
                    Datum::Improper(all, t)
                }
                atom => Datum::Improper(items, Box::new(atom)),
            }
        }
    }
}

const SEED: u64 = 0xD00D_F00D_0123_4567;
const CASES: usize = 512;

#[test]
fn print_parse_roundtrip() {
    let mut rng = Rng(SEED);
    for case in 0..CASES {
        let d = gen_datum(&mut rng, 4);
        let text = d.to_string();
        let back = parse_one(&text)
            .unwrap_or_else(|e| panic!("case {case}: failed to reparse {text}: {e}"));
        assert_eq!(d, back, "case {case}: roundtrip mismatch for {text}");
    }
}
