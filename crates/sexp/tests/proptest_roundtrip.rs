//! Property test: printing any datum and re-parsing it yields an equal datum.

use proptest::prelude::*;
use sxr_sexp::{parse_one, Datum};

fn arb_symbol() -> impl Strategy<Value = String> {
    // Symbols that the lexer accepts and that are not number-shaped.
    "[a-zA-Z%!?*<>=_+-][a-zA-Z0-9%!?*<>=_+-]{0,8}".prop_filter("not number-shaped or dot", |s| {
        s != "." && s.parse::<i64>().is_err() && !s.starts_with('#')
    })
}

fn arb_char() -> impl Strategy<Value = char> {
    prop_oneof![
        any::<char>().prop_filter("printable non-ws", |c| !c.is_whitespace() && !c.is_control()),
        Just(' '),
        Just('\n'),
        Just('\t'),
    ]
}

fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![Just('a'), Just('"'), Just('\\'), Just('\n'), Just('\t'), Just('π'), Just(' ')],
        0..12,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn arb_datum() -> impl Strategy<Value = Datum> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Datum::Fixnum),
        any::<bool>().prop_map(Datum::Bool),
        arb_char().prop_map(Datum::Char),
        arb_string().prop_map(Datum::String),
        arb_symbol().prop_map(Datum::Symbol),
    ];
    leaf.prop_recursive(4, 48, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Datum::List),
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Datum::Vector),
            (proptest::collection::vec(inner.clone(), 1..4), inner.clone()).prop_map(|(items, tail)| {
                // Keep the improper invariant: the tail is never a list.
                match tail {
                    Datum::List(rest) => {
                        let mut all = items;
                        all.extend(rest);
                        Datum::List(all)
                    }
                    Datum::Improper(mid, t) => {
                        let mut all = items;
                        all.extend(mid);
                        Datum::Improper(all, t)
                    }
                    atom => Datum::Improper(items, Box::new(atom)),
                }
            }),
        ]
    })
}

proptest! {
    #[test]
    fn print_parse_roundtrip(d in arb_datum()) {
        let text = d.to_string();
        let back = parse_one(&text).unwrap_or_else(|e| panic!("failed to reparse {text}: {e}"));
        prop_assert_eq!(d, back);
    }
}
