//! S-expression reader and writer for the `sxr` SchemeXerox reproduction.
//!
//! This crate is the bottom layer of the pipeline: it turns program text into
//! [`Datum`] values (and back).  It knows nothing about evaluation, data-type
//! representations, or the compiler — it is a plain, complete reader for the
//! Scheme subset the rest of the system compiles.
//!
//! # Example
//!
//! ```
//! use sxr_sexp::{parse_one, Datum};
//!
//! let d = parse_one("(car '(1 2))").unwrap();
//! assert_eq!(d.to_string(), "(car (quote (1 2)))");
//! match &d {
//!     Datum::List(items) => assert_eq!(items.len(), 2),
//!     _ => panic!("expected a list"),
//! }
//! ```

mod datum;
mod error;
mod lexer;
mod parser;
mod printer;

pub use datum::Datum;
pub use error::{ParseError, ParseErrorKind, Span};
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{parse_all, parse_all_spanned, parse_one, Parser};
pub use printer::{display_datum, write_datum};
