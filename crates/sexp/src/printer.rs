//! Writers for [`Datum`]: `write` (read-back) and `display` (human) styles.

use crate::datum::Datum;
use std::fmt::{self, Write as _};

/// Formats `d` in `write` style: strings are quoted/escaped, characters use
/// `#\` notation. The output reads back as an equal datum.
///
/// # Example
///
/// ```
/// use sxr_sexp::{write_datum, Datum};
/// assert_eq!(write_datum(&Datum::String("hi".into())), "\"hi\"");
/// ```
pub fn write_datum(d: &Datum) -> String {
    Display(d, true).to_string()
}

/// Internal shared formatter. `machine` selects `write` (true) vs `display`.
pub(crate) fn fmt_datum(d: &Datum, f: &mut fmt::Formatter<'_>, machine: bool) -> fmt::Result {
    match d {
        Datum::Symbol(s) => f.write_str(s),
        Datum::Fixnum(n) => write!(f, "{n}"),
        Datum::Bool(true) => f.write_str("#t"),
        Datum::Bool(false) => f.write_str("#f"),
        Datum::Char(c) => {
            if machine {
                match c {
                    ' ' => f.write_str("#\\space"),
                    '\n' => f.write_str("#\\newline"),
                    '\t' => f.write_str("#\\tab"),
                    '\r' => f.write_str("#\\return"),
                    '\0' => f.write_str("#\\nul"),
                    c => write!(f, "#\\{c}"),
                }
            } else {
                f.write_char(*c)
            }
        }
        Datum::String(s) => {
            if machine {
                f.write_char('"')?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\t' => f.write_str("\\t")?,
                        '\r' => f.write_str("\\r")?,
                        '\0' => f.write_str("\\0")?,
                        c => f.write_char(c)?,
                    }
                }
                f.write_char('"')
            } else {
                f.write_str(s)
            }
        }
        Datum::List(items) => {
            f.write_char('(')?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_char(' ')?;
                }
                fmt_datum(item, f, machine)?;
            }
            f.write_char(')')
        }
        Datum::Improper(items, tail) => {
            f.write_char('(')?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_char(' ')?;
                }
                fmt_datum(item, f, machine)?;
            }
            f.write_str(" . ")?;
            fmt_datum(tail, f, machine)?;
            f.write_char(')')
        }
        Datum::Vector(items) => {
            f.write_str("#(")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_char(' ')?;
                }
                fmt_datum(item, f, machine)?;
            }
            f.write_char(')')
        }
    }
}

struct Display<'a>(&'a Datum, bool);

impl fmt::Display for Display<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_datum(self.0, f, self.1)
    }
}

/// Renders `d` in `display` style: strings raw, characters bare.
///
/// # Example
///
/// ```
/// use sxr_sexp::{display_datum, Datum};
/// assert_eq!(display_datum(&Datum::String("hi".into())), "hi");
/// assert_eq!(Datum::String("hi".into()).to_string(), "\"hi\"");
/// ```
pub fn display_datum(d: &Datum) -> String {
    Display(d, false).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_one;

    #[test]
    fn write_roundtrips() {
        for src in [
            "(a b c)",
            "(1 . 2)",
            "#(1 #t #\\a)",
            "\"a\\nb\"",
            "(quote (x . (y . ())))",
            "()",
            "(a (b (c)) . d)",
        ] {
            let d = parse_one(src).unwrap();
            let printed = d.to_string();
            let d2 = parse_one(&printed).unwrap();
            assert_eq!(d, d2, "roundtrip failed for {src} -> {printed}");
        }
    }

    #[test]
    fn display_is_human() {
        assert_eq!(display_datum(&Datum::Char('x')), "x");
        assert_eq!(display_datum(&Datum::String("a\"b".into())), "a\"b");
        assert_eq!(display_datum(&parse_one("(1 \"s\")").unwrap()), "(1 s)");
    }

    #[test]
    fn named_chars_write_readably() {
        assert_eq!(Datum::Char(' ').to_string(), "#\\space");
        assert_eq!(Datum::Char('\n').to_string(), "#\\newline");
        assert_eq!(parse_one("#\\space").unwrap(), Datum::Char(' '));
    }
}
