//! Reader errors and source spans.

use std::fmt;

/// A half-open byte range into the source text, with 1-based line/column of
/// the start for human-readable messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column of `start`.
    pub col: u32,
}

impl Span {
    /// Creates a span covering `start..end` at the given line/column.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Span {
        Span {
            start,
            end,
            line,
            col,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// What went wrong while reading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended inside a datum (unclosed list, string, or block comment).
    UnexpectedEof,
    /// A `)` with no matching `(`.
    UnbalancedClose,
    /// A `.` in an illegal position.
    MisplacedDot,
    /// An unknown `#...` syntax.
    BadHashSyntax(String),
    /// A malformed character literal.
    BadCharLiteral(String),
    /// A malformed string escape.
    BadStringEscape(char),
    /// An integer literal out of fixnum range.
    FixnumOverflow(String),
    /// Any other lexical problem.
    BadToken(String),
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            ParseErrorKind::UnbalancedClose => write!(f, "unbalanced `)`"),
            ParseErrorKind::MisplacedDot => write!(f, "misplaced `.`"),
            ParseErrorKind::BadHashSyntax(s) => write!(f, "unknown `#` syntax `{s}`"),
            ParseErrorKind::BadCharLiteral(s) => write!(f, "bad character literal `{s}`"),
            ParseErrorKind::BadStringEscape(c) => write!(f, "bad string escape `\\{c}`"),
            ParseErrorKind::FixnumOverflow(s) => {
                write!(f, "integer literal `{s}` exceeds fixnum range")
            }
            ParseErrorKind::BadToken(s) => write!(f, "bad token `{s}`"),
        }
    }
}

/// A reader error with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The failure category.
    pub kind: ParseErrorKind,
    /// Where in the source it happened.
    pub span: Span,
}

impl ParseError {
    /// Creates an error of `kind` at `span`.
    pub fn new(kind: ParseErrorKind, span: Span) -> ParseError {
        ParseError { kind, span }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.kind)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = ParseError::new(ParseErrorKind::UnbalancedClose, Span::new(3, 4, 2, 1));
        assert_eq!(e.to_string(), "parse error at 2:1: unbalanced `)`");
    }
}
