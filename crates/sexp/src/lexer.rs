//! Tokenizer for Scheme source text.

use crate::error::{ParseError, ParseErrorKind, Span};

/// The kinds of token the reader distinguishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// `(` or `[`.
    LParen,
    /// `)` or `]`.
    RParen,
    /// `#(` opening a vector literal.
    VecOpen,
    /// `'`.
    Quote,
    /// `` ` ``.
    Quasiquote,
    /// `,`.
    Unquote,
    /// `,@`.
    UnquoteSplicing,
    /// `.` used in dotted pairs.
    Dot,
    /// `#;` datum comment prefix.
    DatumComment,
    /// An integer literal.
    Fixnum(i64),
    /// `#t` / `#f`.
    Bool(bool),
    /// A character literal.
    Char(char),
    /// A string literal (already unescaped).
    Str(String),
    /// An identifier.
    Symbol(String),
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token payload.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

/// A streaming tokenizer over source text.
///
/// # Example
///
/// ```
/// use sxr_sexp::{Lexer, TokenKind};
/// let mut lx = Lexer::new("(+ 1)");
/// assert_eq!(lx.next_token().unwrap().unwrap().kind, TokenKind::LParen);
/// assert_eq!(lx.next_token().unwrap().unwrap().kind, TokenKind::Symbol("+".into()));
/// ```
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

/// True for characters that terminate an atom.
fn is_delimiter(c: char) -> bool {
    c.is_whitespace() || matches!(c, '(' | ')' | '[' | ']' | '"' | ';' | '\'' | '`' | ',')
}

/// True for characters allowed in symbols. Scheme is permissive; we accept
/// anything that is not a delimiter or `#` at the start.
fn is_symbol_char(c: char) -> bool {
    !is_delimiter(c)
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn span_from(&self, start: usize, line: u32, col: u32) -> Span {
        Span::new(start, self.pos, line, col)
    }

    fn here(&self) -> Span {
        Span::new(self.pos, self.pos, self.line, self.col)
    }

    /// Skips whitespace, line comments, and nested block comments.
    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some(';') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('#') if self.peek2() == Some('|') => {
                    let start = self.here();
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('#'), Some('|')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some('|'), Some('#')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(ParseError::new(ParseErrorKind::UnexpectedEof, start));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Returns the next token, or `None` at end of input.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed lexical syntax.
    pub fn next_token(&mut self) -> Result<Option<Token>, ParseError> {
        self.skip_trivia()?;
        let (start, line, col) = (self.pos, self.line, self.col);
        let c = match self.peek() {
            Some(c) => c,
            None => return Ok(None),
        };
        let kind = match c {
            '(' | '[' => {
                self.bump();
                TokenKind::LParen
            }
            ')' | ']' => {
                self.bump();
                TokenKind::RParen
            }
            '\'' => {
                self.bump();
                TokenKind::Quote
            }
            '`' => {
                self.bump();
                TokenKind::Quasiquote
            }
            ',' => {
                self.bump();
                if self.peek() == Some('@') {
                    self.bump();
                    TokenKind::UnquoteSplicing
                } else {
                    TokenKind::Unquote
                }
            }
            '"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        None => {
                            return Err(ParseError::new(
                                ParseErrorKind::UnexpectedEof,
                                self.span_from(start, line, col),
                            ))
                        }
                        Some('"') => break,
                        Some('\\') => {
                            let esc = self.bump().ok_or_else(|| {
                                ParseError::new(
                                    ParseErrorKind::UnexpectedEof,
                                    self.span_from(start, line, col),
                                )
                            })?;
                            match esc {
                                'n' => s.push('\n'),
                                't' => s.push('\t'),
                                'r' => s.push('\r'),
                                '0' => s.push('\0'),
                                '\\' => s.push('\\'),
                                '"' => s.push('"'),
                                other => {
                                    return Err(ParseError::new(
                                        ParseErrorKind::BadStringEscape(other),
                                        self.span_from(start, line, col),
                                    ))
                                }
                            }
                        }
                        Some(other) => s.push(other),
                    }
                }
                TokenKind::Str(s)
            }
            '#' => {
                self.bump();
                match self.peek() {
                    Some('(') => {
                        self.bump();
                        TokenKind::VecOpen
                    }
                    Some(';') => {
                        self.bump();
                        TokenKind::DatumComment
                    }
                    Some('t') | Some('f') => {
                        let b = self.bump() == Some('t');
                        // Reject things like `#true-ish` being read as #t.
                        if self.peek().map(is_symbol_char).unwrap_or(false) {
                            let rest = self.read_symbol_text();
                            return Err(ParseError::new(
                                ParseErrorKind::BadHashSyntax(format!(
                                    "#{}{rest}",
                                    if b { 't' } else { 'f' }
                                )),
                                self.span_from(start, line, col),
                            ));
                        }
                        TokenKind::Bool(b)
                    }
                    Some('\\') => {
                        self.bump();
                        // A character literal: a single char, or a named char.
                        let first = self.bump().ok_or_else(|| {
                            ParseError::new(
                                ParseErrorKind::UnexpectedEof,
                                self.span_from(start, line, col),
                            )
                        })?;
                        let mut name = String::new();
                        name.push(first);
                        if first.is_alphabetic() {
                            while let Some(c) = self.peek() {
                                if is_symbol_char(c) {
                                    name.push(c);
                                    self.bump();
                                } else {
                                    break;
                                }
                            }
                        }
                        let ch = if name.chars().count() == 1 {
                            name.chars().next().expect("one char")
                        } else {
                            match name.as_str() {
                                "space" => ' ',
                                "newline" => '\n',
                                "tab" => '\t',
                                "return" => '\r',
                                "nul" | "null" => '\0',
                                _ => {
                                    return Err(ParseError::new(
                                        ParseErrorKind::BadCharLiteral(name),
                                        self.span_from(start, line, col),
                                    ))
                                }
                            }
                        };
                        TokenKind::Char(ch)
                    }
                    other => {
                        let s = other.map(|c| c.to_string()).unwrap_or_default();
                        return Err(ParseError::new(
                            ParseErrorKind::BadHashSyntax(format!("#{s}")),
                            self.span_from(start, line, col),
                        ));
                    }
                }
            }
            _ => {
                let text = self.read_symbol_text();
                debug_assert!(!text.is_empty(), "symbol text cannot be empty here");
                if text == "." {
                    TokenKind::Dot
                } else if let Some(k) = parse_number(&text) {
                    k.map_err(|k| ParseError::new(k, self.span_from(start, line, col)))?
                } else {
                    TokenKind::Symbol(text)
                }
            }
        };
        Ok(Some(Token {
            kind,
            span: self.span_from(start, line, col),
        }))
    }

    fn read_symbol_text(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if is_symbol_char(c) {
                self.bump();
            } else {
                break;
            }
        }
        self.src[start..self.pos].to_string()
    }

    /// Byte length of the underlying source (used by tools to report progress).
    pub fn source_len(&self) -> usize {
        self.bytes.len()
    }
}

/// Attempts to read `text` as an integer literal. Returns `None` if it is not
/// number-shaped (so it becomes a symbol), `Some(Err)` on fixnum overflow.
fn parse_number(text: &str) -> Option<Result<TokenKind, ParseErrorKind>> {
    let body = text.strip_prefix(['-', '+']).unwrap_or(text);
    if body.is_empty() || !body.chars().all(|c| c.is_ascii_digit()) {
        return None;
    }
    match text.parse::<i64>() {
        Ok(n) => Some(Ok(TokenKind::Fixnum(n))),
        Err(_) => Some(Err(ParseErrorKind::FixnumOverflow(text.to_string()))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let mut lx = Lexer::new(src);
        let mut out = Vec::new();
        while let Some(t) = lx.next_token().unwrap() {
            out.push(t.kind);
        }
        out
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("(foo 12 -3 #t #f)"),
            vec![
                TokenKind::LParen,
                TokenKind::Symbol("foo".into()),
                TokenKind::Fixnum(12),
                TokenKind::Fixnum(-3),
                TokenKind::Bool(true),
                TokenKind::Bool(false),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn quote_family() {
        assert_eq!(
            kinds("'a `b ,c ,@d"),
            vec![
                TokenKind::Quote,
                TokenKind::Symbol("a".into()),
                TokenKind::Quasiquote,
                TokenKind::Symbol("b".into()),
                TokenKind::Unquote,
                TokenKind::Symbol("c".into()),
                TokenKind::UnquoteSplicing,
                TokenKind::Symbol("d".into()),
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            kinds(r#""a\nb\"c""#),
            vec![TokenKind::Str("a\nb\"c".into())]
        );
    }

    #[test]
    fn bad_escape_is_error() {
        let mut lx = Lexer::new(r#""\q""#);
        let err = lx.next_token().unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::BadStringEscape('q'));
    }

    #[test]
    fn char_literals() {
        assert_eq!(
            kinds(r"#\a #\space #\newline #\( #\1"),
            vec![
                TokenKind::Char('a'),
                TokenKind::Char(' '),
                TokenKind::Char('\n'),
                TokenKind::Char('('),
                TokenKind::Char('1'),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("; hi\n 1 #| nested #| deep |# |# 2"),
            vec![TokenKind::Fixnum(1), TokenKind::Fixnum(2)]
        );
    }

    #[test]
    fn datum_comment_token() {
        assert_eq!(
            kinds("#;(a b) 5"),
            vec![
                TokenKind::DatumComment,
                TokenKind::LParen,
                TokenKind::Symbol("a".into()),
                TokenKind::Symbol("b".into()),
                TokenKind::RParen,
                TokenKind::Fixnum(5)
            ]
        );
    }

    #[test]
    fn symbols_with_special_chars() {
        assert_eq!(
            kinds("%word+ set-box! ->fx a.b"),
            vec![
                TokenKind::Symbol("%word+".into()),
                TokenKind::Symbol("set-box!".into()),
                TokenKind::Symbol("->fx".into()),
                TokenKind::Symbol("a.b".into()),
            ]
        );
    }

    #[test]
    fn plus_minus_are_symbols() {
        assert_eq!(
            kinds("+ - -a"),
            vec![
                TokenKind::Symbol("+".into()),
                TokenKind::Symbol("-".into()),
                TokenKind::Symbol("-a".into())
            ]
        );
    }

    #[test]
    fn dot_token() {
        assert_eq!(
            kinds("(a . b)"),
            vec![
                TokenKind::LParen,
                TokenKind::Symbol("a".into()),
                TokenKind::Dot,
                TokenKind::Symbol("b".into()),
                TokenKind::RParen
            ]
        );
    }

    #[test]
    fn fixnum_overflow_reported() {
        let mut lx = Lexer::new("99999999999999999999999");
        let err = lx.next_token().unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::FixnumOverflow(_)));
    }

    #[test]
    fn line_col_tracking() {
        let mut lx = Lexer::new("a\n  bb");
        let t1 = lx.next_token().unwrap().unwrap();
        assert_eq!((t1.span.line, t1.span.col), (1, 1));
        let t2 = lx.next_token().unwrap().unwrap();
        assert_eq!((t2.span.line, t2.span.col), (2, 3));
    }

    #[test]
    fn brackets_as_parens() {
        assert_eq!(
            kinds("[a]"),
            vec![
                TokenKind::LParen,
                TokenKind::Symbol("a".into()),
                TokenKind::RParen
            ]
        );
    }

    #[test]
    fn unterminated_string() {
        let mut lx = Lexer::new("\"abc");
        assert!(matches!(
            lx.next_token().unwrap_err().kind,
            ParseErrorKind::UnexpectedEof
        ));
    }

    #[test]
    fn unterminated_block_comment() {
        let mut lx = Lexer::new("#| abc");
        assert!(matches!(
            lx.next_token().unwrap_err().kind,
            ParseErrorKind::UnexpectedEof
        ));
    }

    #[test]
    fn hash_true_with_suffix_is_error() {
        let mut lx = Lexer::new("#true");
        assert!(matches!(
            lx.next_token().unwrap_err().kind,
            ParseErrorKind::BadHashSyntax(_)
        ));
    }
}
