//! Datum parser built on top of the [`Lexer`].

use crate::datum::Datum;
use crate::error::{ParseError, ParseErrorKind, Span};
use crate::lexer::{Lexer, Token, TokenKind};

/// A pull parser producing [`Datum`] values from source text.
///
/// # Example
///
/// ```
/// use sxr_sexp::Parser;
/// let mut p = Parser::new("1 (2 . 3) #(4)");
/// assert_eq!(p.next_datum().unwrap().unwrap().to_string(), "1");
/// assert_eq!(p.next_datum().unwrap().unwrap().to_string(), "(2 . 3)");
/// assert_eq!(p.next_datum().unwrap().unwrap().to_string(), "#(4)");
/// assert!(p.next_datum().unwrap().is_none());
/// ```
#[derive(Debug)]
pub struct Parser<'a> {
    lexer: Lexer<'a>,
    lookahead: Option<Token>,
    last_span: Span,
}

impl<'a> Parser<'a> {
    /// Creates a parser over `src`.
    pub fn new(src: &'a str) -> Parser<'a> {
        Parser {
            lexer: Lexer::new(src),
            lookahead: None,
            last_span: Span::default(),
        }
    }

    fn next_tok(&mut self) -> Result<Option<Token>, ParseError> {
        let tok = match self.lookahead.take() {
            Some(t) => Some(t),
            None => self.lexer.next_token()?,
        };
        if let Some(t) = &tok {
            self.last_span = t.span;
        }
        Ok(tok)
    }

    fn put_back(&mut self, t: Token) {
        debug_assert!(self.lookahead.is_none(), "single-token lookahead");
        self.lookahead = Some(t);
    }

    /// Reads the next datum, or `None` at end of input.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed input.
    pub fn next_datum(&mut self) -> Result<Option<Datum>, ParseError> {
        Ok(self.next_datum_spanned()?.map(|(d, _)| d))
    }

    /// Reads the next datum together with its source span, or `None` at end
    /// of input.  The span covers the whole datum (open paren through close
    /// paren for lists), not counting any preceding datum comments.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed input.
    pub fn next_datum_spanned(&mut self) -> Result<Option<(Datum, Span)>, ParseError> {
        loop {
            let tok = match self.next_tok()? {
                Some(t) => t,
                None => return Ok(None),
            };
            match tok.kind {
                TokenKind::DatumComment => {
                    // Read and discard one datum.
                    let span = tok.span;
                    match self.next_datum()? {
                        Some(_) => continue,
                        None => return Err(ParseError::new(ParseErrorKind::UnexpectedEof, span)),
                    }
                }
                _ => {
                    let start = tok.span;
                    let d = self.datum_from(tok)?;
                    let span = Span::new(start.start, self.last_span.end, start.line, start.col);
                    return Ok(Some((d, span)));
                }
            }
        }
    }

    fn expect_datum(&mut self, at: Span) -> Result<Datum, ParseError> {
        match self.next_datum()? {
            Some(d) => Ok(d),
            None => Err(ParseError::new(ParseErrorKind::UnexpectedEof, at)),
        }
    }

    fn datum_from(&mut self, tok: Token) -> Result<Datum, ParseError> {
        match tok.kind {
            TokenKind::Fixnum(n) => Ok(Datum::Fixnum(n)),
            TokenKind::Bool(b) => Ok(Datum::Bool(b)),
            TokenKind::Char(c) => Ok(Datum::Char(c)),
            TokenKind::Str(s) => Ok(Datum::String(s)),
            TokenKind::Symbol(s) => Ok(Datum::Symbol(s)),
            TokenKind::Quote => {
                let d = self.expect_datum(tok.span)?;
                Ok(Datum::quoted(d))
            }
            TokenKind::Quasiquote => {
                let d = self.expect_datum(tok.span)?;
                Ok(Datum::form("quasiquote", vec![d]))
            }
            TokenKind::Unquote => {
                let d = self.expect_datum(tok.span)?;
                Ok(Datum::form("unquote", vec![d]))
            }
            TokenKind::UnquoteSplicing => {
                let d = self.expect_datum(tok.span)?;
                Ok(Datum::form("unquote-splicing", vec![d]))
            }
            TokenKind::LParen => self.finish_list(tok.span),
            TokenKind::VecOpen => self.finish_vector(tok.span),
            TokenKind::RParen => Err(ParseError::new(ParseErrorKind::UnbalancedClose, tok.span)),
            TokenKind::Dot => Err(ParseError::new(ParseErrorKind::MisplacedDot, tok.span)),
            TokenKind::DatumComment => unreachable!("handled by next_datum"),
        }
    }

    fn finish_list(&mut self, open: Span) -> Result<Datum, ParseError> {
        let mut items = Vec::new();
        loop {
            let tok = match self.next_tok()? {
                Some(t) => t,
                None => return Err(ParseError::new(ParseErrorKind::UnexpectedEof, open)),
            };
            match tok.kind {
                TokenKind::RParen => return Ok(Datum::List(items)),
                TokenKind::Dot => {
                    if items.is_empty() {
                        return Err(ParseError::new(ParseErrorKind::MisplacedDot, tok.span));
                    }
                    let tail = self.expect_datum(tok.span)?;
                    let close = match self.next_tok()? {
                        Some(t) => t,
                        None => return Err(ParseError::new(ParseErrorKind::UnexpectedEof, open)),
                    };
                    if close.kind != TokenKind::RParen {
                        return Err(ParseError::new(ParseErrorKind::MisplacedDot, close.span));
                    }
                    // Normalize (a . (b c)) to (a b c), and (a . (b . c)) to (a b . c).
                    return Ok(match tail {
                        Datum::List(rest) => {
                            items.extend(rest);
                            Datum::List(items)
                        }
                        Datum::Improper(mid, t) => {
                            items.extend(mid);
                            Datum::Improper(items, t)
                        }
                        atom => Datum::Improper(items, Box::new(atom)),
                    });
                }
                TokenKind::DatumComment => {
                    self.expect_datum(tok.span)?;
                }
                _ => {
                    self.put_back(tok);
                    let at = open;
                    items.push(self.expect_datum(at)?);
                }
            }
        }
    }

    fn finish_vector(&mut self, open: Span) -> Result<Datum, ParseError> {
        let mut items = Vec::new();
        loop {
            let tok = match self.next_tok()? {
                Some(t) => t,
                None => return Err(ParseError::new(ParseErrorKind::UnexpectedEof, open)),
            };
            match tok.kind {
                TokenKind::RParen => return Ok(Datum::Vector(items)),
                TokenKind::Dot => {
                    return Err(ParseError::new(ParseErrorKind::MisplacedDot, tok.span))
                }
                TokenKind::DatumComment => {
                    self.expect_datum(tok.span)?;
                }
                _ => {
                    self.put_back(tok);
                    items.push(self.expect_datum(open)?);
                }
            }
        }
    }
}

/// Parses every datum in `src`.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
///
/// # Example
///
/// ```
/// let all = sxr_sexp::parse_all("(a) (b)").unwrap();
/// assert_eq!(all.len(), 2);
/// ```
pub fn parse_all(src: &str) -> Result<Vec<Datum>, ParseError> {
    let mut p = Parser::new(src);
    let mut out = Vec::new();
    while let Some(d) = p.next_datum()? {
        out.push(d);
    }
    Ok(out)
}

/// Parses every datum in `src`, pairing each with its source span (used by
/// tools that report file/line diagnostics, e.g. `sxr lint`).
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
///
/// # Example
///
/// ```
/// let all = sxr_sexp::parse_all_spanned("(a)\n(b c)").unwrap();
/// assert_eq!(all.len(), 2);
/// assert_eq!(all[1].1.line, 2);
/// ```
pub fn parse_all_spanned(src: &str) -> Result<Vec<(Datum, Span)>, ParseError> {
    let mut p = Parser::new(src);
    let mut out = Vec::new();
    while let Some(pair) = p.next_datum_spanned()? {
        out.push(pair);
    }
    Ok(out)
}

/// Parses exactly one datum; trailing data is an error.
///
/// # Errors
///
/// Returns a [`ParseError`] if `src` is empty, malformed, or contains more
/// than one datum.
pub fn parse_one(src: &str) -> Result<Datum, ParseError> {
    let mut p = Parser::new(src);
    let first = p
        .next_datum()?
        .ok_or_else(|| ParseError::new(ParseErrorKind::UnexpectedEof, Span::default()))?;
    if p.next_datum()?.is_some() {
        return Err(ParseError::new(
            ParseErrorKind::BadToken("trailing data after datum".to_string()),
            Span::default(),
        ));
    }
    Ok(first)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: &str) -> Datum {
        parse_one(src).unwrap()
    }

    #[test]
    fn atoms() {
        assert_eq!(p("42"), Datum::Fixnum(42));
        assert_eq!(p("#t"), Datum::Bool(true));
        assert_eq!(p("#\\x"), Datum::Char('x'));
        assert_eq!(p("\"hi\""), Datum::String("hi".into()));
        assert_eq!(p("foo"), Datum::Symbol("foo".into()));
    }

    #[test]
    fn lists() {
        assert_eq!(p("()"), Datum::nil());
        assert_eq!(
            p("(1 2 3)"),
            Datum::List(vec![1.into(), 2.into(), 3.into()])
        );
        assert_eq!(
            p("(1 (2) 3)"),
            Datum::List(vec![1.into(), Datum::List(vec![2.into()]), 3.into()])
        );
    }

    #[test]
    fn dotted() {
        assert_eq!(
            p("(1 . 2)"),
            Datum::Improper(vec![1.into()], Box::new(2.into()))
        );
        // (1 . (2 3)) normalizes to a proper list.
        assert_eq!(p("(1 . (2 3))"), p("(1 2 3)"));
        // (1 . (2 . 3)) normalizes to (1 2 . 3).
        assert_eq!(
            p("(1 . (2 . 3))"),
            Datum::Improper(vec![1.into(), 2.into()], Box::new(3.into()))
        );
    }

    #[test]
    fn vectors() {
        assert_eq!(p("#(1 2)"), Datum::Vector(vec![1.into(), 2.into()]));
        assert_eq!(p("#()"), Datum::Vector(vec![]));
    }

    #[test]
    fn quote_sugar() {
        assert_eq!(p("'x"), Datum::quoted("x".into()));
        assert_eq!(
            p("`(a ,b ,@c)").to_string(),
            "(quasiquote (a (unquote b) (unquote-splicing c)))"
        );
    }

    #[test]
    fn datum_comment_everywhere() {
        assert_eq!(p("(1 #;(skip me) 2)"), p("(1 2)"));
        assert_eq!(parse_all("#;1 2").unwrap(), vec![Datum::Fixnum(2)]);
        assert_eq!(p("#(1 #;2 3)"), p("#(1 3)"));
    }

    #[test]
    fn errors() {
        assert!(parse_one("(").is_err());
        assert!(parse_one(")").is_err());
        assert!(parse_one("(. 2)").is_err());
        assert!(parse_one("(1 . 2 3)").is_err());
        assert!(parse_one("#(1 . 2)").is_err());
        assert!(parse_one("").is_err());
        assert!(parse_one("1 2").is_err());
        assert!(parse_one("'").is_err());
    }

    #[test]
    fn parse_all_streams() {
        let all = parse_all("1 (a) \"s\"").unwrap();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn spans_cover_whole_datum() {
        let src = "(define (f x)\n  (car x))\n42";
        let all = parse_all_spanned(src).unwrap();
        assert_eq!(all.len(), 2);
        let (_, s0) = &all[0];
        assert_eq!(s0.start, 0);
        assert_eq!(s0.end, src.find("\n42").unwrap());
        assert_eq!((s0.line, s0.col), (1, 1));
        let (d1, s1) = &all[1];
        assert_eq!(d1, &Datum::Fixnum(42));
        assert_eq!(s1.line, 3);
        assert_eq!(&src[s1.start..s1.end], "42");
    }

    #[test]
    fn spans_skip_datum_comments() {
        let all = parse_all_spanned("#;(dead) live").unwrap();
        assert_eq!(all.len(), 1);
        let (d, s) = &all[0];
        assert_eq!(d, &Datum::Symbol("live".into()));
        assert_eq!(s.start, 9);
    }

    #[test]
    fn deep_nesting() {
        let mut src = String::new();
        let depth = 200;
        for _ in 0..depth {
            src.push('(');
        }
        src.push('x');
        for _ in 0..depth {
            src.push(')');
        }
        let mut d = p(&src);
        for _ in 0..depth {
            match d {
                Datum::List(mut items) => {
                    assert_eq!(items.len(), 1);
                    d = items.pop().expect("one item");
                }
                _ => panic!("expected list"),
            }
        }
        assert_eq!(d, Datum::Symbol("x".into()));
    }
}
