//! The external representation of Scheme data: the [`Datum`] tree.

use std::fmt;

/// A parsed S-expression.
///
/// `Datum` is a *syntactic* value: it is what the reader produces and what
/// `quote` forms denote.  Runtime values live in the VM and have
/// library-defined representations; `Datum` deliberately stays a plain Rust
/// tree so that the front end can pattern-match on it.
///
/// Proper lists are kept as `List(Vec<Datum>)` rather than nested pairs; this
/// makes the macro expander's job (matching special forms) direct.  Dotted
/// pairs use [`Datum::Improper`].
///
/// # Example
///
/// ```
/// use sxr_sexp::Datum;
/// let d = Datum::List(vec![Datum::Symbol("+".into()), Datum::Fixnum(1), Datum::Fixnum(2)]);
/// assert_eq!(d.to_string(), "(+ 1 2)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Datum {
    /// An identifier, e.g. `car` or `%word+`.
    Symbol(String),
    /// An exact integer literal. Only fixnums are supported by the system.
    Fixnum(i64),
    /// `#t` or `#f`.
    Bool(bool),
    /// A character literal, e.g. `#\a`, `#\space`.
    Char(char),
    /// A string literal.
    String(String),
    /// A proper list `(a b c)`; `()` is the empty list.
    List(Vec<Datum>),
    /// An improper (dotted) list `(a b . c)`. The vector is non-empty and the
    /// tail is never itself a list (the parser normalizes).
    Improper(Vec<Datum>, Box<Datum>),
    /// A vector literal `#(a b c)`.
    Vector(Vec<Datum>),
}

impl Datum {
    /// The canonical empty list `()`.
    pub fn nil() -> Datum {
        Datum::List(Vec::new())
    }

    /// Returns the symbol name if this datum is a symbol.
    pub fn as_symbol(&self) -> Option<&str> {
        match self {
            Datum::Symbol(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the list elements if this datum is a proper list.
    pub fn as_list(&self) -> Option<&[Datum]> {
        match self {
            Datum::List(items) => Some(items),
            _ => None,
        }
    }

    /// True if this is the empty list.
    pub fn is_nil(&self) -> bool {
        matches!(self, Datum::List(items) if items.is_empty())
    }

    /// True if this datum is a proper list whose head is the given symbol.
    ///
    /// This is the shape test used throughout the macro expander:
    /// `d.is_form("define")` recognizes `(define ...)`.
    pub fn is_form(&self, head: &str) -> bool {
        match self {
            Datum::List(items) => items.first().and_then(Datum::as_symbol) == Some(head),
            _ => false,
        }
    }

    /// Builds a proper list datum from a head symbol and arguments.
    pub fn form(head: &str, mut args: Vec<Datum>) -> Datum {
        let mut items = Vec::with_capacity(args.len() + 1);
        items.push(Datum::Symbol(head.to_string()));
        items.append(&mut args);
        Datum::List(items)
    }

    /// Builds `(quote d)`.
    pub fn quoted(d: Datum) -> Datum {
        Datum::form("quote", vec![d])
    }

    /// Number of immediate sub-data (for size heuristics in tests/tools).
    pub fn len(&self) -> usize {
        match self {
            Datum::List(items) | Datum::Vector(items) => items.len(),
            Datum::Improper(items, _) => items.len() + 1,
            _ => 0,
        }
    }

    /// True for atoms and the empty list/vector.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for Datum {
    /// Formats with `write` (machine-readable) conventions.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::printer::fmt_datum(self, f, true)
    }
}

impl From<i64> for Datum {
    fn from(n: i64) -> Datum {
        Datum::Fixnum(n)
    }
}

impl From<bool> for Datum {
    fn from(b: bool) -> Datum {
        Datum::Bool(b)
    }
}

impl From<&str> for Datum {
    /// Symbols are the most common datum built from literals in the front
    /// end, so `From<&str>` produces a symbol (not a string literal).
    fn from(s: &str) -> Datum {
        Datum::Symbol(s.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nil_is_empty_list() {
        assert!(Datum::nil().is_nil());
        assert_eq!(Datum::nil(), Datum::List(vec![]));
    }

    #[test]
    fn form_recognition() {
        let d = Datum::form("define", vec![Datum::from("x"), Datum::Fixnum(1)]);
        assert!(d.is_form("define"));
        assert!(!d.is_form("lambda"));
        assert!(!Datum::Fixnum(3).is_form("define"));
        assert!(!Datum::nil().is_form("define"));
    }

    #[test]
    fn as_accessors() {
        assert_eq!(Datum::from("abc").as_symbol(), Some("abc"));
        assert_eq!(Datum::Fixnum(1).as_symbol(), None);
        assert_eq!(Datum::nil().as_list(), Some(&[][..]));
        assert_eq!(Datum::Bool(true).as_list(), None);
    }

    #[test]
    fn quoted_wraps() {
        let q = Datum::quoted(Datum::Fixnum(42));
        assert!(q.is_form("quote"));
        assert_eq!(q.len(), 2);
    }
}
