//! The rep-safety abstract interpreter.
//!
//! A forward, intraprocedural dataflow analysis over ANF.  Each variable
//! gets an [`AbsVal`]; unknown inputs (parameters, call results, closure
//! slots) are `Top`, so every reported contradiction holds on *all*
//! executions — the analyzer never guesses.
//!
//! Precision comes from three sources:
//!
//! * **literal seeding** — quoted data and `%rep-inject`/`%rep-alloc`
//!   results carry the representation the registry's roles assign them;
//! * **allocation sizes** — `%rep-alloc`/`%spec-alloc` with a constant
//!   count produce values with a known field count, enabling the
//!   constant-index bounds check;
//! * **test refinement** — on the arms of `(if (%rep-test rt x) … …)` the
//!   analyzer narrows `x`'s tag set, including through the common
//!   `%rep-inject boolean` wrapping the library puts around raw test
//!   results (sound because `#f` is the boolean encoding of payload 0).

use crate::diag::{DiagClass, Diagnostic};
use crate::lattice::{AbsVal, TagSet};
use std::collections::HashMap;
use sxr_ir::anf::{Atom, Bound, Expr, GlobalId, Literal, Module, Test, VarId};
use sxr_ir::prim::PrimOp;
use sxr_ir::rep::{roles, RepId, RepRegistry};
use sxr_sexp::Datum;

/// Runs the analyzer over every function of a closure-converted module.
///
/// `rep_globals` maps global slots holding compile-time-known
/// representation types to their ids (the representation scan's output);
/// it seeds `GlobalGet`s of those slots.
pub fn analyze_module(
    m: &Module,
    registry: &RepRegistry,
    rep_globals: &HashMap<GlobalId, RepId>,
) -> Vec<Diagnostic> {
    let mut a = Analyzer {
        registry,
        rep_globals,
        diags: Vec::new(),
        fun: 0,
        fun_name: None,
    };
    for (i, f) in m.funs.iter().enumerate() {
        a.fun = i as u32;
        a.fun_name = f.name.clone();
        let mut env = Env::default();
        if let Some(c) = registry.role(roles::CLOSURE) {
            env.vals.insert(f.self_var, AbsVal::of_rep(c));
        }
        a.eval_expr(&f.body, &mut env);
    }
    a.diags
}

/// Per-variable analysis state. Variable ids are globally unique (single
/// assignment), so one flat map per function suffices; branch-local
/// refinements use cloned overlays.
#[derive(Default, Clone)]
struct Env {
    vals: HashMap<VarId, AbsVal>,
    /// `var -> (rep, subject, boolean?)`: the var holds the result of
    /// `%rep-test rep subject`, either raw (`boolean? == false`) or
    /// injected as a boolean (`boolean? == true`).
    facts: HashMap<VarId, Fact>,
}

#[derive(Debug, Clone, Copy)]
struct Fact {
    rep: RepId,
    subject: VarId,
    /// False: raw 1/0 (use with `NonZero`); true: boolean-injected (use
    /// with `Truthy`).
    boolean: bool,
}

struct Analyzer<'a> {
    registry: &'a RepRegistry,
    rep_globals: &'a HashMap<GlobalId, RepId>,
    diags: Vec<Diagnostic>,
    fun: u32,
    fun_name: Option<String>,
}

impl Analyzer<'_> {
    fn report(&mut self, class: DiagClass, message: String) {
        self.diags.push(Diagnostic {
            class,
            fun: self.fun,
            fun_name: self.fun_name.clone(),
            message,
        });
    }

    fn rep_name(&self, r: RepId) -> &str {
        &self.registry.info(r).name
    }

    /// The abstract value of an atom.
    fn val_of(&self, a: &Atom, env: &Env) -> AbsVal {
        match a {
            Atom::Var(v) => env.vals.get(v).copied().unwrap_or(AbsVal::Top),
            Atom::Lit(Literal::Raw(w)) => AbsVal::Raw(Some(*w)),
            Atom::Lit(Literal::Rep(r)) => AbsVal::Rep(*r),
            Atom::Lit(Literal::Unspecified) => match self.registry.role(roles::UNSPECIFIED) {
                Some(r) => AbsVal::of_rep(r),
                None => AbsVal::Top,
            },
            Atom::Lit(Literal::Datum(d)) => self.datum_val(d),
        }
    }

    /// Representation a literal datum will be encoded with, per the
    /// registry's roles, including the field count where the loader's
    /// layout fixes it.
    fn datum_val(&self, d: &Datum) -> AbsVal {
        let role = |name: &str| self.registry.role(name);
        let (rep, size) = match d {
            Datum::Fixnum(_) => (role(roles::FIXNUM), None),
            Datum::Bool(_) => (role(roles::BOOLEAN), None),
            Datum::Char(_) => (role(roles::CHAR), None),
            Datum::String(s) => (role(roles::STRING), Some(s.chars().count() as i64)),
            Datum::Symbol(_) => (role(roles::SYMBOL), None),
            Datum::List(items) if items.is_empty() => (role(roles::NULL), None),
            Datum::List(_) | Datum::Improper(..) => (role(roles::PAIR), Some(2)),
            Datum::Vector(items) => (role(roles::VECTOR), Some(items.len() as i64)),
        };
        match rep {
            Some(r) => AbsVal::Tagged {
                tags: TagSet::singleton(r),
                size,
            },
            None => AbsVal::Top,
        }
    }

    /// The rep id an atom denotes, when compile-time known.
    fn rep_of(&self, a: &Atom, env: &Env) -> Option<RepId> {
        match self.val_of(a, env) {
            AbsVal::Rep(r) => Some(r),
            _ => None,
        }
    }

    /// The raw constant an atom denotes, when known.
    fn const_of(&self, a: &Atom, env: &Env) -> Option<i64> {
        self.val_of(a, env).as_const()
    }

    /// Checks the subject of a memory operation (field access, length,
    /// header read) performed through pointer rep `r`.
    fn check_mem_subject(&mut self, op: PrimOp, r: RepId, subject: &AbsVal) {
        match subject {
            AbsVal::Raw(_) => self.report(
                DiagClass::RawMemOnImmediate,
                format!("`{op}` on a raw untagged word — not a tagged pointer"),
            ),
            AbsVal::Tagged { tags, .. } => {
                if tags.all_immediate(self.registry) {
                    self.report(
                        DiagClass::RawMemOnImmediate,
                        format!(
                            "`{op}` on an immediate value of representation {} — not a heap object",
                            tags.describe(self.registry)
                        ),
                    );
                } else if !tags.contains(r) {
                    self.report(
                        DiagClass::DisjointRep,
                        format!(
                            "`{op}` through `{}` on a value of representation {}",
                            self.rep_name(r),
                            tags.describe(self.registry)
                        ),
                    );
                }
            }
            AbsVal::Rep(_) | AbsVal::Top => {}
        }
    }

    /// Checks a constant field index against a known allocation size.
    fn check_index(&mut self, op: PrimOp, r: RepId, subject: &AbsVal, index: Option<i64>) {
        let (Some(k), AbsVal::Tagged { size: Some(n), .. }) = (index, subject) else {
            return;
        };
        if k < 0 || k >= *n {
            self.report(
                DiagClass::IndexOutOfBounds,
                format!(
                    "`{op}` field index {k} out of bounds for `{}` object of {n} fields",
                    self.rep_name(r)
                ),
            );
        }
    }

    /// Abstract transfer for one binding; also emits diagnostics.
    fn eval_bound(&mut self, v: VarId, b: &Bound, env: &mut Env) -> AbsVal {
        match b {
            Bound::Atom(a) => {
                if let Atom::Var(src) = a {
                    if let Some(f) = env.facts.get(src).copied() {
                        env.facts.insert(v, f);
                    }
                }
                self.val_of(a, env)
            }
            Bound::Prim(op, args) => self.eval_prim(v, *op, args, env),
            Bound::GlobalGet(g) => match self.rep_globals.get(g) {
                Some(&r) => AbsVal::Rep(r),
                None => AbsVal::Top,
            },
            Bound::GlobalSet(..) => match self.registry.role(roles::UNSPECIFIED) {
                Some(r) => AbsVal::of_rep(r),
                None => AbsVal::Top,
            },
            Bound::MakeClosure(..) | Bound::Lambda(_) => {
                if let Bound::Lambda(l) = b {
                    // Pre-cc input: analyze the nested body. Free variables
                    // keep their values (single assignment makes this
                    // sound).
                    let mut inner = env.clone();
                    self.eval_expr(&l.body, &mut inner);
                }
                match self.registry.role(roles::CLOSURE) {
                    Some(r) => AbsVal::of_rep(r),
                    None => AbsVal::Top,
                }
            }
            Bound::Call(..) | Bound::CallKnown(..) | Bound::ClosureRef(_) => AbsVal::Top,
            Bound::ClosurePatch(..) => AbsVal::Top,
            Bound::If(t, then, els) => {
                let (tenv, eenv) = self.refine(env, t);
                let a = tenv.and_then(|mut e2| self.eval_expr(then, &mut e2));
                let b2 = eenv.and_then(|mut e2| self.eval_expr(els, &mut e2));
                match (a, b2) {
                    (Some(x), Some(y)) => x.join(&y),
                    (Some(x), None) | (None, Some(x)) => x,
                    (None, None) => AbsVal::Top,
                }
            }
            Bound::Body(e) => {
                let mut inner = env.clone();
                self.eval_expr(e, &mut inner).unwrap_or(AbsVal::Top)
            }
        }
    }

    fn eval_prim(&mut self, v: VarId, op: PrimOp, args: &[Atom], env: &mut Env) -> AbsVal {
        use PrimOp::*;
        match op {
            RepInject => {
                let Some(r) = self.rep_of(&args[0], env) else {
                    return AbsVal::Top;
                };
                // Boolean injection of a raw test result preserves the
                // test's outcome under `Truthy` (false is payload 0).
                if let Atom::Var(src) = &args[1] {
                    if let Some(f) = env.facts.get(src).copied() {
                        if !f.boolean && Some(r) == self.registry.role(roles::BOOLEAN) {
                            env.facts.insert(v, Fact { boolean: true, ..f });
                        }
                    }
                }
                AbsVal::of_rep(r)
            }
            RepProject => {
                if let Some(r) = self.rep_of(&args[0], env) {
                    if let AbsVal::Tagged { tags, .. } = self.val_of(&args[1], env) {
                        if !tags.contains(r) {
                            self.report(
                                DiagClass::DisjointRep,
                                format!(
                                    "`{op}` through `{}` on a value of representation {}",
                                    self.rep_name(r),
                                    tags.describe(self.registry)
                                ),
                            );
                        }
                    }
                }
                AbsVal::Raw(None)
            }
            RepTest => {
                if let Some(r) = self.rep_of(&args[0], env) {
                    if let AbsVal::Tagged { tags, .. } = self.val_of(&args[1], env) {
                        if tags.is_exactly(r) {
                            self.report(
                                DiagClass::DeadRepTest,
                                format!("`%rep-test {}` is always true here", self.rep_name(r)),
                            );
                        } else if !tags.contains(r) {
                            self.report(
                                DiagClass::DeadRepTest,
                                format!("`%rep-test {}` is always false here", self.rep_name(r)),
                            );
                        }
                    }
                    if let Atom::Var(subject) = &args[1] {
                        env.facts.insert(
                            v,
                            Fact {
                                rep: r,
                                subject: *subject,
                                boolean: false,
                            },
                        );
                    }
                }
                AbsVal::Raw(None)
            }
            RepAlloc | RepRef | RepSet | RepLen => {
                let Some(r) = self.rep_of(&args[0], env) else {
                    return AbsVal::Top;
                };
                if !self.registry.info(r).is_pointer() {
                    self.report(
                        DiagClass::RawMemOnImmediate,
                        format!(
                            "`{op}` through immediate representation `{}` — immediates have no fields",
                            self.rep_name(r)
                        ),
                    );
                    return if op == RepLen {
                        AbsVal::Raw(None)
                    } else {
                        AbsVal::Top
                    };
                }
                match op {
                    RepAlloc => {
                        let size = self.const_of(&args[1], env);
                        AbsVal::Tagged {
                            tags: TagSet::singleton(r),
                            size,
                        }
                    }
                    RepRef | RepSet => {
                        let subject = self.val_of(&args[1], env);
                        self.check_mem_subject(op, r, &subject);
                        self.check_index(op, r, &subject, self.const_of(&args[2], env));
                        AbsVal::Top
                    }
                    RepLen => {
                        let subject = self.val_of(&args[1], env);
                        self.check_mem_subject(op, r, &subject);
                        match subject {
                            AbsVal::Tagged { size, .. } => AbsVal::Raw(size),
                            _ => AbsVal::Raw(None),
                        }
                    }
                    _ => unreachable!(),
                }
            }
            SpecHeader(r) => {
                let subject = self.val_of(&args[0], env);
                self.check_mem_subject(op, r, &subject);
                AbsVal::Raw(None)
            }
            SpecAlloc(r) => {
                if !self.registry.info(r).is_pointer() {
                    self.report(
                        DiagClass::RawMemOnImmediate,
                        format!(
                            "`{op}` allocates through immediate representation `{}`",
                            self.rep_name(r)
                        ),
                    );
                    return AbsVal::Top;
                }
                let size = self.const_of(&args[0], env);
                AbsVal::Tagged {
                    tags: TagSet::singleton(r),
                    size,
                }
            }
            SpecRef(r) | SpecSet(r) => {
                let subject = self.val_of(&args[0], env);
                self.check_mem_subject(op, r, &subject);
                // The operand is a byte offset: field `i` lives at `8 * i`.
                let index = self
                    .const_of(&args[1], env)
                    .filter(|k| k % 8 == 0)
                    .map(|k| k / 8);
                self.check_index(op, r, &subject, index);
                AbsVal::Top
            }
            Intern => match self.registry.role(roles::SYMBOL) {
                Some(r) => AbsVal::of_rep(r),
                None => AbsVal::Top,
            },
            WordAdd | WordSub | WordMul | WordQuot | WordRem | WordAnd | WordOr | WordXor
            | WordShl | WordShr | WordEq | WordLt | PtrEq => AbsVal::Raw(None),
            // Trap machinery: `%trap-call` yields whatever the thunk (or
            // the handler) returns, and `%raise` transfers control away —
            // neither result can be narrowed below Top.  The handler and
            // condition values cross an unwind, so no representation fact
            // established inside the protected extent may survive it.
            TrapCall | Raise => AbsVal::Top,
            _ => AbsVal::Top,
        }
    }

    /// Splits the environment for the two arms of a conditional, narrowing
    /// the subject of a recognized representation test. Returns `None` for
    /// an arm the test proves unreachable.
    fn refine(&self, env: &Env, t: &Test) -> (Option<Env>, Option<Env>) {
        let fact = match t {
            Test::Truthy(Atom::Var(v)) => env.facts.get(v).filter(|f| f.boolean),
            Test::NonZero(Atom::Var(v)) => env.facts.get(v).filter(|f| !f.boolean),
            _ => None,
        };
        let Some(&Fact { rep, subject, .. }) = fact else {
            return (Some(env.clone()), Some(env.clone()));
        };
        let current = env.vals.get(&subject).copied().unwrap_or(AbsVal::Top);
        let (then_val, else_val) = match current {
            AbsVal::Tagged { tags, size } => (
                tags.narrowed_to(rep)
                    .map(|t2| AbsVal::Tagged { tags: t2, size }),
                if tags.is_exactly(rep) {
                    None // the false arm is unreachable
                } else {
                    Some(AbsVal::Tagged {
                        tags: tags.without(rep),
                        size,
                    })
                },
            ),
            AbsVal::Top => (Some(AbsVal::of_rep(rep)), Some(AbsVal::Top)),
            other => (Some(other), Some(other)),
        };
        let arm = |val: Option<AbsVal>| {
            val.map(|val| {
                let mut e2 = env.clone();
                e2.vals.insert(subject, val);
                e2
            })
        };
        (arm(then_val), arm(else_val))
    }

    /// Walks an expression; the result is the join of all `Ret` values
    /// (`None` when every path tail-calls).
    fn eval_expr(&mut self, e: &Expr, env: &mut Env) -> Option<AbsVal> {
        match e {
            Expr::Let(v, b, body) => {
                let val = self.eval_bound(*v, b, env);
                env.vals.insert(*v, val);
                self.eval_expr(body, env)
            }
            Expr::If(t, then, els) => {
                let (tenv, eenv) = self.refine(env, t);
                let a = tenv.and_then(|mut e2| self.eval_expr(then, &mut e2));
                let b = eenv.and_then(|mut e2| self.eval_expr(els, &mut e2));
                match (a, b) {
                    (Some(x), Some(y)) => Some(x.join(&y)),
                    (one, other) => one.or(other),
                }
            }
            Expr::Ret(a) => Some(self.val_of(a, env)),
            Expr::TailCall(..) | Expr::TailCallKnown(..) => None,
            Expr::LetRec(binds, body) => {
                let closure = self.registry.role(roles::CLOSURE).map(AbsVal::of_rep);
                for (v, _) in binds {
                    env.vals.insert(*v, closure.unwrap_or(AbsVal::Top));
                }
                for (_, l) in binds {
                    let mut inner = env.clone();
                    self.eval_expr(&l.body, &mut inner);
                }
                self.eval_expr(body, env)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use sxr_ir::anf::Fun;

    fn registry() -> (RepRegistry, RepId, RepId) {
        let mut reg = RepRegistry::new();
        let fx = reg.intern_immediate("fixnum", 3, 0, 3).unwrap();
        let pair = reg.intern_pointer("pair", 1, false).unwrap();
        reg.provide_role(roles::FIXNUM, fx).unwrap();
        reg.provide_role(roles::PAIR, pair).unwrap();
        (reg, fx, pair)
    }

    fn run(reg: &RepRegistry, body: Expr) -> Vec<Diagnostic> {
        let m = Module {
            funs: vec![Fun {
                name: Some("test".into()),
                self_var: 0,
                params: vec![1],
                rest: None,
                free_count: 0,
                body,
            }],
            main: 0,
            global_names: vec![],
            var_names: vec![],
        };
        analyze_module(&m, reg, &HashMap::new())
    }

    fn rep(r: RepId) -> Atom {
        Atom::Lit(Literal::Rep(r))
    }

    fn lets(binds: Vec<(VarId, Bound)>, last: VarId) -> Expr {
        let mut e = Expr::Ret(Atom::Var(last));
        for (v, b) in binds.into_iter().rev() {
            e = Expr::Let(v, b, Box::new(e));
        }
        e
    }

    #[test]
    fn trap_ops_analyze_as_top() {
        let (reg, fx, _) = registry();
        // `%trap-call`'s result may come from the thunk or the handler, so
        // it is Top: projecting it is never flaggable, and neither trap op
        // produces a diagnostic of its own.
        let body = lets(
            vec![
                (
                    10,
                    Bound::Prim(PrimOp::TrapCall, vec![Atom::Var(1), Atom::Var(1)]),
                ),
                (
                    11,
                    Bound::Prim(PrimOp::RepProject, vec![rep(fx), Atom::Var(10)]),
                ),
                (12, Bound::Prim(PrimOp::Raise, vec![Atom::Var(10)])),
            ],
            11,
        );
        let diags = run(&reg, body);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn disjoint_projection_is_error() {
        let (reg, fx, pair) = registry();
        let body = lets(
            vec![
                (
                    10,
                    Bound::Prim(PrimOp::RepInject, vec![rep(fx), Atom::raw(5)]),
                ),
                (
                    11,
                    Bound::Prim(PrimOp::RepProject, vec![rep(pair), Atom::Var(10)]),
                ),
            ],
            11,
        );
        let diags = run(&reg, body);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].class, DiagClass::DisjointRep);
        assert_eq!(diags[0].severity(), Severity::Error);
        assert!(diags[0].message.contains("`pair`"), "{}", diags[0].message);
        assert!(
            diags[0].message.contains("`fixnum`"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn raw_load_on_immediate_is_error() {
        let (reg, fx, pair) = registry();
        // Field read through a pointer rep, but the subject is a fixnum.
        let body = lets(
            vec![
                (
                    10,
                    Bound::Prim(PrimOp::RepInject, vec![rep(fx), Atom::raw(5)]),
                ),
                (
                    11,
                    Bound::Prim(PrimOp::RepRef, vec![rep(pair), Atom::Var(10), Atom::raw(0)]),
                ),
            ],
            11,
        );
        let diags = run(&reg, body);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].class, DiagClass::RawMemOnImmediate);
    }

    #[test]
    fn field_access_through_immediate_rep_is_error() {
        let (reg, fx, _) = registry();
        let body = lets(
            vec![(
                10,
                Bound::Prim(PrimOp::RepRef, vec![rep(fx), Atom::Var(1), Atom::raw(0)]),
            )],
            10,
        );
        let diags = run(&reg, body);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].class, DiagClass::RawMemOnImmediate);
        assert!(
            diags[0].message.contains("immediate representation"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn load_from_raw_word_is_error() {
        let (reg, fx, pair) = registry();
        let body = lets(
            vec![
                (
                    10,
                    Bound::Prim(PrimOp::RepProject, vec![rep(fx), Atom::Var(1)]),
                ),
                (
                    11,
                    Bound::Prim(PrimOp::RepRef, vec![rep(pair), Atom::Var(10), Atom::raw(0)]),
                ),
            ],
            11,
        );
        let diags = run(&reg, body);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].class, DiagClass::RawMemOnImmediate);
        assert!(
            diags[0].message.contains("raw untagged word"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn constant_index_out_of_bounds_is_error() {
        let (reg, _, pair) = registry();
        let body = lets(
            vec![
                (
                    10,
                    Bound::Prim(
                        PrimOp::RepAlloc,
                        vec![rep(pair), Atom::raw(2), Atom::raw(0)],
                    ),
                ),
                (
                    11,
                    Bound::Prim(PrimOp::RepRef, vec![rep(pair), Atom::Var(10), Atom::raw(5)]),
                ),
            ],
            11,
        );
        let diags = run(&reg, body);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].class, DiagClass::IndexOutOfBounds);
        assert!(diags[0].message.contains("index 5"), "{}", diags[0].message);
        assert!(
            diags[0].message.contains("2 fields"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn spec_ops_are_checked_too() {
        let (reg, fx, pair) = registry();
        let body = lets(
            vec![
                (
                    10,
                    Bound::Prim(PrimOp::RepInject, vec![rep(fx), Atom::raw(5)]),
                ),
                (
                    11,
                    Bound::Prim(PrimOp::SpecRef(pair), vec![Atom::Var(10), Atom::raw(0)]),
                ),
                (
                    12,
                    Bound::Prim(PrimOp::SpecAlloc(pair), vec![Atom::raw(2), Atom::raw(0)]),
                ),
                (
                    13,
                    Bound::Prim(PrimOp::SpecRef(pair), vec![Atom::Var(12), Atom::raw(24)]),
                ),
            ],
            13,
        );
        let diags = run(&reg, body);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert_eq!(diags[0].class, DiagClass::RawMemOnImmediate);
        assert_eq!(diags[1].class, DiagClass::IndexOutOfBounds);
        assert!(diags[1].message.contains("index 3"), "{}", diags[1].message);
    }

    #[test]
    fn dead_rep_test_is_warning() {
        let (reg, fx, pair) = registry();
        let body = lets(
            vec![
                (
                    10,
                    Bound::Prim(PrimOp::RepInject, vec![rep(fx), Atom::raw(5)]),
                ),
                (
                    11,
                    Bound::Prim(PrimOp::RepTest, vec![rep(pair), Atom::Var(10)]),
                ),
                (
                    12,
                    Bound::Prim(PrimOp::RepTest, vec![rep(fx), Atom::Var(10)]),
                ),
            ],
            12,
        );
        let diags = run(&reg, body);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags
            .iter()
            .all(|d| d.class == DiagClass::DeadRepTest && !d.is_error()));
        assert!(
            diags[0].message.contains("always false"),
            "{}",
            diags[0].message
        );
        assert!(
            diags[1].message.contains("always true"),
            "{}",
            diags[1].message
        );
    }

    #[test]
    fn guarded_access_is_clean() {
        let (reg, _, pair) = registry();
        // The library's `car` shape: test, then access only when the test
        // passed. Var 1 is the unknown parameter.
        let body = Expr::Let(
            10,
            Bound::Prim(PrimOp::RepTest, vec![rep(pair), Atom::Var(1)]),
            Box::new(Expr::If(
                Test::NonZero(Atom::Var(10)),
                Box::new(lets(
                    vec![(
                        11,
                        Bound::Prim(PrimOp::RepRef, vec![rep(pair), Atom::Var(1), Atom::raw(0)]),
                    )],
                    11,
                )),
                Box::new(Expr::Ret(Atom::Lit(Literal::Unspecified))),
            )),
        );
        let diags = run(&reg, body);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn boolean_injected_guard_is_understood() {
        let mut reg = RepRegistry::new();
        let fx = reg.intern_immediate("fixnum", 3, 0, 3).unwrap();
        let bo = reg.intern_immediate("boolean", 8, 2, 8).unwrap();
        let pair = reg.intern_pointer("pair", 1, false).unwrap();
        reg.provide_role(roles::FIXNUM, fx).unwrap();
        reg.provide_role(roles::BOOLEAN, bo).unwrap();
        reg.provide_role(roles::PAIR, pair).unwrap();
        // t = rep-test pair x; b = rep-inject boolean t; if (truthy b) …
        let body = Expr::Let(
            10,
            Bound::Prim(PrimOp::RepTest, vec![rep(pair), Atom::Var(1)]),
            Box::new(Expr::Let(
                11,
                Bound::Prim(PrimOp::RepInject, vec![rep(bo), Atom::Var(10)]),
                Box::new(Expr::If(
                    Test::Truthy(Atom::Var(11)),
                    Box::new(lets(
                        vec![(
                            12,
                            Bound::Prim(
                                PrimOp::RepRef,
                                vec![rep(pair), Atom::Var(1), Atom::raw(0)],
                            ),
                        )],
                        12,
                    )),
                    Box::new(Expr::Ret(Atom::Lit(Literal::Unspecified))),
                )),
            )),
        );
        let diags = run(&reg, body);
        assert!(diags.is_empty(), "{diags:?}");
        // The *false* arm projecting through `pair` is still unknown
        // (complement is unrepresentable), so no spurious diagnostics
        // there either — but accessing after a failed narrow from an exact
        // tag set is flagged:
        let body2 = lets(
            vec![
                (
                    10,
                    Bound::Prim(PrimOp::RepInject, vec![rep(fx), Atom::raw(1)]),
                ),
                (
                    11,
                    Bound::Prim(PrimOp::RepRef, vec![rep(pair), Atom::Var(10), Atom::raw(0)]),
                ),
            ],
            11,
        );
        assert_eq!(run(&reg, body2).len(), 1);
    }

    #[test]
    fn literal_datum_seeding() {
        let (reg, _, pair) = registry();
        // (car '(1 2)) is fine; field 5 of a pair cell is not.
        let lst = Atom::Lit(Literal::Datum(Datum::List(vec![
            Datum::Fixnum(1),
            Datum::Fixnum(2),
        ])));
        let ok = lets(
            vec![(
                10,
                Bound::Prim(PrimOp::RepRef, vec![rep(pair), lst.clone(), Atom::raw(0)]),
            )],
            10,
        );
        assert!(run(&reg, ok).is_empty());
        let bad = lets(
            vec![(
                10,
                Bound::Prim(PrimOp::RepRef, vec![rep(pair), lst, Atom::raw(5)]),
            )],
            10,
        );
        let diags = run(&reg, bad);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].class, DiagClass::IndexOutOfBounds);
    }

    #[test]
    fn unknown_values_stay_silent() {
        let (reg, _, pair) = registry();
        // Parameter, call result, closure slot: all Top, nothing provable.
        let body = lets(
            vec![
                (10, Bound::Call(Atom::Var(1), vec![])),
                (
                    11,
                    Bound::Prim(PrimOp::RepRef, vec![rep(pair), Atom::Var(10), Atom::raw(0)]),
                ),
                (
                    12,
                    Bound::Prim(PrimOp::RepTest, vec![rep(pair), Atom::Var(1)]),
                ),
            ],
            12,
        );
        assert!(run(&reg, body).is_empty());
    }
}
