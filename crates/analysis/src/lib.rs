//! Static analysis for the `sxr` SchemeXerox reproduction.
//!
//! Two facilities live here:
//!
//! 1. a **rep-safety abstract interpreter** ([`analyze_module`]) — a forward
//!    dataflow analysis over closure-converted ANF with a tag-set lattice
//!    seeded from the representation registry.  It flags *provable* misuse
//!    of the first-class representation facility: projections through a
//!    representation the value cannot have, raw memory access on values that
//!    are provably immediates, constant field indices outside a known
//!    allocation, and representation tests whose outcome is statically
//!    known;
//! 2. an **inter-pass semantic verifier** ([`verify_expr`],
//!    [`verify_module`]) — cheap invariant checks strong enough to run after
//!    every optimizer pass, so a pass that breaks scoping, arity, tail
//!    discipline, or registry consistency is caught *at the pass that broke
//!    it* rather than at the VM;
//! 3. a **load-time bytecode verifier** ([`verify_program`]) — a JVM-style
//!    dataflow proof over the final instruction stream.  A clean report
//!    licenses the VM's unchecked dispatch fast path (install
//!    [`verifier_hook`] via `MachineConfig::verifier`); a rejection names
//!    the exact `{fun, pc, rule}` and the machine refuses to start.
//!
//! The analyzer is deliberately conservative: unknown values (parameters,
//! call results, closure slots) are `Top`, and only contradictions that hold
//! on *every* execution are reported.  A clean program — the full prelude
//! included — produces no errors.

#![warn(missing_docs)]

pub mod analyzer;
pub mod bcverify;
pub mod diag;
pub mod lattice;
pub mod verify;

pub use analyzer::analyze_module;
pub use bcverify::{verifier_hook, verify_program, Rejection, Rule, VerifyReport};
pub use diag::{DiagClass, Diagnostic, Severity};
pub use lattice::{AbsVal, TagSet};
pub use verify::{verify_expr, verify_module, VerifyError};
