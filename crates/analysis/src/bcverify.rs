//! Load-time bytecode verifier.
//!
//! [`verify_program`] runs a dataflow analysis over a loadable
//! [`CodeProgram`] and either proves it safe for the VM's *unchecked*
//! dispatch fast path or rejects it with a `{fun, pc, rule}`-addressed
//! [`Rejection`].  The design follows the JVM verifier: per-function
//! abstract interpretation to a fixpoint over the control-flow graph, with
//! purely structural checks (index bounds) applied to *every* instruction
//! and dataflow rules applied to *reachable* instructions only (compiled
//! code legitimately carries unreachable tails after `ErrorOp`/`RaiseOp`
//! terminators).
//!
//! # The abstract domain
//!
//! Each register holds an [`Rv`]:
//!
//! * [`Rv::Uninit`] — not written on some path reaching this point;
//! * [`Rv::Raw`] — an untagged machine word (ALU results, projected
//!   payloads, raw headers);
//! * [`Rv::Tagged`] — a properly tagged Scheme value of unknown
//!   representation;
//! * [`Rv::Ptr`] — a tagged heap pointer whose representation is one of a
//!   known [`TagSet`], with the allocating function remembered for closure
//!   values (that powers the `ClosureSet` free-slot checks).
//!
//! The join moves *up*: `Uninit` absorbs everything (a merge where one
//! predecessor never wrote the register makes it unreadable), pointer sets
//! union, and `Raw ⊔ Tagged = Tagged` — mirroring the code generator's own
//! kind join, where a register any writer tags must be GC-scanned.
//!
//! # What is proved, and what is trusted
//!
//! The verifier proves: every read register was written on every path;
//! every jump lands inside its function; every pool/global/function/
//! representation index is in bounds; memory bases are never raw words;
//! provably tagged values never land in registers or closure slots the GC
//! is told not to scan; and the handler stack is balanced — never popped
//! below zero, path-consistent at joins, and empty at returns and tail
//! calls.
//!
//! Two flows remain *trusted*, exactly as they are for compiled code: a
//! raw word flowing into a GC-scanned position is accepted (the library's
//! inject sequences produce tagged-valid words the verifier cannot
//! distinguish from arbitrary arithmetic), and heap loads/stores stay
//! bounds-checked at run time even on the fast path.  The unchecked fast
//! path therefore only elides checks the proofs above make redundant:
//! register indexing, instruction fetch, and pool/global access.

use std::fmt;

use crate::lattice::TagSet;
use sxr_ir::rep::{roles, RepId, RepRegistry};
use sxr_vm::{CodeFun, CodeProgram, Inst, PoolEntry, Reg, RegImm, RepVmOp, VmError};

/// The verifier's rule set.  Every rejection names exactly one rule; the
/// [`Rule::label`] strings are stable — tests, the CLI, and
/// `VmErrorKind::RejectedByVerifier` all key on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// A register operand is outside the function's frame.
    RegOob,
    /// A jump, branch, or handler resume target is outside the function.
    JumpOob,
    /// A constant-pool index is out of bounds (or a pool entry references
    /// an unknown representation).
    PoolOob,
    /// A global index is out of bounds.
    GlobalOob,
    /// A function id (call target, closure code, or entry point) is out of
    /// bounds.
    FnOob,
    /// An allocation that could never execute: immediate representation,
    /// unknown representation id, or negative static length.
    BadAlloc,
    /// Malformed operand structure: wrong `Rep` operand count, or a
    /// closure capture/patch that does not match the target function's
    /// free-slot layout.
    BadArgs,
    /// The instruction requires a representation role the registry does
    /// not provide (`char` for `WriteChar`, `pair`/`null` for variadic
    /// entry, `rep-type` for generic rep operations, ...).
    MissingRole,
    /// Execution can fall off the end of the function.
    FallOffEnd,
    /// A register may be read before any write on some path.
    DefBeforeUse,
    /// A memory access (or call/intern/handler operand that the machine
    /// dereferences) whose base may be a raw, untagged word.
    RawMemBase,
    /// A `Const` with a pointer-tagged bit pattern written to a GC-scanned
    /// register — the collector would chase a fabricated pointer.
    ConstPtr,
    /// A provably tagged value written to a register the GC root map says
    /// not to scan (or a parameter register marked unscanned).
    TaggedIntoRaw,
    /// A provably tagged value captured into (or patched over) a closure
    /// free slot the GC is told not to scan.
    TaggedIntoRawSlot,
    /// `ClosureSet` on a value not proven to be a closure of a known
    /// function — the patch width cannot be checked statically.
    ClosureSetUnknown,
    /// `PopHandler` with no handler installed on some path.
    HandlerUnderflow,
    /// Return or tail call with a handler still installed by this frame.
    HandlerLeak,
    /// Control-flow join where paths disagree on handler depth.
    HandlerJoinMismatch,
}

impl Rule {
    /// The stable, user-visible name of the rule.
    pub fn label(self) -> &'static str {
        match self {
            Rule::RegOob => "reg-oob",
            Rule::JumpOob => "jump-oob",
            Rule::PoolOob => "pool-oob",
            Rule::GlobalOob => "global-oob",
            Rule::FnOob => "fn-oob",
            Rule::BadAlloc => "bad-alloc",
            Rule::BadArgs => "bad-args",
            Rule::MissingRole => "missing-role",
            Rule::FallOffEnd => "fall-off-end",
            Rule::DefBeforeUse => "def-before-use",
            Rule::RawMemBase => "raw-mem-base",
            Rule::ConstPtr => "const-ptr",
            Rule::TaggedIntoRaw => "tagged-into-raw",
            Rule::TaggedIntoRawSlot => "tagged-into-raw-slot",
            Rule::ClosureSetUnknown => "closure-set-unknown",
            Rule::HandlerUnderflow => "handler-underflow",
            Rule::HandlerLeak => "handler-leak",
            Rule::HandlerJoinMismatch => "handler-join-mismatch",
        }
    }
}

/// One reason the verifier refused a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// Index of the function containing the violation (the entry function
    /// for program-level problems).
    pub fun: u32,
    /// Instruction offset of the violation within that function.
    pub pc: u32,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fun {} pc {}: [{}] {}",
            self.fun,
            self.pc,
            self.rule.label(),
            self.detail
        )
    }
}

/// The outcome of verifying a whole program.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// All rejections found, in (function, pc) order.  Structural problems
    /// are collected exhaustively; each function additionally reports at
    /// most one dataflow violation (analysis of that function stops there).
    pub rejections: Vec<Rejection>,
    /// Number of functions analyzed.
    pub funs: usize,
    /// Total instructions structurally checked.
    pub insts: usize,
}

impl VerifyReport {
    /// Did the program pass?
    pub fn is_clean(&self) -> bool {
        self.rejections.is_empty()
    }

    /// The first (lowest function, lowest pc) rejection, if any.
    pub fn first(&self) -> Option<&Rejection> {
        self.rejections.first()
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(
                f,
                "verified: {} function(s), {} instruction(s)",
                self.funs, self.insts
            )
        } else {
            writeln!(f, "rejected ({} problem(s)):", self.rejections.len())?;
            for r in &self.rejections {
                writeln!(f, "  {r}")?;
            }
            Ok(())
        }
    }
}

/// Adapter with the [`sxr_vm::VerifierHook`] signature: verifies `program`
/// and converts the first rejection into
/// [`sxr_vm::VmErrorKind::RejectedByVerifier`].  Install it via
/// [`sxr_vm::MachineConfig::verifier`] to refuse unverifiable programs at
/// load and run verified ones on the unchecked fast path.
pub fn verifier_hook(program: &CodeProgram) -> Result<(), VmError> {
    let report = verify_program(program);
    match report.first() {
        None => Ok(()),
        Some(r) => Err(VmError::rejected(
            r.fun,
            r.pc,
            r.rule.label(),
            r.detail.clone(),
        )),
    }
}

/// What the verifier knows about one register at one program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rv {
    /// Possibly never written on some path to this point.
    Uninit,
    /// An untagged machine word.
    Raw,
    /// A tagged value of unknown representation.
    Tagged,
    /// A tagged heap pointer.
    Ptr {
        /// The possible representations.
        tags: TagSet,
        /// The function a `MakeClosure` built this value over, when that
        /// is the unique provenance.
        fid: Option<u32>,
    },
}

impl Rv {
    fn is_tagged(self) -> bool {
        matches!(self, Rv::Tagged | Rv::Ptr { .. })
    }

    /// The lattice join (`Uninit` is top: it poisons reads).
    fn join(self, other: Rv) -> Rv {
        match (self, other) {
            (Rv::Uninit, _) | (_, Rv::Uninit) => Rv::Uninit,
            (Rv::Raw, Rv::Raw) => Rv::Raw,
            (Rv::Ptr { tags: a, fid: fa }, Rv::Ptr { tags: b, fid: fb }) => Rv::Ptr {
                tags: a.union(&b),
                fid: if fa == fb { fa } else { None },
            },
            // Raw ⊔ Tagged = Tagged, matching the code generator's kind
            // join: if any writer tags the register, the GC scans it.
            _ => Rv::Tagged,
        }
    }
}

/// Abstract machine state at one program point: one [`Rv`] per register
/// plus the number of handlers this frame has installed.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AbsState {
    regs: Vec<Rv>,
    depth: u32,
}

/// Operand count of a generic representation operation (mirrors the VM's
/// decode-time check; crafted programs are verified before decode sees
/// them).
fn rep_arity(op: RepVmOp) -> usize {
    match op {
        RepVmOp::MakeImm | RepVmOp::Set => 4,
        RepVmOp::MakePtr | RepVmOp::Alloc | RepVmOp::Ref => 3,
        RepVmOp::Provide | RepVmOp::Inject | RepVmOp::Project | RepVmOp::Test | RepVmOp::Len => 2,
    }
}

/// How control leaves an instruction.
enum Flow {
    /// Falls through to `pc + 1`.
    Fall,
    /// Jumps to `t` unconditionally.
    Jump(u32),
    /// Branches: `t` or fall through.
    Branch(u32),
    /// `PushHandler`: falls through with one more handler; the trap edge
    /// resumes at `t` at the *current* depth (the machine pops the handler
    /// before delivering) with `d` freshly defined.
    Push { t: u32, d: Reg },
    /// `PopHandler`: falls through with one less handler.
    Pop,
    /// A terminator (return, tail call, raise): no successors.
    Stop,
}

/// Verifies `program`, returning every structural problem and (for
/// structurally sound functions) at most one dataflow violation per
/// function.  A clean report licenses the VM's unchecked fast path; see
/// the module docs for the exact contract.
pub fn verify_program(program: &CodeProgram) -> VerifyReport {
    let mut report = VerifyReport::default();
    let registry = &program.registry;

    // Program-level prologue: the machine refuses to load without these,
    // so mirroring the checks keeps "verify-clean implies loadable code".
    let main = program.main;
    if (main as usize) >= program.funs.len() {
        report.rejections.push(Rejection {
            fun: main,
            pc: 0,
            rule: Rule::FnOob,
            detail: format!(
                "entry function id {main} out of bounds ({} functions)",
                program.funs.len()
            ),
        });
        return report;
    }
    let missing = |role: &str, why: &str, report: &mut VerifyReport| {
        report.rejections.push(Rejection {
            fun: main,
            pc: 0,
            rule: Rule::MissingRole,
            detail: format!("registry provides no `{role}` role ({why})"),
        });
    };
    for role in [roles::FIXNUM, roles::BOOLEAN, roles::UNSPECIFIED] {
        match registry.role(role) {
            None => missing(role, "the machine cannot boot", &mut report),
            Some(id) if registry.info(id).is_pointer() => {
                report.rejections.push(Rejection {
                    fun: main,
                    pc: 0,
                    rule: Rule::MissingRole,
                    detail: format!("role `{role}` must be an immediate representation"),
                });
            }
            Some(_) => {}
        }
    }
    match registry.role(roles::CLOSURE) {
        None => missing(
            roles::CLOSURE,
            "procedures are unrepresentable",
            &mut report,
        ),
        Some(id) if !registry.info(id).is_pointer() => {
            report.rejections.push(Rejection {
                fun: main,
                pc: 0,
                rule: Rule::MissingRole,
                detail: "role `closure` must be a pointer representation".to_string(),
            });
        }
        Some(_) => {}
    }
    for (i, entry) in program.pool.iter().enumerate() {
        if let PoolEntry::Rep(rid) = entry {
            if (*rid as usize) >= registry.len() {
                report.rejections.push(Rejection {
                    fun: main,
                    pc: 0,
                    rule: Rule::PoolOob,
                    detail: format!("pool entry {i} references unknown representation id {rid}"),
                });
            } else if reptype_role(registry).is_none() {
                missing(
                    "rep-type",
                    "the pool holds a first-class representation object",
                    &mut report,
                );
            }
        }
    }
    if !report.rejections.is_empty() {
        // Without the boot roles the typing rules below have no ground
        // truth; stop at the program-level report.
        return report;
    }

    report.funs = program.funs.len();
    for (fid, fun) in program.funs.iter().enumerate() {
        report.insts += fun.insts.len();
        let v = FnVerifier {
            program,
            registry,
            fun,
            fid: fid as u32,
        };
        let before = report.rejections.len();
        v.structural(&mut report);
        if report.rejections.len() == before {
            if let Err(r) = v.dataflow() {
                report.rejections.push(r);
            }
        }
    }
    report
}

fn reptype_role(registry: &RepRegistry) -> Option<RepId> {
    let id = registry.role("rep-type")?;
    registry.info(id).is_pointer().then_some(id)
}

struct FnVerifier<'a> {
    program: &'a CodeProgram,
    registry: &'a RepRegistry,
    fun: &'a CodeFun,
    fid: u32,
}

impl<'a> FnVerifier<'a> {
    fn reject(&self, pc: usize, rule: Rule, detail: String) -> Rejection {
        Rejection {
            fun: self.fid,
            pc: pc as u32,
            rule,
            detail,
        }
    }

    /// May register `r` hold a tagged value, per the GC root map?
    /// Registers past the end of the map are conservatively scanned.
    fn ptr(&self, r: Reg) -> bool {
        self.fun.ptr_map.get(r as usize).copied().unwrap_or(true)
    }

    /// Registers the frame defines on entry: closure, parameters, and the
    /// rest list for variadic functions.
    fn entry_regs(&self) -> usize {
        1 + self.fun.arity + usize::from(self.fun.variadic)
    }

    // ----- structural pass (every instruction, reachable or not) -----

    fn structural(&self, report: &mut VerifyReport) {
        let fun = self.fun;
        let len = fun.insts.len();
        let mut out = |r: Rejection| report.rejections.push(r);

        if fun.insts.is_empty() {
            out(self.reject(
                0,
                Rule::FallOffEnd,
                "function has no instructions".to_string(),
            ));
            return;
        }
        if fun.nregs < self.entry_regs() {
            out(self.reject(
                0,
                Rule::RegOob,
                format!(
                    "frame of {} register(s) cannot hold closure + {} parameter(s){}",
                    fun.nregs,
                    fun.arity,
                    if fun.variadic { " + rest list" } else { "" }
                ),
            ));
            return;
        }
        for r in 0..self.entry_regs() {
            if !self.ptr(r as Reg) {
                out(self.reject(
                    0,
                    Rule::TaggedIntoRaw,
                    format!(
                        "parameter register r{r} holds a tagged value on entry \
                         but the GC root map marks it unscanned"
                    ),
                ));
            }
        }
        if fun.variadic {
            for role in [roles::PAIR, roles::NULL] {
                if self.registry.role(role).is_none() {
                    out(self.reject(
                        0,
                        Rule::MissingRole,
                        format!("variadic entry requires the `{role}` role"),
                    ));
                }
            }
            if let Some(pair) = self.registry.role(roles::PAIR) {
                if !self.registry.info(pair).is_pointer() {
                    out(self.reject(
                        0,
                        Rule::MissingRole,
                        "role `pair` must be a pointer representation".to_string(),
                    ));
                }
            }
        }

        for (pc, inst) in fun.insts.iter().enumerate() {
            for r in inst_regs(inst) {
                if (r as usize) >= fun.nregs {
                    out(self.reject(
                        pc,
                        Rule::RegOob,
                        format!(
                            "register r{r} out of bounds (frame has {} registers)",
                            fun.nregs
                        ),
                    ));
                }
            }
            for t in inst_targets(inst) {
                if (t as usize) >= len {
                    out(self.reject(
                        pc,
                        Rule::JumpOob,
                        format!("target {t} out of bounds (function has {len} instructions)"),
                    ));
                }
            }
            match inst {
                Inst::Const { d, imm } => {
                    let pattern = (*imm as u64 & 0b111) as usize;
                    if self.ptr(*d) && self.registry.pointer_pattern_table()[pattern] {
                        out(self.reject(
                            pc,
                            Rule::ConstPtr,
                            format!(
                                "constant {imm:#x} carries a pointer tag; the GC \
                                 would chase a fabricated pointer in r{d}"
                            ),
                        ));
                    }
                }
                Inst::Pool { idx, .. } if (*idx as usize) >= self.program.pool.len() => {
                    out(self.reject(
                        pc,
                        Rule::PoolOob,
                        format!(
                            "pool index {idx} out of bounds ({} entries)",
                            self.program.pool.len()
                        ),
                    ));
                }
                Inst::GlobalGet { g, .. } | Inst::GlobalSet { g, .. }
                    if (*g as usize) >= self.program.nglobals =>
                {
                    out(self.reject(
                        pc,
                        Rule::GlobalOob,
                        format!("global {g} out of bounds ({} slots)", self.program.nglobals),
                    ));
                }
                Inst::MakeClosure { f, free, .. } => match self.program.funs.get(*f as usize) {
                    None => out(self.reject(
                        pc,
                        Rule::FnOob,
                        format!("closure over unknown function {f}"),
                    )),
                    Some(target) => {
                        if free.len() != target.free_count {
                            out(self.reject(
                                pc,
                                Rule::BadArgs,
                                format!(
                                    "closure captures {} value(s) but `{}` \
                                         declares {} free slot(s)",
                                    free.len(),
                                    target.name,
                                    target.free_count
                                ),
                            ));
                        }
                    }
                },
                Inst::CallKnown { f, .. } | Inst::TailCallKnown { f, .. }
                    if (*f as usize) >= self.program.funs.len() =>
                {
                    out(self.reject(pc, Rule::FnOob, format!("call of unknown function {f}")));
                }
                Inst::AllocFill { len: l, rep, .. } => {
                    if (*rep as usize) >= self.registry.len() {
                        out(self.reject(
                            pc,
                            Rule::BadAlloc,
                            format!("allocation of unknown representation id {rep}"),
                        ));
                    } else if !self.registry.info(*rep).is_pointer() {
                        out(self.reject(
                            pc,
                            Rule::BadAlloc,
                            format!(
                                "allocation of immediate representation `{}`",
                                self.registry.info(*rep).name
                            ),
                        ));
                    }
                    if let RegImm::Imm(n) = l {
                        if *n < 0 {
                            out(self.reject(
                                pc,
                                Rule::BadAlloc,
                                format!("negative allocation length {n}"),
                            ));
                        }
                    }
                }
                Inst::Rep { op, args, .. } => {
                    let want = rep_arity(*op);
                    if args.len() != want {
                        out(self.reject(
                            pc,
                            Rule::BadArgs,
                            format!("{op:?} takes {want} operand(s), got {}", args.len()),
                        ));
                    }
                }
                _ => {}
            }
        }
    }

    // ----- dataflow pass (reachable instructions only) -----

    fn dataflow(&self) -> Result<(), Rejection> {
        let fun = self.fun;
        let len = fun.insts.len();
        let mut entry = AbsState {
            regs: vec![Rv::Uninit; fun.nregs],
            depth: 0,
        };
        for r in entry.regs.iter_mut().take(self.entry_regs()) {
            *r = Rv::Tagged;
        }
        let mut states: Vec<Option<AbsState>> = vec![None; len];
        states[0] = Some(entry);
        let mut work = vec![0usize];

        while let Some(pc) = work.pop() {
            let mut st = states[pc].clone().expect("queued pc has a state");
            let flow = self.step(pc, &fun.insts[pc], &mut st)?;
            let succs: Vec<(usize, AbsState)> = match flow {
                Flow::Fall => vec![(pc + 1, st)],
                Flow::Jump(t) => vec![(t as usize, st)],
                Flow::Branch(t) => vec![(t as usize, st.clone()), (pc + 1, st)],
                Flow::Push { t, d } => {
                    let mut trap = st.clone();
                    trap.regs[d as usize] = Rv::Tagged;
                    let mut fall = st;
                    fall.depth += 1;
                    vec![(t as usize, trap), (pc + 1, fall)]
                }
                Flow::Pop => {
                    st.depth -= 1;
                    vec![(pc + 1, st)]
                }
                Flow::Stop => vec![],
            };
            for (succ, s) in succs {
                if succ >= len {
                    return Err(self.reject(
                        pc,
                        Rule::FallOffEnd,
                        "execution can fall off the end of the function".to_string(),
                    ));
                }
                match &states[succ] {
                    None => {
                        states[succ] = Some(s);
                        work.push(succ);
                    }
                    Some(old) => {
                        if old.depth != s.depth {
                            return Err(self.reject(
                                succ,
                                Rule::HandlerJoinMismatch,
                                format!(
                                    "paths join with handler depths {} and {}",
                                    old.depth, s.depth
                                ),
                            ));
                        }
                        let joined = AbsState {
                            regs: old
                                .regs
                                .iter()
                                .zip(&s.regs)
                                .map(|(&a, &b)| a.join(b))
                                .collect(),
                            depth: old.depth,
                        };
                        if joined != *old {
                            states[succ] = Some(joined);
                            work.push(succ);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Reads register `r`, rejecting a possibly-undefined value.
    fn use_(&self, st: &AbsState, pc: usize, r: Reg) -> Result<Rv, Rejection> {
        match st.regs[r as usize] {
            Rv::Uninit => Err(self.reject(
                pc,
                Rule::DefBeforeUse,
                format!("register r{r} may be read before any write"),
            )),
            v => Ok(v),
        }
    }

    /// Reads register `r` as something the machine will dereference (a
    /// memory base, call target, handler, or interned string): raw words
    /// are rejected — a fabricated address would reach the heap.
    fn deref(&self, st: &AbsState, pc: usize, r: Reg, what: &str) -> Result<Rv, Rejection> {
        match self.use_(st, pc, r)? {
            Rv::Raw => Err(self.reject(
                pc,
                Rule::RawMemBase,
                format!("{what} r{r} may hold a raw word, not a tagged value"),
            )),
            v => Ok(v),
        }
    }

    /// Writes `v` into register `d`, enforcing the root-map discipline:
    /// provably tagged values must not land in unscanned registers.  The
    /// reverse direction (raw into a scanned register) is allowed — see
    /// the module docs on trusted flows.
    fn def(&self, st: &mut AbsState, pc: usize, d: Reg, v: Rv) -> Result<(), Rejection> {
        let stored = if self.ptr(d) {
            v
        } else {
            if v.is_tagged() {
                return Err(self.reject(
                    pc,
                    Rule::TaggedIntoRaw,
                    format!(
                        "tagged value written to r{d}, which the GC root map \
                         marks unscanned"
                    ),
                ));
            }
            Rv::Raw
        };
        st.regs[d as usize] = stored;
        Ok(())
    }

    /// The kind a load/constant produces, as declared by the root map.
    fn map_kind(&self, d: Reg) -> Rv {
        if self.ptr(d) {
            Rv::Tagged
        } else {
            Rv::Raw
        }
    }

    fn need_role(&self, pc: usize, role: &str, what: &str) -> Result<RepId, Rejection> {
        self.registry.role(role).ok_or_else(|| {
            self.reject(
                pc,
                Rule::MissingRole,
                format!("{what} requires the `{role}` role"),
            )
        })
    }

    fn reg_imm_use(&self, st: &AbsState, pc: usize, v: &RegImm) -> Result<(), Rejection> {
        if let RegImm::Reg(r) = v {
            self.use_(st, pc, *r)?;
        }
        Ok(())
    }

    /// Abstractly executes one instruction, mutating `st` in place and
    /// returning how control leaves it.
    fn step(&self, pc: usize, inst: &Inst, st: &mut AbsState) -> Result<Flow, Rejection> {
        match inst {
            Inst::Const { d, .. } => {
                // `const-ptr` already ruled out pointer patterns in
                // scanned registers, so a tagged constant is an immediate.
                self.def(st, pc, *d, self.map_kind(*d))?;
            }
            Inst::Pool { d, idx } => {
                let v = match &self.program.pool[*idx as usize] {
                    PoolEntry::Datum(_) => Rv::Tagged,
                    PoolEntry::Rep(_) => match reptype_role(self.registry) {
                        Some(rt) => Rv::Ptr {
                            tags: TagSet::singleton(rt),
                            fid: None,
                        },
                        None => Rv::Tagged,
                    },
                };
                self.def(st, pc, *d, v)?;
            }
            Inst::Move { d, s } => {
                let v = self.use_(st, pc, *s)?;
                self.def(st, pc, *d, v)?;
            }
            Inst::Bin { d, a, b, .. } => {
                self.use_(st, pc, *a)?;
                self.use_(st, pc, *b)?;
                self.def(st, pc, *d, Rv::Raw)?;
            }
            Inst::BinI { d, a, .. } => {
                self.use_(st, pc, *a)?;
                self.def(st, pc, *d, Rv::Raw)?;
            }
            Inst::LoadD { d, p, .. } => {
                self.deref(st, pc, *p, "load base")?;
                self.def(st, pc, *d, self.map_kind(*d))?;
            }
            Inst::LoadX { d, p, x, .. } => {
                self.deref(st, pc, *p, "load base")?;
                self.use_(st, pc, *x)?;
                self.def(st, pc, *d, self.map_kind(*d))?;
            }
            Inst::StoreD { p, s, .. } => {
                self.deref(st, pc, *p, "store base")?;
                self.use_(st, pc, *s)?;
            }
            Inst::StoreX { p, x, s, .. } => {
                self.deref(st, pc, *p, "store base")?;
                self.use_(st, pc, *x)?;
                self.use_(st, pc, *s)?;
            }
            Inst::AllocFill { d, len, fill, rep } => {
                self.reg_imm_use(st, pc, len)?;
                self.use_(st, pc, *fill)?;
                self.def(
                    st,
                    pc,
                    *d,
                    Rv::Ptr {
                        tags: TagSet::singleton(*rep),
                        fid: None,
                    },
                )?;
            }
            Inst::Jump { t } => return Ok(Flow::Jump(*t)),
            Inst::JumpCmp { a, b, t, .. } => {
                self.use_(st, pc, *a)?;
                self.reg_imm_use(st, pc, b)?;
                return Ok(Flow::Branch(*t));
            }
            Inst::GlobalGet { d, .. } => {
                self.def(st, pc, *d, Rv::Tagged)?;
            }
            Inst::GlobalSet { s, .. } => {
                self.use_(st, pc, *s)?;
            }
            Inst::MakeClosure { d, f, free } => {
                let target = &self.program.funs[*f as usize];
                for (i, r) in free.iter().enumerate() {
                    let v = self.use_(st, pc, *r)?;
                    let scanned = target.free_ptr_map.get(i).copied().unwrap_or(true);
                    if v.is_tagged() && !scanned {
                        return Err(self.reject(
                            pc,
                            Rule::TaggedIntoRawSlot,
                            format!(
                                "tagged value r{r} captured into free slot {i} of \
                                 `{}`, which its GC map marks unscanned",
                                target.name
                            ),
                        ));
                    }
                }
                let clo = self.need_role(pc, roles::CLOSURE, "closure creation")?;
                self.def(
                    st,
                    pc,
                    *d,
                    Rv::Ptr {
                        tags: TagSet::singleton(clo),
                        fid: Some(*f),
                    },
                )?;
            }
            Inst::ClosureSet { clo, idx, val } => {
                let target = self.deref(st, pc, *clo, "closure patch target")?;
                let v = self.use_(st, pc, *val)?;
                match target {
                    Rv::Ptr { fid: Some(f), .. } => {
                        let tf = &self.program.funs[f as usize];
                        if (*idx as usize) >= tf.free_count {
                            return Err(self.reject(
                                pc,
                                Rule::BadArgs,
                                format!(
                                    "patch of free slot {idx} but `{}` has {} slot(s)",
                                    tf.name, tf.free_count
                                ),
                            ));
                        }
                        let scanned = tf.free_ptr_map.get(*idx as usize).copied().unwrap_or(true);
                        if v.is_tagged() && !scanned {
                            return Err(self.reject(
                                pc,
                                Rule::TaggedIntoRawSlot,
                                format!(
                                    "tagged value r{val} patched into free slot \
                                     {idx} of `{}`, which its GC map marks unscanned",
                                    tf.name
                                ),
                            ));
                        }
                    }
                    _ => {
                        return Err(self.reject(
                            pc,
                            Rule::ClosureSetUnknown,
                            format!(
                                "r{clo} is not proven to be a closure of a known \
                                 function; the patch width cannot be checked"
                            ),
                        ));
                    }
                }
            }
            Inst::Call { d, f, args } => {
                self.deref(st, pc, *f, "call target")?;
                for a in args {
                    self.use_(st, pc, *a)?;
                }
                self.def(st, pc, *d, Rv::Tagged)?;
            }
            Inst::CallKnown { d, clo, args, .. } => {
                self.deref(st, pc, *clo, "closure operand")?;
                for a in args {
                    self.use_(st, pc, *a)?;
                }
                self.def(st, pc, *d, Rv::Tagged)?;
            }
            Inst::TailCall { f, args } => {
                self.deref(st, pc, *f, "call target")?;
                for a in args {
                    self.use_(st, pc, *a)?;
                }
                self.leak_check(st, pc)?;
                return Ok(Flow::Stop);
            }
            Inst::TailCallKnown { clo, args, .. } => {
                self.deref(st, pc, *clo, "closure operand")?;
                for a in args {
                    self.use_(st, pc, *a)?;
                }
                self.leak_check(st, pc)?;
                return Ok(Flow::Stop);
            }
            Inst::Ret { s } => {
                self.use_(st, pc, *s)?;
                self.leak_check(st, pc)?;
                return Ok(Flow::Stop);
            }
            Inst::Rep { op, d, args } => {
                self.need_role(pc, "rep-type", "generic representation operations")?;
                if matches!(op, RepVmOp::MakeImm | RepVmOp::MakePtr | RepVmOp::Provide) {
                    // These read a symbol's name (and its backing string).
                    for role in [roles::SYMBOL, roles::STRING, roles::CHAR] {
                        self.need_role(pc, role, "representation construction")?;
                    }
                }
                // Which operands the machine dereferences (the rep-type
                // object, symbol names, and tag-checked subjects that may
                // be discriminated pointers).  Payload/index operands are
                // raw by design — `%rep-inject` exists to tag raw words.
                let deref_mask: &[bool] = match op {
                    RepVmOp::MakeImm => &[true, false, false, false],
                    RepVmOp::MakePtr => &[true, false, false],
                    RepVmOp::Provide | RepVmOp::Test | RepVmOp::Len => &[true, true],
                    RepVmOp::Inject | RepVmOp::Project => &[true, false],
                    RepVmOp::Alloc => &[true, false, false],
                    RepVmOp::Ref => &[true, true, false],
                    RepVmOp::Set => &[true, true, false, false],
                };
                for (a, &de) in args.iter().zip(deref_mask) {
                    if de {
                        self.deref(st, pc, *a, "representation operand")?;
                    } else {
                        self.use_(st, pc, *a)?;
                    }
                }
                let v = match op {
                    RepVmOp::Project | RepVmOp::Test | RepVmOp::Len => Rv::Raw,
                    _ => Rv::Tagged,
                };
                self.def(st, pc, *d, v)?;
            }
            Inst::Intern { d, s } => {
                for role in [roles::SYMBOL, roles::STRING, roles::CHAR] {
                    self.need_role(pc, role, "interning")?;
                }
                self.deref(st, pc, *s, "intern operand")?;
                self.def(st, pc, *d, Rv::Tagged)?;
            }
            Inst::WriteChar { s } => {
                self.need_role(pc, roles::CHAR, "character output")?;
                self.use_(st, pc, *s)?;
            }
            Inst::ErrorOp { s } | Inst::RaiseOp { s } => {
                // The payload becomes a GC root while the condition is
                // built, so a raw word here is a collector hazard.
                self.deref(st, pc, *s, "condition payload")?;
                return Ok(Flow::Stop);
            }
            Inst::PushHandler { h, d, t } => {
                self.deref(st, pc, *h, "trap handler")?;
                if !self.ptr(*d) {
                    return Err(self.reject(
                        pc,
                        Rule::TaggedIntoRaw,
                        format!(
                            "handler result register r{d} is marked unscanned \
                             but receives a tagged value"
                        ),
                    ));
                }
                return Ok(Flow::Push { t: *t, d: *d });
            }
            Inst::PopHandler => {
                if st.depth == 0 {
                    return Err(self.reject(
                        pc,
                        Rule::HandlerUnderflow,
                        "pop with no handler installed by this frame".to_string(),
                    ));
                }
                return Ok(Flow::Pop);
            }
            Inst::ResetCounters => {}
        }
        Ok(Flow::Fall)
    }

    fn leak_check(&self, st: &AbsState, pc: usize) -> Result<(), Rejection> {
        if st.depth != 0 {
            return Err(self.reject(
                pc,
                Rule::HandlerLeak,
                format!("frame exits with {} handler(s) still installed", st.depth),
            ));
        }
        Ok(())
    }
}

/// Every register an instruction names (for frame-bounds checking).
fn inst_regs(inst: &Inst) -> Vec<Reg> {
    let mut out = Vec::new();
    let ri = |v: &RegImm, out: &mut Vec<Reg>| {
        if let RegImm::Reg(r) = v {
            out.push(*r);
        }
    };
    match inst {
        Inst::Const { d, .. } => out.push(*d),
        Inst::Pool { d, .. } => out.push(*d),
        Inst::Move { d, s } => out.extend([*d, *s]),
        Inst::Bin { d, a, b, .. } => out.extend([*d, *a, *b]),
        Inst::BinI { d, a, .. } => out.extend([*d, *a]),
        Inst::LoadD { d, p, .. } => out.extend([*d, *p]),
        Inst::LoadX { d, p, x, .. } => out.extend([*d, *p, *x]),
        Inst::StoreD { p, s, .. } => out.extend([*p, *s]),
        Inst::StoreX { p, x, s, .. } => out.extend([*p, *x, *s]),
        Inst::AllocFill { d, len, fill, .. } => {
            out.extend([*d, *fill]);
            ri(len, &mut out);
        }
        Inst::Jump { .. } | Inst::PopHandler | Inst::ResetCounters => {}
        Inst::JumpCmp { a, b, .. } => {
            out.push(*a);
            ri(b, &mut out);
        }
        Inst::GlobalGet { d, .. } => out.push(*d),
        Inst::GlobalSet { s, .. } => out.push(*s),
        Inst::MakeClosure { d, free, .. } => {
            out.push(*d);
            out.extend(free.iter().copied());
        }
        Inst::ClosureSet { clo, val, .. } => out.extend([*clo, *val]),
        Inst::Call { d, f, args } => {
            out.extend([*d, *f]);
            out.extend(args.iter().copied());
        }
        Inst::CallKnown { d, clo, args, .. } => {
            out.extend([*d, *clo]);
            out.extend(args.iter().copied());
        }
        Inst::TailCall { f, args } => {
            out.push(*f);
            out.extend(args.iter().copied());
        }
        Inst::TailCallKnown { clo, args, .. } => {
            out.push(*clo);
            out.extend(args.iter().copied());
        }
        Inst::Ret { s } => out.push(*s),
        Inst::Rep { d, args, .. } => {
            out.push(*d);
            out.extend(args.iter().copied());
        }
        Inst::Intern { d, s } => out.extend([*d, *s]),
        Inst::WriteChar { s } | Inst::ErrorOp { s } | Inst::RaiseOp { s } => out.push(*s),
        Inst::PushHandler { h, d, .. } => out.extend([*h, *d]),
    }
    out
}

/// Every static control-flow target an instruction names.
fn inst_targets(inst: &Inst) -> Vec<u32> {
    match inst {
        Inst::Jump { t } | Inst::JumpCmp { t, .. } | Inst::PushHandler { t, .. } => vec![*t],
        _ => Vec::new(),
    }
}

pub mod build {
    //! A small builder for hand-crafting raw [`Inst`] programs — the
    //! adversarial rejection corpus and verifier unit tests use it, so it
    //! lives in the library rather than a test module.

    use sxr_ir::rep::RepRegistry;
    use sxr_vm::{CodeFun, CodeProgram, Inst, PoolEntry};

    /// The classic tagging scheme the shipped prelude builds: fixnum in
    /// the low-zero pattern, 8-bit immediates for booleans/chars/null/
    /// unspecified, and the seven pointer tags.  Hand-built verifier tests
    /// use it so crafted programs exercise the same layout compiled code
    /// does.
    pub fn classic_registry() -> RepRegistry {
        let mut reg = RepRegistry::new();
        let fx = reg.intern_immediate("fixnum", 3, 0, 3).unwrap();
        let bo = reg.intern_immediate("boolean", 8, 0b0000_0010, 8).unwrap();
        let ch = reg.intern_immediate("char", 8, 0b0001_0010, 8).unwrap();
        let nil = reg.intern_immediate("null", 8, 0b0010_0010, 8).unwrap();
        let un = reg
            .intern_immediate("unspecified", 8, 0b0011_0010, 8)
            .unwrap();
        let pair = reg.intern_pointer("pair", 0b001, false).unwrap();
        let vec_r = reg.intern_pointer("vector", 0b011, false).unwrap();
        let string = reg.intern_pointer("string", 0b101, false).unwrap();
        let symbol = reg.intern_pointer("symbol", 0b110, false).unwrap();
        let clo = reg.intern_pointer("closure", 0b111, false).unwrap();
        let reptype = reg.intern_pointer("rep-type", 0b100, true).unwrap();
        for (role, id) in [
            ("fixnum", fx),
            ("boolean", bo),
            ("char", ch),
            ("null", nil),
            ("unspecified", un),
            ("pair", pair),
            ("vector", vec_r),
            ("string", string),
            ("symbol", symbol),
            ("closure", clo),
            ("rep-type", reptype),
        ] {
            reg.provide_role(role, id).unwrap();
        }
        reg
    }

    /// Accumulates functions and pool entries into a [`CodeProgram`] with
    /// function 0 as the entry point.
    #[derive(Debug)]
    pub struct ProgramBuilder {
        funs: Vec<CodeFun>,
        pool: Vec<PoolEntry>,
        nglobals: usize,
        registry: RepRegistry,
    }

    impl Default for ProgramBuilder {
        fn default() -> Self {
            ProgramBuilder::new()
        }
    }

    impl ProgramBuilder {
        /// A builder over [`classic_registry`] with no globals.
        pub fn new() -> ProgramBuilder {
            ProgramBuilder {
                funs: Vec::new(),
                pool: Vec::new(),
                nglobals: 0,
                registry: classic_registry(),
            }
        }

        /// Replaces the registry (for crafting missing-role programs).
        pub fn registry(mut self, registry: RepRegistry) -> Self {
            self.registry = registry;
            self
        }

        /// Sets the number of global slots.
        pub fn globals(mut self, n: usize) -> Self {
            self.nglobals = n;
            self
        }

        /// Appends a constant-pool entry.
        pub fn pool(mut self, entry: PoolEntry) -> Self {
            self.pool.push(entry);
            self
        }

        /// Appends a non-variadic function with every register GC-scanned.
        pub fn fun(self, name: &str, arity: usize, nregs: usize, insts: Vec<Inst>) -> Self {
            self.fun_raw(CodeFun {
                name: name.into(),
                arity,
                variadic: false,
                nregs,
                free_count: 0,
                insts,
                ptr_map: vec![true; nregs],
                free_ptr_map: vec![],
            })
        }

        /// Appends a fully specified function (raw registers, free slots,
        /// variadic entry).
        pub fn fun_raw(mut self, fun: CodeFun) -> Self {
            self.funs.push(fun);
            self
        }

        /// The finished program; function 0 is `main`.
        pub fn build(self) -> CodeProgram {
            let nglobals = self.nglobals;
            CodeProgram {
                funs: self.funs,
                main: 0,
                pool: self.pool,
                nglobals,
                global_names: (0..nglobals).map(|i| format!("g{i}")).collect(),
                registry: self.registry,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::build::ProgramBuilder;
    use super::*;
    use sxr_vm::BinOp;

    #[test]
    fn straight_line_program_verifies() {
        let prog = ProgramBuilder::new()
            .fun(
                "main",
                0,
                3,
                vec![
                    Inst::Const { d: 1, imm: 8 }, // fixnum 1
                    Inst::Bin {
                        op: BinOp::Add,
                        d: 2,
                        a: 1,
                        b: 1,
                    },
                    Inst::Ret { s: 2 },
                ],
            )
            .build();
        let report = verify_program(&prog);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.funs, 1);
        assert_eq!(report.insts, 3);
        assert!(verifier_hook(&prog).is_ok());
    }

    #[test]
    fn loops_reach_a_fixpoint() {
        // r1 counts down; the loop merges two paths with identical state.
        let prog = ProgramBuilder::new()
            .fun(
                "main",
                0,
                2,
                vec![
                    Inst::Const { d: 1, imm: 80 },
                    Inst::JumpCmp {
                        op: sxr_vm::CmpOp::Eq,
                        a: 1,
                        b: RegImm::Imm(0),
                        t: 4,
                    },
                    Inst::BinI {
                        op: BinOp::Sub,
                        d: 1,
                        a: 1,
                        imm: 8,
                    },
                    Inst::Jump { t: 1 },
                    Inst::Ret { s: 1 },
                ],
            )
            .build();
        let report = verify_program(&prog);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn unreachable_tail_is_not_typed() {
        // Dead code after a raise may violate dataflow rules (here: a read
        // of an undefined register) without failing verification; only
        // structural bounds apply to it.
        let prog = ProgramBuilder::new()
            .fun(
                "main",
                0,
                3,
                vec![
                    Inst::Const { d: 1, imm: 8 },
                    Inst::ErrorOp { s: 1 },
                    Inst::Ret { s: 2 }, // r2 never written; unreachable
                ],
            )
            .build();
        let report = verify_program(&prog);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn hook_reports_first_rejection() {
        let prog = ProgramBuilder::new()
            .fun("main", 0, 2, vec![Inst::Ret { s: 1 }])
            .build();
        let err = verifier_hook(&prog).unwrap_err();
        assert_eq!(err.kind.label(), "rejected-by-verifier");
        assert!(err.message.contains("[def-before-use]"), "{}", err.message);
    }
}
