//! The abstract domain of the rep-safety analyzer.
//!
//! An abstract value describes what the analyzer knows about one IR word.
//! The interesting element is [`AbsVal::Tagged`]: a properly tagged Scheme
//! value whose representation is one of a known set ([`TagSet`]), possibly
//! with a known allocation size.  Everything the analyzer cannot prove is
//! [`AbsVal::Top`] — the lattice is shallow on purpose, since only provable
//! contradictions may be reported.

use sxr_ir::rep::{RepId, RepRegistry};

/// A set of representation ids, with a distinguished "could be anything
/// else too" element so ids beyond the bitmask never silently narrow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagSet {
    bits: u128,
    /// True if the set may also contain reps not representable in `bits`.
    unbounded: bool,
}

impl TagSet {
    /// The set containing exactly `r`.
    pub fn singleton(r: RepId) -> TagSet {
        if r >= 128 {
            TagSet {
                bits: 0,
                unbounded: true,
            }
        } else {
            TagSet {
                bits: 1u128 << r,
                unbounded: false,
            }
        }
    }

    /// The set of all representations.
    pub fn all() -> TagSet {
        TagSet {
            bits: 0,
            unbounded: true,
        }
    }

    /// May the value have representation `r`?
    pub fn contains(&self, r: RepId) -> bool {
        self.unbounded || (r < 128 && self.bits & (1u128 << r) != 0)
    }

    /// Is the set provably `{r}` and nothing else?
    pub fn is_exactly(&self, r: RepId) -> bool {
        !self.unbounded && r < 128 && self.bits == 1u128 << r
    }

    /// Is every possible representation an immediate (non-pointer) type?
    /// False for unbounded or empty sets.
    pub fn all_immediate(&self, registry: &RepRegistry) -> bool {
        if self.unbounded || self.bits == 0 {
            return false;
        }
        self.iter().all(|r| !registry.info(r).is_pointer())
    }

    /// Set union (the lattice join).
    pub fn union(&self, other: &TagSet) -> TagSet {
        TagSet {
            bits: self.bits | other.bits,
            unbounded: self.unbounded || other.unbounded,
        }
    }

    /// Narrow to `{r}` if `r` may be present; `None` if the intersection is
    /// empty (the branch is unreachable).
    pub fn narrowed_to(&self, r: RepId) -> Option<TagSet> {
        if self.contains(r) {
            Some(TagSet::singleton(r))
        } else {
            None
        }
    }

    /// Remove `r` (used on the false edge of a representation test). On an
    /// unbounded set this is a no-op — the complement is not representable.
    pub fn without(&self, r: RepId) -> TagSet {
        if self.unbounded || r >= 128 {
            *self
        } else {
            TagSet {
                bits: self.bits & !(1u128 << r),
                unbounded: false,
            }
        }
    }

    /// Iterates the known member ids (empty for unbounded sets).
    pub fn iter(&self) -> impl Iterator<Item = RepId> + '_ {
        (0..128u32).filter(|r| !self.unbounded && self.bits & (1u128 << r) != 0)
    }

    /// Human-readable member list, e.g. `` `fixnum` `` or `{`pair`, `null`}``.
    pub fn describe(&self, registry: &RepRegistry) -> String {
        if self.unbounded {
            return "<any>".to_string();
        }
        let names: Vec<String> = self
            .iter()
            .map(|r| format!("`{}`", registry.info(r).name))
            .collect();
        match names.len() {
            0 => "<none>".to_string(),
            1 => names.into_iter().next().unwrap(),
            _ => format!("{{{}}}", names.join(", ")),
        }
    }
}

/// What the analyzer knows about one word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// An untagged machine word, possibly with a known constant value
    /// (constants feed the field-index bounds check).
    Raw(Option<i64>),
    /// A first-class representation-type value known at analysis time.
    Rep(RepId),
    /// A properly tagged Scheme value: its representation is one of `tags`,
    /// and if it is a fixed-size allocation the field count is `size`.
    Tagged {
        /// The possible representations.
        tags: TagSet,
        /// Field count, when the value flows from an allocation with a
        /// constant size.
        size: Option<i64>,
    },
    /// Anything.
    Top,
}

impl AbsVal {
    /// A tagged value of exactly representation `r` with unknown size.
    pub fn of_rep(r: RepId) -> AbsVal {
        AbsVal::Tagged {
            tags: TagSet::singleton(r),
            size: None,
        }
    }

    /// The lattice join.
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        use AbsVal::*;
        match (self, other) {
            (Raw(a), Raw(b)) => Raw(if a == b { *a } else { None }),
            (Rep(a), Rep(b)) if a == b => Rep(*a),
            (Tagged { tags: t1, size: s1 }, Tagged { tags: t2, size: s2 }) => Tagged {
                tags: t1.union(t2),
                size: if s1 == s2 { *s1 } else { None },
            },
            _ => Top,
        }
    }

    /// The constant, if this is a known raw word.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            AbsVal::Raw(c) => *c,
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> (RepRegistry, RepId, RepId) {
        let mut reg = RepRegistry::new();
        let fx = reg.intern_immediate("fixnum", 3, 0, 3).unwrap();
        let pair = reg.intern_pointer("pair", 1, false).unwrap();
        (reg, fx, pair)
    }

    #[test]
    fn singleton_and_contains() {
        let s = TagSet::singleton(3);
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert!(s.is_exactly(3));
        assert!(TagSet::all().contains(3));
        assert!(!TagSet::all().is_exactly(3));
    }

    #[test]
    fn huge_rep_ids_stay_conservative() {
        let s = TagSet::singleton(500);
        assert!(s.contains(500));
        assert!(s.contains(0), "unbounded: may be anything");
        assert!(!s.is_exactly(500));
    }

    #[test]
    fn all_immediate_consults_registry() {
        let (reg, fx, pair) = registry();
        assert!(TagSet::singleton(fx).all_immediate(&reg));
        assert!(!TagSet::singleton(pair).all_immediate(&reg));
        assert!(!TagSet::singleton(fx)
            .union(&TagSet::singleton(pair))
            .all_immediate(&reg));
        assert!(!TagSet::all().all_immediate(&reg));
    }

    #[test]
    fn narrowing() {
        let (_, fx, pair) = registry();
        let both = TagSet::singleton(fx).union(&TagSet::singleton(pair));
        assert_eq!(both.narrowed_to(fx), Some(TagSet::singleton(fx)));
        assert_eq!(both.without(pair), TagSet::singleton(fx));
        assert_eq!(TagSet::singleton(fx).narrowed_to(pair), None);
        // Complement of an unbounded set is unrepresentable: no-op.
        assert_eq!(TagSet::all().without(fx), TagSet::all());
    }

    #[test]
    fn joins() {
        let (_, fx, pair) = registry();
        assert_eq!(
            AbsVal::Raw(Some(5)).join(&AbsVal::Raw(Some(5))),
            AbsVal::Raw(Some(5))
        );
        assert_eq!(
            AbsVal::Raw(Some(5)).join(&AbsVal::Raw(Some(6))),
            AbsVal::Raw(None)
        );
        assert_eq!(AbsVal::Raw(Some(5)).join(&AbsVal::Top), AbsVal::Top);
        let j = AbsVal::of_rep(fx).join(&AbsVal::of_rep(pair));
        match j {
            AbsVal::Tagged { tags, size } => {
                assert!(tags.contains(fx) && tags.contains(pair));
                assert_eq!(size, None);
            }
            other => panic!("expected tagged, got {other:?}"),
        }
    }

    #[test]
    fn describe_names() {
        let (reg, fx, pair) = registry();
        assert_eq!(TagSet::singleton(fx).describe(&reg), "`fixnum`");
        let both = TagSet::singleton(fx).union(&TagSet::singleton(pair));
        let s = both.describe(&reg);
        assert!(s.contains("`fixnum`") && s.contains("`pair`"), "{s}");
        assert_eq!(TagSet::all().describe(&reg), "<any>");
    }
}
