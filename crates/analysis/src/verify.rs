//! The inter-pass semantic verifier.
//!
//! [`verify_expr`] checks the invariants optimizer passes must preserve on
//! the *pre-closure-conversion* whole-program expression: lexical scoping
//! with single assignment, primitive arity, representation-literal
//! validity, tail discipline (tail calls only in tail position; the
//! branches of a value-producing `if`/`body` end in `ret`), and the absence
//! of post-closure-conversion forms.  [`verify_module`] covers the
//! closure-converted side: the structural checks of
//! [`sxr_ir::validate_module`] plus representation-registry consistency
//! (every rep literal and specialized op names a registered rep, and
//! specialized memory ops only name pointer reps).
//!
//! Both are cheap enough to run after every optimizer pass, which turns
//! "miscompiled benchmark" into "verification failed after pass X" with a
//! pretty-printed excerpt of the offending binding.

use std::collections::{HashMap, HashSet};
use std::fmt;
use sxr_ir::anf::{Atom, Bound, Expr, FunDef, GlobalId, Literal, Module, VarId};
use sxr_ir::pretty::expr_to_string;
use sxr_ir::prim::PrimOp;
use sxr_ir::rep::{RepId, RepKind, RepRegistry};
use sxr_ir::validate_module;

/// A violated inter-pass invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// What went wrong.
    pub message: String,
    /// Pretty-printed IR excerpt around the violation, when available.
    pub excerpt: Option<String>,
}

impl VerifyError {
    fn new(message: impl Into<String>) -> VerifyError {
        VerifyError {
            message: message.into(),
            excerpt: None,
        }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)?;
        if let Some(x) = &self.excerpt {
            write!(f, "\n  in:\n{x}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyError {}

/// Caps an excerpt to a handful of lines so a huge `if` body does not
/// drown the message.
fn excerpt_of(e: &Expr) -> String {
    let full = expr_to_string(e);
    let mut lines: Vec<&str> = full.lines().take(6).collect();
    if full.lines().count() > 6 {
        lines.push("    ...");
    }
    lines.iter().map(|l| format!("    {l}\n")).collect()
}

struct Verifier<'a> {
    registry: &'a RepRegistry,
    defined: HashSet<VarId>,
}

impl Verifier<'_> {
    fn check_rep(&self, r: RepId) -> Result<(), VerifyError> {
        if (r as usize) >= self.registry.len() {
            return Err(VerifyError::new(format!(
                "rep id {r} is not registered (registry has {} entries)",
                self.registry.len()
            )));
        }
        Ok(())
    }

    fn check_atom(&self, a: &Atom) -> Result<(), VerifyError> {
        match a {
            Atom::Var(v) => {
                if !self.defined.contains(v) {
                    return Err(VerifyError::new(format!(
                        "variable v{v} used before definition"
                    )));
                }
                Ok(())
            }
            Atom::Lit(Literal::Rep(r)) => self.check_rep(*r),
            Atom::Lit(_) => Ok(()),
        }
    }

    fn define(&mut self, v: VarId) -> Result<(), VerifyError> {
        if !self.defined.insert(v) {
            return Err(VerifyError::new(format!(
                "variable v{v} defined twice (single assignment violated)"
            )));
        }
        Ok(())
    }

    fn check_fundef(&mut self, l: &FunDef) -> Result<(), VerifyError> {
        for p in l.params.iter().chain(l.rest.iter()) {
            self.define(*p)?;
        }
        self.check_expr(&l.body, true)
    }

    fn check_bound(&mut self, b: &Bound) -> Result<(), VerifyError> {
        match b {
            Bound::Atom(a) => self.check_atom(a),
            Bound::Prim(op, args) => {
                if op.arity() != args.len() {
                    return Err(VerifyError::new(format!(
                        "`{op}` takes {} operands, given {}",
                        op.arity(),
                        args.len()
                    )));
                }
                match op {
                    PrimOp::SpecHeader(r)
                    | PrimOp::SpecAlloc(r)
                    | PrimOp::SpecRef(r)
                    | PrimOp::SpecSet(r) => {
                        self.check_rep(*r)?;
                        if !matches!(self.registry.info(*r).kind, RepKind::Pointer { .. }) {
                            return Err(VerifyError::new(format!(
                                "`{op}` specialized on non-pointer rep `{}`",
                                self.registry.info(*r).name
                            )));
                        }
                    }
                    _ => {}
                }
                args.iter().try_for_each(|a| self.check_atom(a))
            }
            Bound::Call(callee, args) => {
                self.check_atom(callee)?;
                args.iter().try_for_each(|a| self.check_atom(a))
            }
            Bound::GlobalGet(_) => Ok(()),
            Bound::GlobalSet(_, a) => self.check_atom(a),
            Bound::Lambda(l) => self.check_fundef(l),
            Bound::If(t, then, els) => {
                self.check_atom(t.atom())?;
                self.check_expr(then, false)?;
                self.check_expr(els, false)
            }
            Bound::Body(e) => self.check_expr(e, false),
            Bound::CallKnown(..)
            | Bound::MakeClosure(..)
            | Bound::ClosureRef(_)
            | Bound::ClosurePatch(..) => Err(VerifyError::new(format!(
                "post-closure-conversion form appeared before closure conversion: {b:?}"
            ))),
        }
    }

    fn check_expr(&mut self, e: &Expr, tail: bool) -> Result<(), VerifyError> {
        match e {
            Expr::Let(v, b, body) => {
                self.check_bound(b).map_err(|mut err| {
                    if err.excerpt.is_none() {
                        // Rebuild just this binding for the excerpt.
                        let one = Expr::Let(*v, b.clone(), Box::new(Expr::Ret(Atom::Var(*v))));
                        err.excerpt = Some(excerpt_of(&one));
                    }
                    err
                })?;
                self.define(*v)?;
                self.check_expr(body, tail)
            }
            Expr::If(t, then, els) => {
                self.check_atom(t.atom())?;
                self.check_expr(then, tail)?;
                self.check_expr(els, tail)
            }
            Expr::Ret(a) => self.check_atom(a),
            Expr::TailCall(callee, args) => {
                if !tail {
                    return Err(VerifyError::new("tail call in non-tail position"));
                }
                self.check_atom(callee)?;
                args.iter().try_for_each(|a| self.check_atom(a))
            }
            Expr::TailCallKnown(..) => Err(VerifyError::new(
                "post-closure-conversion form appeared before closure conversion: TailCallKnown",
            )),
            Expr::LetRec(binds, body) => {
                for (v, _) in binds {
                    self.define(*v)?;
                }
                for (_, l) in binds {
                    self.check_fundef(l)?;
                }
                self.check_expr(body, tail)
            }
        }
    }
}

/// Verifies the pre-closure-conversion whole-program expression.
///
/// # Errors
///
/// Returns the first violated invariant, with an IR excerpt when the
/// violation sits inside a `let` binding.
pub fn verify_expr(e: &Expr, registry: &RepRegistry) -> Result<(), VerifyError> {
    Verifier {
        registry,
        defined: HashSet::new(),
    }
    .check_expr(e, true)
}

/// Verifies a closure-converted module: the structural invariants of
/// [`validate_module`] plus representation-registry consistency — every
/// rep literal and specialized op must name a registered rep, specialized
/// memory ops must name pointer reps, and `rep_globals` must only map to
/// registered ids.
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn verify_module(
    m: &Module,
    registry: &RepRegistry,
    rep_globals: &HashMap<GlobalId, RepId>,
) -> Result<(), VerifyError> {
    validate_module(m).map_err(|e| VerifyError::new(e.to_string()))?;
    let check_rep = |r: RepId| -> Result<(), VerifyError> {
        if (r as usize) >= registry.len() {
            return Err(VerifyError::new(format!(
                "rep id {r} is not registered (registry has {} entries)",
                registry.len()
            )));
        }
        Ok(())
    };
    for (g, r) in rep_globals {
        check_rep(*r).map_err(|mut e| {
            e.message = format!("rep-globals table, global {g}: {}", e.message);
            e
        })?;
    }
    for f in &m.funs {
        let mut err = None;
        let name = f.name.as_deref().unwrap_or("anonymous");
        f.body.for_each_atom(&mut |a| {
            if err.is_none() {
                if let Atom::Lit(Literal::Rep(r)) = a {
                    err = check_rep(*r).err();
                }
            }
        });
        walk_spec_ops(&f.body, &mut |op, r| {
            if err.is_some() {
                return;
            }
            err = check_rep(r).err();
            if err.is_none() && !matches!(registry.info(r).kind, RepKind::Pointer { .. }) {
                err = Some(VerifyError::new(format!(
                    "`{op}` specialized on non-pointer rep `{}`",
                    registry.info(r).name
                )));
            }
        });
        if let Some(mut e) = err {
            e.message = format!("in `{name}`: {}", e.message);
            return Err(e);
        }
    }
    Ok(())
}

fn walk_spec_ops(e: &Expr, f: &mut impl FnMut(PrimOp, RepId)) {
    match e {
        Expr::Let(_, b, body) => {
            match b {
                Bound::Prim(op, _) => match op {
                    PrimOp::SpecHeader(r)
                    | PrimOp::SpecAlloc(r)
                    | PrimOp::SpecRef(r)
                    | PrimOp::SpecSet(r) => f(*op, *r),
                    _ => {}
                },
                Bound::If(_, t, e2) => {
                    walk_spec_ops(t, f);
                    walk_spec_ops(e2, f);
                }
                Bound::Body(inner) => walk_spec_ops(inner, f),
                Bound::Lambda(l) => walk_spec_ops(&l.body, f),
                _ => {}
            }
            walk_spec_ops(body, f);
        }
        Expr::If(_, t, e2) => {
            walk_spec_ops(t, f);
            walk_spec_ops(e2, f);
        }
        Expr::LetRec(binds, body) => {
            for (_, l) in binds {
                walk_spec_ops(&l.body, f);
            }
            walk_spec_ops(body, f);
        }
        Expr::Ret(_) | Expr::TailCall(..) | Expr::TailCallKnown(..) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxr_ir::anf::{Fun, Test};

    fn registry() -> (RepRegistry, RepId, RepId) {
        let mut reg = RepRegistry::new();
        let fx = reg.intern_immediate("fixnum", 3, 0, 3).unwrap();
        let pair = reg.intern_pointer("pair", 1, false).unwrap();
        (reg, fx, pair)
    }

    #[test]
    fn accepts_well_formed_pre_cc() {
        let (reg, fx, _) = registry();
        let e = Expr::Let(
            1,
            Bound::Prim(
                PrimOp::RepInject,
                vec![Atom::Lit(Literal::Rep(fx)), Atom::raw(5)],
            ),
            Box::new(Expr::Let(
                2,
                Bound::Lambda(FunDef {
                    params: vec![3],
                    rest: None,
                    body: Box::new(Expr::Ret(Atom::Var(1))),
                    name: None,
                }),
                Box::new(Expr::TailCall(Atom::Var(2), vec![Atom::Var(1)])),
            )),
        );
        assert!(verify_expr(&e, &reg).is_ok());
    }

    #[test]
    fn catches_use_before_definition() {
        let (reg, _, _) = registry();
        let e = Expr::Let(
            1,
            Bound::Atom(Atom::Var(9)),
            Box::new(Expr::Ret(Atom::Var(1))),
        );
        let err = verify_expr(&e, &reg).unwrap_err();
        assert!(err.message.contains("v9"), "{err}");
        assert!(err.excerpt.is_some(), "binding excerpt attached");
    }

    #[test]
    fn catches_double_definition() {
        let (reg, _, _) = registry();
        let e = Expr::Let(
            1,
            Bound::Atom(Atom::raw(1)),
            Box::new(Expr::Let(
                1,
                Bound::Atom(Atom::raw(2)),
                Box::new(Expr::Ret(Atom::Var(1))),
            )),
        );
        let err = verify_expr(&e, &reg).unwrap_err();
        assert!(err.message.contains("defined twice"), "{err}");
    }

    #[test]
    fn catches_prim_arity() {
        let (reg, _, _) = registry();
        let e = Expr::Let(
            1,
            Bound::Prim(PrimOp::WordAdd, vec![Atom::raw(1)]),
            Box::new(Expr::Ret(Atom::Var(1))),
        );
        let err = verify_expr(&e, &reg).unwrap_err();
        assert!(err.message.contains("takes 2 operands"), "{err}");
    }

    #[test]
    fn catches_unregistered_rep_literal() {
        let (reg, _, _) = registry();
        let e = Expr::Let(
            1,
            Bound::Atom(Atom::Lit(Literal::Rep(99))),
            Box::new(Expr::Ret(Atom::Var(1))),
        );
        let err = verify_expr(&e, &reg).unwrap_err();
        assert!(err.message.contains("rep id 99"), "{err}");
    }

    #[test]
    fn catches_tail_call_in_bound_body() {
        let (reg, _, _) = registry();
        let e = Expr::Let(
            1,
            Bound::Body(Box::new(Expr::TailCall(Atom::raw(0), vec![]))),
            Box::new(Expr::Ret(Atom::Var(1))),
        );
        let err = verify_expr(&e, &reg).unwrap_err();
        assert!(err.message.contains("non-tail"), "{err}");
    }

    #[test]
    fn catches_post_cc_forms_pre_cc() {
        let (reg, _, _) = registry();
        let e = Expr::Let(1, Bound::ClosureRef(0), Box::new(Expr::Ret(Atom::Var(1))));
        let err = verify_expr(&e, &reg).unwrap_err();
        assert!(err.message.contains("before closure conversion"), "{err}");
    }

    #[test]
    fn catches_spec_op_on_immediate_rep() {
        let (reg, fx, _) = registry();
        let e = Expr::Let(
            1,
            Bound::Prim(PrimOp::SpecRef(fx), vec![Atom::raw(0), Atom::raw(0)]),
            Box::new(Expr::Ret(Atom::Var(1))),
        );
        let err = verify_expr(&e, &reg).unwrap_err();
        assert!(err.message.contains("non-pointer"), "{err}");
    }

    fn module_with_body(body: Expr) -> Module {
        Module {
            funs: vec![Fun {
                name: Some("main".into()),
                self_var: 0,
                params: vec![],
                rest: None,
                free_count: 0,
                body,
            }],
            main: 0,
            global_names: vec![],
            var_names: vec![],
        }
    }

    #[test]
    fn module_verification_covers_rep_consistency() {
        let (reg, _, pair) = registry();
        let ok = module_with_body(Expr::Let(
            1,
            Bound::Prim(PrimOp::SpecAlloc(pair), vec![Atom::raw(2), Atom::raw(0)]),
            Box::new(Expr::Ret(Atom::Var(1))),
        ));
        assert!(verify_module(&ok, &reg, &HashMap::new()).is_ok());

        let bad = module_with_body(Expr::Let(
            1,
            Bound::Prim(PrimOp::SpecAlloc(77), vec![Atom::raw(2), Atom::raw(0)]),
            Box::new(Expr::Ret(Atom::Var(1))),
        ));
        let err = verify_module(&bad, &reg, &HashMap::new()).unwrap_err();
        assert!(err.message.contains("rep id 77"), "{err}");

        let bad_lit = module_with_body(Expr::Ret(Atom::Lit(Literal::Rep(50))));
        assert!(verify_module(&bad_lit, &reg, &HashMap::new()).is_err());

        let mut rg = HashMap::new();
        rg.insert(0u32, 60u32);
        let clean = module_with_body(Expr::Ret(Atom::raw(0)));
        let err = verify_module(&clean, &reg, &rg).unwrap_err();
        assert!(err.message.contains("rep-globals"), "{err}");
    }

    #[test]
    fn module_verification_wraps_structural_errors() {
        let (reg, _, _) = registry();
        let m = module_with_body(Expr::Ret(Atom::Var(42)));
        let err = verify_module(&m, &reg, &HashMap::new()).unwrap_err();
        assert!(err.message.contains("undefined variable"), "{err}");
    }

    #[test]
    fn conditionals_allow_tail_calls_in_tail_position() {
        let (reg, _, _) = registry();
        let e = Expr::Let(
            1,
            Bound::Atom(Atom::raw(1)),
            Box::new(Expr::If(
                Test::NonZero(Atom::Var(1)),
                Box::new(Expr::TailCall(Atom::Var(1), vec![])),
                Box::new(Expr::Ret(Atom::Var(1))),
            )),
        );
        assert!(verify_expr(&e, &reg).is_ok());
    }
}
