//! Structured diagnostics produced by the rep-safety analyzer.

use std::fmt;
use sxr_ir::anf::FnId;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Statically decidable but not a crash: the code is wasteful or
    /// suspicious (e.g. a representation test with a known outcome).
    Warning,
    /// A provable representation-safety violation: executing the operation
    /// would misinterpret or corrupt memory.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The kind of representation misuse detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagClass {
    /// A projection/field operation through a representation the subject
    /// value provably does not have.
    DisjointRep,
    /// A memory operation (field load/store/length, specialized load/store,
    /// header read) on a word that is provably not a tagged heap pointer —
    /// or any field access through an *immediate* representation.
    RawMemOnImmediate,
    /// A constant field index outside the subject's statically-known
    /// allocation size.
    IndexOutOfBounds,
    /// A `%rep-test` whose outcome is statically known.
    DeadRepTest,
    /// The load-time bytecode verifier rejected the generated code (the
    /// message carries the `{fun, pc, rule}` address; see
    /// `bcverify::Rule`).
    BytecodeReject,
}

impl DiagClass {
    /// The severity this class always carries.
    pub fn severity(self) -> Severity {
        match self {
            DiagClass::DeadRepTest => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// Short stable code for filtering / test assertions.
    pub fn code(self) -> &'static str {
        match self {
            DiagClass::DisjointRep => "rep-disjoint",
            DiagClass::RawMemOnImmediate => "raw-mem-immediate",
            DiagClass::IndexOutOfBounds => "index-bounds",
            DiagClass::DeadRepTest => "dead-rep-test",
            DiagClass::BytecodeReject => "bytecode-reject",
        }
    }
}

/// One analyzer finding, attributed to the containing function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// What kind of misuse this is.
    pub class: DiagClass,
    /// The containing function's index in the module.
    pub fun: FnId,
    /// The containing function's diagnostic name, when it has one.
    pub fun_name: Option<String>,
    /// Human-readable description (includes representation names and the
    /// offending operation).
    pub message: String,
}

impl Diagnostic {
    /// The severity (derived from the class).
    pub fn severity(&self) -> Severity {
        self.class.severity()
    }

    /// True for error-severity findings.
    pub fn is_error(&self) -> bool {
        self.severity() == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity(),
            self.class.code(),
            self.message
        )?;
        match &self.fun_name {
            Some(n) => write!(f, " (in `{n}`)"),
            None => write!(f, " (in f{})", self.fun),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_by_class() {
        assert_eq!(DiagClass::DisjointRep.severity(), Severity::Error);
        assert_eq!(DiagClass::RawMemOnImmediate.severity(), Severity::Error);
        assert_eq!(DiagClass::IndexOutOfBounds.severity(), Severity::Error);
        assert_eq!(DiagClass::DeadRepTest.severity(), Severity::Warning);
    }

    #[test]
    fn display_names_function() {
        let d = Diagnostic {
            class: DiagClass::DisjointRep,
            fun: 3,
            fun_name: Some("car".into()),
            message: "projection of `pair` value through `fixnum`".into(),
        };
        let s = d.to_string();
        assert!(s.starts_with("error[rep-disjoint]:"), "{s}");
        assert!(s.contains("(in `car`)"), "{s}");
    }
}
