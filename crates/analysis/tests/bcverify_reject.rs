//! The adversarial rejection corpus: one hand-crafted program per verifier
//! rule, each asserting the exact `{fun, pc, rule}` address and the stable
//! rule label the rejection carries.
//!
//! These are the programs the bytecode verifier exists to refuse — and the
//! machine-level tests at the bottom prove a rejected program never starts.

use sxr_analysis::bcverify::build::ProgramBuilder;
use sxr_analysis::bcverify::{verifier_hook, verify_program, Rejection, Rule};
use sxr_ir::rep::RepRegistry;
use sxr_vm::{
    BinOp, CmpOp, CodeFun, CodeProgram, Inst, Machine, MachineConfig, RegImm, RepVmOp, VmErrorKind,
};

/// Verifies `prog` and returns the first rejection, asserting there is one.
fn first(prog: &CodeProgram) -> Rejection {
    let report = verify_program(prog);
    report
        .first()
        .unwrap_or_else(|| panic!("expected a rejection, got clean report"))
        .clone()
}

#[track_caller]
fn assert_rejects(prog: &CodeProgram, fun: u32, pc: u32, rule: Rule, label: &str) {
    let r = first(prog);
    assert_eq!(
        (r.fun, r.pc, r.rule),
        (fun, pc, rule),
        "wrong address/rule: {r}"
    );
    assert_eq!(r.rule.label(), label, "label drifted for {rule:?}");
}

/// An encoded classic-scheme fixnum (tag 0, shift 3).
fn fx(n: i64) -> i64 {
    n << 3
}

#[test]
fn reg_oob() {
    let prog = ProgramBuilder::new()
        .fun(
            "main",
            0,
            2,
            vec![Inst::Move { d: 1, s: 5 }, Inst::Ret { s: 1 }],
        )
        .build();
    assert_rejects(&prog, 0, 0, Rule::RegOob, "reg-oob");
}

#[test]
fn jump_oob() {
    let prog = ProgramBuilder::new()
        .fun("main", 0, 2, vec![Inst::Jump { t: 9 }, Inst::Ret { s: 0 }])
        .build();
    assert_rejects(&prog, 0, 0, Rule::JumpOob, "jump-oob");
}

#[test]
fn branch_target_at_end_is_oob() {
    // A branch to `insts.len()` would fall off the end at run time; the
    // bound is strict.
    let prog = ProgramBuilder::new()
        .fun(
            "main",
            0,
            2,
            vec![
                Inst::Const { d: 1, imm: fx(1) },
                Inst::JumpCmp {
                    op: CmpOp::Eq,
                    a: 1,
                    b: RegImm::Imm(0),
                    t: 3,
                },
                Inst::Ret { s: 1 },
            ],
        )
        .build();
    assert_rejects(&prog, 0, 1, Rule::JumpOob, "jump-oob");
}

#[test]
fn pool_oob() {
    let prog = ProgramBuilder::new()
        .fun(
            "main",
            0,
            2,
            vec![Inst::Pool { d: 1, idx: 4 }, Inst::Ret { s: 1 }],
        )
        .build();
    assert_rejects(&prog, 0, 0, Rule::PoolOob, "pool-oob");
}

#[test]
fn global_oob() {
    let prog = ProgramBuilder::new()
        .globals(2)
        .fun(
            "main",
            0,
            2,
            vec![Inst::GlobalGet { d: 1, g: 3 }, Inst::Ret { s: 1 }],
        )
        .build();
    assert_rejects(&prog, 0, 0, Rule::GlobalOob, "global-oob");
}

#[test]
fn fn_oob() {
    let prog = ProgramBuilder::new()
        .fun(
            "main",
            0,
            2,
            vec![
                Inst::CallKnown {
                    d: 1,
                    f: 7,
                    clo: 0,
                    args: vec![],
                },
                Inst::Ret { s: 1 },
            ],
        )
        .build();
    assert_rejects(&prog, 0, 0, Rule::FnOob, "fn-oob");
}

#[test]
fn bad_alloc_of_immediate_rep() {
    // Representation id 0 is `fixnum` in the classic registry.
    let prog = ProgramBuilder::new()
        .fun(
            "main",
            0,
            2,
            vec![
                Inst::Const { d: 1, imm: fx(0) },
                Inst::AllocFill {
                    d: 1,
                    len: RegImm::Imm(2),
                    fill: 1,
                    rep: 0,
                },
                Inst::Ret { s: 1 },
            ],
        )
        .build();
    assert_rejects(&prog, 0, 1, Rule::BadAlloc, "bad-alloc");
}

#[test]
fn bad_alloc_negative_length() {
    let prog = ProgramBuilder::new()
        .fun(
            "main",
            0,
            2,
            vec![
                Inst::Const { d: 1, imm: fx(0) },
                Inst::AllocFill {
                    d: 1,
                    len: RegImm::Imm(-4),
                    fill: 1,
                    rep: 5, // pair
                },
                Inst::Ret { s: 1 },
            ],
        )
        .build();
    assert_rejects(&prog, 0, 1, Rule::BadAlloc, "bad-alloc");
}

#[test]
fn bad_args_rep_operand_count() {
    let prog = ProgramBuilder::new()
        .fun(
            "main",
            0,
            2,
            vec![
                Inst::Rep {
                    op: RepVmOp::Inject,
                    d: 1,
                    args: vec![0],
                },
                Inst::Ret { s: 1 },
            ],
        )
        .build();
    assert_rejects(&prog, 0, 0, Rule::BadArgs, "bad-args");
}

#[test]
fn bad_args_closure_capture_mismatch() {
    let leaf = CodeFun {
        name: "leaf".into(),
        arity: 0,
        variadic: false,
        nregs: 1,
        free_count: 2,
        insts: vec![Inst::Ret { s: 0 }],
        ptr_map: vec![true],
        free_ptr_map: vec![true, true],
    };
    let prog = ProgramBuilder::new()
        .fun(
            "main",
            0,
            2,
            vec![
                Inst::MakeClosure {
                    d: 1,
                    f: 1,
                    free: vec![0], // leaf declares 2 slots
                },
                Inst::Ret { s: 1 },
            ],
        )
        .fun_raw(leaf)
        .build();
    assert_rejects(&prog, 0, 0, Rule::BadArgs, "bad-args");
}

#[test]
fn missing_role() {
    // A registry with only the boot roles: `WriteChar` needs `char`.
    let mut reg = RepRegistry::new();
    let fx_id = reg.intern_immediate("fixnum", 3, 0, 3).unwrap();
    let bo = reg.intern_immediate("boolean", 8, 0b010, 8).unwrap();
    let un = reg
        .intern_immediate("unspecified", 8, 0b0001_0010, 8)
        .unwrap();
    let clo = reg.intern_pointer("closure", 0b111, false).unwrap();
    for (role, id) in [
        ("fixnum", fx_id),
        ("boolean", bo),
        ("unspecified", un),
        ("closure", clo),
    ] {
        reg.provide_role(role, id).unwrap();
    }
    let prog = ProgramBuilder::new()
        .registry(reg)
        .fun(
            "main",
            0,
            2,
            vec![
                Inst::Const { d: 1, imm: fx(65) },
                Inst::WriteChar { s: 1 },
                Inst::Ret { s: 1 },
            ],
        )
        .build();
    assert_rejects(&prog, 0, 1, Rule::MissingRole, "missing-role");
}

#[test]
fn fall_off_end() {
    let prog = ProgramBuilder::new()
        .fun("main", 0, 2, vec![Inst::Const { d: 1, imm: fx(1) }])
        .build();
    assert_rejects(&prog, 0, 0, Rule::FallOffEnd, "fall-off-end");
}

#[test]
fn empty_function_falls_off_immediately() {
    let prog = ProgramBuilder::new().fun("main", 0, 1, vec![]).build();
    assert_rejects(&prog, 0, 0, Rule::FallOffEnd, "fall-off-end");
}

#[test]
fn def_before_use() {
    let prog = ProgramBuilder::new()
        .fun("main", 0, 3, vec![Inst::Ret { s: 2 }])
        .build();
    assert_rejects(&prog, 0, 0, Rule::DefBeforeUse, "def-before-use");
}

#[test]
fn def_before_use_on_one_path_only() {
    // r2 is written on the fall-through path but not the branch path; the
    // join makes it unreadable.
    let prog = ProgramBuilder::new()
        .fun(
            "main",
            0,
            3,
            vec![
                Inst::Const { d: 1, imm: fx(1) },
                Inst::JumpCmp {
                    op: CmpOp::Eq,
                    a: 1,
                    b: RegImm::Imm(0),
                    t: 3,
                },
                Inst::Const { d: 2, imm: fx(9) },
                Inst::Ret { s: 2 },
            ],
        )
        .build();
    assert_rejects(&prog, 0, 3, Rule::DefBeforeUse, "def-before-use");
}

#[test]
fn raw_mem_base() {
    let prog = ProgramBuilder::new()
        .fun(
            "main",
            0,
            3,
            vec![
                Inst::Const { d: 1, imm: fx(1) },
                Inst::Bin {
                    op: BinOp::Add,
                    d: 1,
                    a: 1,
                    b: 1,
                }, // r1 is now a raw word
                Inst::LoadD {
                    d: 2,
                    p: 1,
                    disp: 0,
                },
                Inst::Ret { s: 2 },
            ],
        )
        .build();
    assert_rejects(&prog, 0, 2, Rule::RawMemBase, "raw-mem-base");
}

#[test]
fn const_ptr() {
    // 0b001 is the pair pointer pattern in the classic scheme; the GC
    // would chase it out of a scanned register.
    let prog = ProgramBuilder::new()
        .fun(
            "main",
            0,
            2,
            vec![Inst::Const { d: 1, imm: 0b001 }, Inst::Ret { s: 1 }],
        )
        .build();
    assert_rejects(&prog, 0, 0, Rule::ConstPtr, "const-ptr");
}

#[test]
fn tagged_into_raw() {
    let main = CodeFun {
        name: "main".into(),
        arity: 0,
        variadic: false,
        nregs: 2,
        free_count: 0,
        insts: vec![Inst::GlobalGet { d: 1, g: 0 }, Inst::Ret { s: 1 }],
        ptr_map: vec![true, false], // r1 unscanned, yet holds a global
        free_ptr_map: vec![],
    };
    let prog = ProgramBuilder::new().globals(1).fun_raw(main).build();
    assert_rejects(&prog, 0, 0, Rule::TaggedIntoRaw, "tagged-into-raw");
}

#[test]
fn tagged_into_raw_parameter() {
    // Parameter registers hold tagged values on entry; marking one
    // unscanned hides a root from the collector.
    let f = CodeFun {
        name: "f".into(),
        arity: 1,
        variadic: false,
        nregs: 2,
        free_count: 0,
        insts: vec![Inst::Ret { s: 1 }],
        ptr_map: vec![true, false],
        free_ptr_map: vec![],
    };
    let prog = ProgramBuilder::new()
        .fun(
            "main",
            0,
            2,
            vec![
                Inst::MakeClosure {
                    d: 1,
                    f: 1,
                    free: vec![],
                },
                Inst::Ret { s: 1 },
            ],
        )
        .fun_raw(f)
        .build();
    assert_rejects(&prog, 1, 0, Rule::TaggedIntoRaw, "tagged-into-raw");
}

#[test]
fn tagged_into_raw_slot() {
    let leaf = CodeFun {
        name: "leaf".into(),
        arity: 0,
        variadic: false,
        nregs: 1,
        free_count: 1,
        insts: vec![Inst::Ret { s: 0 }],
        ptr_map: vec![true],
        free_ptr_map: vec![false], // slot 0 unscanned
    };
    let prog = ProgramBuilder::new()
        .globals(1)
        .fun(
            "main",
            0,
            3,
            vec![
                Inst::GlobalGet { d: 1, g: 0 }, // tagged
                Inst::MakeClosure {
                    d: 2,
                    f: 1,
                    free: vec![1],
                },
                Inst::Ret { s: 2 },
            ],
        )
        .fun_raw(leaf)
        .build();
    assert_rejects(&prog, 0, 1, Rule::TaggedIntoRawSlot, "tagged-into-raw-slot");
}

#[test]
fn closure_set_unknown() {
    let prog = ProgramBuilder::new()
        .globals(1)
        .fun(
            "main",
            0,
            2,
            vec![
                Inst::GlobalGet { d: 1, g: 0 },
                Inst::ClosureSet {
                    clo: 1,
                    idx: 0,
                    val: 1,
                },
                Inst::Ret { s: 1 },
            ],
        )
        .build();
    assert_rejects(&prog, 0, 1, Rule::ClosureSetUnknown, "closure-set-unknown");
}

#[test]
fn handler_underflow() {
    let prog = ProgramBuilder::new()
        .fun("main", 0, 2, vec![Inst::PopHandler, Inst::Ret { s: 0 }])
        .build();
    assert_rejects(&prog, 0, 0, Rule::HandlerUnderflow, "handler-underflow");
}

#[test]
fn handler_leak() {
    let prog = ProgramBuilder::new()
        .fun(
            "main",
            0,
            3,
            vec![
                Inst::Const { d: 1, imm: fx(1) },
                Inst::PushHandler { h: 1, d: 2, t: 3 },
                Inst::Ret { s: 1 }, // returns with the handler installed
                Inst::Ret { s: 2 },
            ],
        )
        .build();
    assert_rejects(&prog, 0, 2, Rule::HandlerLeak, "handler-leak");
}

#[test]
fn handler_join_mismatch() {
    let prog = ProgramBuilder::new()
        .fun(
            "main",
            0,
            3,
            vec![
                Inst::Const { d: 1, imm: fx(1) },
                Inst::JumpCmp {
                    op: CmpOp::Eq,
                    a: 1,
                    b: RegImm::Imm(0),
                    t: 3,
                },
                Inst::PushHandler { h: 1, d: 2, t: 5 },
                Inst::Ret { s: 1 }, // joined at depth 0 and depth 1
                Inst::Ret { s: 1 },
                Inst::Ret { s: 2 },
            ],
        )
        .build();
    assert_rejects(
        &prog,
        0,
        3,
        Rule::HandlerJoinMismatch,
        "handler-join-mismatch",
    );
}

#[test]
fn entry_function_oob() {
    let mut prog = ProgramBuilder::new()
        .fun("main", 0, 1, vec![Inst::Ret { s: 0 }])
        .build();
    prog.main = 3;
    assert_rejects(&prog, 3, 0, Rule::FnOob, "fn-oob");
}

#[test]
fn structural_problems_are_collected_exhaustively() {
    let prog = ProgramBuilder::new()
        .fun(
            "main",
            0,
            2,
            vec![
                Inst::Move { d: 1, s: 9 },      // reg-oob
                Inst::Jump { t: 77 },           // jump-oob
                Inst::GlobalGet { d: 1, g: 0 }, // global-oob (no globals)
                Inst::Ret { s: 1 },
            ],
        )
        .build();
    let report = verify_program(&prog);
    let rules: Vec<Rule> = report.rejections.iter().map(|r| r.rule).collect();
    assert_eq!(rules, vec![Rule::RegOob, Rule::JumpOob, Rule::GlobalOob]);
}

// ----- the machine refuses to start on a rejected program -----

#[test]
fn machine_refuses_rejected_program() {
    let prog = ProgramBuilder::new()
        .fun("main", 0, 3, vec![Inst::Ret { s: 2 }])
        .build();
    let config = MachineConfig {
        verifier: Some(verifier_hook),
        ..Default::default()
    };
    let err = Machine::new(prog, config).unwrap_err();
    match err.kind {
        VmErrorKind::RejectedByVerifier { fun, pc, rule } => {
            assert_eq!((fun, pc, rule), (0, 0, "def-before-use"));
        }
        other => panic!("expected RejectedByVerifier, got {other:?}"),
    }
    assert_eq!(err.kind.label(), "rejected-by-verifier");
}

#[test]
fn machine_runs_verified_program_on_fast_path() {
    let prog = ProgramBuilder::new()
        .fun(
            "main",
            0,
            3,
            vec![
                Inst::Const { d: 1, imm: fx(20) },
                Inst::Bin {
                    op: BinOp::Add,
                    d: 2,
                    a: 1,
                    b: 1,
                },
                Inst::Ret { s: 2 },
            ],
        )
        .build();
    let config = MachineConfig {
        verifier: Some(verifier_hook),
        ..Default::default()
    };
    let mut m = Machine::new(prog, config).unwrap();
    assert!(m.is_verified());
    let w = m.run().unwrap();
    assert_eq!(m.describe(w), "40");
}

#[test]
fn unverified_machine_still_runs_checked() {
    let prog = ProgramBuilder::new()
        .fun(
            "main",
            0,
            2,
            vec![Inst::Const { d: 1, imm: fx(7) }, Inst::Ret { s: 1 }],
        )
        .build();
    let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
    assert!(!m.is_verified());
    let w = m.run().unwrap();
    assert_eq!(m.describe(w), "7");
}
