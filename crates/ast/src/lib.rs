//! Front end of the `sxr` pipeline: the core language and the macro
//! expander.
//!
//! The expander turns surface Scheme (read by [`sxr_sexp`]) into a small core
//! language ([`Expr`]) with:
//!
//! * all derived forms desugared (`let`, `let*`, `letrec`, named `let`,
//!   `cond`, `case`, `when`, `unless`, `and`, `or`, `do`, `quasiquote`,
//!   internal `define`),
//! * every lexical variable alpha-renamed to a unique [`VarId`],
//! * top-level `define`s resolved to [`GlobalId`] slots,
//! * `letrec` *fixed* (lambda-only bindings become [`Expr::LetRec`]; anything
//!   else falls back to box-based initialization), and
//! * assignment conversion: `set!` on lexical variables is rewritten to
//!   library `box` / `unbox` / `set-box!` calls, so the rest of the compiler
//!   never sees a mutable lexical variable.
//!
//! Crucially for the paper's thesis, the expander has **no knowledge of data
//! representations**: applications whose head is a `%`-symbol become
//! [`Expr::Prim`] nodes that are resolved (and, in the abstract pipeline,
//! defined by library code) further down the pipeline.
//!
//! # Example
//!
//! ```
//! use sxr_ast::Expander;
//! use sxr_sexp::parse_all;
//!
//! let forms = parse_all("(define (twice x) (fx+ x x)) (twice 21)").unwrap();
//! let mut ex = Expander::new();
//! ex.declare_global("fx+"); // normally provided by the prelude
//! let unit = ex.expand_unit(&forms).unwrap();
//! assert_eq!(unit.items.len(), 2);
//! ```

mod assignconv;
mod core;
mod expand;

pub use crate::core::{Expr, GlobalId, Lambda, Program, TopItem, VarId};
pub use assignconv::convert_assignments;
pub use expand::{ExpandError, Expander, Unit};
