//! The core language produced by the expander.

use sxr_sexp::Datum;

/// A unique identifier for an alpha-renamed lexical variable.
pub type VarId = u32;

/// A slot index into the program's global table.
pub type GlobalId = u32;

/// A core-language expression.
///
/// This is what the whole rest of the compiler consumes.  Note what is *not*
/// here: no `let` (encoded as immediate lambda application), no `cond`/`case`
/// (desugared), and — after [`convert_assignments`](crate::convert_assignments)
/// runs — no assignment to lexical variables.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal or quoted constant.
    Const(Datum),
    /// The unspecified value (result of `set!`, one-armed `if`, etc.).
    Unspecified,
    /// A reference to a lexical variable.
    Var(VarId),
    /// A reference to a global.
    Global(GlobalId),
    /// `(if c t e)`. One-armed `if` gets an [`Expr::Unspecified`] alternative.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// A procedure.
    Lambda(Box<Lambda>),
    /// An application of a computed procedure.
    Call(Box<Expr>, Vec<Expr>),
    /// An application of a compiler sub-primitive (`%word+`, `%rep-ref`, …).
    ///
    /// The expander does not check these names; the IR lowering resolves them
    /// and reports unknown ones. This keeps the front end representation-free.
    Prim(String, Vec<Expr>),
    /// `(begin e1 e2 ...)` — non-empty; value of the last expression.
    Seq(Vec<Expr>),
    /// Assignment to a lexical variable. Present only *before* assignment
    /// conversion; later stages may assume it is gone.
    SetVar(VarId, Box<Expr>),
    /// Assignment to a global.
    SetGlobal(GlobalId, Box<Expr>),
    /// Mutually recursive lambda bindings (the "fixed" letrec case).
    LetRec(Vec<(VarId, Lambda)>, Box<Expr>),
}

impl Expr {
    /// Builds `((lambda (v) body) init)` — the core encoding of `let`.
    pub fn let1(v: VarId, name: Option<String>, init: Expr, body: Expr) -> Expr {
        Expr::Call(
            Box::new(Expr::Lambda(Box::new(Lambda {
                params: vec![v],
                rest: None,
                body,
                name,
            }))),
            vec![init],
        )
    }

    /// Approximate node count, used by inlining heuristics and tests.
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Unspecified | Expr::Var(_) | Expr::Global(_) => 1,
            Expr::If(c, t, e) => 1 + c.size() + t.size() + e.size(),
            Expr::Lambda(l) => 1 + l.body.size(),
            Expr::Call(f, args) => 1 + f.size() + args.iter().map(Expr::size).sum::<usize>(),
            Expr::Prim(_, args) => 1 + args.iter().map(Expr::size).sum::<usize>(),
            Expr::Seq(es) => 1 + es.iter().map(Expr::size).sum::<usize>(),
            Expr::SetVar(_, e) | Expr::SetGlobal(_, e) => 1 + e.size(),
            Expr::LetRec(binds, body) => {
                1 + body.size() + binds.iter().map(|(_, l)| 1 + l.body.size()).sum::<usize>()
            }
        }
    }
}

/// A lambda: parameter list (possibly with a rest parameter) and a body.
#[derive(Debug, Clone, PartialEq)]
pub struct Lambda {
    /// Fixed parameters, in order.
    pub params: Vec<VarId>,
    /// The rest parameter, if variadic: extra arguments arrive as a list
    /// (built by the runtime through the library's `pair`/`null`
    /// representations).
    pub rest: Option<VarId>,
    /// The body (a single expression; `begin` encodes sequences).
    pub body: Expr,
    /// A name for diagnostics (from `define` or `let` binding), if known.
    pub name: Option<String>,
}

/// One top-level item, in program order.
#[derive(Debug, Clone, PartialEq)]
pub enum TopItem {
    /// `(define g init)` — evaluate `init`, store into global `g`.
    Def(GlobalId, Expr),
    /// A top-level expression evaluated for effect/value.
    Expr(Expr),
}

/// A whole program: an ordered sequence of top-level items plus name tables.
///
/// The program value is the value of the last [`TopItem::Expr`] (or
/// unspecified if there is none).
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Top-level items in evaluation order (prelude first, then user code).
    pub items: Vec<TopItem>,
    /// `VarId ->` source name (for diagnostics).
    pub var_names: Vec<String>,
    /// `GlobalId ->` source name.
    pub global_names: Vec<String>,
}

impl Program {
    /// Looks up a global slot by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.global_names
            .iter()
            .position(|n| n == name)
            .map(|i| i as GlobalId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_counts_nodes() {
        let e = Expr::If(
            Box::new(Expr::Var(0)),
            Box::new(Expr::Const(Datum::Fixnum(1))),
            Box::new(Expr::Unspecified),
        );
        assert_eq!(e.size(), 4);
    }

    #[test]
    fn let1_encodes_application() {
        let e = Expr::let1(3, None, Expr::Const(Datum::Fixnum(1)), Expr::Var(3));
        match e {
            Expr::Call(f, args) => {
                assert_eq!(args.len(), 1);
                assert!(matches!(*f, Expr::Lambda(_)));
            }
            _ => panic!("expected call"),
        }
    }
}
