//! The macro expander: surface Scheme → core language.

use crate::core::{Expr, GlobalId, Lambda, Program, TopItem, VarId};
use std::collections::HashMap;
use std::fmt;
use sxr_sexp::Datum;

/// An error produced during expansion, with the offending form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpandError {
    /// Human-readable description.
    pub message: String,
    /// The form being expanded when the error occurred (printed).
    pub form: String,
}

impl ExpandError {
    fn new(message: impl Into<String>, form: &Datum) -> ExpandError {
        ExpandError {
            message: message.into(),
            form: form.to_string(),
        }
    }
}

impl fmt::Display for ExpandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expand error: {} in `{}`", self.message, self.form)
    }
}

impl std::error::Error for ExpandError {}

/// The expanded form of one compilation unit (e.g. the prelude, or the user
/// program), sharing the [`Expander`]'s global table with other units.
#[derive(Debug, Clone, Default)]
pub struct Unit {
    /// Top-level items in order.
    pub items: Vec<TopItem>,
}

/// Names treated as syntax when not lexically shadowed.
const KEYWORDS: &[&str] = &[
    "quote",
    "quasiquote",
    "unquote",
    "unquote-splicing",
    "if",
    "lambda",
    "define",
    "set!",
    "begin",
    "let",
    "let*",
    "letrec",
    "letrec*",
    "cond",
    "case",
    "when",
    "unless",
    "and",
    "or",
    "do",
    "else",
    "=>",
    "define-record-type",
    "guard",
];

/// Lexical environment: a chain of scopes.
struct Env<'a> {
    vars: HashMap<String, VarId>,
    parent: Option<&'a Env<'a>>,
}

impl<'a> Env<'a> {
    fn root() -> Env<'static> {
        Env {
            vars: HashMap::new(),
            parent: None,
        }
    }

    fn child(&'a self) -> Env<'a> {
        Env {
            vars: HashMap::new(),
            parent: Some(self),
        }
    }

    fn lookup(&self, name: &str) -> Option<VarId> {
        match self.vars.get(name) {
            Some(&v) => Some(v),
            None => self.parent.and_then(|p| p.lookup(name)),
        }
    }
}

/// The macro expander.
///
/// One expander instance owns the global-name table and the alpha-renaming
/// counter for a whole program; expand the prelude and the user program
/// through the *same* expander, then call [`Expander::into_program`].
#[derive(Debug, Default)]
pub struct Expander {
    global_names: Vec<String>,
    global_index: HashMap<String, GlobalId>,
    var_names: Vec<String>,
}

impl Expander {
    /// Creates an empty expander.
    pub fn new() -> Expander {
        Expander::default()
    }

    /// Declares (or looks up) a global slot for `name`.
    pub fn declare_global(&mut self, name: &str) -> GlobalId {
        if let Some(&g) = self.global_index.get(name) {
            return g;
        }
        let g = self.global_names.len() as GlobalId;
        self.global_names.push(name.to_string());
        self.global_index.insert(name.to_string(), g);
        g
    }

    /// Looks up an existing global slot.
    pub fn global(&self, name: &str) -> Option<GlobalId> {
        self.global_index.get(name).copied()
    }

    /// Allocates a fresh alpha-renamed variable.
    pub fn fresh_var(&mut self, name: &str) -> VarId {
        let v = self.var_names.len() as VarId;
        self.var_names.push(name.to_string());
        v
    }

    /// Number of globals declared so far.
    pub fn global_count(&self) -> usize {
        self.global_names.len()
    }

    /// Expands a sequence of top-level forms into a [`Unit`].
    ///
    /// # Errors
    ///
    /// Returns an [`ExpandError`] on syntax errors or unbound variables.
    pub fn expand_unit(&mut self, forms: &[Datum]) -> Result<Unit, ExpandError> {
        // Splice top-level (begin ...) forms.
        let mut flat0 = Vec::new();
        flatten_toplevel(forms, &mut flat0);
        // Desugar record definitions into ordinary defines over the
        // representation facility.
        let mut flat = Vec::new();
        for d in flat0 {
            if d.is_form("define-record-type") {
                flat.extend(expand_record_type(&d)?);
            } else {
                flat.push(d);
            }
        }
        // Pre-declare all defines so forward references resolve.
        for d in &flat {
            if let Some((name, _)) = parse_define(d)? {
                self.declare_global(&name);
            }
        }
        let env = Env::root();
        let mut items = Vec::new();
        for d in &flat {
            if let Some((name, init)) = parse_define(d)? {
                let g = self.declare_global(&name);
                let init_expr = match init {
                    Some(form) => self.expand_named(&form, &env, Some(&name))?,
                    None => Expr::Unspecified,
                };
                items.push(TopItem::Def(g, init_expr));
            } else {
                items.push(TopItem::Expr(self.expand(d, &env)?));
            }
        }
        Ok(Unit { items })
    }

    /// Consumes the expander, assembling units (in order) into a [`Program`].
    pub fn into_program(self, units: Vec<Unit>) -> Program {
        let mut items = Vec::new();
        for u in units {
            items.extend(u.items);
        }
        Program {
            items,
            var_names: self.var_names,
            global_names: self.global_names,
        }
    }

    /// Expands one expression in the empty lexical environment (for tests
    /// and tools).
    ///
    /// # Errors
    ///
    /// Returns an [`ExpandError`] on syntax errors or unbound variables.
    pub fn expand_expr(&mut self, d: &Datum) -> Result<Expr, ExpandError> {
        self.expand(d, &Env::root())
    }

    fn expand(&mut self, d: &Datum, env: &Env<'_>) -> Result<Expr, ExpandError> {
        self.expand_named(d, env, None)
    }

    /// `name_hint` propagates a `define`d name onto a lambda for diagnostics.
    fn expand_named(
        &mut self,
        d: &Datum,
        env: &Env<'_>,
        name_hint: Option<&str>,
    ) -> Result<Expr, ExpandError> {
        match d {
            Datum::Fixnum(_)
            | Datum::Bool(_)
            | Datum::Char(_)
            | Datum::String(_)
            | Datum::Vector(_) => Ok(Expr::Const(d.clone())),
            Datum::Symbol(s) => self.expand_var(s, d, env),
            Datum::Improper(..) => Err(ExpandError::new("dotted list in expression position", d)),
            Datum::List(items) => {
                if items.is_empty() {
                    return Err(ExpandError::new("empty application", d));
                }
                if let Some(head) = items[0].as_symbol() {
                    if env.lookup(head).is_none() {
                        if KEYWORDS.contains(&head) {
                            return self.expand_special(head, d, items, env, name_hint);
                        }
                        if let Some(prim) = head.strip_prefix('%') {
                            let args = self.expand_all(&items[1..], env)?;
                            return Ok(Expr::Prim(prim.to_string(), args));
                        }
                    }
                }
                let f = self.expand(&items[0], env)?;
                let args = self.expand_all(&items[1..], env)?;
                Ok(Expr::Call(Box::new(f), args))
            }
        }
    }

    fn expand_var(&mut self, s: &str, d: &Datum, env: &Env<'_>) -> Result<Expr, ExpandError> {
        if let Some(v) = env.lookup(s) {
            return Ok(Expr::Var(v));
        }
        if let Some(g) = self.global(s) {
            return Ok(Expr::Global(g));
        }
        if s.starts_with('%') {
            return Err(ExpandError::new(
                "sub-primitives are not first-class values; wrap in a lambda",
                d,
            ));
        }
        if KEYWORDS.contains(&s) {
            return Err(ExpandError::new("keyword used as a variable", d));
        }
        Err(ExpandError::new(format!("unbound variable `{s}`"), d))
    }

    fn expand_all(&mut self, ds: &[Datum], env: &Env<'_>) -> Result<Vec<Expr>, ExpandError> {
        ds.iter().map(|d| self.expand(d, env)).collect()
    }

    fn global_ref(&mut self, name: &str, at: &Datum) -> Result<Expr, ExpandError> {
        match self.global(name) {
            Some(g) => Ok(Expr::Global(g)),
            None => Err(ExpandError::new(
                format!("expansion requires library procedure `{name}` (is the prelude loaded?)"),
                at,
            )),
        }
    }

    fn expand_special(
        &mut self,
        head: &str,
        d: &Datum,
        items: &[Datum],
        env: &Env<'_>,
        name_hint: Option<&str>,
    ) -> Result<Expr, ExpandError> {
        let args = &items[1..];
        match head {
            "quote" => match args {
                [q] => Ok(Expr::Const(q.clone())),
                _ => Err(ExpandError::new("quote takes one argument", d)),
            },
            "if" => match args {
                [c, t] => Ok(Expr::If(
                    Box::new(self.expand(c, env)?),
                    Box::new(self.expand(t, env)?),
                    Box::new(Expr::Unspecified),
                )),
                [c, t, e] => Ok(Expr::If(
                    Box::new(self.expand(c, env)?),
                    Box::new(self.expand(t, env)?),
                    Box::new(self.expand(e, env)?),
                )),
                _ => Err(ExpandError::new("if takes 2 or 3 arguments", d)),
            },
            "lambda" => {
                if args.is_empty() {
                    return Err(ExpandError::new(
                        "lambda needs a parameter list and body",
                        d,
                    ));
                }
                let lam = self.expand_lambda(&args[0], &args[1..], env, name_hint)?;
                Ok(Expr::Lambda(Box::new(lam)))
            }
            "begin" => {
                if args.is_empty() {
                    Ok(Expr::Unspecified)
                } else {
                    let es = self.expand_all(args, env)?;
                    Ok(seq(es))
                }
            }
            "set!" => match args {
                [Datum::Symbol(name), value] => {
                    let v = self.expand(value, env)?;
                    if let Some(var) = env.lookup(name) {
                        Ok(Expr::SetVar(var, Box::new(v)))
                    } else if let Some(g) = self.global(name) {
                        Ok(Expr::SetGlobal(g, Box::new(v)))
                    } else {
                        Err(ExpandError::new(
                            format!("set! of unbound variable `{name}`"),
                            d,
                        ))
                    }
                }
                _ => Err(ExpandError::new("set! takes a variable and a value", d)),
            },
            "define" => Err(ExpandError::new(
                "define is only allowed at top level or at the head of a body",
                d,
            )),
            "let" => self.expand_let(d, args, env),
            "let*" => self.expand_let_star(d, args, env),
            "letrec" | "letrec*" => {
                let binds = parse_bindings(d, args.first())?;
                let named: Vec<(String, Datum)> = binds
                    .iter()
                    .map(|(n, init)| (n.clone(), init.clone()))
                    .collect();
                self.expand_letrec(d, &named, &args[1..], env)
            }
            "cond" => self.expand_cond(d, args, env),
            "case" => self.expand_case(d, args, env),
            "when" => match args {
                [] => Err(ExpandError::new("when needs a test", d)),
                [test, body @ ..] => {
                    let t = self.expand(test, env)?;
                    let b = if body.is_empty() {
                        Expr::Unspecified
                    } else {
                        seq(self.expand_all(body, env)?)
                    };
                    Ok(Expr::If(
                        Box::new(t),
                        Box::new(b),
                        Box::new(Expr::Unspecified),
                    ))
                }
            },
            "unless" => match args {
                [] => Err(ExpandError::new("unless needs a test", d)),
                [test, body @ ..] => {
                    let t = self.expand(test, env)?;
                    let b = if body.is_empty() {
                        Expr::Unspecified
                    } else {
                        seq(self.expand_all(body, env)?)
                    };
                    Ok(Expr::If(
                        Box::new(t),
                        Box::new(Expr::Unspecified),
                        Box::new(b),
                    ))
                }
            },
            "and" => self.expand_and(args, env),
            "or" => self.expand_or(args, env),
            "do" => self.expand_do(d, args, env),
            "quasiquote" => match args {
                [q] => self.expand_quasi(q, 1, env, d),
                _ => Err(ExpandError::new("quasiquote takes one argument", d)),
            },
            "unquote" | "unquote-splicing" => {
                Err(ExpandError::new("unquote outside quasiquote", d))
            }
            "define-record-type" => Err(ExpandError::new(
                "define-record-type is only allowed at top level",
                d,
            )),
            "guard" => self.expand_guard(d, args, env),
            "else" | "=>" => Err(ExpandError::new("misplaced keyword", d)),
            _ => unreachable!("keyword list covers all cases"),
        }
    }

    /// `(guard (var clause ...) body ...)` — R7RS-style condition catch,
    /// desugared onto the trap primitive:
    ///
    /// ```text
    /// (%trap-call (lambda (var) (cond clause ... (else (%raise var))))
    ///             (lambda () body ...))
    /// ```
    ///
    /// The `else` arm is added only when the clauses lack one, so an
    /// unmatched condition re-raises to the next enclosing handler.
    fn expand_guard(
        &mut self,
        d: &Datum,
        args: &[Datum],
        env: &Env<'_>,
    ) -> Result<Expr, ExpandError> {
        let [spec, body @ ..] = args else {
            return Err(ExpandError::new(
                "guard needs a (var clause ...) spec and a body",
                d,
            ));
        };
        let Some(spec_items) = spec.as_list() else {
            return Err(ExpandError::new("guard spec must be (var clause ...)", d));
        };
        let [Datum::Symbol(var), clauses @ ..] = spec_items else {
            return Err(ExpandError::new("guard spec must start with a variable", d));
        };
        if body.is_empty() {
            return Err(ExpandError::new("guard needs a body", d));
        }
        let mut cond_clauses: Vec<Datum> = clauses.to_vec();
        if !clauses.iter().any(|c| c.is_form("else")) {
            cond_clauses.push(Datum::form(
                "else",
                vec![Datum::form("%raise", vec![Datum::Symbol(var.clone())])],
            ));
        }
        let mut handler_parts = vec![Datum::List(vec![Datum::Symbol(var.clone())])];
        handler_parts.push(Datum::form("cond", cond_clauses));
        let handler = Datum::form("lambda", handler_parts);
        let mut thunk_parts = vec![Datum::nil()];
        thunk_parts.extend(body.iter().cloned());
        let thunk = Datum::form("lambda", thunk_parts);
        let desugared = Datum::form("%trap-call", vec![handler, thunk]);
        self.expand(&desugared, env)
    }

    fn expand_lambda(
        &mut self,
        params: &Datum,
        body: &[Datum],
        env: &Env<'_>,
        name_hint: Option<&str>,
    ) -> Result<Lambda, ExpandError> {
        let sym_of = |p: &Datum| -> Result<String, ExpandError> {
            p.as_symbol()
                .map(str::to_string)
                .ok_or_else(|| ExpandError::new("parameter must be a symbol", p))
        };
        let (names, rest_name): (Vec<String>, Option<String>) = match params {
            Datum::List(ps) => (ps.iter().map(&sym_of).collect::<Result<_, _>>()?, None),
            Datum::Symbol(r) => (Vec::new(), Some(r.clone())),
            Datum::Improper(ps, tail) => (
                ps.iter().map(&sym_of).collect::<Result<_, _>>()?,
                Some(sym_of(tail)?),
            ),
            _ => return Err(ExpandError::new("bad parameter list", params)),
        };
        let mut scope = env.child();
        let mut ids = Vec::with_capacity(names.len());
        for n in &names {
            let v = self.fresh_var(n);
            if scope.vars.insert(n.to_string(), v).is_some() {
                return Err(ExpandError::new(
                    format!("duplicate parameter `{n}`"),
                    params,
                ));
            }
            ids.push(v);
        }
        let rest = match &rest_name {
            Some(n) => {
                let v = self.fresh_var(n);
                if scope.vars.insert(n.clone(), v).is_some() {
                    return Err(ExpandError::new(
                        format!("duplicate parameter `{n}`"),
                        params,
                    ));
                }
                Some(v)
            }
            None => None,
        };
        let body = self.expand_body(body, &scope, params)?;
        Ok(Lambda {
            params: ids,
            rest,
            body,
            name: name_hint.map(str::to_string),
        })
    }

    /// Expands a `<body>`: leading internal defines become a letrec*.
    fn expand_body(
        &mut self,
        forms: &[Datum],
        env: &Env<'_>,
        at: &Datum,
    ) -> Result<Expr, ExpandError> {
        if forms.is_empty() {
            return Err(ExpandError::new("empty body", at));
        }
        let mut defines = Vec::new();
        let mut rest = forms;
        while let Some(first) = rest.first() {
            match parse_define(first)? {
                Some((name, init)) => {
                    defines.push((name, init.unwrap_or_else(|| Datum::form("begin", vec![]))));
                    rest = &rest[1..];
                }
                None => break,
            }
        }
        if rest.is_empty() {
            return Err(ExpandError::new("body has only definitions", at));
        }
        if defines.is_empty() {
            let es = self.expand_all(rest, env)?;
            return Ok(seq(es));
        }
        self.expand_letrec(at, &defines, rest, env)
    }

    fn expand_let(
        &mut self,
        d: &Datum,
        args: &[Datum],
        env: &Env<'_>,
    ) -> Result<Expr, ExpandError> {
        // Named let?
        if let Some(Datum::Symbol(loop_name)) = args.first() {
            let binds = parse_bindings(d, args.get(1))?;
            let body = &args[2..];
            // (let loop ((x e) ...) body) =>
            // (letrec ((loop (lambda (x ...) body))) (loop e ...))
            let lambda = Datum::form("lambda", {
                let params = Datum::List(
                    binds
                        .iter()
                        .map(|(n, _)| Datum::Symbol(n.clone()))
                        .collect(),
                );
                let mut v = vec![params];
                v.extend_from_slice(body);
                v
            });
            let mut scope = env.child();
            let loop_var = self.fresh_var(loop_name);
            scope.vars.insert(loop_name.clone(), loop_var);
            let call = Datum::List({
                let mut v = vec![Datum::Symbol(loop_name.clone())];
                v.extend(binds.iter().map(|(_, init)| init.clone()));
                v
            });
            return self.expand_letrec_prebound(d, vec![(loop_var, lambda)], &[call], &scope);
        }
        let binds = parse_bindings(d, args.first())?;
        let body = &args[1..];
        // Expand initializers in the outer environment.
        let inits = binds
            .iter()
            .map(|(n, init)| self.expand_named(init, env, Some(n)))
            .collect::<Result<Vec<_>, _>>()?;
        let mut scope = env.child();
        let mut ids = Vec::new();
        for (n, _) in &binds {
            let v = self.fresh_var(n);
            scope.vars.insert(n.clone(), v);
            ids.push(v);
        }
        let body = self.expand_body(body, &scope, d)?;
        Ok(Expr::Call(
            Box::new(Expr::Lambda(Box::new(Lambda {
                params: ids,
                rest: None,
                body,
                name: None,
            }))),
            inits,
        ))
    }

    fn expand_let_star(
        &mut self,
        d: &Datum,
        args: &[Datum],
        env: &Env<'_>,
    ) -> Result<Expr, ExpandError> {
        let binds = parse_bindings(d, args.first())?;
        let body = &args[1..];
        self.expand_let_star_rec(d, &binds, body, env)
    }

    fn expand_let_star_rec(
        &mut self,
        d: &Datum,
        binds: &[(String, Datum)],
        body: &[Datum],
        env: &Env<'_>,
    ) -> Result<Expr, ExpandError> {
        match binds.split_first() {
            None => self.expand_body(body, env, d),
            Some(((name, init), rest)) => {
                let init_e = self.expand_named(init, env, Some(name))?;
                let mut scope = env.child();
                let v = self.fresh_var(name);
                scope.vars.insert(name.clone(), v);
                let inner = self.expand_let_star_rec(d, rest, body, &scope)?;
                Ok(Expr::let1(v, Some(name.clone()), init_e, inner))
            }
        }
    }

    /// Expands letrec bindings given as `(name, init-datum)` pairs, with
    /// `body` forms, creating the recursive scope itself.
    fn expand_letrec(
        &mut self,
        d: &Datum,
        binds: &[(String, Datum)],
        body: &[Datum],
        env: &Env<'_>,
    ) -> Result<Expr, ExpandError> {
        let mut scope = env.child();
        let mut prebound = Vec::new();
        for (n, init) in binds {
            let v = self.fresh_var(n);
            if scope.vars.insert(n.clone(), v).is_some() {
                return Err(ExpandError::new(
                    format!("duplicate letrec binding `{n}`"),
                    d,
                ));
            }
            prebound.push((v, init.clone()));
        }
        self.expand_letrec_prebound(d, prebound, body, &scope)
    }

    /// The core of letrec expansion ("fixing letrec"): bindings whose
    /// initializers are all lambdas and whose variables are never assigned
    /// become [`Expr::LetRec`]; otherwise we fall back to box-based
    /// initialization through the library's `box`/`unbox`/`set-box!`.
    fn expand_letrec_prebound(
        &mut self,
        d: &Datum,
        binds: Vec<(VarId, Datum)>,
        body: &[Datum],
        scope: &Env<'_>,
    ) -> Result<Expr, ExpandError> {
        let mut inits = Vec::new();
        for (v, init) in &binds {
            let name = self.var_names[*v as usize].clone();
            inits.push(self.expand_named(init, scope, Some(&name))?);
        }
        let body = self.expand_body(body, scope, d)?;
        let ids: Vec<VarId> = binds.iter().map(|(v, _)| *v).collect();
        let all_lambda = inits.iter().all(|e| matches!(e, Expr::Lambda(_)));
        let any_assigned = {
            let mut found = false;
            for e in inits.iter().chain(std::iter::once(&body)) {
                if assigns_any(e, &ids) {
                    found = true;
                    break;
                }
            }
            found
        };
        if all_lambda && !any_assigned {
            let bindings = ids
                .into_iter()
                .zip(inits)
                .map(|(v, e)| match e {
                    Expr::Lambda(l) => (v, *l),
                    _ => unreachable!("checked all_lambda"),
                })
                .collect();
            return Ok(Expr::LetRec(bindings, Box::new(body)));
        }
        // Fallback: ((lambda (x ...) (set-box! x init) ... body*) (box unspec) ...)
        // where reads of x in init/body become (unbox x).
        let box_g = self.global_ref("box", d)?;
        let unbox_g = self.global_ref("unbox", d)?;
        let setbox_g = self.global_ref("set-box!", d)?;
        let mut forms = Vec::new();
        for (v, init) in ids.iter().zip(inits) {
            let init = boxify(init, &ids, &unbox_g, &setbox_g);
            forms.push(Expr::Call(
                Box::new(setbox_g.clone()),
                vec![Expr::Var(*v), init],
            ));
        }
        forms.push(boxify(body, &ids, &unbox_g, &setbox_g));
        let lam = Lambda {
            params: ids.clone(),
            rest: None,
            body: seq(forms),
            name: None,
        };
        let boxes = ids
            .iter()
            .map(|_| Expr::Call(Box::new(box_g.clone()), vec![Expr::Unspecified]))
            .collect();
        Ok(Expr::Call(Box::new(Expr::Lambda(Box::new(lam))), boxes))
    }

    fn expand_cond(
        &mut self,
        d: &Datum,
        clauses: &[Datum],
        env: &Env<'_>,
    ) -> Result<Expr, ExpandError> {
        let Some((clause, rest)) = clauses.split_first() else {
            return Ok(Expr::Unspecified);
        };
        let parts = clause
            .as_list()
            .ok_or_else(|| ExpandError::new("cond clause must be a list", clause))?;
        match parts {
            [] => Err(ExpandError::new("empty cond clause", clause)),
            [Datum::Symbol(s), body @ ..] if s == "else" => {
                if !rest.is_empty() {
                    return Err(ExpandError::new("else clause must be last", d));
                }
                if body.is_empty() {
                    return Err(ExpandError::new("empty else clause", clause));
                }
                Ok(seq(self.expand_all(body, env)?))
            }
            [test] => {
                // (cond (t) rest...) => (let ((x t)) (if x x rest))
                let t = self.expand(test, env)?;
                let v = self.fresh_var("cond-t");
                let k = self.expand_cond(d, rest, env)?;
                Ok(Expr::let1(
                    v,
                    None,
                    t,
                    Expr::If(Box::new(Expr::Var(v)), Box::new(Expr::Var(v)), Box::new(k)),
                ))
            }
            [test, Datum::Symbol(arrow), recv] if arrow == "=>" => {
                let t = self.expand(test, env)?;
                let f = self.expand(recv, env)?;
                let v = self.fresh_var("cond-t");
                let k = self.expand_cond(d, rest, env)?;
                Ok(Expr::let1(
                    v,
                    None,
                    t,
                    Expr::If(
                        Box::new(Expr::Var(v)),
                        Box::new(Expr::Call(Box::new(f), vec![Expr::Var(v)])),
                        Box::new(k),
                    ),
                ))
            }
            [test, body @ ..] => {
                let t = self.expand(test, env)?;
                let b = seq(self.expand_all(body, env)?);
                let k = self.expand_cond(d, rest, env)?;
                Ok(Expr::If(Box::new(t), Box::new(b), Box::new(k)))
            }
        }
    }

    fn expand_case(
        &mut self,
        d: &Datum,
        args: &[Datum],
        env: &Env<'_>,
    ) -> Result<Expr, ExpandError> {
        let Some((key, clauses)) = args.split_first() else {
            return Err(ExpandError::new("case needs a key", d));
        };
        let key_e = self.expand(key, env)?;
        let v = self.fresh_var("case-k");
        let eqv = self.global_ref("eqv?", d)?;
        let body = self.expand_case_clauses(d, clauses, v, &eqv, env)?;
        Ok(Expr::let1(v, None, key_e, body))
    }

    fn expand_case_clauses(
        &mut self,
        d: &Datum,
        clauses: &[Datum],
        key: VarId,
        eqv: &Expr,
        env: &Env<'_>,
    ) -> Result<Expr, ExpandError> {
        let Some((clause, rest)) = clauses.split_first() else {
            return Ok(Expr::Unspecified);
        };
        let parts = clause
            .as_list()
            .ok_or_else(|| ExpandError::new("case clause must be a list", clause))?;
        match parts {
            [Datum::Symbol(s), body @ ..] if s == "else" => {
                if !rest.is_empty() {
                    return Err(ExpandError::new("else clause must be last", d));
                }
                Ok(seq(self.expand_all(body, env)?))
            }
            [Datum::List(data), body @ ..] => {
                // (or (eqv? k 'd1) (eqv? k 'd2) ...)
                let mut test: Option<Expr> = None;
                for datum in data.iter().rev() {
                    let cmp = Expr::Call(
                        Box::new(eqv.clone()),
                        vec![Expr::Var(key), Expr::Const(datum.clone())],
                    );
                    test = Some(match test {
                        None => cmp,
                        Some(t) => Expr::If(
                            Box::new(cmp),
                            Box::new(Expr::Const(Datum::Bool(true))),
                            Box::new(t),
                        ),
                    });
                }
                let test = test.unwrap_or(Expr::Const(Datum::Bool(false)));
                let b = seq(self.expand_all(body, env)?);
                let k = self.expand_case_clauses(d, rest, key, eqv, env)?;
                Ok(Expr::If(Box::new(test), Box::new(b), Box::new(k)))
            }
            _ => Err(ExpandError::new("bad case clause", clause)),
        }
    }

    fn expand_and(&mut self, args: &[Datum], env: &Env<'_>) -> Result<Expr, ExpandError> {
        match args {
            [] => Ok(Expr::Const(Datum::Bool(true))),
            [e] => self.expand(e, env),
            [e, rest @ ..] => {
                let head = self.expand(e, env)?;
                let tail = self.expand_and(rest, env)?;
                Ok(Expr::If(
                    Box::new(head),
                    Box::new(tail),
                    Box::new(Expr::Const(Datum::Bool(false))),
                ))
            }
        }
    }

    fn expand_or(&mut self, args: &[Datum], env: &Env<'_>) -> Result<Expr, ExpandError> {
        match args {
            [] => Ok(Expr::Const(Datum::Bool(false))),
            [e] => self.expand(e, env),
            [e, rest @ ..] => {
                let head = self.expand(e, env)?;
                let v = self.fresh_var("or-t");
                let tail = self.expand_or(rest, env)?;
                Ok(Expr::let1(
                    v,
                    None,
                    head,
                    Expr::If(
                        Box::new(Expr::Var(v)),
                        Box::new(Expr::Var(v)),
                        Box::new(tail),
                    ),
                ))
            }
        }
    }

    fn expand_do(&mut self, d: &Datum, args: &[Datum], env: &Env<'_>) -> Result<Expr, ExpandError> {
        let [specs, exit, commands @ ..] = args else {
            return Err(ExpandError::new("do needs bindings and an exit clause", d));
        };
        let specs = specs
            .as_list()
            .ok_or_else(|| ExpandError::new("do bindings must be a list", d))?;
        let mut names = Vec::new();
        let mut inits = Vec::new();
        let mut steps = Vec::new();
        for s in specs {
            let parts = s
                .as_list()
                .ok_or_else(|| ExpandError::new("bad do binding", s))?;
            match parts {
                [Datum::Symbol(n), init] => {
                    names.push(n.clone());
                    inits.push(init.clone());
                    steps.push(Datum::Symbol(n.clone()));
                }
                [Datum::Symbol(n), init, step] => {
                    names.push(n.clone());
                    inits.push(init.clone());
                    steps.push(step.clone());
                }
                _ => return Err(ExpandError::new("bad do binding", s)),
            }
        }
        let exit_parts = exit
            .as_list()
            .ok_or_else(|| ExpandError::new("bad do exit clause", exit))?;
        let [test, results @ ..] = exit_parts else {
            return Err(ExpandError::new("do exit clause needs a test", exit));
        };
        // (do ((v i s)...) (test r...) cmd...) =>
        // (let %do-loop ((v i)...)
        //   (if test (begin r...) (begin cmd... (%do-loop s...))))
        let loop_sym = Datum::Symbol("do-loop".to_string());
        let recur = Datum::List({
            let mut v = vec![loop_sym.clone()];
            v.extend(steps);
            v
        });
        let mut else_branch = commands.to_vec();
        else_branch.push(recur);
        let then_branch = if results.is_empty() {
            Datum::form("begin", vec![])
        } else {
            Datum::form("begin", results.to_vec())
        };
        let if_form = Datum::form(
            "if",
            vec![test.clone(), then_branch, Datum::form("begin", else_branch)],
        );
        let named_let = Datum::form("let", {
            let mut v = vec![loop_sym];
            v.push(Datum::List(
                names
                    .iter()
                    .zip(&inits)
                    .map(|(n, i)| Datum::List(vec![Datum::Symbol(n.clone()), i.clone()]))
                    .collect(),
            ));
            v.push(if_form);
            v
        });
        self.expand(&named_let, env)
    }

    fn expand_quasi(
        &mut self,
        d: &Datum,
        depth: u32,
        env: &Env<'_>,
        at: &Datum,
    ) -> Result<Expr, ExpandError> {
        // (unquote x)
        if let Datum::List(items) = d {
            if items.len() == 2 && items[0].as_symbol() == Some("unquote") {
                if depth == 1 {
                    return self.expand(&items[1], env);
                }
                let inner = self.expand_quasi(&items[1], depth - 1, env, at)?;
                return self.qq_list2(Expr::Const(Datum::Symbol("unquote".into())), inner, at);
            }
            if items.len() == 2 && items[0].as_symbol() == Some("quasiquote") {
                let inner = self.expand_quasi(&items[1], depth + 1, env, at)?;
                return self.qq_list2(Expr::Const(Datum::Symbol("quasiquote".into())), inner, at);
            }
        }
        match d {
            Datum::List(items) => self.expand_quasi_list(items, None, depth, env, at),
            Datum::Improper(items, tail) => {
                self.expand_quasi_list(items, Some(tail), depth, env, at)
            }
            Datum::Vector(items) => {
                let as_list = self.expand_quasi_list(items, None, depth, env, at)?;
                let l2v = self.global_ref("list->vector", at)?;
                Ok(Expr::Call(Box::new(l2v), vec![as_list]))
            }
            atom => Ok(Expr::Const(atom.clone())),
        }
    }

    fn expand_quasi_list(
        &mut self,
        items: &[Datum],
        tail: Option<&Datum>,
        depth: u32,
        env: &Env<'_>,
        at: &Datum,
    ) -> Result<Expr, ExpandError> {
        // Recognize the dotted-unquote case `(a . ,b)`, which the parser
        // normalizes to a proper list ending in [unquote, b].
        let mut items = items;
        let mut tail_expr = match tail {
            Some(t) => self.expand_quasi(t, depth, env, at)?,
            None => {
                if items.len() >= 3
                    && items[items.len() - 2].as_symbol() == Some("unquote")
                    && depth == 1
                {
                    let t = self.expand(&items[items.len() - 1], env)?;
                    items = &items[..items.len() - 2];
                    t
                } else {
                    Expr::Const(Datum::nil())
                }
            }
        };
        let cons = self.global_ref("cons", at)?;
        for item in items.iter().rev() {
            // (unquote-splicing x) at depth 1 splices with append.
            if let Datum::List(parts) = item {
                if parts.len() == 2
                    && parts[0].as_symbol() == Some("unquote-splicing")
                    && depth == 1
                {
                    let spliced = self.expand(&parts[1], env)?;
                    let append = self.global_ref("append", at)?;
                    tail_expr = Expr::Call(Box::new(append), vec![spliced, tail_expr]);
                    continue;
                }
            }
            let head = self.expand_quasi(item, depth, env, at)?;
            tail_expr = Expr::Call(Box::new(cons.clone()), vec![head, tail_expr]);
        }
        Ok(tail_expr)
    }

    fn qq_list2(&mut self, a: Expr, b: Expr, at: &Datum) -> Result<Expr, ExpandError> {
        let cons = self.global_ref("cons", at)?;
        let nil = Expr::Const(Datum::nil());
        let inner = Expr::Call(Box::new(cons.clone()), vec![b, nil]);
        Ok(Expr::Call(Box::new(cons), vec![a, inner]))
    }
}

/// Flattens a non-empty expression sequence into one expression.
fn seq(mut es: Vec<Expr>) -> Expr {
    debug_assert!(!es.is_empty(), "seq of zero expressions");
    if es.len() == 1 {
        es.pop().expect("len checked")
    } else {
        Expr::Seq(es)
    }
}

/// Splices top-level `(begin ...)` forms.
fn flatten_toplevel(forms: &[Datum], out: &mut Vec<Datum>) {
    for d in forms {
        if let Datum::List(items) = d {
            if items.first().and_then(Datum::as_symbol) == Some("begin") && items.len() > 1 {
                flatten_toplevel(&items[1..], out);
                continue;
            }
        }
        out.push(d.clone());
    }
}

/// Recognizes `(define name init?)` and `(define (name params...) body...)`.
/// Returns `Some((name, Some(init-form)))` on a define, `None` otherwise.
fn parse_define(d: &Datum) -> Result<Option<(String, Option<Datum>)>, ExpandError> {
    let Datum::List(items) = d else {
        return Ok(None);
    };
    if items.first().and_then(Datum::as_symbol) != Some("define") {
        return Ok(None);
    }
    match &items[1..] {
        [Datum::Symbol(name)] => Ok(Some((name.clone(), None))),
        [Datum::Symbol(name), init] => Ok(Some((name.clone(), Some(init.clone())))),
        [Datum::List(sig), body @ ..] if !sig.is_empty() => {
            let name = sig[0]
                .as_symbol()
                .ok_or_else(|| ExpandError::new("bad define signature", d))?;
            let params = Datum::List(sig[1..].to_vec());
            let lambda = Datum::form("lambda", {
                let mut v = vec![params];
                v.extend_from_slice(body);
                v
            });
            Ok(Some((name.to_string(), Some(lambda))))
        }
        [Datum::Improper(sig, tail), body @ ..] if !sig.is_empty() => {
            // (define (name a b . rest) body...)
            let name = sig[0]
                .as_symbol()
                .ok_or_else(|| ExpandError::new("bad define signature", d))?;
            let params = if sig.len() == 1 {
                (**tail).clone()
            } else {
                Datum::Improper(sig[1..].to_vec(), tail.clone())
            };
            let lambda = Datum::form("lambda", {
                let mut v = vec![params];
                v.extend_from_slice(body);
                v
            });
            Ok(Some((name.to_string(), Some(lambda))))
        }
        _ => Err(ExpandError::new("malformed define", d)),
    }
}

/// Parses a `((name init) ...)` binding list.
fn parse_bindings(at: &Datum, binds: Option<&Datum>) -> Result<Vec<(String, Datum)>, ExpandError> {
    let binds = binds.ok_or_else(|| ExpandError::new("missing binding list", at))?;
    let list = binds
        .as_list()
        .ok_or_else(|| ExpandError::new("binding list must be a list", binds))?;
    list.iter()
        .map(|b| match b.as_list() {
            Some([Datum::Symbol(n), init]) => Ok((n.clone(), init.clone())),
            _ => Err(ExpandError::new("bad binding", b)),
        })
        .collect()
}

/// Desugars R7RS-style `define-record-type` into ordinary definitions over
/// the first-class representation facility:
///
/// ```scheme
/// (define-record-type point
///   (make-point x y)
///   point?
///   (x point-x set-point-x!)
///   (y point-y))
/// ```
///
/// binds `point` to a fresh representation type (tagged with the library's
/// `record-tag`, discriminated by header type id) and defines the
/// constructor, predicate, accessors, and mutators as plain procedures.
/// When the optimizer can see these definitions they specialize exactly
/// like the built-in types.
fn expand_record_type(d: &Datum) -> Result<Vec<Datum>, ExpandError> {
    let Datum::List(items) = d else {
        unreachable!("checked by caller")
    };
    let [_, name_d, ctor_d, pred_d, field_ds @ ..] = &items[..] else {
        return Err(ExpandError::new(
            "define-record-type needs a name, constructor, predicate, and fields",
            d,
        ));
    };
    let name = name_d
        .as_symbol()
        .ok_or_else(|| ExpandError::new("record name must be a symbol", d))?;
    let ctor = ctor_d
        .as_list()
        .ok_or_else(|| ExpandError::new("bad record constructor spec", ctor_d))?;
    let [ctor_name, ctor_fields @ ..] = ctor else {
        return Err(ExpandError::new("empty record constructor spec", ctor_d));
    };
    let pred = pred_d
        .as_symbol()
        .ok_or_else(|| ExpandError::new("record predicate must be a symbol", pred_d))?;

    // Field table: (field accessor [mutator]) in declaration order.
    let mut fields: Vec<(String, String, Option<String>)> = Vec::new();
    for f in field_ds {
        match f.as_list() {
            Some([Datum::Symbol(fname), Datum::Symbol(acc)]) => {
                fields.push((fname.clone(), acc.clone(), None))
            }
            Some([Datum::Symbol(fname), Datum::Symbol(acc), Datum::Symbol(mt)]) => {
                fields.push((fname.clone(), acc.clone(), Some(mt.clone())))
            }
            _ => return Err(ExpandError::new("bad record field spec", f)),
        }
    }
    let index_of = |fname: &str| -> Result<usize, ExpandError> {
        fields
            .iter()
            .position(|(n, _, _)| n == fname)
            .ok_or_else(|| ExpandError::new(format!("unknown record field `{fname}`"), d))
    };
    let sym = |s: &str| Datum::Symbol(s.to_string());
    let fix = |n: usize| Datum::Fixnum(n as i64);
    let project_fix = |n: usize| Datum::form("%rep-project", vec![sym("fixnum-rep"), fix(n)]);

    let mut out = Vec::new();
    // (define <name> (%make-pointer-type '<name> record-tag #t))
    out.push(Datum::form(
        "define",
        vec![
            sym(name),
            Datum::form(
                "%make-pointer-type",
                vec![
                    Datum::quoted(sym(name)),
                    sym("record-tag"),
                    Datum::Bool(true),
                ],
            ),
        ],
    ));
    // Constructor: allocate, set the constructed fields, return.
    {
        let mut body = Vec::new();
        let alloc = Datum::form(
            "%rep-alloc",
            vec![sym(name), project_fix(fields.len()), Datum::Fixnum(0)],
        );
        let mut lets = vec![Datum::List(vec![Datum::List(vec![sym("r"), alloc])])];
        let mut let_body = Vec::new();
        for cf in ctor_fields {
            let fname = cf
                .as_symbol()
                .ok_or_else(|| ExpandError::new("constructor field must be a symbol", cf))?;
            let idx = index_of(fname)?;
            let_body.push(Datum::form(
                "%rep-set!",
                vec![sym(name), sym("r"), project_fix(idx), sym(fname)],
            ));
        }
        let_body.push(sym("r"));
        let mut let_form = vec![Datum::Symbol("let".to_string())];
        let_form.append(&mut lets);
        let_form.extend(let_body);
        let ctor_sym = ctor_name
            .as_symbol()
            .ok_or_else(|| ExpandError::new("constructor name must be a symbol", ctor_d))?;
        let mut sig = vec![sym(ctor_sym)];
        sig.extend(ctor_fields.iter().cloned());
        body.push(Datum::List(let_form));
        let mut define = vec![Datum::Symbol("define".to_string()), Datum::List(sig)];
        define.extend(body);
        out.push(Datum::List(define));
    }
    // Predicate.
    out.push(Datum::form(
        "define",
        vec![
            Datum::List(vec![sym(pred), sym("x")]),
            Datum::form(
                "%rep-inject",
                vec![
                    sym("boolean-rep"),
                    Datum::form("%rep-test", vec![sym(name), sym("x")]),
                ],
            ),
        ],
    ));
    // Accessors and mutators.
    for (i, (_, acc, mt)) in fields.iter().enumerate() {
        out.push(Datum::form(
            "define",
            vec![
                Datum::List(vec![sym(acc), sym("r")]),
                Datum::form("%rep-ref", vec![sym(name), sym("r"), project_fix(i)]),
            ],
        ));
        if let Some(mt) = mt {
            out.push(Datum::form(
                "define",
                vec![
                    Datum::List(vec![sym(mt), sym("r"), sym("v")]),
                    Datum::form(
                        "%rep-set!",
                        vec![sym(name), sym("r"), project_fix(i), sym("v")],
                    ),
                ],
            ));
        }
    }
    Ok(out)
}

/// True if `e` contains `set!` of any of `ids`.
fn assigns_any(e: &Expr, ids: &[VarId]) -> bool {
    match e {
        Expr::SetVar(v, inner) => ids.contains(v) || assigns_any(inner, ids),
        Expr::Const(_) | Expr::Unspecified | Expr::Var(_) | Expr::Global(_) => false,
        Expr::If(a, b, c) => assigns_any(a, ids) || assigns_any(b, ids) || assigns_any(c, ids),
        Expr::Lambda(l) => assigns_any(&l.body, ids),
        Expr::Call(f, args) => assigns_any(f, ids) || args.iter().any(|a| assigns_any(a, ids)),
        Expr::Prim(_, args) => args.iter().any(|a| assigns_any(a, ids)),
        Expr::Seq(es) => es.iter().any(|a| assigns_any(a, ids)),
        Expr::SetGlobal(_, inner) => assigns_any(inner, ids),
        Expr::LetRec(binds, body) => {
            binds.iter().any(|(_, l)| assigns_any(&l.body, ids)) || assigns_any(body, ids)
        }
    }
}

/// Rewrites reads of `ids` into `(unbox v)` and writes into `(set-box! v e)`.
/// Used by the box-based letrec fallback.
fn boxify(e: Expr, ids: &[VarId], unbox_g: &Expr, setbox_g: &Expr) -> Expr {
    match e {
        Expr::Var(v) if ids.contains(&v) => {
            Expr::Call(Box::new(unbox_g.clone()), vec![Expr::Var(v)])
        }
        Expr::SetVar(v, inner) if ids.contains(&v) => {
            let inner = boxify(*inner, ids, unbox_g, setbox_g);
            Expr::Call(Box::new(setbox_g.clone()), vec![Expr::Var(v), inner])
        }
        Expr::Var(_) | Expr::Const(_) | Expr::Unspecified | Expr::Global(_) => e,
        Expr::SetVar(v, inner) => Expr::SetVar(v, Box::new(boxify(*inner, ids, unbox_g, setbox_g))),
        Expr::If(a, b, c) => Expr::If(
            Box::new(boxify(*a, ids, unbox_g, setbox_g)),
            Box::new(boxify(*b, ids, unbox_g, setbox_g)),
            Box::new(boxify(*c, ids, unbox_g, setbox_g)),
        ),
        Expr::Lambda(mut l) => {
            // Parameter shadowing cannot occur: ids are alpha-renamed unique.
            l.body = boxify(l.body, ids, unbox_g, setbox_g);
            Expr::Lambda(l)
        }
        Expr::Call(f, args) => Expr::Call(
            Box::new(boxify(*f, ids, unbox_g, setbox_g)),
            args.into_iter()
                .map(|a| boxify(a, ids, unbox_g, setbox_g))
                .collect(),
        ),
        Expr::Prim(n, args) => Expr::Prim(
            n,
            args.into_iter()
                .map(|a| boxify(a, ids, unbox_g, setbox_g))
                .collect(),
        ),
        Expr::Seq(es) => Expr::Seq(
            es.into_iter()
                .map(|a| boxify(a, ids, unbox_g, setbox_g))
                .collect(),
        ),
        Expr::SetGlobal(g, inner) => {
            Expr::SetGlobal(g, Box::new(boxify(*inner, ids, unbox_g, setbox_g)))
        }
        Expr::LetRec(binds, body) => Expr::LetRec(
            binds
                .into_iter()
                .map(|(v, mut l)| {
                    l.body = boxify(l.body, ids, unbox_g, setbox_g);
                    (v, l)
                })
                .collect(),
            Box::new(boxify(*body, ids, unbox_g, setbox_g)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxr_sexp::parse_all;

    fn expander_with_lib() -> Expander {
        let mut ex = Expander::new();
        for g in [
            "cons",
            "append",
            "list->vector",
            "eqv?",
            "box",
            "unbox",
            "set-box!",
            "fx+",
            "fx-",
            "fx<",
        ] {
            ex.declare_global(g);
        }
        ex
    }

    fn expand1(src: &str) -> Expr {
        let mut ex = expander_with_lib();
        let forms = parse_all(src).unwrap();
        let unit = ex.expand_unit(&forms).unwrap();
        match unit.items.into_iter().next().unwrap() {
            TopItem::Expr(e) => e,
            TopItem::Def(_, e) => e,
        }
    }

    fn expand_err(src: &str) -> ExpandError {
        let mut ex = expander_with_lib();
        let forms = parse_all(src).unwrap();
        ex.expand_unit(&forms).unwrap_err()
    }

    #[test]
    fn constants() {
        assert_eq!(expand1("42"), Expr::Const(Datum::Fixnum(42)));
        assert_eq!(expand1("#t"), Expr::Const(Datum::Bool(true)));
        assert_eq!(
            expand1("'(a b)"),
            Expr::Const(Datum::List(vec!["a".into(), "b".into()]))
        );
    }

    #[test]
    fn unbound_variable_is_error() {
        let e = expand_err("nope");
        assert!(e.message.contains("unbound"));
    }

    #[test]
    fn lambda_and_shadowing() {
        let e = expand1("(lambda (x) x)");
        match e {
            Expr::Lambda(l) => {
                assert_eq!(l.params.len(), 1);
                assert_eq!(l.body, Expr::Var(l.params[0]));
            }
            _ => panic!("expected lambda"),
        }
    }

    #[test]
    fn keywords_shadowable() {
        // `if` bound as a parameter is a variable, not syntax.
        let e = expand1("(lambda (if) (if if if))");
        match e {
            Expr::Lambda(l) => match l.body {
                Expr::Call(f, args) => {
                    assert_eq!(*f, Expr::Var(l.params[0]));
                    assert_eq!(args.len(), 2);
                }
                _ => panic!("expected call"),
            },
            _ => panic!("expected lambda"),
        }
    }

    #[test]
    fn prim_application() {
        let e = expand1("(%word+ 1 2)");
        assert_eq!(
            e,
            Expr::Prim(
                "word+".to_string(),
                vec![Expr::Const(Datum::Fixnum(1)), Expr::Const(Datum::Fixnum(2))]
            )
        );
    }

    #[test]
    fn prim_not_first_class() {
        assert!(expand_err("%word+").message.contains("not first-class"));
    }

    #[test]
    fn let_is_application() {
        let e = expand1("(let ((x 1)) x)");
        assert!(matches!(e, Expr::Call(f, _) if matches!(*f, Expr::Lambda(_))));
    }

    #[test]
    fn named_let_is_letrec() {
        let e = expand1("(let loop ((i 0)) (if (fx< i 10) (loop (fx+ i 1)) i))");
        match e {
            Expr::LetRec(binds, body) => {
                assert_eq!(binds.len(), 1);
                assert!(matches!(*body, Expr::Call(..)));
            }
            other => panic!("expected LetRec, got {other:?}"),
        }
    }

    #[test]
    fn letrec_with_non_lambda_falls_back_to_boxes() {
        let e = expand1("(letrec ((x 1) (f (lambda () x))) (f))");
        // The fallback is an immediate application of a lambda to (box ...) calls.
        match e {
            Expr::Call(_, args) => {
                assert_eq!(args.len(), 2);
                assert!(matches!(&args[0], Expr::Call(f, _) if matches!(**f, Expr::Global(_))));
            }
            other => panic!("expected box fallback, got {other:?}"),
        }
    }

    #[test]
    fn internal_defines_make_letrec() {
        let e = expand1("(lambda () (define (f) (g)) (define (g) 1) (f))");
        match e {
            Expr::Lambda(l) => assert!(matches!(l.body, Expr::LetRec(ref b, _) if b.len() == 2)),
            _ => panic!("expected lambda"),
        }
    }

    #[test]
    fn cond_expansion() {
        let e = expand1("(cond ((fx< 1 2) 'a) (else 'b))");
        assert!(matches!(e, Expr::If(..)));
        let e = expand1("(cond)");
        assert_eq!(e, Expr::Unspecified);
    }

    #[test]
    fn cond_arrow() {
        let e = expand1("(cond (1 => (lambda (x) x)) (else 2))");
        // let-bound temp applied through the receiver.
        assert!(matches!(e, Expr::Call(..)));
    }

    #[test]
    fn and_or() {
        assert_eq!(expand1("(and)"), Expr::Const(Datum::Bool(true)));
        assert_eq!(expand1("(or)"), Expr::Const(Datum::Bool(false)));
        assert!(matches!(expand1("(and 1 2)"), Expr::If(..)));
        assert!(matches!(expand1("(or 1 2)"), Expr::Call(..)));
    }

    #[test]
    fn case_expansion() {
        let e = expand1("(case 3 ((1 2) 'small) ((3) 'three) (else 'big))");
        assert!(matches!(e, Expr::Call(..))); // outer let
    }

    #[test]
    fn do_expansion() {
        let e = expand1("(do ((i 0 (fx+ i 1)) (acc 0 (fx+ acc i))) ((fx< 9 i) acc))");
        assert!(matches!(e, Expr::LetRec(..)));
    }

    #[test]
    fn quasiquote_simple() {
        // `(1 ,x) => (cons '1 (cons x '()))
        let mut ex = expander_with_lib();
        let forms = parse_all("(lambda (x) `(1 ,x))").unwrap();
        let unit = ex.expand_unit(&forms).unwrap();
        let TopItem::Expr(Expr::Lambda(l)) = &unit.items[0] else {
            panic!()
        };
        match &l.body {
            Expr::Call(f, args) => {
                assert!(matches!(**f, Expr::Global(_)));
                assert_eq!(args.len(), 2);
            }
            other => panic!("expected cons call, got {other:?}"),
        }
    }

    #[test]
    fn quasiquote_splicing_uses_append() {
        let e = expand1("(lambda (xs) `(1 ,@xs 2))");
        let Expr::Lambda(l) = e else { panic!() };
        // outermost is (cons '1 (append xs (cons '2 '())))
        assert!(matches!(l.body, Expr::Call(..)));
    }

    #[test]
    fn quasiquote_nested_depth() {
        // ``(,x) at depth 2 keeps the inner unquote as data structure builders.
        let e = expand1("(lambda (x) ``(,x))");
        assert!(matches!(e, Expr::Lambda(_)));
    }

    #[test]
    fn dotted_unquote_tail() {
        let e = expand1("(lambda (b) `(a . ,b))");
        let Expr::Lambda(l) = e else { panic!() };
        // (cons 'a b)
        match &l.body {
            Expr::Call(_, args) => {
                assert_eq!(args.len(), 2);
                assert_eq!(args[1], Expr::Var(l.params[0]));
            }
            other => panic!("expected (cons 'a b), got {other:?}"),
        }
    }

    #[test]
    fn set_global_and_var() {
        let mut ex = expander_with_lib();
        let forms = parse_all("(define x 1) (set! x 2)").unwrap();
        let unit = ex.expand_unit(&forms).unwrap();
        assert!(matches!(unit.items[1], TopItem::Expr(Expr::SetGlobal(..))));
    }

    #[test]
    fn define_function_sugar() {
        let mut ex = expander_with_lib();
        let forms = parse_all("(define (id x) x)").unwrap();
        let unit = ex.expand_unit(&forms).unwrap();
        let TopItem::Def(_, Expr::Lambda(l)) = &unit.items[0] else {
            panic!()
        };
        assert_eq!(l.name.as_deref(), Some("id"));
    }

    #[test]
    fn toplevel_begin_splices() {
        let mut ex = expander_with_lib();
        let forms = parse_all("(begin (define a 1) (define b 2)) a").unwrap();
        let unit = ex.expand_unit(&forms).unwrap();
        assert_eq!(unit.items.len(), 3);
    }

    #[test]
    fn forward_reference_to_later_define() {
        let mut ex = expander_with_lib();
        let forms = parse_all("(define (f) (g)) (define (g) 1)").unwrap();
        assert!(ex.expand_unit(&forms).is_ok());
    }

    #[test]
    fn variadic_accepted() {
        let e = expand1("(lambda args args)");
        let Expr::Lambda(l) = e else { panic!() };
        assert!(l.params.is_empty());
        assert_eq!(l.body, Expr::Var(l.rest.unwrap()));

        let e = expand1("(lambda (a . b) b)");
        let Expr::Lambda(l) = e else { panic!() };
        assert_eq!(l.params.len(), 1);
        assert!(l.rest.is_some());

        let mut ex = expander_with_lib();
        let unit = ex
            .expand_unit(&parse_all("(define (f a . xs) xs)").unwrap())
            .unwrap();
        let TopItem::Def(_, Expr::Lambda(l)) = &unit.items[0] else {
            panic!()
        };
        assert_eq!(l.params.len(), 1);
        assert!(l.rest.is_some());
    }

    #[test]
    fn duplicate_parameter_rejected() {
        assert!(expand_err("(lambda (x x) x)").message.contains("duplicate"));
    }

    #[test]
    fn bad_forms() {
        assert!(expand_err("()").message.contains("empty application"));
        assert!(expand_err("(if)").message.contains("if takes"));
        assert!(expand_err("(set! 3 4)").message.contains("set!"));
        assert!(expand_err("(let ((x)) x)").message.contains("bad binding"));
        assert!(expand_err("(lambda (x) (define y 1))")
            .message
            .contains("only definitions"));
    }

    #[test]
    fn else_must_be_last() {
        assert!(expand_err("(cond (else 1) (2 3))").message.contains("last"));
    }

    #[test]
    fn one_armed_if_gets_unspecified() {
        let e = expand1("(if #t 1)");
        match e {
            Expr::If(_, _, els) => assert_eq!(*els, Expr::Unspecified),
            _ => panic!("expected if"),
        }
    }

    #[test]
    fn when_unless() {
        assert!(matches!(expand1("(when #t 1 2)"), Expr::If(..)));
        assert!(matches!(expand1("(unless #t 1)"), Expr::If(..)));
    }

    #[test]
    fn global_ids_stable_across_units() {
        let mut ex = Expander::new();
        let u1 = ex
            .expand_unit(&parse_all("(define lib 10)").unwrap())
            .unwrap();
        let u2 = ex.expand_unit(&parse_all("lib").unwrap()).unwrap();
        let TopItem::Def(g, _) = u1.items[0] else {
            panic!()
        };
        let TopItem::Expr(Expr::Global(g2)) = u2.items[0] else {
            panic!()
        };
        assert_eq!(g, g2);
        let p = ex.into_program(vec![u1, u2]);
        assert_eq!(p.global_names, vec!["lib".to_string()]);
        assert_eq!(p.global_by_name("lib"), Some(0));
    }
}
