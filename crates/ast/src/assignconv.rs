//! Assignment conversion: eliminate `set!` on lexical variables.
//!
//! Rather than giving the compiler a private notion of mutable cells (which
//! would be representation knowledge), assigned variables are rewritten to
//! use the *library's* `box` / `unbox` / `set-box!` procedures — whose
//! representation is itself defined by rep types in the prelude.  After this
//! pass, [`Expr::SetVar`] no longer occurs, and every remaining lexical
//! variable is immutable (which the optimizer relies on for substitution).

use crate::core::{Expr, GlobalId, Program, VarId};
use std::collections::HashSet;

/// Rewrites all `set!` of lexical variables in `prog` into library box
/// operations.
///
/// # Errors
///
/// Returns an error if the program assigns a lexical variable but the
/// library procedures `box`, `unbox`, and `set-box!` are not defined.
///
/// # Example
///
/// ```
/// use sxr_ast::{convert_assignments, Expander};
/// use sxr_sexp::parse_all;
///
/// let mut ex = Expander::new();
/// for g in ["box", "unbox", "set-box!"] { ex.declare_global(g); }
/// let unit = ex
///     .expand_unit(&parse_all("(lambda (x) (set! x 1) x)").unwrap())
///     .unwrap();
/// let mut prog = ex.into_program(vec![unit]);
/// convert_assignments(&mut prog).unwrap();
/// ```
pub fn convert_assignments(prog: &mut Program) -> Result<(), String> {
    let mut assigned = HashSet::new();
    for item in &prog.items {
        collect_assigned(item_expr(item), &mut assigned);
    }
    if assigned.is_empty() {
        return Ok(());
    }
    let need = |name: &str| {
        prog.global_by_name(name)
            .ok_or_else(|| format!("assignment conversion requires library procedure `{name}`"))
    };
    let ctx = Ctx {
        boxg: need("box")?,
        unboxg: need("unbox")?,
        setboxg: need("set-box!")?,
    };
    let mut var_names = std::mem::take(&mut prog.var_names);
    for item in &mut prog.items {
        let e = std::mem::replace(item_expr_mut(item), Expr::Unspecified);
        *item_expr_mut(item) = rewrite(e, &assigned, &ctx, &mut var_names);
    }
    prog.var_names = var_names;
    Ok(())
}

struct Ctx {
    boxg: GlobalId,
    unboxg: GlobalId,
    setboxg: GlobalId,
}

fn item_expr(item: &crate::core::TopItem) -> &Expr {
    match item {
        crate::core::TopItem::Def(_, e) | crate::core::TopItem::Expr(e) => e,
    }
}

fn item_expr_mut(item: &mut crate::core::TopItem) -> &mut Expr {
    match item {
        crate::core::TopItem::Def(_, e) | crate::core::TopItem::Expr(e) => e,
    }
}

fn collect_assigned(e: &Expr, out: &mut HashSet<VarId>) {
    match e {
        Expr::SetVar(v, inner) => {
            out.insert(*v);
            collect_assigned(inner, out);
        }
        Expr::Const(_) | Expr::Unspecified | Expr::Var(_) | Expr::Global(_) => {}
        Expr::If(a, b, c) => {
            collect_assigned(a, out);
            collect_assigned(b, out);
            collect_assigned(c, out);
        }
        Expr::Lambda(l) => collect_assigned(&l.body, out),
        Expr::Call(f, args) => {
            collect_assigned(f, out);
            args.iter().for_each(|a| collect_assigned(a, out));
        }
        Expr::Prim(_, args) => args.iter().for_each(|a| collect_assigned(a, out)),
        Expr::Seq(es) => es.iter().for_each(|a| collect_assigned(a, out)),
        Expr::SetGlobal(_, inner) => collect_assigned(inner, out),
        Expr::LetRec(binds, body) => {
            binds
                .iter()
                .for_each(|(_, l)| collect_assigned(&l.body, out));
            collect_assigned(body, out);
        }
    }
}

fn rewrite(e: Expr, assigned: &HashSet<VarId>, ctx: &Ctx, var_names: &mut Vec<String>) -> Expr {
    match e {
        Expr::Var(v) if assigned.contains(&v) => {
            Expr::Call(Box::new(Expr::Global(ctx.unboxg)), vec![Expr::Var(v)])
        }
        Expr::SetVar(v, inner) => {
            debug_assert!(assigned.contains(&v), "collected all assignments");
            let inner = rewrite(*inner, assigned, ctx, var_names);
            Expr::Call(
                Box::new(Expr::Global(ctx.setboxg)),
                vec![Expr::Var(v), inner],
            )
        }
        Expr::Var(_) | Expr::Const(_) | Expr::Unspecified | Expr::Global(_) => e,
        Expr::If(a, b, c) => Expr::If(
            Box::new(rewrite(*a, assigned, ctx, var_names)),
            Box::new(rewrite(*b, assigned, ctx, var_names)),
            Box::new(rewrite(*c, assigned, ctx, var_names)),
        ),
        Expr::Lambda(l) => Expr::Lambda(Box::new(rewrite_lambda(*l, assigned, ctx, var_names))),
        Expr::Call(f, args) => Expr::Call(
            Box::new(rewrite(*f, assigned, ctx, var_names)),
            args.into_iter()
                .map(|a| rewrite(a, assigned, ctx, var_names))
                .collect(),
        ),
        Expr::Prim(n, args) => Expr::Prim(
            n,
            args.into_iter()
                .map(|a| rewrite(a, assigned, ctx, var_names))
                .collect(),
        ),
        Expr::Seq(es) => Expr::Seq(
            es.into_iter()
                .map(|a| rewrite(a, assigned, ctx, var_names))
                .collect(),
        ),
        Expr::SetGlobal(g, inner) => {
            Expr::SetGlobal(g, Box::new(rewrite(*inner, assigned, ctx, var_names)))
        }
        Expr::LetRec(binds, body) => Expr::LetRec(
            binds
                .into_iter()
                .map(|(v, l)| (v, rewrite_lambda(l, assigned, ctx, var_names)))
                .collect(),
            Box::new(rewrite(*body, assigned, ctx, var_names)),
        ),
    }
}

/// Rewrites a lambda, re-binding assigned parameters to boxes:
/// `(lambda (x) ...)` with assigned `x` becomes
/// `(lambda (x') (let ((x (box x'))) ...))`.
fn rewrite_lambda(
    mut l: crate::core::Lambda,
    assigned: &HashSet<VarId>,
    ctx: &Ctx,
    var_names: &mut Vec<String>,
) -> crate::core::Lambda {
    let mut body = rewrite(l.body, assigned, ctx, var_names);
    for p in l.params.iter_mut().chain(l.rest.iter_mut()) {
        if assigned.contains(p) {
            let raw = var_names.len() as VarId;
            var_names.push(format!("{}-raw", var_names[*p as usize]));
            let boxed = Expr::Call(Box::new(Expr::Global(ctx.boxg)), vec![Expr::Var(raw)]);
            body = Expr::let1(*p, None, boxed, body);
            *p = raw;
        }
    }
    l.body = body;
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::TopItem;
    use crate::Expander;
    use sxr_sexp::parse_all;

    fn convert(src: &str) -> Program {
        let mut ex = Expander::new();
        for g in ["box", "unbox", "set-box!", "fx+"] {
            ex.declare_global(g);
        }
        let unit = ex.expand_unit(&parse_all(src).unwrap()).unwrap();
        let mut prog = ex.into_program(vec![unit]);
        convert_assignments(&mut prog).unwrap();
        prog
    }

    fn no_setvar(e: &Expr) -> bool {
        match e {
            Expr::SetVar(..) => false,
            Expr::Const(_) | Expr::Unspecified | Expr::Var(_) | Expr::Global(_) => true,
            Expr::If(a, b, c) => no_setvar(a) && no_setvar(b) && no_setvar(c),
            Expr::Lambda(l) => no_setvar(&l.body),
            Expr::Call(f, args) => no_setvar(f) && args.iter().all(no_setvar),
            Expr::Prim(_, args) => args.iter().all(no_setvar),
            Expr::Seq(es) => es.iter().all(no_setvar),
            Expr::SetGlobal(_, inner) => no_setvar(inner),
            Expr::LetRec(binds, body) => {
                binds.iter().all(|(_, l)| no_setvar(&l.body)) && no_setvar(body)
            }
        }
    }

    #[test]
    fn removes_all_setvar() {
        let p = convert("(lambda (x) (set! x (fx+ x 1)) x)");
        for item in &p.items {
            match item {
                TopItem::Def(_, e) | TopItem::Expr(e) => assert!(no_setvar(e)),
            }
        }
    }

    #[test]
    fn unassigned_programs_untouched() {
        let p1 = convert("(lambda (x) x)");
        let TopItem::Expr(Expr::Lambda(l)) = &p1.items[0] else {
            panic!()
        };
        assert_eq!(l.body, Expr::Var(l.params[0]));
    }

    #[test]
    fn param_rebinding_structure() {
        let p = convert("(lambda (x) (set! x 1))");
        let TopItem::Expr(Expr::Lambda(l)) = &p.items[0] else {
            panic!()
        };
        // body is ((lambda (x) (set-box! x 1)) (box x'))
        match &l.body {
            Expr::Call(inner, args) => {
                assert!(matches!(**inner, Expr::Lambda(_)));
                match &args[0] {
                    Expr::Call(f, bargs) => {
                        assert!(matches!(**f, Expr::Global(_)));
                        assert_eq!(bargs[0], Expr::Var(l.params[0]));
                    }
                    other => panic!("expected (box x'), got {other:?}"),
                }
            }
            other => panic!("expected wrapped body, got {other:?}"),
        }
    }

    #[test]
    fn missing_library_is_error() {
        let mut ex = Expander::new();
        let unit = ex
            .expand_unit(&parse_all("(lambda (x) (set! x 1))").unwrap())
            .unwrap();
        let mut prog = ex.into_program(vec![unit]);
        let err = convert_assignments(&mut prog).unwrap_err();
        assert!(err.contains("box"));
    }

    #[test]
    fn global_set_untouched() {
        let p = convert("(define g 1) (set! g 2)");
        assert!(matches!(p.items[1], TopItem::Expr(Expr::SetGlobal(..))));
    }
}
