//! Encoding quoted data onto the heap, and decoding words back to text.
//!
//! Nothing here hardwires a layout: every encoding decision flows through
//! the representation roles the *library* provided. A program whose library
//! never defines strings simply cannot contain string literals — the loader
//! reports which role is missing.

use crate::error::{VmError, VmErrorKind};
use crate::heap::{header_len, header_type, Word};
use crate::machine::Machine;
use sxr_ir::rep::{roles, RepKind};
use sxr_sexp::Datum;

/// Upper bound on heap words needed to encode `d` (used to pre-reserve so
/// pool construction cannot trigger a collection mid-build).
pub fn words_needed(d: &Datum) -> usize {
    match d {
        Datum::Fixnum(_) | Datum::Bool(_) | Datum::Char(_) => 0,
        Datum::String(s) => 1 + s.chars().count(),
        // Symbol: its name string plus the symbol cell.
        Datum::Symbol(s) => 1 + s.chars().count() + 2,
        Datum::List(items) => 3 * items.len() + items.iter().map(words_needed).sum::<usize>(),
        Datum::Improper(items, tail) => {
            3 * items.len() + items.iter().map(words_needed).sum::<usize>() + words_needed(tail)
        }
        Datum::Vector(items) => 1 + items.len() + items.iter().map(words_needed).sum::<usize>(),
    }
}

fn need_role(m: &Machine, role: &str, what: &str) -> Result<u32, VmError> {
    m.registry.role(role).ok_or_else(|| {
        VmError::new(
            VmErrorKind::BadProgram,
            format!("program contains {what} but the library provided no `{role}` representation"),
        )
    })
}

/// Encodes a string onto the heap (fields are char immediates).
pub fn encode_string(m: &mut Machine, s: &str) -> Result<Word, VmError> {
    let string = need_role(m, roles::STRING, "a string")?;
    let char_rep = need_role(m, roles::CHAR, "a string")?;
    let RepKind::Pointer { tag, .. } = m.registry.info(string).kind else {
        return Err(VmError::new(
            VmErrorKind::BadProgram,
            "`string` role must be a pointer",
        ));
    };
    let chars: Vec<Word> = s
        .chars()
        .map(|c| m.registry.encode_immediate(char_rep, c as i64))
        .collect();
    let fill = m.registry.encode_immediate(char_rep, 0);
    let w = m.alloc_object(chars.len(), string as u16, tag, fill)?;
    let base = (w >> 3) as usize;
    for (i, cw) in chars.into_iter().enumerate() {
        m.heap_set_for_encode(base + 1 + i, cw)?;
    }
    Ok(w)
}

/// Encodes a quoted datum onto the heap.
///
/// # Errors
///
/// Returns [`VmErrorKind::BadProgram`] when a required representation role
/// is missing.
pub fn encode_datum(m: &mut Machine, d: &Datum) -> Result<Word, VmError> {
    match d {
        Datum::Fixnum(n) => {
            let fx = need_role(m, roles::FIXNUM, "a fixnum literal")?;
            Ok(m.registry.encode_immediate(fx, *n))
        }
        Datum::Bool(b) => {
            let bo = need_role(m, roles::BOOLEAN, "a boolean literal")?;
            Ok(m.registry.encode_immediate(bo, *b as i64))
        }
        Datum::Char(c) => {
            let ch = need_role(m, roles::CHAR, "a character literal")?;
            Ok(m.registry.encode_immediate(ch, *c as i64))
        }
        Datum::String(s) => encode_string(m, s),
        // Symbols go through the quiet load-time interning path: callers
        // here (list tails, vector elements) hold partially built structure
        // in Rust locals that are not GC roots, so no collection may run.
        Datum::Symbol(s) => m.intern_loaded(s),
        Datum::List(items) => {
            let nil = need_role(m, roles::NULL, "a list literal")?;
            let mut tail = m.registry.encode_immediate(nil, 0);
            for item in items.iter().rev() {
                tail = encode_pair(m, item, tail)?;
            }
            Ok(tail)
        }
        Datum::Improper(items, last) => {
            let mut tail = encode_datum(m, last)?;
            for item in items.iter().rev() {
                tail = encode_pair(m, item, tail)?;
            }
            Ok(tail)
        }
        Datum::Vector(items) => {
            let vec_rep = need_role(m, roles::VECTOR, "a vector literal")?;
            let RepKind::Pointer { tag, .. } = m.registry.info(vec_rep).kind else {
                return Err(VmError::new(
                    VmErrorKind::BadProgram,
                    "`vector` role must be a pointer",
                ));
            };
            let words: Vec<Word> = items
                .iter()
                .map(|i| encode_datum(m, i))
                .collect::<Result<_, _>>()?;
            let fill = m.registry.encode_immediate(m.role_fixnum(), 0);
            let w = m.alloc_object(words.len(), vec_rep as u16, tag, fill)?;
            let base = (w >> 3) as usize;
            for (i, iw) in words.into_iter().enumerate() {
                m.heap_set_for_encode(base + 1 + i, iw)?;
            }
            Ok(w)
        }
    }
}

fn encode_pair(m: &mut Machine, car: &Datum, cdr: Word) -> Result<Word, VmError> {
    let pair = need_role(m, roles::PAIR, "a pair literal")?;
    let RepKind::Pointer { tag, .. } = m.registry.info(pair).kind else {
        return Err(VmError::new(
            VmErrorKind::BadProgram,
            "`pair` role must be a pointer",
        ));
    };
    let car_w = encode_datum(m, car)?;
    let w = m.alloc_object(2, pair as u16, tag, cdr)?;
    let base = (w >> 3) as usize;
    m.heap_set_for_encode(base + 1, car_w)?;
    m.heap_set_for_encode(base + 2, cdr)?;
    Ok(w)
}

/// Renders `w` readably using whatever representations the library
/// registered. Unknown encodings come out as `#<word N>`.
pub fn describe(m: &Machine, w: Word, depth: usize) -> String {
    if depth == 0 {
        return "...".to_string();
    }
    let reg = &m.registry;
    let try_role = |role: &str| reg.role(role).filter(|&r| reg.tag_matches(r, w));
    if let Some(fx) = try_role(roles::FIXNUM) {
        return reg.decode_immediate(fx, w).to_string();
    }
    if let Some(bo) = try_role(roles::BOOLEAN) {
        return if reg.decode_immediate(bo, w) == 0 {
            "#f"
        } else {
            "#t"
        }
        .to_string();
    }
    if let Some(ch) = try_role(roles::CHAR) {
        let c = char::from_u32(reg.decode_immediate(ch, w) as u32).unwrap_or('\u{FFFD}');
        return Datum::Char(c).to_string();
    }
    if try_role(roles::NULL).is_some() {
        return "()".to_string();
    }
    if try_role(roles::UNSPECIFIED).is_some() {
        return "#<unspecified>".to_string();
    }
    if try_role(roles::EOF).is_some() {
        return "#<eof>".to_string();
    }
    // Pointer families; heap reads may fail on corrupt words.
    let base = (w >> 3) as usize;
    let header = match m.heap_ref().get(base) {
        Ok(h) => h,
        Err(_) => return format!("#<word {w}>"),
    };
    let len = header_len(header);
    if let Some(pair) = try_role(roles::PAIR) {
        let _ = pair;
        let mut parts = Vec::new();
        let mut cur = w;
        let mut steps = depth;
        loop {
            if steps == 0 {
                parts.push("...".to_string());
                break;
            }
            steps -= 1;
            let b = (cur >> 3) as usize;
            let car = m.heap_ref().get(b + 1).unwrap_or(0);
            let cdr = m.heap_ref().get(b + 2).unwrap_or(0);
            parts.push(describe(m, car, depth - 1));
            if reg
                .role(roles::NULL)
                .map(|n| reg.tag_matches(n, cdr))
                .unwrap_or(false)
            {
                break;
            }
            if reg
                .role(roles::PAIR)
                .map(|p| reg.tag_matches(p, cdr))
                .unwrap_or(false)
            {
                cur = cdr;
                continue;
            }
            parts.push(".".to_string());
            parts.push(describe(m, cdr, depth - 1));
            break;
        }
        return format!("({})", parts.join(" "));
    }
    if let Some(st) = try_role(roles::STRING) {
        let _ = st;
        return match m.string_content(w) {
            Ok(s) => Datum::String(s).to_string(),
            Err(_) => format!("#<bad-string {w}>"),
        };
    }
    if let Some(sym) = try_role(roles::SYMBOL) {
        let _ = sym;
        let str_ptr = m.heap_ref().get(base + 1).unwrap_or(0);
        return m
            .string_content(str_ptr)
            .unwrap_or_else(|_| format!("#<bad-symbol {w}>"));
    }
    if let Some(vr) = try_role(roles::VECTOR) {
        let _ = vr;
        let mut parts = Vec::with_capacity(len);
        for i in 0..len {
            let f = m.heap_ref().get(base + 1 + i).unwrap_or(0);
            parts.push(describe(m, f, depth - 1));
        }
        return format!("#({})", parts.join(" "));
    }
    if reg
        .role(roles::CLOSURE)
        .map(|c| reg.tag_matches(c, w))
        .unwrap_or(false)
    {
        return "#<procedure>".to_string();
    }
    if reg
        .role("rep-type")
        .map(|c| reg.tag_matches(c, w) && header_type(header) == c as u16)
        .unwrap_or(false)
    {
        let payload = m.heap_ref().get(base + 1).unwrap_or(0);
        let rid = reg
            .role(roles::FIXNUM)
            .map(|fx| reg.decode_immediate(fx, payload))
            .unwrap_or(-1);
        if rid >= 0 && (rid as usize) < reg.len() {
            return format!("#<rep-type {}>", reg.info(rid as u32).name);
        }
    }
    // A discriminated record of a named type.
    let tid = header_type(header);
    if (tid as usize) < reg.len() {
        let info = reg.info(tid as u32);
        if info.is_pointer() && reg.tag_matches(tid as u32, w) {
            let mut parts = Vec::with_capacity(len);
            for i in 0..len {
                let f = m.heap_ref().get(base + 1 + i).unwrap_or(0);
                parts.push(describe(m, f, depth - 1));
            }
            return format!("#<{} {}>", info.name, parts.join(" "));
        }
    }
    format!("#<word {w}>")
}
