//! The tagged-word heap and the mechanics of two-space copying collection.
//!
//! Layout: an object is a header word followed by `len` field words.  A
//! tagged pointer is `(word_index << 3) | tag`, so displacement addressing
//! (`(ptr + disp) >> 3`) folds the tag subtraction into the same instruction
//! — the classic trick the paper's optimizer must be able to reach.
//!
//! The header packs `len << 16 | type_id` and is never itself scanned as a
//! field.  During collection the header is overwritten by a negative
//! forwarding word carrying the object's new index.
//!
//! Which low-bit patterns denote pointers is *not* hardwired: the collector
//! consults the pointer-pattern table derived from the representation
//! registry (library policy).

use crate::error::{VmError, VmErrorKind};

/// A machine word.
pub type Word = i64;

/// Number of low tag bits in a pointer (mirrors
/// [`sxr_ir::rep::POINTER_TAG_BITS`]).
pub const TAG_BITS: u32 = 3;

/// Packs an object header.
pub fn header(len: usize, type_id: u16) -> Word {
    ((len as i64) << 16) | type_id as i64
}

/// Field count from a header.
pub fn header_len(h: Word) -> usize {
    (h >> 16) as usize
}

/// Type id from a header.
pub fn header_type(h: Word) -> u16 {
    (h & 0xFFFF) as u16
}

/// Post-collection growth target for a heap of `capacity` words holding
/// `used` live words that must satisfy an allocation of `need` words.
///
/// The target is *strictly* larger than the current capacity and at least
/// twice the live data, so growth decisions are monotone: a heap that the
/// policy decides to grow always gets real headroom, and a near-full heap
/// can never be sent back to re-collect on every allocation.  (An earlier
/// heuristic computed `(used + need + 1).next_power_of_two()`, which can be
/// no larger than the current capacity — a silent no-op grow.)
pub fn grow_target(used: usize, need: usize, capacity: usize) -> usize {
    ((used + need) * 2).max(capacity * 2)
}

/// The heap: a single growable space plus an allocation cursor, and a
/// retired semispace kept for the next collection.
#[derive(Debug)]
pub struct Heap {
    space: Vec<Word>,
    next: usize,
    /// The previous from-space, recycled as the next to-space (see
    /// [`Heap::end_gc`]).  Without recycling, fault schedules that collect
    /// at every allocation would allocate and free a capacity-sized buffer
    /// per object.
    spare: Vec<Word>,
}

impl Heap {
    /// Creates a heap with the given capacity in words.
    pub fn new(capacity_words: usize) -> Heap {
        Heap {
            space: vec![0; capacity_words.max(64)],
            next: 0,
            spare: Vec::new(),
        }
    }

    /// Capacity in words.
    pub fn capacity(&self) -> usize {
        self.space.len()
    }

    /// Words currently in use.
    pub fn used(&self) -> usize {
        self.next
    }

    /// Words still free.
    pub fn free(&self) -> usize {
        self.space.len() - self.next
    }

    /// True if an allocation of `len` fields (plus header) would not fit.
    pub fn needs_gc(&self, len: usize) -> bool {
        self.next + len + 1 > self.space.len()
    }

    /// Grows capacity to at least `capacity_words`. Existing indices remain
    /// valid (addresses are indices, not Rust pointers).
    pub fn grow_to(&mut self, capacity_words: usize) {
        if capacity_words > self.space.len() {
            self.space.resize(capacity_words, 0);
        }
    }

    /// Allocates an object with `len` fields, all set to `fill`, returning
    /// its word index (of the header).
    ///
    /// # Panics
    ///
    /// Panics (in all builds) when space was not ensured beforehand: an
    /// unreserved allocation would otherwise index past the space vector
    /// with a nondescript slice panic in release builds only, making debug
    /// and release disagree on a machine invariant.
    pub fn alloc(&mut self, len: usize, type_id: u16, fill: Word) -> usize {
        assert!(!self.needs_gc(len), "caller must ensure space");
        let idx = self.next;
        self.space[idx] = header(len, type_id);
        for i in 0..len {
            self.space[idx + 1 + i] = fill;
        }
        self.next = idx + 1 + len;
        idx
    }

    /// Reads the word at `idx`.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] if `idx` is outside the allocated region.
    pub fn get(&self, idx: usize) -> Result<Word, VmError> {
        self.space
            .get(idx)
            .copied()
            .filter(|_| idx < self.next)
            .ok_or_else(|| {
                VmError::new(
                    VmErrorKind::BadMemoryAccess,
                    format!("load outside heap at word {idx}"),
                )
            })
    }

    /// Writes the word at `idx`.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] if `idx` is outside the allocated region.
    pub fn set(&mut self, idx: usize, w: Word) -> Result<(), VmError> {
        if idx >= self.next {
            return Err(VmError::new(
                VmErrorKind::BadMemoryAccess,
                format!("store outside heap at word {idx}"),
            ));
        }
        self.space[idx] = w;
        Ok(())
    }

    /// Begins a collection: replaces the space with a to-space of
    /// `capacity` (recycling the spare semispace when one is available)
    /// and returns the old (from-) space.
    ///
    /// The to-space is *not* zeroed beyond what resizing requires: words
    /// past the allocation cursor are never read before being written
    /// (allocation fills them, forwarding copies over them, and
    /// [`Heap::get`]/[`Heap::set`] reject indices past the cursor).
    pub fn begin_gc(&mut self, capacity: usize) -> Vec<Word> {
        self.next = 0;
        let mut to = std::mem::take(&mut self.spare);
        to.resize(capacity, 0);
        std::mem::replace(&mut self.space, to)
    }

    /// Ends a collection by retiring the drained from-space for reuse as
    /// the next collection's to-space.
    pub fn end_gc(&mut self, from: Vec<Word>) {
        self.spare = from;
    }

    /// Forwards one word: if it is a pointer per `ptr_table`, copies its
    /// object into to-space (or follows an existing forwarding word) and
    /// returns the updated pointer; otherwise returns it unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`VmErrorKind::BadMemoryAccess`] when a word tagged as a
    /// pointer does not address an object inside from-space, or when the
    /// copy would overflow to-space.  Both indicate heap corruption or a
    /// pointer-map bug; silently continuing would mis-forward live data, so
    /// they are hard errors in every build, not debug assertions.
    pub fn forward(
        &mut self,
        from: &mut [Word],
        w: Word,
        ptr_table: &[bool; 8],
    ) -> Result<Word, VmError> {
        let tag = (w & 0b111) as usize;
        if !ptr_table[tag] {
            return Ok(w);
        }
        let idx = (w >> TAG_BITS) as usize;
        if idx >= from.len() {
            return Err(VmError::new(
                VmErrorKind::BadMemoryAccess,
                format!("gc: forward of out-of-range pointer {w:#x} (pointer-map bug?)"),
            ));
        }
        let h = from[idx];
        if h < 0 {
            // Already forwarded.
            let new_idx = h & 0x7FFF_FFFF_FFFF;
            return Ok((new_idx << TAG_BITS) | tag as i64);
        }
        let len = header_len(h);
        if idx + len + 1 > from.len() {
            return Err(VmError::new(
                VmErrorKind::BadMemoryAccess,
                format!("gc: object at word {idx} with corrupt length {len} overruns from-space"),
            ));
        }
        let new_idx = self.next;
        if new_idx + len + 1 > self.space.len() {
            return Err(VmError::new(
                VmErrorKind::BadMemoryAccess,
                "gc: to-space overflow (live data exceeds capacity; heap corruption?)",
            ));
        }
        self.space[new_idx..new_idx + len + 1].copy_from_slice(&from[idx..idx + len + 1]);
        self.next += len + 1;
        from[idx] = i64::MIN | new_idx as i64;
        Ok(((new_idx as i64) << TAG_BITS) | tag as i64)
    }

    /// Cheney scan: walks every object copied so far, forwarding its
    /// fields. `scan` is the resume point; returns the new resume point
    /// (equal to [`Heap::used`] when done).
    ///
    /// # Errors
    ///
    /// Propagates [`Heap::forward`] failures.
    pub fn scan_from(
        &mut self,
        scan: usize,
        from: &mut [Word],
        ptr_table: &[bool; 8],
    ) -> Result<usize, VmError> {
        self.scan_from_precise(scan, from, ptr_table, None)
    }

    /// [`Heap::scan_from`] with closure-precise field maps: when `closures`
    /// is given and an object's header type matches, the function id is
    /// decoded from the code field and free slots whose `free_ptr_map`
    /// entry is `false` are left unscanned — they hold untagged words whose
    /// low bits may alias a pointer tag.  Slots past the end of a map (or
    /// with no map at all) are conservatively scanned.
    ///
    /// # Errors
    ///
    /// Propagates [`Heap::forward`] failures.
    pub fn scan_from_precise(
        &mut self,
        mut scan: usize,
        from: &mut [Word],
        ptr_table: &[bool; 8],
        closures: Option<&ClosureScan<'_>>,
    ) -> Result<usize, VmError> {
        while scan < self.next {
            let h = self.space[scan];
            let len = header_len(h);
            let slot_map = closures
                .filter(|cs| header_type(h) == cs.type_id && len >= 1)
                .map(|cs| {
                    let fnid = (self.space[scan + 1] >> cs.code_shift) as usize;
                    cs.funs
                        .get(fnid)
                        .map(|f| f.free_ptr_map.as_slice())
                        .unwrap_or(&[])
                });
            for i in 1..=len {
                // Field 1 of a closure is the code fixnum; fields 2.. are
                // free slots 0.. with per-slot scan decisions.
                if let Some(map) = slot_map {
                    if i >= 2 && !map.get(i - 2).copied().unwrap_or(true) {
                        continue;
                    }
                }
                let w = self.space[scan + i];
                let fwd = self.forward(from, w, ptr_table)?;
                self.space[scan + i] = fwd;
            }
            scan += len + 1;
        }
        Ok(scan)
    }
}

/// Layout facts [`Heap::scan_from_precise`] needs to recognize closures and
/// skip their raw free slots.
#[derive(Debug, Clone, Copy)]
pub struct ClosureScan<'a> {
    /// Header type id of closure objects.
    pub type_id: u16,
    /// Right-shift decoding the code field (a tagged fixnum) to a function
    /// index.
    pub code_shift: u32,
    /// The program's functions; free slot `i` of a closure over `funs[f]`
    /// is scanned iff `funs[f].free_ptr_map[i]` (missing entries default to
    /// scanned).
    pub funs: &'a [crate::inst::CodeFun],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = header(12, 7);
        assert_eq!(header_len(h), 12);
        assert_eq!(header_type(h), 7);
        assert!(h >= 0);
    }

    #[test]
    fn alloc_and_access() {
        let mut h = Heap::new(64);
        let idx = h.alloc(2, 3, 99);
        assert_eq!(h.get(idx).unwrap(), header(2, 3));
        assert_eq!(h.get(idx + 1).unwrap(), 99);
        h.set(idx + 2, 7).unwrap();
        assert_eq!(h.get(idx + 2).unwrap(), 7);
        assert_eq!(h.used(), 3);
        assert!(h.get(100).is_err());
        assert!(h.set(50, 0).is_err());
    }

    #[test]
    fn gc_copies_live_graph() {
        let mut ptr_table = [false; 8];
        ptr_table[1] = true; // "pair" tag
        let mut h = Heap::new(256);
        // Build: a -> b (a's field 1 points at b), plus garbage.
        let b = h.alloc(2, 5, 42);
        let _garbage = h.alloc(10, 5, 0);
        let a = h.alloc(2, 5, 0);
        let b_ptr = ((b as i64) << 3) | 1;
        h.set(a + 1, b_ptr).unwrap();
        let a_ptr = ((a as i64) << 3) | 1;

        let mut from = h.begin_gc(256);
        let new_a = h.forward(&mut from, a_ptr, &ptr_table).unwrap();
        h.scan_from(0, &mut from, &ptr_table).unwrap();
        // Only a and b survive: 3 + 3 words.
        assert_eq!(h.used(), 6);
        let a_idx = (new_a >> 3) as usize;
        let new_b_ptr = h.get(a_idx + 1).unwrap();
        assert_eq!(new_b_ptr & 7, 1, "field still tagged as pair");
        let b_idx = (new_b_ptr >> 3) as usize;
        assert_eq!(h.get(b_idx + 1).unwrap(), 42, "b's payload survived");
    }

    #[test]
    fn gc_shares_already_forwarded() {
        let mut ptr_table = [false; 8];
        ptr_table[1] = true;
        let mut h = Heap::new(128);
        let b = h.alloc(1, 5, 7);
        let b_ptr = ((b as i64) << 3) | 1;
        let a = h.alloc(2, 5, 0);
        h.set(a + 1, b_ptr).unwrap();
        h.set(a + 2, b_ptr).unwrap(); // two references to b
        let a_ptr = ((a as i64) << 3) | 1;

        let mut from = h.begin_gc(128);
        let new_a = h.forward(&mut from, a_ptr, &ptr_table).unwrap();
        h.scan_from(0, &mut from, &ptr_table).unwrap();
        let a_idx = (new_a >> 3) as usize;
        assert_eq!(
            h.get(a_idx + 1).unwrap(),
            h.get(a_idx + 2).unwrap(),
            "sharing preserved"
        );
        assert_eq!(h.used(), 5);
    }

    #[test]
    fn non_pointers_untouched() {
        let ptr_table = [false; 8];
        let mut h = Heap::new(64);
        let mut from = h.begin_gc(64);
        assert_eq!(
            h.forward(&mut from, 12345 << 3, &ptr_table).unwrap(),
            12345 << 3
        );
    }

    #[test]
    fn forward_out_of_range_is_hard_error() {
        let mut ptr_table = [false; 8];
        ptr_table[1] = true;
        let mut h = Heap::new(64);
        let mut from = h.begin_gc(64);
        // A "pointer" addressing far beyond from-space.
        let bogus = (1_000_000i64 << 3) | 1;
        let err = h.forward(&mut from, bogus, &ptr_table).unwrap_err();
        assert_eq!(err.kind, VmErrorKind::BadMemoryAccess);
        assert!(err.message.contains("out-of-range"));
    }

    #[test]
    fn forward_to_space_overflow_is_hard_error() {
        let mut ptr_table = [false; 8];
        ptr_table[1] = true;
        let mut h = Heap::new(64);
        let obj = h.alloc(10, 5, 0);
        let ptr = ((obj as i64) << 3) | 1;
        // Begin a GC into a to-space too small to hold the object.
        let mut from = h.begin_gc(4);
        let err = h.forward(&mut from, ptr, &ptr_table).unwrap_err();
        assert_eq!(err.kind, VmErrorKind::BadMemoryAccess);
        assert!(err.message.contains("to-space overflow"));
    }

    #[test]
    fn forward_corrupt_length_is_hard_error() {
        let mut ptr_table = [false; 8];
        ptr_table[1] = true;
        let mut h = Heap::new(64);
        let obj = h.alloc(1, 5, 0);
        // Corrupt the header so the object claims to overrun from-space.
        h.set(obj, header(1 << 20, 5)).unwrap();
        let ptr = ((obj as i64) << 3) | 1;
        let mut from = h.begin_gc(64);
        let err = h.forward(&mut from, ptr, &ptr_table).unwrap_err();
        assert_eq!(err.kind, VmErrorKind::BadMemoryAccess);
        assert!(err.message.contains("corrupt length"));
    }

    #[test]
    fn grow_target_is_monotone_and_roomy() {
        // Strictly larger than the current capacity...
        for cap in [64usize, 100, 4096, 5000] {
            for (used, need) in [(0usize, 1usize), (cap / 2, 3), (cap - 1, 64)] {
                let t = grow_target(used, need, cap);
                assert!(t > cap, "target {t} must exceed capacity {cap}");
                assert!(t >= 2 * used, "target {t} must be at least 2x used {used}");
                assert!(t >= used + need, "target {t} must fit the request");
            }
        }
        // ...where the old `(used + need + 1).next_power_of_two()` was not:
        let (used, need, cap) = (4000usize, 3usize, 8192usize);
        assert!(
            (used + need + 1).next_power_of_two() <= cap,
            "old target no-ops"
        );
        assert!(grow_target(used, need, cap) > cap);
    }

    #[test]
    fn semispace_recycling_preserves_collection_results() {
        let mut ptr_table = [false; 8];
        ptr_table[1] = true;
        let mut h = Heap::new(128);
        // Two back-to-back collections of the same one-object graph; the
        // second reuses the first's retired from-space as its to-space.
        for round in 0..2 {
            let payload = (1000 + round) << 3; // fixnum-style, tag 0
            let obj = h.alloc(2, 5, payload);
            let ptr = ((obj as i64) << 3) | 1;
            let mut from = h.begin_gc(128);
            let fwd = h.forward(&mut from, ptr, &ptr_table).unwrap();
            h.scan_from(0, &mut from, &ptr_table).unwrap();
            h.end_gc(from);
            let idx = (fwd >> 3) as usize;
            assert_eq!(h.get(idx + 1).unwrap(), payload);
            assert_eq!(h.used(), 3);
        }
    }

    #[test]
    fn grow_preserves_indices() {
        let mut h = Heap::new(64);
        let idx = h.alloc(1, 2, 5);
        h.grow_to(1024);
        assert_eq!(h.get(idx + 1).unwrap(), 5);
        assert_eq!(h.capacity(), 1024);
    }
}
