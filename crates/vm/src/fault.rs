//! Deterministic fault injection — the "chaos heap".
//!
//! A [`FaultPlan`] perturbs the machine's memory behaviour without touching
//! its observable semantics: collections can be forced at every allocation
//! point or on a seeded schedule, a chosen allocation can be made to fail,
//! and the heap can be given a hard capacity cap.  Every fault is
//! *deterministic* — the same plan, program, and configuration always fault
//! at the same points — so a failure found under chaos replays exactly.
//!
//! The contract the test suite enforces: under any plan the machine either
//! produces the same observable result as a fault-free run or returns a
//! structured, recoverable error
//! ([`crate::VmErrorKind::OutOfMemory`]) — never a panic, never a
//! corrupted heap.
//!
//! Forced collections fire only at the machine's designated GC-safe points
//! (the reservation calls that precede object initialization), mirroring
//! how a real collector may run at any allocation but never *inside* one.

/// A deterministic fault-injection schedule for one machine run.
///
/// The default plan injects nothing; builders compose:
///
/// ```
/// use sxr_vm::FaultPlan;
///
/// let plan = FaultPlan::default()
///     .with_gc_every_alloc()
///     .with_heap_cap_words(1 << 14);
/// assert!(!plan.is_none());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Force a full collection at every GC-safe allocation point.  The
    /// strongest schedule: every object is copied as often as possible, so
    /// any root the machine forgot to register is exposed immediately.
    pub gc_every_alloc: bool,
    /// Fail the Nth object allocation (1-based, counted from machine load —
    /// constant-pool construction included) with
    /// [`crate::VmErrorKind::OutOfMemory`].
    pub fail_alloc_at: Option<u64>,
    /// Hard ceiling on heap capacity in words.  The heap never grows past
    /// it (and starts no larger); an allocation that cannot be satisfied
    /// within the cap — even after collecting — reports a structured
    /// out-of-memory error.  Values below 64 words are rounded up to 64,
    /// the heap's minimum capacity.
    pub heap_cap_words: Option<usize>,
    /// Seed for the jittered GC schedule: an in-tree xorshift64* stream
    /// decides at each GC-safe point whether to force a collection
    /// (roughly one point in eight).  Identical seeds give identical
    /// schedules.
    pub gc_jitter_seed: Option<u64>,
}

impl FaultPlan {
    /// The empty plan — injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_none(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Forces a collection at every GC-safe allocation point.
    pub fn with_gc_every_alloc(mut self) -> FaultPlan {
        self.gc_every_alloc = true;
        self
    }

    /// Fails the `n`th allocation (1-based) with a structured OOM.
    pub fn with_fail_alloc_at(mut self, n: u64) -> FaultPlan {
        self.fail_alloc_at = Some(n);
        self
    }

    /// Caps heap capacity at `words` (floor 64).
    pub fn with_heap_cap_words(mut self, words: usize) -> FaultPlan {
        self.heap_cap_words = Some(words);
        self
    }

    /// Installs a seeded jittered-GC schedule.
    pub fn with_gc_jitter_seed(mut self, seed: u64) -> FaultPlan {
        self.gc_jitter_seed = Some(seed);
        self
    }

    /// The effective capacity cap, with the heap's 64-word floor applied.
    pub(crate) fn effective_cap(&self) -> usize {
        self.heap_cap_words.map_or(usize::MAX, |c| c.max(64))
    }

    /// Whether any GC-timing perturbation is active (fast-path gate).
    pub(crate) fn perturbs_gc(&self) -> bool {
        self.gc_every_alloc || self.gc_jitter_seed.is_some()
    }
}

/// The deterministic xorshift64* stream behind the jittered schedule (also
/// reusable by test harnesses that need an in-tree PRNG).
#[derive(Debug, Clone)]
pub struct ChaosRng(u64);

impl ChaosRng {
    /// Seeds the stream (a zero seed is bumped to 1; xorshift has no
    /// all-zero state).
    pub fn new(seed: u64) -> ChaosRng {
        ChaosRng(seed.max(1))
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Jitter decision: force a collection at this safe point?
    pub(crate) fn force_gc(&mut self) -> bool {
        self.next_u64().is_multiple_of(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_none() {
        assert!(FaultPlan::default().is_none());
        assert!(FaultPlan::none().is_none());
        assert!(!FaultPlan::none().with_gc_every_alloc().is_none());
        assert!(!FaultPlan::none().with_fail_alloc_at(3).is_none());
        assert!(!FaultPlan::none().with_heap_cap_words(1 << 12).is_none());
        assert!(!FaultPlan::none().with_gc_jitter_seed(42).is_none());
    }

    #[test]
    fn cap_floor_is_64_words() {
        assert_eq!(
            FaultPlan::none().with_heap_cap_words(10).effective_cap(),
            64
        );
        assert_eq!(
            FaultPlan::none().with_heap_cap_words(4096).effective_cap(),
            4096
        );
        assert_eq!(FaultPlan::none().effective_cap(), usize::MAX);
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = ChaosRng::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = ChaosRng::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = ChaosRng::new(8);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b, "same seed, same stream");
        assert_ne!(a, c, "different seed, different stream");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = ChaosRng::new(0);
        assert_ne!(r.next_u64(), 0);
    }
}
