//! Dynamic execution counters — the measurement substrate for Tables 2–3.

use crate::inst::InstClass;

/// Execution statistics. Instruction counts are deterministic (independent
/// of heap size and GC schedule); GC work is reported separately.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    /// Total instructions executed.
    pub total: u64,
    /// Breakdown by [`InstClass`], indexed by discriminant (the hot path
    /// bumps a flat array; use [`Counters::class`] to read).
    by_class: [u64; InstClass::ALL.len()],
    /// Words allocated (including headers).
    pub allocated_words: u64,
    /// Number of objects allocated.
    pub allocated_objects: u64,
    /// Garbage collections performed.
    pub gc_count: u64,
    /// Collections forced by a fault plan (subset of `gc_count`); always
    /// zero on fault-free runs.
    pub gc_forced: u64,
    /// Words copied by the collector (survivors).
    pub gc_copied_words: u64,
    /// Calls performed (direct + indirect, including tail calls).
    pub calls: u64,
}

impl Counters {
    /// Resets everything to zero.
    pub fn reset(&mut self) {
        *self = Counters::default();
    }

    /// Count one executed instruction of the given class.
    #[inline]
    pub fn count(&mut self, class: InstClass) {
        self.total += 1;
        self.by_class[class as usize] += 1;
    }

    /// Count of a specific class.
    pub fn class(&self, c: InstClass) -> u64 {
        self.by_class[c as usize]
    }

    /// Stable machine-readable view: every counter as a `(name, value)`
    /// pair, in a fixed order (all instruction classes appear even when
    /// zero).  This is the schema of the `counters` object in
    /// `BENCH_vm.json`.
    pub fn as_pairs(&self) -> Vec<(&'static str, u64)> {
        let mut pairs = Vec::with_capacity(7 + InstClass::ALL.len());
        pairs.push(("total", self.total));
        for c in InstClass::ALL {
            pairs.push((c.label(), self.class(c)));
        }
        pairs.push(("allocated_words", self.allocated_words));
        pairs.push(("allocated_objects", self.allocated_objects));
        pairs.push(("gc_count", self.gc_count));
        pairs.push(("gc_forced", self.gc_forced));
        pairs.push(("gc_copied_words", self.gc_copied_words));
        pairs.push(("calls", self.calls));
        pairs
    }

    /// Renders the counters as one flat JSON object (no external
    /// serialization dependency; all values are unsigned integers).
    pub fn to_json(&self) -> String {
        let fields: Vec<String> = self
            .as_pairs()
            .into_iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        format!("{{{}}}", fields.join(","))
    }

    /// One-line summary for reports.
    pub fn summary(&self) -> String {
        let mut parts = vec![format!("total={}", self.total)];
        for c in InstClass::ALL {
            let n = self.class(c);
            if n > 0 {
                parts.push(format!("{}={}", c.label(), n));
            }
        }
        parts.push(format!("alloc-words={}", self.allocated_words));
        parts.push(format!("gcs={}", self.gc_count));
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_and_json_are_stable() {
        let mut c = Counters::default();
        c.count(InstClass::Call);
        c.calls += 1;
        c.gc_count += 2;
        let pairs = c.as_pairs();
        assert_eq!(pairs[0], ("total", 1));
        assert!(pairs.contains(&("call", 1)));
        assert!(pairs.contains(&("gc_count", 2)));
        let json = c.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"total\":1"));
        assert!(json.contains("\"gc_count\":2"));
        assert!(json.contains("\"alu\":0"), "zero classes still present");
    }

    #[test]
    fn counting_and_reset() {
        let mut c = Counters::default();
        c.count(InstClass::Arith);
        c.count(InstClass::Arith);
        c.count(InstClass::Branch);
        assert_eq!(c.total, 3);
        assert_eq!(c.class(InstClass::Arith), 2);
        assert_eq!(c.class(InstClass::Call), 0);
        assert!(c.summary().contains("alu=2"));
        c.reset();
        assert_eq!(c.total, 0);
    }
}
