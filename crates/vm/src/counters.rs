//! Dynamic execution counters — the measurement substrate for Tables 2–3.

use crate::inst::InstClass;
use std::collections::HashMap;

/// Execution statistics. Instruction counts are deterministic (independent
/// of heap size and GC schedule); GC work is reported separately.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    /// Total instructions executed.
    pub total: u64,
    /// Breakdown by [`InstClass`].
    pub by_class: HashMap<InstClass, u64>,
    /// Words allocated (including headers).
    pub allocated_words: u64,
    /// Number of objects allocated.
    pub allocated_objects: u64,
    /// Garbage collections performed.
    pub gc_count: u64,
    /// Words copied by the collector (survivors).
    pub gc_copied_words: u64,
    /// Calls performed (direct + indirect, including tail calls).
    pub calls: u64,
}

impl Counters {
    /// Resets everything to zero.
    pub fn reset(&mut self) {
        *self = Counters::default();
    }

    /// Count one executed instruction of the given class.
    #[inline]
    pub fn count(&mut self, class: InstClass) {
        self.total += 1;
        *self.by_class.entry(class).or_insert(0) += 1;
    }

    /// Count of a specific class.
    pub fn class(&self, c: InstClass) -> u64 {
        self.by_class.get(&c).copied().unwrap_or(0)
    }

    /// One-line summary for reports.
    pub fn summary(&self) -> String {
        let mut parts = vec![format!("total={}", self.total)];
        for c in InstClass::ALL {
            let n = self.class(c);
            if n > 0 {
                parts.push(format!("{}={}", c.label(), n));
            }
        }
        parts.push(format!("alloc-words={}", self.allocated_words));
        parts.push(format!("gcs={}", self.gc_count));
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_reset() {
        let mut c = Counters::default();
        c.count(InstClass::Arith);
        c.count(InstClass::Arith);
        c.count(InstClass::Branch);
        assert_eq!(c.total, 3);
        assert_eq!(c.class(InstClass::Arith), 2);
        assert_eq!(c.class(InstClass::Call), 0);
        assert!(c.summary().contains("alu=2"));
        c.reset();
        assert_eq!(c.total, 0);
    }
}
