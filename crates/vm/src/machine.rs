//! The interpreter: loads a [`CodeProgram`], runs it, counts everything.
//!
//! The execution hot path is allocation-free: instructions are pre-decoded
//! into the flat [`DInst`] form at load time (see [`crate::decode`]), call
//! frames recycle their register arrays through a pool, and the instruction
//! budget is charged before an instruction runs so budgets and counters
//! always agree.

use crate::counters::Counters;
use crate::decode::{decode_program, ArgSpan, DInst, DecodedProgram};
use crate::encode;
use crate::error::{OomPhase, VmError, VmErrorKind};
use crate::fault::{ChaosRng, FaultPlan};
use crate::heap::{grow_target, header_len, header_type, ClosureScan, Heap, Word};
use crate::inst::{BinOp, CmpOp, CodeProgram, PoolEntry, Reg, RepVmOp};
use std::collections::HashMap;
use std::rc::Rc;
use sxr_ir::rep::{roles, RepId, RepKind, RepRegistry};

/// A load-time bytecode verifier: inspects the whole program and either
/// blesses it (`Ok`) or rejects it with a structured
/// [`VmErrorKind::RejectedByVerifier`] error.  A plain function pointer so
/// [`MachineConfig`] stays `Copy`-friendly and the VM crate needs no
/// dependency on the analysis crate that implements the standard verifier.
pub type VerifierHook = fn(&CodeProgram) -> Result<(), VmError>;

/// Tuning knobs for a [`Machine`].
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Initial heap size in words (grows on demand, up to any cap the
    /// fault plan imposes).
    pub heap_words: usize,
    /// Abort with [`VmErrorKind::Timeout`] after this many instructions.
    pub instruction_limit: Option<u64>,
    /// Deterministic fault-injection schedule (defaults to none).
    pub fault: FaultPlan,
    /// Load-time bytecode verifier.  When set, [`Machine::new`] runs it
    /// once: on success the machine executes on the unchecked-access fast
    /// path (the verifier has proved every register index, jump target,
    /// and pool/global read in bounds); on failure loading is refused.
    /// When `None` (the default) the machine stays on the fully checked
    /// loop, which tolerates arbitrary (decodable) input.
    pub verifier: Option<VerifierHook>,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            heap_words: 1 << 20,
            instruction_limit: None,
            fault: FaultPlan::default(),
            verifier: None,
        }
    }
}

/// Upper bound on pooled register arrays; deeper recursion simply
/// allocates, shallower call chains reuse.
const REG_POOL_MAX: usize = 64;

#[derive(Debug)]
struct Frame {
    fnid: u32,
    pc: usize,
    regs: Vec<Word>,
    ret_dst: Reg,
}

/// One installed trap handler (a `PushHandler` whose `PopHandler` has not
/// yet run).  `depth` is `frames.len()` at install time: delivery unwinds
/// the frame stack back to exactly that depth, so the frame that installed
/// the handler is on top when the handler is called.
#[derive(Debug)]
struct Handler {
    depth: usize,
    handler: Word,
    dst: Reg,
    t: u32,
}

/// Carries the guest value behind an in-flight trap between the raising
/// instruction and delivery (cleared on every delivery attempt).
#[derive(Debug, Clone, Copy)]
enum PendingTrap {
    /// `%raise v`: deliver `v` itself, unwrapped (identity-preserving
    /// re-raise).
    Reraise(Word),
    /// `%error v`: deliver a fresh condition whose payload is `v`.
    Payload(Word),
}

/// Why a [`Machine::start`]/[`Machine::resume`] session paused without
/// finishing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuspendReason {
    /// The instruction budget reached zero.  No instruction was lost: the
    /// next [`Machine::resume`] re-fetches the instruction the budget
    /// refused.
    FuelExhausted,
    /// The machine executed a host-visible effect (`%write-char` with
    /// [`Machine::set_yield_on_output`] enabled) and is handing control to
    /// the embedder.  The effect has already happened; resuming continues
    /// at the next instruction.
    HostCall,
}

/// What one slice of resumable execution produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// The program ran to completion with this result word.
    Done(Word),
    /// Execution paused; all machine state is intact and
    /// [`Machine::resume`] continues exactly where the slice stopped.
    Suspended(SuspendReason),
}

/// The machine's session lifecycle.  `run`/`start` are only valid in
/// `Ready`, `resume` only in `Running`; everything else is a deterministic
/// `BadProgram` error rather than unspecified behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Ready,
    Running,
    Done,
    Faulted,
}

/// Control flow out of one executed instruction.
enum Exec {
    Continue,
    Suspend(SuspendReason),
}

#[derive(Debug, Clone, Copy)]
struct RoleCache {
    fixnum: RepId,
    closure: RepId,
    false_word: Word,
    unspec_word: Word,
    reg_init: Word,
}

/// A loaded program plus all mutable run-time state.
///
/// # Example
///
/// See the crate-level documentation; machines are normally produced by the
/// `sxr` pipeline rather than built by hand.
#[derive(Debug)]
pub struct Machine {
    program: Rc<CodeProgram>,
    /// The pre-decoded hot-path form of the program.
    decoded: DecodedProgram,
    /// The run-time representation registry (starts as the compile-time
    /// registry; extended by run-time `%make-*-type`).
    pub registry: RepRegistry,
    heap: Heap,
    globals: Vec<Word>,
    pool: Vec<Word>,
    interned: HashMap<String, Word>,
    frames: Vec<Frame>,
    /// Retired register arrays awaiting reuse (the frame pool).
    reg_pool: Vec<Vec<Word>>,
    /// Dynamic execution counters.
    pub counters: Counters,
    output: String,
    ptr_table: [bool; 8],
    remaining: Option<u64>,
    role: RoleCache,
    /// The fault-injection schedule in force for this machine.
    fault: FaultPlan,
    /// Hard heap capacity ceiling in words (`usize::MAX` when uncapped).
    heap_cap: usize,
    /// True when the plan perturbs GC timing (fast-path gate so fault-free
    /// runs pay one boolean test per safe point).
    chaos_gc: bool,
    /// Jittered-schedule PRNG state, when seeded.
    jitter: Option<ChaosRng>,
    /// Total object allocations performed since load (never reset; the
    /// ordinal stream `fail_alloc_at` indexes into).
    alloc_seq: u64,
    /// Installed trap handlers, innermost last.  Handler closures are GC
    /// roots (traced in [`Machine::collect`]).
    handlers: Vec<Handler>,
    /// Extra GC roots for guest words a trap is carrying while the
    /// condition object is under construction (empty outside delivery).
    trap_roots: Vec<Word>,
    /// The guest value behind an in-flight `%raise`/`%error`, if any.
    pending_trap: Option<PendingTrap>,
    /// Session lifecycle (pins `run`-after-`Err` to a deterministic error).
    phase: Phase,
    /// The result word once the outermost frame returns.
    result: Word,
    /// When set, `%write-char` yields [`SuspendReason::HostCall`] after
    /// appending (resumable sessions only; [`Machine::run`] runs through).
    host_yield_output: bool,
    /// True when a configured [`VerifierHook`] accepted the program at
    /// load; gates the unchecked-access fast path.
    verified: bool,
}

impl Machine {
    /// Loads `program` (pre-decoding every function and building the
    /// constant pool on the heap).
    ///
    /// # Errors
    ///
    /// Returns [`VmErrorKind::BadProgram`] when the program's registry lacks
    /// a role its literals or code require, or when an instruction could
    /// never execute (e.g. allocation of an immediate representation).
    pub fn new(program: CodeProgram, config: MachineConfig) -> Result<Machine, VmError> {
        let registry = program.registry.clone();
        let need_role = |name: &str| {
            registry.role(name).ok_or_else(|| {
                VmError::new(
                    VmErrorKind::BadProgram,
                    format!("library did not provide required representation role `{name}`"),
                )
            })
        };
        let fixnum = need_role(roles::FIXNUM)?;
        let boolean = need_role(roles::BOOLEAN)?;
        let closure = need_role(roles::CLOSURE)?;
        let unspecified = need_role(roles::UNSPECIFIED)?;
        for (name, id) in [
            ("fixnum", fixnum),
            ("boolean", boolean),
            ("unspecified", unspecified),
        ] {
            if registry.info(id).is_pointer() {
                return Err(VmError::new(
                    VmErrorKind::BadProgram,
                    format!("role `{name}` must be an immediate representation"),
                ));
            }
        }
        let RepKind::Pointer {
            tag: closure_tag, ..
        } = registry.info(closure).kind
        else {
            return Err(VmError::new(
                VmErrorKind::BadProgram,
                "role `closure` must be a pointer representation",
            ));
        };
        let role = RoleCache {
            fixnum,
            closure,
            false_word: registry.encode_immediate(boolean, 0),
            unspec_word: registry.encode_immediate(unspecified, 0),
            reg_init: registry.encode_immediate(fixnum, 0),
        };
        let decoded = decode_program(&program, &registry, closure_tag, fixnum)?;
        // The verifier sees the loadable program, of which the decoded
        // stream is a faithful 1:1 translation; a verified program runs on
        // the unchecked fast path, a rejected one never starts.
        let verified = match config.verifier {
            Some(verify) => {
                verify(&program)?;
                true
            }
            None => false,
        };
        let ptr_table = registry.pointer_pattern_table();
        let nglobals = program.nglobals;
        let heap_cap = config.fault.effective_cap();
        let chaos_gc = config.fault.perturbs_gc();
        let jitter = config.fault.gc_jitter_seed.map(ChaosRng::new);
        let mut m = Machine {
            program: Rc::new(program),
            decoded,
            registry,
            heap: Heap::new(config.heap_words.min(heap_cap)),
            globals: vec![role.unspec_word; nglobals],
            pool: Vec::new(),
            interned: HashMap::new(),
            frames: Vec::new(),
            reg_pool: Vec::new(),
            counters: Counters::default(),
            output: String::new(),
            ptr_table,
            remaining: config.instruction_limit,
            role,
            fault: config.fault,
            heap_cap,
            chaos_gc,
            jitter,
            alloc_seq: 0,
            handlers: Vec::new(),
            trap_roots: Vec::new(),
            pending_trap: None,
            phase: Phase::Ready,
            result: role.unspec_word,
            host_yield_output: false,
            verified,
        };
        m.build_pool()?;
        Ok(m)
    }

    /// True when the configured load-time verifier accepted this program
    /// (the machine is running on the unchecked-access fast path).
    pub fn is_verified(&self) -> bool {
        self.verified
    }

    fn build_pool(&mut self) -> Result<(), VmError> {
        let prog = self.program.clone();
        // Pre-reserve so pool construction never triggers GC (intermediate
        // children would not be roots).
        let mut need = 0usize;
        for e in &prog.pool {
            need += match e {
                PoolEntry::Datum(d) => encode::words_needed(d),
                PoolEntry::Rep(_) => 2,
            };
        }
        if self.heap.needs_gc(need) {
            let target = grow_target(self.heap.used(), need, self.heap.capacity());
            self.heap.grow_to(target.min(self.heap_cap));
            if self.heap.needs_gc(need) {
                // Nothing on the heap is garbage at load time, so a capped
                // heap that cannot hold the pool is simply too small.
                return Err(VmError::oom(need, self.heap.capacity(), OomPhase::Alloc));
            }
        }
        for e in &prog.pool {
            let w = match e {
                PoolEntry::Datum(d) => encode::encode_datum(self, d)?,
                PoolEntry::Rep(rid) => self.make_rep_object(*rid)?,
            };
            self.pool.push(w);
        }
        Ok(())
    }

    /// The accumulated `%write-char` output.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Clears the output port.
    pub fn clear_output(&mut self) {
        self.output.clear();
    }

    /// Formats a tagged word using the library's registered representations.
    pub fn describe(&self, w: Word) -> String {
        encode::describe(self, w, 64)
    }

    pub(crate) fn heap_ref(&self) -> &Heap {
        &self.heap
    }

    /// Words of heap currently in use.
    pub fn heap_used(&self) -> usize {
        self.heap.used()
    }

    /// Current heap capacity in words (observing the growth policy).
    pub fn heap_capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Heap store used by the constant encoder on freshly allocated objects.
    pub(crate) fn heap_set_for_encode(&mut self, idx: usize, w: Word) -> Result<(), VmError> {
        self.heap.set(idx, w)
    }

    pub(crate) fn role_fixnum(&self) -> RepId {
        self.role.fixnum
    }

    /// Allocates, collecting or growing first if needed. `fill` must be a
    /// valid tagged word.
    ///
    /// Fault-injected collections never fire here: this is *inside* an
    /// allocation, where callers may hold derived words (an encoded child,
    /// a frame under construction) that are not yet GC roots.  Chaos
    /// schedules perturb only the designated safe points
    /// ([`Machine::ensure_space`]).
    ///
    /// # Errors
    ///
    /// Propagates collection failures (heap corruption surfaced by the
    /// checked forwarder), and raises [`VmErrorKind::OutOfMemory`] when the
    /// request cannot be satisfied under the fault plan's capacity cap or
    /// the plan fails this allocation by schedule.
    pub(crate) fn alloc_object(
        &mut self,
        len: usize,
        type_id: u16,
        tag: u64,
        fill: Word,
    ) -> Result<Word, VmError> {
        self.alloc_seq += 1;
        if self.fault.fail_alloc_at == Some(self.alloc_seq) {
            return Err(VmError::oom(len + 1, self.heap.capacity(), OomPhase::Alloc));
        }
        self.ensure_space_quiet(len + 1)?;
        self.counters.allocated_words += len as u64 + 1;
        self.counters.allocated_objects += 1;
        let idx = self.heap.alloc(len, type_id, fill);
        Ok(((idx as i64) << 3) | tag as i64)
    }

    /// A GC-safe point reserving `words` of heap.  Every register, global,
    /// pool slot, and interned symbol is a root here, so the fault plan is
    /// free to force a collection; afterwards the normal reservation logic
    /// runs.  Once this returns, allocations totalling `words` are
    /// guaranteed not to collect (callers rely on that to keep not-yet-
    /// rooted intermediate values alive across multi-object builds).
    fn ensure_space(&mut self, words: usize) -> Result<(), VmError> {
        if self.chaos_gc {
            let force =
                self.fault.gc_every_alloc || self.jitter.as_mut().is_some_and(ChaosRng::force_gc);
            if force {
                self.counters.gc_forced += 1;
                self.collect()?;
            }
        }
        self.ensure_space_quiet(words)
    }

    /// The reservation logic alone, with no fault hooks: collect when the
    /// request does not fit, grow when the collection left the heap tight.
    fn ensure_space_quiet(&mut self, words: usize) -> Result<(), VmError> {
        if !self.heap.needs_gc(words.saturating_sub(1)) {
            return Ok(());
        }
        self.collect()?;
        // Grow when the collection left the heap tight: either the request
        // still does not fit, or live data holds more than half of capacity
        // (so the next collection would come almost immediately).  The
        // target is strictly larger than the current capacity — see
        // [`grow_target`] — which keeps the decision monotone and
        // thrash-free under high live-data residency.  A capacity cap
        // clamps the target; a request the capped heap cannot satisfy is a
        // structured out-of-memory error, never a panic.
        if self.heap.needs_gc(words.saturating_sub(1))
            || self.heap.used() * 2 > self.heap.capacity()
        {
            let target = grow_target(self.heap.used(), words, self.heap.capacity());
            self.heap.grow_to(target.min(self.heap_cap));
        }
        if self.heap.needs_gc(words.saturating_sub(1)) {
            let phase = if words > self.heap_cap {
                OomPhase::Alloc // could never fit, even in an empty heap
            } else {
                OomPhase::Collect // collection reclaimed too little
            };
            return Err(VmError::oom(words, self.heap.capacity(), phase));
        }
        Ok(())
    }

    /// Runs a full two-space collection.
    ///
    /// # Errors
    ///
    /// Returns [`VmErrorKind::BadMemoryAccess`] when the forwarder detects
    /// heap corruption (out-of-range pointers, to-space overflow) instead
    /// of silently mis-forwarding in release builds.
    pub fn collect(&mut self) -> Result<(), VmError> {
        self.counters.gc_count += 1;
        let cap = self.heap.capacity();
        let mut from = self.heap.begin_gc(cap);
        let pt = self.ptr_table;
        for w in self.globals.iter_mut() {
            *w = self.heap.forward(&mut from, *w, &pt)?;
        }
        for w in self.pool.iter_mut() {
            *w = self.heap.forward(&mut from, *w, &pt)?;
        }
        let prog = self.program.clone();
        for f in self.frames.iter_mut() {
            let map = &prog.funs[f.fnid as usize].ptr_map;
            for (r, w) in f.regs.iter_mut().enumerate() {
                if map.get(r).copied().unwrap_or(true) {
                    *w = self.heap.forward(&mut from, *w, &pt)?;
                }
            }
        }
        for w in self.interned.values_mut() {
            *w = self.heap.forward(&mut from, *w, &pt)?;
        }
        for h in self.handlers.iter_mut() {
            h.handler = self.heap.forward(&mut from, h.handler, &pt)?;
        }
        for w in self.trap_roots.iter_mut() {
            *w = self.heap.forward(&mut from, *w, &pt)?;
        }
        self.result = self.heap.forward(&mut from, self.result, &pt)?;
        // Closures are mixed-representation objects: free slots the code
        // generator proved raw must not be treated as pointers.
        let RepKind::Immediate { shift, .. } = self.registry.info(self.role.fixnum).kind else {
            unreachable!("fixnum role validated as immediate at load");
        };
        let cs = ClosureScan {
            type_id: self.role.closure as u16,
            code_shift: shift,
            funs: &prog.funs,
        };
        self.heap.scan_from_precise(0, &mut from, &pt, Some(&cs))?;
        self.heap.end_gc(from);
        self.counters.gc_copied_words += self.heap.used() as u64;
        Ok(())
    }

    /// Total object allocations performed since load, pool construction
    /// included.  Unlike [`Counters::allocated_objects`] this is never
    /// reset, so it is the ordinal stream that
    /// [`FaultPlan::fail_alloc_at`] indexes into — chaos harnesses use it
    /// to derive schedules from a fault-free run.
    pub fn allocations(&self) -> u64 {
        self.alloc_seq
    }

    /// The fault plan this machine runs under.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault
    }

    /// Register read, monomorphized over the fast-path gate.  With
    /// `V = true` the bounds check is elided: the verifier proved every
    /// register operand smaller than the function's frame size at load.
    #[inline(always)]
    fn r_g<const V: bool>(&self, reg: Reg) -> Word {
        let f = self.frames.last().expect("active frame");
        if V {
            debug_assert!((reg as usize) < f.regs.len(), "verifier missed r{reg}");
            // SAFETY: the load-time verifier (`bcverify` reg-oob rule)
            // proved `reg < nregs`, and frames always hold `nregs` words.
            unsafe { *f.regs.get_unchecked(reg as usize) }
        } else {
            f.regs[reg as usize]
        }
    }

    #[inline(always)]
    fn set_r_g<const V: bool>(&mut self, reg: Reg, w: Word) {
        let f = self.frames.last_mut().expect("active frame");
        if V {
            debug_assert!((reg as usize) < f.regs.len(), "verifier missed r{reg}");
            // SAFETY: as for `r_g`.
            unsafe {
                *f.regs.get_unchecked_mut(reg as usize) = w;
            }
        } else {
            f.regs[reg as usize] = w;
        }
    }

    /// The operand at position `i` of an arena span.  Spans are built by
    /// `decode_program` to index the arena it builds, so they are in
    /// bounds by construction; the verified path elides the recheck.
    #[inline(always)]
    fn arg_g<const V: bool>(&self, span: ArgSpan, i: usize) -> Reg {
        if V {
            debug_assert!(span.off as usize + i < self.decoded.args.len());
            // SAFETY: decode builds every span over operands it appended.
            unsafe { *self.decoded.args.get_unchecked(span.off as usize + i) }
        } else {
            self.decoded.args[span.off as usize + i]
        }
    }

    fn r(&self, reg: Reg) -> Word {
        self.r_g::<false>(reg)
    }

    /// The operand at position `i` of an arena span.
    fn arg(&self, span: ArgSpan, i: usize) -> Reg {
        self.arg_g::<false>(span, i)
    }

    /// Takes a register array from the pool (or allocates one), fully
    /// initialized to the library's register-init word so no values bleed
    /// through from the frame that previously used it.
    fn take_regs(&mut self, nregs: usize) -> Vec<Word> {
        let mut regs = self.reg_pool.pop().unwrap_or_default();
        regs.clear();
        regs.resize(nregs, self.role.reg_init);
        regs
    }

    fn recycle_regs(&mut self, regs: Vec<Word>) {
        if self.reg_pool.len() < REG_POOL_MAX {
            self.reg_pool.push(regs);
        }
    }

    /// Builds the entry frame for `main`.
    fn main_frame(&mut self) -> Result<Frame, VmError> {
        let fnid = self.program.main;
        let fun = &self.decoded.funs[fnid as usize];
        if fun.arity != 0 {
            return Err(VmError::new(
                VmErrorKind::ArityMismatch,
                format!(
                    "`{}` takes {} arguments, got 0",
                    self.program.funs[fnid as usize].name, fun.arity
                ),
            ));
        }
        let nregs = fun.nregs;
        let mut regs = self.take_regs(nregs);
        regs[0] = self.role.unspec_word;
        Ok(Frame {
            fnid,
            pc: 0,
            regs,
            ret_dst: 0,
        })
    }

    fn arity_error(&self, fnid: u32, at_least: bool, got: usize) -> VmError {
        let fun = &self.program.funs[fnid as usize];
        VmError::new(
            VmErrorKind::ArityMismatch,
            format!(
                "`{}` takes {}{} arguments, got {}",
                fun.name,
                if at_least { "at least " } else { "" },
                fun.arity,
                got
            ),
        )
    }

    /// Builds a callee frame reading the closure and arguments from the
    /// *current* frame's registers. For variadic callees the extra
    /// arguments are collected into a library list; space for the pairs is
    /// reserved before any register is read, so a collection here cannot
    /// leave stale copies behind.
    fn build_frame<const V: bool>(
        &mut self,
        fnid: u32,
        clo_reg: Reg,
        arg_span: ArgSpan,
        ret_dst: Reg,
    ) -> Result<Frame, VmError> {
        let fun = &self.decoded.funs[fnid as usize];
        let (arity, variadic, nregs) = (fun.arity, fun.variadic, fun.nregs);
        let nargs = arg_span.len as usize;
        if !variadic {
            if arity != nargs {
                return Err(self.arity_error(fnid, false, nargs));
            }
            let mut regs = self.take_regs(nregs);
            regs[0] = self.r_g::<V>(clo_reg);
            for i in 0..nargs {
                regs[1 + i] = self.r_g::<V>(self.arg_g::<V>(arg_span, i));
            }
            return Ok(Frame {
                fnid,
                pc: 0,
                regs,
                ret_dst,
            });
        }
        if nargs < arity {
            return Err(self.arity_error(fnid, true, nargs));
        }
        let extras = nargs - arity;
        let pair = self
            .registry
            .role(sxr_ir::rep::roles::PAIR)
            .ok_or_else(|| {
                VmError::new(
                    VmErrorKind::BadProgram,
                    "variadic call requires a `pair` representation",
                )
            })?;
        let null = self
            .registry
            .role(sxr_ir::rep::roles::NULL)
            .ok_or_else(|| {
                VmError::new(
                    VmErrorKind::BadProgram,
                    "variadic call requires a `null` representation",
                )
            })?;
        let RepKind::Pointer { tag: pair_tag, .. } = self.registry.info(pair).kind else {
            return Err(VmError::new(
                VmErrorKind::BadProgram,
                "`pair` role must be a pointer",
            ));
        };
        // Reserve everything up front; reads below see post-GC registers.
        self.ensure_space(3 * extras + 1)?;
        let mut regs = self.take_regs(nregs);
        regs[0] = self.r_g::<V>(clo_reg);
        for i in 0..arity {
            regs[1 + i] = self.r_g::<V>(self.arg_g::<V>(arg_span, i));
        }
        let mut rest = self.registry.encode_immediate(null, 0);
        for i in (arity..nargs).rev() {
            let car = self.r_g::<V>(self.arg_g::<V>(arg_span, i));
            let p = self.alloc_object(2, pair as u16, pair_tag, rest)?;
            let base = (p >> 3) as usize;
            self.heap.set(base + 1, car)?;
            rest = p;
        }
        regs[1 + arity] = rest;
        Ok(Frame {
            fnid,
            pc: 0,
            regs,
            ret_dst,
        })
    }

    fn closure_target(&self, fval: Word) -> Result<u32, VmError> {
        if !self.registry.tag_matches(self.role.closure, fval) {
            return Err(VmError::new(
                VmErrorKind::NotAProcedure,
                format!("call of non-procedure {}", self.describe(fval)),
            ));
        }
        let base = (fval >> 3) as usize;
        let code = self.heap.get(base + 1)?;
        let fnid = self.registry.decode_immediate(self.role.fixnum, code) as u32;
        // The code word lives on the heap, where a sufficiently adversarial
        // guest (a `%rep-set!` through a representation sharing the closure
        // tag) can overwrite it; such an object is simply not a callable
        // procedure, and saying so keeps the error recoverable — important
        // for the verifier's contract that verified programs never reach
        // `BadProgram` at run time.
        if (fnid as usize) >= self.decoded.funs.len() {
            return Err(VmError::new(
                VmErrorKind::NotAProcedure,
                format!("closure code word {fnid} is not a function id"),
            ));
        }
        Ok(fnid)
    }

    /// A deterministic "wrong lifecycle phase" error for `run`/`start`/
    /// `resume` calls outside their valid phase.
    fn phase_error(&self, wanted: &str) -> VmError {
        let state = match self.phase {
            Phase::Ready => "has not started",
            Phase::Running => "is suspended mid-run",
            Phase::Done => "already ran to completion",
            Phase::Faulted => "previously stopped with an error",
        };
        VmError::new(
            VmErrorKind::BadProgram,
            format!("machine {state}; {wanted}"),
        )
    }

    /// Executes the program to completion.
    ///
    /// Valid only on a fresh machine: calling `run` again after it has
    /// returned — a value *or* an error — is a deterministic
    /// [`VmErrorKind::BadProgram`] error, never unspecified behaviour.
    ///
    /// # Errors
    ///
    /// Any [`VmError`] raised during execution (with
    /// [`VmErrorKind::Timeout`] when the configured instruction budget runs
    /// out).
    pub fn run(&mut self) -> Result<Word, VmError> {
        self.begin()?;
        loop {
            match self.step_loop()? {
                StepResult::Done(w) => return Ok(w),
                StepResult::Suspended(SuspendReason::FuelExhausted) => {
                    self.phase = Phase::Faulted;
                    return Err(VmError::new(
                        VmErrorKind::Timeout,
                        "instruction budget exhausted",
                    ));
                }
                // `run` owns the session: cooperative yield points are
                // simply run through.
                StepResult::Suspended(SuspendReason::HostCall) => {}
            }
        }
    }

    /// Begins a resumable session, executing until completion, fuel
    /// exhaustion, or a host-call yield.  Unlike [`Machine::run`], an empty
    /// instruction budget is not an error: the machine suspends with all
    /// state intact and [`Machine::resume`] continues it.
    ///
    /// # Errors
    ///
    /// Terminal [`VmError`]s only; suspension is an `Ok` outcome.
    pub fn start(&mut self) -> Result<StepResult, VmError> {
        self.begin()?;
        self.step_loop()
    }

    /// Continues a suspended session, granting `extra_budget` more
    /// instructions (added to whatever budget remains; a machine with no
    /// budget limit stays unlimited).
    ///
    /// # Errors
    ///
    /// Returns [`VmErrorKind::BadProgram`] unless the machine is suspended
    /// (i.e. the last `start`/`resume` returned [`StepResult::Suspended`]);
    /// otherwise any terminal [`VmError`] the continued execution raises.
    pub fn resume(&mut self, extra_budget: u64) -> Result<StepResult, VmError> {
        if self.phase != Phase::Running {
            return Err(self.phase_error("`resume` needs a suspended session"));
        }
        if let Some(rem) = self.remaining.as_mut() {
            *rem = rem.saturating_add(extra_budget);
        }
        self.step_loop()
    }

    /// Remaining instruction budget (`None` = unlimited).
    pub fn fuel(&self) -> Option<u64> {
        self.remaining
    }

    /// Replaces the instruction budget (`None` = unlimited).  Harnesses
    /// use this to pick a first fuel slice before [`Machine::start`].
    pub fn set_fuel(&mut self, fuel: Option<u64>) {
        self.remaining = fuel;
    }

    /// When enabled, `%write-char` suspends resumable sessions with
    /// [`SuspendReason::HostCall`] after appending the character
    /// ([`Machine::run`] is unaffected — it runs through yield points).
    pub fn set_yield_on_output(&mut self, yield_on_output: bool) {
        self.host_yield_output = yield_on_output;
    }

    /// Shared entry: pushes the `main` frame and moves to `Running`.
    fn begin(&mut self) -> Result<(), VmError> {
        if self.phase != Phase::Ready {
            return Err(self.phase_error("build a fresh machine to run again"));
        }
        let main = match self.main_frame() {
            Ok(f) => f,
            Err(e) => {
                self.phase = Phase::Faulted;
                return Err(e);
            }
        };
        self.frames.push(main);
        self.phase = Phase::Running;
        Ok(())
    }

    /// The fetch/decode/execute loop, dispatched once per session slice to
    /// the monomorphization matching the verifier token: verified programs
    /// run with access checks elided, everything else stays fully checked.
    fn step_loop(&mut self) -> Result<StepResult, VmError> {
        if self.verified {
            self.step_loop_g::<true>()
        } else {
            self.step_loop_g::<false>()
        }
    }

    /// The fetch/decode/execute loop.  Returns `Done` when the outermost
    /// frame has returned, `Suspended` when the budget ran dry or a host
    /// call yielded; terminal errors move the machine to `Faulted`.
    fn step_loop_g<const V: bool>(&mut self) -> Result<StepResult, VmError> {
        loop {
            let (fi, pc) = {
                let Some(top) = self.frames.last_mut() else {
                    self.phase = Phase::Done;
                    return Ok(StepResult::Done(self.result));
                };
                let fi = top.fnid as usize;
                let pc = top.pc;
                top.pc += 1;
                (fi, pc)
            };
            let inst = if V {
                debug_assert!(
                    pc < self.decoded.funs[fi].insts.len(),
                    "verifier missed a pc"
                );
                // SAFETY: `fi` comes from a frame, and frames are built
                // only for function ids the verifier bounds-checked
                // (fn-oob rule, `closure_target` validation); the verifier
                // additionally proved every reachable pc in bounds
                // (fall-off-end and jump-oob rules), so the fetch cannot
                // miss.
                unsafe { *self.decoded.funs.get_unchecked(fi).insts.get_unchecked(pc) }
            } else {
                match self.decoded.funs[fi].insts.get(pc) {
                    Some(&i) => i,
                    None => {
                        self.phase = Phase::Faulted;
                        return Err(VmError::new(
                            VmErrorKind::BadProgram,
                            format!("fell off the end of `{}`", self.program.funs[fi].name),
                        ));
                    }
                }
            };
            // The budget is charged before an instruction does anything —
            // including `ResetCounters` — so a limit of N admits exactly N
            // instructions and the counters never record a timed-out one.
            // Suspension rewinds the pc: the refused instruction is
            // re-fetched by the next `resume`, making the slice boundary
            // invisible to the program.
            if let Some(rem) = self.remaining.as_mut() {
                if *rem == 0 {
                    self.frames.last_mut().expect("frame").pc = pc;
                    return Ok(StepResult::Suspended(SuspendReason::FuelExhausted));
                }
                *rem -= 1;
            }
            if matches!(inst, DInst::ResetCounters) {
                self.counters.reset();
                continue;
            }
            self.counters.count(inst.class());
            match self.exec_inst::<V>(inst) {
                Ok(Exec::Continue) => {}
                Ok(Exec::Suspend(reason)) => {
                    return Ok(StepResult::Suspended(reason));
                }
                Err(e) => {
                    if let Err(fatal) = self.deliver_trap(e) {
                        self.phase = Phase::Faulted;
                        return Err(fatal);
                    }
                }
            }
        }
    }

    /// Executes one (already counted and budgeted) instruction.  `V` is
    /// the fast-path gate: with a verified program the register, pool,
    /// global, and operand-arena accesses skip their bounds checks (each
    /// proved by a verifier rule); heap accesses stay checked in both
    /// modes — object-level addresses depend on run-time values the
    /// verifier does not model.
    #[inline]
    fn exec_inst<const V: bool>(&mut self, inst: DInst) -> Result<Exec, VmError> {
        match inst {
            DInst::Const { d, imm } => {
                self.set_r_g::<V>(d, imm);
            }
            DInst::Pool { d, idx } => {
                let w = if V {
                    debug_assert!((idx as usize) < self.pool.len());
                    // SAFETY: pool-oob rule — `idx < pool.len()`.
                    unsafe { *self.pool.get_unchecked(idx as usize) }
                } else {
                    self.pool[idx as usize]
                };
                self.set_r_g::<V>(d, w);
            }
            DInst::Move { d, s } => {
                let w = self.r_g::<V>(s);
                self.set_r_g::<V>(d, w);
            }
            DInst::Bin { op, d, a, b } => {
                let (a, b) = (self.r_g::<V>(a), self.r_g::<V>(b));
                let v = self.binop(op, a, b)?;
                self.set_r_g::<V>(d, v);
            }
            DInst::BinI { op, d, a, imm } => {
                let a = self.r_g::<V>(a);
                let v = self.binop(op, a, imm)?;
                self.set_r_g::<V>(d, v);
            }
            DInst::LoadD { d, p, disp } => {
                let addr = self.r_g::<V>(p).wrapping_add(disp);
                let w = self.heap.get((addr >> 3) as usize)?;
                self.set_r_g::<V>(d, w);
            }
            DInst::LoadX { d, p, x, disp } => {
                let addr = self
                    .r_g::<V>(p)
                    .wrapping_add(self.r_g::<V>(x))
                    .wrapping_add(disp);
                let w = self.heap.get((addr >> 3) as usize)?;
                self.set_r_g::<V>(d, w);
            }
            DInst::StoreD { p, disp, s } => {
                let addr = self.r_g::<V>(p).wrapping_add(disp);
                let w = self.r_g::<V>(s);
                self.heap.set((addr >> 3) as usize, w)?;
            }
            DInst::StoreX { p, x, disp, s } => {
                let addr = self
                    .r_g::<V>(p)
                    .wrapping_add(self.r_g::<V>(x))
                    .wrapping_add(disp);
                let w = self.r_g::<V>(s);
                self.heap.set((addr >> 3) as usize, w)?;
            }
            DInst::AllocImm {
                d,
                len,
                fill,
                rep,
                tag,
            } => {
                let len = len as usize;
                self.ensure_space(len + 1)?;
                let fill = self.r_g::<V>(fill); // after possible GC
                let w = self.alloc_object(len, rep, tag, fill)?;
                self.set_r_g::<V>(d, w);
            }
            DInst::AllocReg {
                d,
                len,
                fill,
                rep,
                tag,
            } => {
                let len = self.r_g::<V>(len);
                if !(0..=(1 << 40)).contains(&len) {
                    return Err(VmError::new(
                        VmErrorKind::BadRepOperation,
                        format!("allocation of {len} fields"),
                    ));
                }
                let len = len as usize;
                self.ensure_space(len + 1)?;
                let fill = self.r_g::<V>(fill); // after possible GC
                let w = self.alloc_object(len, rep, tag, fill)?;
                self.set_r_g::<V>(d, w);
            }
            DInst::Jump { t } => {
                self.frames.last_mut().expect("frame").pc = t as usize;
            }
            DInst::JumpCmpRR { op, a, b, t } => {
                let (a, b) = (self.r_g::<V>(a), self.r_g::<V>(b));
                if cmp_taken(op, a, b) {
                    self.frames.last_mut().expect("frame").pc = t as usize;
                }
            }
            DInst::JumpCmpRI { op, a, imm, t } => {
                let a = self.r_g::<V>(a);
                if cmp_taken(op, a, imm) {
                    self.frames.last_mut().expect("frame").pc = t as usize;
                }
            }
            DInst::GlobalGet { d, g } => {
                let w = if V {
                    debug_assert!((g as usize) < self.globals.len());
                    // SAFETY: global-oob rule — `g < nglobals`.
                    unsafe { *self.globals.get_unchecked(g as usize) }
                } else {
                    self.globals[g as usize]
                };
                self.set_r_g::<V>(d, w);
            }
            DInst::GlobalSet { g, s } => {
                let w = self.r_g::<V>(s);
                if V {
                    debug_assert!((g as usize) < self.globals.len());
                    // SAFETY: global-oob rule — `g < nglobals`.
                    unsafe {
                        *self.globals.get_unchecked_mut(g as usize) = w;
                    }
                } else {
                    self.globals[g as usize] = w;
                }
            }
            DInst::MakeClosure { d, free, tag, code } => {
                let n = free.len as usize;
                self.ensure_space(n + 2)?;
                let w = self.alloc_object(n + 1, self.role.closure as u16, tag, code)?;
                let base = (w >> 3) as usize;
                for i in 0..n {
                    let v = self.r_g::<V>(self.arg_g::<V>(free, i));
                    self.heap.set(base + 2 + i, v)?;
                }
                self.set_r_g::<V>(d, w);
            }
            DInst::ClosureSet { clo, idx, val } => {
                let base = (self.r_g::<V>(clo) >> 3) as usize;
                let v = self.r_g::<V>(val);
                self.heap.set(base + 2 + idx as usize, v)?;
            }
            DInst::Call { d, f, args } => {
                let fnid = self.closure_target(self.r_g::<V>(f))?;
                self.counters.calls += 1;
                let frame = self.build_frame::<V>(fnid, f, args, d)?;
                self.frames.push(frame);
            }
            DInst::CallKnown { d, f, clo, args } => {
                self.counters.calls += 1;
                let frame = self.build_frame::<V>(f, clo, args, d)?;
                self.frames.push(frame);
            }
            DInst::TailCall { f, args } => {
                let fnid = self.closure_target(self.r_g::<V>(f))?;
                self.counters.calls += 1;
                let ret_dst = self.frames.last().expect("frame").ret_dst;
                let frame = self.build_frame::<V>(fnid, f, args, ret_dst)?;
                let old = std::mem::replace(self.frames.last_mut().expect("frame"), frame);
                self.recycle_regs(old.regs);
            }
            DInst::TailCallKnown { f, clo, args } => {
                self.counters.calls += 1;
                let ret_dst = self.frames.last().expect("frame").ret_dst;
                let frame = self.build_frame::<V>(f, clo, args, ret_dst)?;
                let old = std::mem::replace(self.frames.last_mut().expect("frame"), frame);
                self.recycle_regs(old.regs);
            }
            DInst::Ret { s } => {
                let v = self.r_g::<V>(s);
                let frame = self.frames.pop().expect("frame");
                match self.frames.last_mut() {
                    Some(caller) => caller.regs[frame.ret_dst as usize] = v,
                    None => self.result = v,
                }
                self.recycle_regs(frame.regs);
            }
            DInst::Rep { op, d, args } => {
                let v = self.rep_generic(op, args)?;
                self.set_r_g::<V>(d, v);
            }
            DInst::Intern { d, s } => {
                let sval = self.r_g::<V>(s);
                let sym = self.intern_value(sval)?;
                self.set_r_g::<V>(d, sym);
            }
            DInst::WriteChar { s } => {
                let w = self.r_g::<V>(s);
                let char_rep = self.registry.role(roles::CHAR).ok_or_else(|| {
                    VmError::new(VmErrorKind::BadProgram, "no `char` representation role")
                })?;
                let code = self.registry.decode_immediate(char_rep, w) as u32;
                self.output.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                if self.host_yield_output {
                    return Ok(Exec::Suspend(SuspendReason::HostCall));
                }
            }
            DInst::ErrorOp { s } => {
                let w = self.r_g::<V>(s);
                self.pending_trap = Some(PendingTrap::Payload(w));
                return Err(VmError::new(
                    VmErrorKind::SchemeError,
                    format!("error: {}", self.describe(w)),
                ));
            }
            DInst::PushHandler { h, d, t } => {
                self.handlers.push(Handler {
                    depth: self.frames.len(),
                    handler: self.r_g::<V>(h),
                    dst: d,
                    t,
                });
            }
            DInst::PopHandler => {
                if self.handlers.pop().is_none() {
                    return Err(VmError::new(
                        VmErrorKind::BadProgram,
                        "PopHandler with no handler installed",
                    ));
                }
            }
            DInst::RaiseOp { s } => {
                let w = self.r_g::<V>(s);
                self.pending_trap = Some(PendingTrap::Reraise(w));
                return Err(VmError::new(
                    VmErrorKind::UncaughtCondition,
                    format!("uncaught condition: {}", self.describe(w)),
                ));
            }
            DInst::ResetCounters => unreachable!("handled before counting"),
        }
        Ok(Exec::Continue)
    }

    /// Attempts to deliver a trap to the innermost handler.
    ///
    /// Terminal kinds ([`VmErrorKind::BadProgram`],
    /// [`VmErrorKind::BadMemoryAccess`], [`VmErrorKind::Timeout`]) are
    /// never handled.  For recoverable kinds the frame stack is unwound to
    /// the handler's install depth *first* (dropping dead roots), then the
    /// condition value is built — so its allocation sees the post-unwind
    /// root set — and the handler closure is called with it.  The handler
    /// runs with its own entry already popped, so a re-raise propagates
    /// outward.
    ///
    /// `Ok(())` means the handler frame is in place and execution should
    /// continue; `Err` re-surfaces the (original) terminal error.
    fn deliver_trap(&mut self, e: VmError) -> Result<(), VmError> {
        let pending = self.pending_trap.take();
        if matches!(
            e.kind,
            VmErrorKind::BadProgram
                | VmErrorKind::BadMemoryAccess
                | VmErrorKind::Timeout
                | VmErrorKind::RejectedByVerifier { .. }
        ) {
            return Err(e);
        }
        // Innermost handler whose frame is still live (hand-built code can
        // return past a PushHandler; such stale entries are discarded).
        let h = loop {
            match self.handlers.pop() {
                None => return Err(e),
                Some(h) if h.depth <= self.frames.len() => break h,
                Some(_) => continue,
            }
        };
        while self.frames.len() > h.depth {
            let f = self.frames.pop().expect("frame");
            self.recycle_regs(f.regs);
        }
        let cond = match pending {
            Some(PendingTrap::Reraise(w)) => w,
            other => {
                let payload = match other {
                    Some(PendingTrap::Payload(w)) => Some(w),
                    _ => None,
                };
                match self.build_condition(&e, payload) {
                    Ok(c) => c,
                    // The condition itself would not fit (or the library
                    // defines no condition representation): the original
                    // error is terminal after all.
                    Err(_) => return Err(e),
                }
            }
        };
        let fnid = self.closure_target(h.handler)?;
        let fun = &self.decoded.funs[fnid as usize];
        if fun.variadic || fun.arity != 1 {
            return Err(self.arity_error(fnid, false, 1));
        }
        let nregs = fun.nregs;
        let mut regs = self.take_regs(nregs);
        regs[0] = h.handler;
        regs[1] = cond;
        self.frames.last_mut().expect("installing frame").pc = h.t as usize;
        self.counters.calls += 1;
        self.frames.push(Frame {
            fnid,
            pc: 0,
            regs,
            ret_dst: h.dst,
        });
        Ok(())
    }

    /// Builds the condition object for `e`: a 4-field record of the
    /// library's `condition` representation holding
    /// `[kind-symbol, p1, p2, p3]` — for out-of-memory that is
    /// `[kind, requested, capacity, phase-symbol]`, for `%error` it is
    /// `[kind, value, #f, #f]`, otherwise the payload fields are `#f`.
    ///
    /// All heap space (fresh symbols included) is reserved up front with
    /// the quiet path, and `payload` rides in `trap_roots` across that
    /// reservation, so a collection here cannot lose it.
    fn build_condition(&mut self, e: &VmError, payload: Option<Word>) -> Result<Word, VmError> {
        let cond_rep = self.registry.role("condition").ok_or_else(|| {
            VmError::new(
                VmErrorKind::BadProgram,
                "library did not provide a `condition` representation role",
            )
        })?;
        let RepKind::Pointer { tag, .. } = self.registry.info(cond_rep).kind else {
            return Err(VmError::new(
                VmErrorKind::BadProgram,
                "`condition` role must be a pointer representation",
            ));
        };
        let kind_label = e.kind.label();
        let phase_label = match e.kind {
            VmErrorKind::OutOfMemory { phase, .. } => Some(match phase {
                OomPhase::Alloc => "alloc",
                OomPhase::Collect => "collect",
            }),
            _ => None,
        };
        let mut need = 5; // the condition record: header + 4 fields
        if !self.interned.contains_key(kind_label) {
            need += 3 + kind_label.len();
        }
        if let Some(p) = phase_label {
            if !self.interned.contains_key(p) {
                need += 3 + p.len();
            }
        }
        let false_word = self.role.false_word;
        self.trap_roots.push(payload.unwrap_or(false_word));
        if let Err(oom) = self.ensure_space_quiet(need) {
            self.trap_roots.pop();
            return Err(oom);
        }
        // No collection can run until `need` words are consumed; every
        // word below is stable.
        let payload_w = self.trap_roots.pop().expect("trap root");
        let ksym = self.intern_loaded(kind_label)?;
        let (p1, p2, p3) = match e.kind {
            VmErrorKind::OutOfMemory {
                requested,
                capacity,
                ..
            } => {
                let psym = self.intern_loaded(phase_label.expect("oom phase"))?;
                (
                    self.registry
                        .encode_immediate(self.role.fixnum, requested as i64),
                    self.registry
                        .encode_immediate(self.role.fixnum, capacity as i64),
                    psym,
                )
            }
            VmErrorKind::SchemeError | VmErrorKind::UncaughtCondition => {
                (payload_w, false_word, false_word)
            }
            _ => (false_word, false_word, false_word),
        };
        let w = self.alloc_object(4, cond_rep as u16, tag, false_word)?;
        let base = (w >> 3) as usize;
        self.heap.set(base + 1, ksym)?;
        self.heap.set(base + 2, p1)?;
        self.heap.set(base + 3, p2)?;
        self.heap.set(base + 4, p3)?;
        Ok(w)
    }

    fn binop(&self, op: BinOp, a: Word, b: Word) -> Result<Word, VmError> {
        Ok(match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Quot => {
                if b == 0 {
                    return Err(VmError::new(VmErrorKind::DivideByZero, "quotient by zero"));
                }
                a.wrapping_div(b)
            }
            BinOp::Rem => {
                if b == 0 {
                    return Err(VmError::new(VmErrorKind::DivideByZero, "remainder by zero"));
                }
                a.wrapping_rem(b)
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
            BinOp::CmpEq => (a == b) as i64,
            BinOp::CmpLt => (a < b) as i64,
        })
    }

    /// Builds a first-class rep-type object for `rid`.
    pub(crate) fn make_rep_object(&mut self, rid: RepId) -> Result<Word, VmError> {
        let reptype = self.registry.role("rep-type").ok_or_else(|| {
            VmError::new(
                VmErrorKind::BadProgram,
                "first-class representation objects require the `rep-type` role",
            )
        })?;
        let RepKind::Pointer { tag, .. } = self.registry.info(reptype).kind else {
            return Err(VmError::new(
                VmErrorKind::BadProgram,
                "`rep-type` role must be a pointer",
            ));
        };
        let payload = self.registry.encode_immediate(self.role.fixnum, rid as i64);
        let w = self.alloc_object(1, reptype as u16, tag, payload)?;
        Ok(w)
    }

    fn rep_id_of(&self, w: Word) -> Result<RepId, VmError> {
        let reptype = self.registry.role("rep-type").ok_or_else(|| {
            VmError::new(VmErrorKind::BadProgram, "no `rep-type` role registered")
        })?;
        if !self.registry.tag_matches(reptype, w) {
            return Err(VmError::new(
                VmErrorKind::BadRepOperation,
                format!("not a representation type: {}", self.describe(w)),
            ));
        }
        let base = (w >> 3) as usize;
        if header_type(self.heap.get(base)?) != reptype as u16 {
            return Err(VmError::new(
                VmErrorKind::BadRepOperation,
                "not a representation type (wrong record type)",
            ));
        }
        let payload = self.heap.get(base + 1)?;
        Ok(self.registry.decode_immediate(self.role.fixnum, payload) as RepId)
    }

    fn fixnum_arg(&self, w: Word, what: &str) -> Result<i64, VmError> {
        if !self.registry.tag_matches(self.role.fixnum, w) {
            return Err(VmError::new(
                VmErrorKind::BadRepOperation,
                format!("{what} must be a fixnum, got {}", self.describe(w)),
            ));
        }
        Ok(self.registry.decode_immediate(self.role.fixnum, w))
    }

    fn symbol_name(&self, w: Word) -> Result<String, VmError> {
        let sym = self
            .registry
            .role(roles::SYMBOL)
            .ok_or_else(|| VmError::new(VmErrorKind::BadProgram, "no `symbol` role"))?;
        if !self.registry.tag_matches(sym, w) {
            return Err(VmError::new(
                VmErrorKind::BadRepOperation,
                format!("expected a symbol, got {}", self.describe(w)),
            ));
        }
        let base = (w >> 3) as usize;
        let str_ptr = self.heap.get(base + 1)?;
        self.string_content(str_ptr)
    }

    pub(crate) fn string_content(&self, w: Word) -> Result<String, VmError> {
        let string = self
            .registry
            .role(roles::STRING)
            .ok_or_else(|| VmError::new(VmErrorKind::BadProgram, "no `string` role"))?;
        let char_rep = self
            .registry
            .role(roles::CHAR)
            .ok_or_else(|| VmError::new(VmErrorKind::BadProgram, "no `char` role"))?;
        if !self.registry.tag_matches(string, w) {
            return Err(VmError::new(
                VmErrorKind::BadRepOperation,
                format!("expected a string, got {}", self.describe(w)),
            ));
        }
        let base = (w >> 3) as usize;
        let len = header_len(self.heap.get(base)?);
        let mut s = String::with_capacity(len);
        for i in 0..len {
            let cw = self.heap.get(base + 1 + i)?;
            let code = self.registry.decode_immediate(char_rep, cw) as u32;
            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
        }
        Ok(s)
    }

    /// Interns the symbol named by the string at `string_ptr` (the runtime
    /// `Intern` instruction).  The name is copied out of the heap before the
    /// reservation, so the safe point below is a real one: every value the
    /// rest of this function touches is either a root or allocated inside
    /// the reservation.
    pub(crate) fn intern_value(&mut self, string_ptr: Word) -> Result<Word, VmError> {
        let name = self.string_content(string_ptr)?;
        if let Some(w) = self.interned.get(&name) {
            return Ok(*w);
        }
        // Reserve the name string and the symbol cell together: the freshly
        // encoded string in `intern_reserved` is not a GC root, so no
        // collection may run between encoding it and installing it in the
        // interned table (via the symbol, which is a root).
        self.ensure_space(1 + name.chars().count() + 2)?;
        self.intern_reserved(name)
    }

    /// Load-time interning for quoted symbols.  Deliberately *quiet*: the
    /// constant encoder holds partially built structure (list tails, vector
    /// elements) in Rust locals that are not GC roots, so no collection —
    /// fault-forced or otherwise — may run during pool construction.
    /// [`Machine::build_pool`]'s up-front reservation (which budgets
    /// `1 + chars + 2` words per fresh symbol, see
    /// [`encode::words_needed`]) guarantees the quiet reserve never
    /// collects here.
    pub(crate) fn intern_loaded(&mut self, name: &str) -> Result<Word, VmError> {
        if let Some(w) = self.interned.get(name) {
            return Ok(*w);
        }
        self.ensure_space_quiet(1 + name.chars().count() + 2)?;
        self.intern_reserved(name.to_string())
    }

    /// Shared tail of the interning paths.  Space for the name string and
    /// the symbol cell must already be reserved.
    fn intern_reserved(&mut self, name: String) -> Result<Word, VmError> {
        let symrep = self
            .registry
            .role(roles::SYMBOL)
            .ok_or_else(|| VmError::new(VmErrorKind::BadProgram, "no `symbol` role"))?;
        let RepKind::Pointer { tag, .. } = self.registry.info(symrep).kind else {
            return Err(VmError::new(
                VmErrorKind::BadProgram,
                "`symbol` role must be a pointer",
            ));
        };
        let fresh = encode::encode_string(self, &name)?;
        let w = self.alloc_object(1, symrep as u16, tag, fresh)?;
        self.interned.insert(name, w);
        Ok(w)
    }

    fn rep_generic(&mut self, op: RepVmOp, span: ArgSpan) -> Result<Word, VmError> {
        match op {
            RepVmOp::MakeImm => {
                let name = self.symbol_name(self.r(self.arg(span, 0)))?;
                let tag_bits = self.fixnum_arg(self.r(self.arg(span, 1)), "tag-bits")? as u32;
                let tag = self.fixnum_arg(self.r(self.arg(span, 2)), "tag")? as u64;
                let shift = self.fixnum_arg(self.r(self.arg(span, 3)), "shift")? as u32;
                let rid = self
                    .registry
                    .intern_immediate(&name, tag_bits, tag, shift)
                    .map_err(|e| VmError::new(VmErrorKind::BadRepOperation, e.0))?;
                self.make_rep_object(rid)
            }
            RepVmOp::MakePtr => {
                let name = self.symbol_name(self.r(self.arg(span, 0)))?;
                let tag = self.fixnum_arg(self.r(self.arg(span, 1)), "tag")? as u64;
                let discriminated = self.r(self.arg(span, 2)) != self.role.false_word;
                let rid = self
                    .registry
                    .intern_pointer(&name, tag, discriminated)
                    .map_err(|e| VmError::new(VmErrorKind::BadRepOperation, e.0))?;
                self.ptr_table = self.registry.pointer_pattern_table();
                self.make_rep_object(rid)
            }
            RepVmOp::Provide => {
                let role = self.symbol_name(self.r(self.arg(span, 0)))?;
                let rid = self.rep_id_of(self.r(self.arg(span, 1)))?;
                self.registry
                    .provide_role(&role, rid)
                    .map_err(|e| VmError::new(VmErrorKind::BadRepOperation, e.0))?;
                Ok(self.role.unspec_word)
            }
            RepVmOp::Inject => {
                let rid = self.rep_id_of(self.r(self.arg(span, 0)))?;
                let w = self.r(self.arg(span, 1));
                Ok(match self.registry.info(rid).kind {
                    RepKind::Immediate { tag, shift, .. } => (w << shift) | tag as i64,
                    RepKind::Pointer { tag, .. } => w | tag as i64,
                })
            }
            RepVmOp::Project => {
                let rid = self.rep_id_of(self.r(self.arg(span, 0)))?;
                let w = self.r(self.arg(span, 1));
                Ok(match self.registry.info(rid).kind {
                    RepKind::Immediate { shift, .. } => w >> shift,
                    RepKind::Pointer { .. } => w & !0b111,
                })
            }
            RepVmOp::Test => {
                let rid = self.rep_id_of(self.r(self.arg(span, 0)))?;
                let w = self.r(self.arg(span, 1));
                let info = self.registry.info(rid);
                let mut ok = self.registry.tag_matches(rid, w);
                if ok {
                    if let RepKind::Pointer {
                        discriminated: true,
                        ..
                    } = info.kind
                    {
                        let base = (w >> 3) as usize;
                        ok = header_type(self.heap.get(base)?) == rid as u16;
                    }
                }
                Ok(ok as i64)
            }
            RepVmOp::Alloc => {
                let n = self.r(self.arg(span, 1));
                if !(0..=(1 << 40)).contains(&n) {
                    return Err(VmError::new(
                        VmErrorKind::BadRepOperation,
                        format!("rep-alloc of {n} fields"),
                    ));
                }
                self.ensure_space(n as usize + 1)?;
                // Re-read after potential GC.
                let rid = self.rep_id_of(self.r(self.arg(span, 0)))?;
                let fill = self.r(self.arg(span, 2));
                let RepKind::Pointer { tag, .. } = self.registry.info(rid).kind else {
                    return Err(VmError::new(
                        VmErrorKind::BadRepOperation,
                        "rep-alloc of an immediate representation",
                    ));
                };
                self.alloc_object(n as usize, rid as u16, tag, fill)
            }
            RepVmOp::Ref | RepVmOp::Set | RepVmOp::Len => {
                let rid = self.rep_id_of(self.r(self.arg(span, 0)))?;
                let v = self.r(self.arg(span, 1));
                if !self.registry.tag_matches(rid, v) {
                    return Err(VmError::new(
                        VmErrorKind::BadRepOperation,
                        format!(
                            "value is not a {}: {}",
                            self.registry.info(rid).name,
                            self.describe(v)
                        ),
                    ));
                }
                let base = (v >> 3) as usize;
                let len = header_len(self.heap.get(base)?);
                match op {
                    RepVmOp::Len => Ok(len as i64),
                    _ => {
                        let i = self.r(self.arg(span, 2));
                        if !(0..len as i64).contains(&i) {
                            return Err(VmError::new(
                                VmErrorKind::BadRepOperation,
                                format!("field index {i} out of range 0..{len}"),
                            ));
                        }
                        match op {
                            RepVmOp::Ref => self.heap.get(base + 1 + i as usize),
                            RepVmOp::Set => {
                                let x = self.r(self.arg(span, 3));
                                self.heap.set(base + 1 + i as usize, x)?;
                                Ok(self.role.unspec_word)
                            }
                            _ => unreachable!(),
                        }
                    }
                }
            }
        }
    }
}

/// Whether a fused compare-and-branch is taken.
#[inline]
fn cmp_taken(op: CmpOp, a: Word, b: Word) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Ge => a >= b,
    }
}
