//! The interpreter: loads a [`CodeProgram`], runs it, counts everything.

use crate::counters::Counters;
use crate::encode;
use crate::error::{VmError, VmErrorKind};
use crate::heap::{header_len, header_type, Heap, Word};
use crate::inst::{BinOp, CmpOp, CodeProgram, Inst, PoolEntry, Reg, RegImm, RepVmOp};
use std::collections::HashMap;
use std::rc::Rc;
use sxr_ir::rep::{roles, RepId, RepKind, RepRegistry};

/// Tuning knobs for a [`Machine`].
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Initial heap size in words (grows on demand).
    pub heap_words: usize,
    /// Abort with [`VmErrorKind::Timeout`] after this many instructions.
    pub instruction_limit: Option<u64>,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            heap_words: 1 << 20,
            instruction_limit: None,
        }
    }
}

#[derive(Debug)]
struct Frame {
    fnid: u32,
    pc: usize,
    regs: Vec<Word>,
    ret_dst: Reg,
}

#[derive(Debug, Clone, Copy)]
struct RoleCache {
    fixnum: RepId,
    closure: RepId,
    false_word: Word,
    unspec_word: Word,
    reg_init: Word,
}

/// A loaded program plus all mutable run-time state.
///
/// # Example
///
/// See the crate-level documentation; machines are normally produced by the
/// `sxr` pipeline rather than built by hand.
#[derive(Debug)]
pub struct Machine {
    program: Rc<CodeProgram>,
    /// The run-time representation registry (starts as the compile-time
    /// registry; extended by run-time `%make-*-type`).
    pub registry: RepRegistry,
    heap: Heap,
    globals: Vec<Word>,
    pool: Vec<Word>,
    interned: HashMap<String, Word>,
    frames: Vec<Frame>,
    /// Dynamic execution counters.
    pub counters: Counters,
    output: String,
    ptr_table: [bool; 8],
    remaining: Option<u64>,
    role: RoleCache,
}

impl Machine {
    /// Loads `program` (building the constant pool on the heap).
    ///
    /// # Errors
    ///
    /// Returns [`VmErrorKind::BadProgram`] when the program's registry lacks
    /// a role its literals or code require.
    pub fn new(program: CodeProgram, config: MachineConfig) -> Result<Machine, VmError> {
        let registry = program.registry.clone();
        let need_role = |name: &str| {
            registry.role(name).ok_or_else(|| {
                VmError::new(
                    VmErrorKind::BadProgram,
                    format!("library did not provide required representation role `{name}`"),
                )
            })
        };
        let fixnum = need_role(roles::FIXNUM)?;
        let boolean = need_role(roles::BOOLEAN)?;
        let closure = need_role(roles::CLOSURE)?;
        let unspecified = need_role(roles::UNSPECIFIED)?;
        for (name, id) in [
            ("fixnum", fixnum),
            ("boolean", boolean),
            ("unspecified", unspecified),
        ] {
            if registry.info(id).is_pointer() {
                return Err(VmError::new(
                    VmErrorKind::BadProgram,
                    format!("role `{name}` must be an immediate representation"),
                ));
            }
        }
        if !registry.info(closure).is_pointer() {
            return Err(VmError::new(
                VmErrorKind::BadProgram,
                "role `closure` must be a pointer representation",
            ));
        }
        let role = RoleCache {
            fixnum,
            closure,
            false_word: registry.encode_immediate(boolean, 0),
            unspec_word: registry.encode_immediate(unspecified, 0),
            reg_init: registry.encode_immediate(fixnum, 0),
        };
        let ptr_table = registry.pointer_pattern_table();
        let nglobals = program.nglobals;
        let mut m = Machine {
            program: Rc::new(program),
            registry,
            heap: Heap::new(config.heap_words),
            globals: vec![role.unspec_word; nglobals],
            pool: Vec::new(),
            interned: HashMap::new(),
            frames: Vec::new(),
            counters: Counters::default(),
            output: String::new(),
            ptr_table,
            remaining: config.instruction_limit,
            role,
        };
        m.build_pool()?;
        Ok(m)
    }

    fn build_pool(&mut self) -> Result<(), VmError> {
        let prog = self.program.clone();
        // Pre-reserve so pool construction never triggers GC (intermediate
        // children would not be roots).
        let mut need = 0usize;
        for e in &prog.pool {
            need += match e {
                PoolEntry::Datum(d) => encode::words_needed(d),
                PoolEntry::Rep(_) => 2,
            };
        }
        if self.heap.needs_gc(need) {
            self.heap
                .grow_to((self.heap.used() + need + 1).next_power_of_two());
        }
        for e in &prog.pool {
            let w = match e {
                PoolEntry::Datum(d) => encode::encode_datum(self, d)?,
                PoolEntry::Rep(rid) => self.make_rep_object(*rid)?,
            };
            self.pool.push(w);
        }
        Ok(())
    }

    /// The accumulated `%write-char` output.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Clears the output port.
    pub fn clear_output(&mut self) {
        self.output.clear();
    }

    /// Formats a tagged word using the library's registered representations.
    pub fn describe(&self, w: Word) -> String {
        encode::describe(self, w, 64)
    }

    pub(crate) fn heap_ref(&self) -> &Heap {
        &self.heap
    }

    /// Heap store used by the constant encoder on freshly allocated objects.
    pub(crate) fn heap_set_for_encode(&mut self, idx: usize, w: Word) -> Result<(), VmError> {
        self.heap.set(idx, w)
    }

    pub(crate) fn role_fixnum(&self) -> RepId {
        self.role.fixnum
    }

    pub(crate) fn interned_lookup(&self, s: &str) -> Option<Word> {
        self.interned.get(s).copied()
    }

    /// Allocates, collecting or growing first if needed. `fill` must be a
    /// valid tagged word.
    pub(crate) fn alloc_object(&mut self, len: usize, type_id: u16, tag: u64, fill: Word) -> Word {
        self.ensure_space(len + 1);
        self.counters.allocated_words += len as u64 + 1;
        self.counters.allocated_objects += 1;
        let idx = self.heap.alloc(len, type_id, fill);
        ((idx as i64) << 3) | tag as i64
    }

    fn ensure_space(&mut self, words: usize) {
        if !self.heap.needs_gc(words.saturating_sub(1)) {
            return;
        }
        self.collect();
        if self.heap.needs_gc(words.saturating_sub(1))
            || self.heap.free() < self.heap.capacity() / 4
        {
            let target = ((self.heap.used() + words) * 2).max(self.heap.capacity() * 2);
            self.heap.grow_to(target);
        }
    }

    /// Runs a full two-space collection.
    pub fn collect(&mut self) {
        self.counters.gc_count += 1;
        let cap = self.heap.capacity();
        let mut from = self.heap.begin_gc(cap);
        let pt = self.ptr_table;
        for w in self.globals.iter_mut() {
            *w = self.heap.forward(&mut from, *w, &pt);
        }
        for w in self.pool.iter_mut() {
            *w = self.heap.forward(&mut from, *w, &pt);
        }
        let prog = self.program.clone();
        for f in self.frames.iter_mut() {
            let map = &prog.funs[f.fnid as usize].ptr_map;
            for (r, w) in f.regs.iter_mut().enumerate() {
                if map.get(r).copied().unwrap_or(true) {
                    *w = self.heap.forward(&mut from, *w, &pt);
                }
            }
        }
        for w in self.interned.values_mut() {
            *w = self.heap.forward(&mut from, *w, &pt);
        }
        self.heap.scan_from(0, &mut from, &pt);
        self.counters.gc_copied_words += self.heap.used() as u64;
    }

    fn r(&self, reg: Reg) -> Word {
        self.frames.last().expect("active frame").regs[reg as usize]
    }

    fn set_r(&mut self, reg: Reg, w: Word) {
        self.frames.last_mut().expect("active frame").regs[reg as usize] = w;
    }

    fn new_frame(
        &self,
        fnid: u32,
        clo: Word,
        args: &[Word],
        ret_dst: Reg,
    ) -> Result<Frame, VmError> {
        let fun = &self.program.funs[fnid as usize];
        if fun.arity != args.len() {
            return Err(VmError::new(
                VmErrorKind::ArityMismatch,
                format!(
                    "`{}` takes {} arguments, got {}",
                    fun.name,
                    fun.arity,
                    args.len()
                ),
            ));
        }
        let mut regs = vec![self.role.reg_init; fun.nregs];
        regs[0] = clo;
        regs[1..1 + args.len()].copy_from_slice(args);
        Ok(Frame {
            fnid,
            pc: 0,
            regs,
            ret_dst,
        })
    }

    /// Builds a callee frame reading the closure and arguments from the
    /// *current* frame's registers. For variadic callees the extra
    /// arguments are collected into a library list; space for the pairs is
    /// reserved before any register is read, so a collection here cannot
    /// leave stale copies behind.
    fn build_frame(
        &mut self,
        fnid: u32,
        clo_reg: Reg,
        arg_regs: &[Reg],
        ret_dst: Reg,
    ) -> Result<Frame, VmError> {
        let prog = self.program.clone();
        let fun = &prog.funs[fnid as usize];
        if !fun.variadic {
            if fun.arity != arg_regs.len() {
                return Err(VmError::new(
                    VmErrorKind::ArityMismatch,
                    format!(
                        "`{}` takes {} arguments, got {}",
                        fun.name,
                        fun.arity,
                        arg_regs.len()
                    ),
                ));
            }
            let mut regs = vec![self.role.reg_init; fun.nregs];
            regs[0] = self.r(clo_reg);
            for (i, a) in arg_regs.iter().enumerate() {
                regs[1 + i] = self.r(*a);
            }
            return Ok(Frame {
                fnid,
                pc: 0,
                regs,
                ret_dst,
            });
        }
        if arg_regs.len() < fun.arity {
            return Err(VmError::new(
                VmErrorKind::ArityMismatch,
                format!(
                    "`{}` takes at least {} arguments, got {}",
                    fun.name,
                    fun.arity,
                    arg_regs.len()
                ),
            ));
        }
        let extras = arg_regs.len() - fun.arity;
        let pair = self
            .registry
            .role(sxr_ir::rep::roles::PAIR)
            .ok_or_else(|| {
                VmError::new(
                    VmErrorKind::BadProgram,
                    "variadic call requires a `pair` representation",
                )
            })?;
        let null = self
            .registry
            .role(sxr_ir::rep::roles::NULL)
            .ok_or_else(|| {
                VmError::new(
                    VmErrorKind::BadProgram,
                    "variadic call requires a `null` representation",
                )
            })?;
        let RepKind::Pointer { tag: pair_tag, .. } = self.registry.info(pair).kind else {
            return Err(VmError::new(
                VmErrorKind::BadProgram,
                "`pair` role must be a pointer",
            ));
        };
        // Reserve everything up front; reads below see post-GC registers.
        self.ensure_space(3 * extras + 1);
        let mut regs = vec![self.role.reg_init; fun.nregs];
        regs[0] = self.r(clo_reg);
        for (i, a) in arg_regs.iter().take(fun.arity).enumerate() {
            regs[1 + i] = self.r(*a);
        }
        let mut rest = self.registry.encode_immediate(null, 0);
        for a in arg_regs.iter().skip(fun.arity).rev() {
            let car = self.r(*a);
            let p = self.alloc_object(2, pair as u16, pair_tag, rest);
            let base = (p >> 3) as usize;
            self.heap.set(base + 1, car)?;
            rest = p;
        }
        regs[1 + fun.arity] = rest;
        Ok(Frame {
            fnid,
            pc: 0,
            regs,
            ret_dst,
        })
    }

    fn closure_target(&self, fval: Word) -> Result<u32, VmError> {
        if !self.registry.tag_matches(self.role.closure, fval) {
            return Err(VmError::new(
                VmErrorKind::NotAProcedure,
                format!("call of non-procedure {}", self.describe(fval)),
            ));
        }
        let base = (fval >> 3) as usize;
        let code = self.heap.get(base + 1)?;
        Ok(self.registry.decode_immediate(self.role.fixnum, code) as u32)
    }

    /// Executes the program to completion.
    ///
    /// # Errors
    ///
    /// Any [`VmError`] raised during execution.
    pub fn run(&mut self) -> Result<Word, VmError> {
        let prog = self.program.clone();
        let main = self.new_frame(prog.main, self.role.unspec_word, &[], 0)?;
        self.frames.push(main);
        let mut result = self.role.unspec_word;

        while let Some(top) = self.frames.last_mut() {
            let fun = &prog.funs[top.fnid as usize];
            let inst = match fun.insts.get(top.pc) {
                Some(i) => i,
                None => {
                    return Err(VmError::new(
                        VmErrorKind::BadProgram,
                        format!("fell off the end of `{}`", fun.name),
                    ))
                }
            };
            top.pc += 1;
            if matches!(inst, Inst::ResetCounters) {
                self.counters.reset();
                continue;
            }
            self.counters.count(inst.class());
            if let Some(rem) = self.remaining.as_mut() {
                if *rem == 0 {
                    return Err(VmError::new(
                        VmErrorKind::Timeout,
                        "instruction budget exhausted",
                    ));
                }
                *rem -= 1;
            }
            match inst {
                Inst::Const { d, imm } => {
                    let (d, imm) = (*d, *imm);
                    self.set_r(d, imm);
                }
                Inst::Pool { d, idx } => {
                    let (d, idx) = (*d, *idx as usize);
                    let w = self.pool[idx];
                    self.set_r(d, w);
                }
                Inst::Move { d, s } => {
                    let w = self.r(*s);
                    self.set_r(*d, w);
                }
                Inst::Bin { op, d, a, b } => {
                    let (op, d) = (*op, *d);
                    let (a, b) = (self.r(*a), self.r(*b));
                    let v = self.binop(op, a, b)?;
                    self.set_r(d, v);
                }
                Inst::BinI { op, d, a, imm } => {
                    let (op, d, imm) = (*op, *d, *imm as i64);
                    let a = self.r(*a);
                    let v = self.binop(op, a, imm)?;
                    self.set_r(d, v);
                }
                Inst::LoadD { d, p, disp } => {
                    let (d, disp) = (*d, *disp as i64);
                    let addr = self.r(*p).wrapping_add(disp);
                    let w = self.heap.get((addr >> 3) as usize)?;
                    self.set_r(d, w);
                }
                Inst::LoadX { d, p, x, disp } => {
                    let (d, disp) = (*d, *disp as i64);
                    let addr = self.r(*p).wrapping_add(self.r(*x)).wrapping_add(disp);
                    let w = self.heap.get((addr >> 3) as usize)?;
                    self.set_r(d, w);
                }
                Inst::StoreD { p, disp, s } => {
                    let disp = *disp as i64;
                    let addr = self.r(*p).wrapping_add(disp);
                    let w = self.r(*s);
                    self.heap.set((addr >> 3) as usize, w)?;
                }
                Inst::StoreX { p, x, disp, s } => {
                    let disp = *disp as i64;
                    let addr = self.r(*p).wrapping_add(self.r(*x)).wrapping_add(disp);
                    let w = self.r(*s);
                    self.heap.set((addr >> 3) as usize, w)?;
                }
                Inst::AllocFill { d, len, fill, rep } => {
                    let (d, fill_reg, rep) = (*d, *fill, *rep);
                    let len = match len {
                        RegImm::Imm(n) => *n as i64,
                        RegImm::Reg(r) => self.r(*r),
                    };
                    if !(0..=(1 << 40)).contains(&len) {
                        return Err(VmError::new(
                            VmErrorKind::BadRepOperation,
                            format!("allocation of {len} fields"),
                        ));
                    }
                    let info = self.registry.info(rep);
                    let RepKind::Pointer { tag, .. } = info.kind else {
                        return Err(VmError::new(
                            VmErrorKind::BadProgram,
                            "alloc of immediate representation",
                        ));
                    };
                    self.ensure_space(len as usize + 1);
                    let fill = self.r(fill_reg); // after possible GC
                    let w = self.alloc_object(len as usize, rep as u16, tag, fill);
                    self.set_r(d, w);
                }
                Inst::Jump { t } => {
                    let t = *t as usize;
                    self.frames.last_mut().expect("frame").pc = t;
                }
                Inst::JumpCmp { op, a, b, t } => {
                    let (op, t) = (*op, *t as usize);
                    let a = self.r(*a);
                    let b = match b {
                        RegImm::Imm(i) => *i as i64,
                        RegImm::Reg(r) => self.r(*r),
                    };
                    let taken = match op {
                        CmpOp::Eq => a == b,
                        CmpOp::Ne => a != b,
                        CmpOp::Lt => a < b,
                        CmpOp::Ge => a >= b,
                    };
                    if taken {
                        self.frames.last_mut().expect("frame").pc = t;
                    }
                }
                Inst::GlobalGet { d, g } => {
                    let (d, g) = (*d, *g as usize);
                    let w = self.globals[g];
                    self.set_r(d, w);
                }
                Inst::GlobalSet { g, s } => {
                    let g = *g as usize;
                    let w = self.r(*s);
                    self.globals[g] = w;
                }
                Inst::MakeClosure { d, f, free } => {
                    let (d, f) = (*d, *f);
                    let n = free.len();
                    self.ensure_space(n + 2);
                    let info = self.registry.info(self.role.closure);
                    let RepKind::Pointer { tag, .. } = info.kind else {
                        unreachable!()
                    };
                    let code = self.registry.encode_immediate(self.role.fixnum, f as i64);
                    let w = self.alloc_object(n + 1, self.role.closure as u16, tag, code);
                    let base = (w >> 3) as usize;
                    for (i, fr) in free.iter().enumerate() {
                        let v = self.r(*fr);
                        self.heap.set(base + 2 + i, v)?;
                    }
                    self.set_r(d, w);
                }
                Inst::ClosureSet { clo, idx, val } => {
                    let idx = *idx as usize;
                    let base = (self.r(*clo) >> 3) as usize;
                    let v = self.r(*val);
                    self.heap.set(base + 2 + idx, v)?;
                }
                Inst::Call { d, f, args } => {
                    let fnid = self.closure_target(self.r(*f))?;
                    self.counters.calls += 1;
                    let frame = self.build_frame(fnid, *f, args, *d)?;
                    self.frames.push(frame);
                }
                Inst::CallKnown { d, f, clo, args } => {
                    self.counters.calls += 1;
                    let frame = self.build_frame(*f, *clo, args, *d)?;
                    self.frames.push(frame);
                }
                Inst::TailCall { f, args } => {
                    let fnid = self.closure_target(self.r(*f))?;
                    self.counters.calls += 1;
                    let ret_dst = self.frames.last().expect("frame").ret_dst;
                    let frame = self.build_frame(fnid, *f, args, ret_dst)?;
                    *self.frames.last_mut().expect("frame") = frame;
                }
                Inst::TailCallKnown { f, clo, args } => {
                    self.counters.calls += 1;
                    let ret_dst = self.frames.last().expect("frame").ret_dst;
                    let frame = self.build_frame(*f, *clo, args, ret_dst)?;
                    *self.frames.last_mut().expect("frame") = frame;
                }
                Inst::Ret { s } => {
                    let v = self.r(*s);
                    let frame = self.frames.pop().expect("frame");
                    match self.frames.last_mut() {
                        Some(caller) => caller.regs[frame.ret_dst as usize] = v,
                        None => result = v,
                    }
                }
                Inst::Rep { op, d, args } => {
                    let (op, d) = (*op, *d);
                    let regs: Vec<Reg> = args.clone();
                    let v = self.rep_generic(op, &regs)?;
                    self.set_r(d, v);
                }
                Inst::Intern { d, s } => {
                    let d = *d;
                    let sval = self.r(*s);
                    let sym = self.intern_value(sval)?;
                    self.set_r(d, sym);
                }
                Inst::WriteChar { s } => {
                    let w = self.r(*s);
                    let char_rep = self.registry.role(roles::CHAR).ok_or_else(|| {
                        VmError::new(VmErrorKind::BadProgram, "no `char` representation role")
                    })?;
                    let code = self.registry.decode_immediate(char_rep, w) as u32;
                    self.output.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                }
                Inst::ErrorOp { s } => {
                    let w = self.r(*s);
                    return Err(VmError::new(
                        VmErrorKind::SchemeError,
                        format!("error: {}", self.describe(w)),
                    ));
                }
                Inst::ResetCounters => unreachable!("handled before counting"),
            }
        }
        Ok(result)
    }

    fn binop(&self, op: BinOp, a: Word, b: Word) -> Result<Word, VmError> {
        Ok(match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Quot => {
                if b == 0 {
                    return Err(VmError::new(VmErrorKind::DivideByZero, "quotient by zero"));
                }
                a.wrapping_div(b)
            }
            BinOp::Rem => {
                if b == 0 {
                    return Err(VmError::new(VmErrorKind::DivideByZero, "remainder by zero"));
                }
                a.wrapping_rem(b)
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
            BinOp::CmpEq => (a == b) as i64,
            BinOp::CmpLt => (a < b) as i64,
        })
    }

    /// Builds a first-class rep-type object for `rid`.
    pub(crate) fn make_rep_object(&mut self, rid: RepId) -> Result<Word, VmError> {
        let reptype = self.registry.role("rep-type").ok_or_else(|| {
            VmError::new(
                VmErrorKind::BadProgram,
                "first-class representation objects require the `rep-type` role",
            )
        })?;
        let RepKind::Pointer { tag, .. } = self.registry.info(reptype).kind else {
            return Err(VmError::new(
                VmErrorKind::BadProgram,
                "`rep-type` role must be a pointer",
            ));
        };
        let payload = self.registry.encode_immediate(self.role.fixnum, rid as i64);
        let w = self.alloc_object(1, reptype as u16, tag, payload);
        Ok(w)
    }

    fn rep_id_of(&self, w: Word) -> Result<RepId, VmError> {
        let reptype = self.registry.role("rep-type").ok_or_else(|| {
            VmError::new(VmErrorKind::BadProgram, "no `rep-type` role registered")
        })?;
        if !self.registry.tag_matches(reptype, w) {
            return Err(VmError::new(
                VmErrorKind::BadRepOperation,
                format!("not a representation type: {}", self.describe(w)),
            ));
        }
        let base = (w >> 3) as usize;
        if header_type(self.heap.get(base)?) != reptype as u16 {
            return Err(VmError::new(
                VmErrorKind::BadRepOperation,
                "not a representation type (wrong record type)",
            ));
        }
        let payload = self.heap.get(base + 1)?;
        Ok(self.registry.decode_immediate(self.role.fixnum, payload) as RepId)
    }

    fn fixnum_arg(&self, w: Word, what: &str) -> Result<i64, VmError> {
        if !self.registry.tag_matches(self.role.fixnum, w) {
            return Err(VmError::new(
                VmErrorKind::BadRepOperation,
                format!("{what} must be a fixnum, got {}", self.describe(w)),
            ));
        }
        Ok(self.registry.decode_immediate(self.role.fixnum, w))
    }

    fn symbol_name(&self, w: Word) -> Result<String, VmError> {
        let sym = self
            .registry
            .role(roles::SYMBOL)
            .ok_or_else(|| VmError::new(VmErrorKind::BadProgram, "no `symbol` role"))?;
        if !self.registry.tag_matches(sym, w) {
            return Err(VmError::new(
                VmErrorKind::BadRepOperation,
                format!("expected a symbol, got {}", self.describe(w)),
            ));
        }
        let base = (w >> 3) as usize;
        let str_ptr = self.heap.get(base + 1)?;
        self.string_content(str_ptr)
    }

    pub(crate) fn string_content(&self, w: Word) -> Result<String, VmError> {
        let string = self
            .registry
            .role(roles::STRING)
            .ok_or_else(|| VmError::new(VmErrorKind::BadProgram, "no `string` role"))?;
        let char_rep = self
            .registry
            .role(roles::CHAR)
            .ok_or_else(|| VmError::new(VmErrorKind::BadProgram, "no `char` role"))?;
        if !self.registry.tag_matches(string, w) {
            return Err(VmError::new(
                VmErrorKind::BadRepOperation,
                format!("expected a string, got {}", self.describe(w)),
            ));
        }
        let base = (w >> 3) as usize;
        let len = header_len(self.heap.get(base)?);
        let mut s = String::with_capacity(len);
        for i in 0..len {
            let cw = self.heap.get(base + 1 + i)?;
            let code = self.registry.decode_immediate(char_rep, cw) as u32;
            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
        }
        Ok(s)
    }

    pub(crate) fn intern_value(&mut self, string_ptr: Word) -> Result<Word, VmError> {
        let name = self.string_content(string_ptr)?;
        if let Some(w) = self.interned.get(&name) {
            return Ok(*w);
        }
        let symrep = self
            .registry
            .role(roles::SYMBOL)
            .ok_or_else(|| VmError::new(VmErrorKind::BadProgram, "no `symbol` role"))?;
        let RepKind::Pointer { tag, .. } = self.registry.info(symrep).kind else {
            return Err(VmError::new(
                VmErrorKind::BadProgram,
                "`symbol` role must be a pointer",
            ));
        };
        // The string argument may move if allocation collects; re-derive it
        // afterwards via the interned name (we copy the name into the new
        // string below to stay simple and GC-safe).
        let fresh = encode::encode_string(self, &name)?;
        let w = self.alloc_object(1, symrep as u16, tag, fresh);
        self.interned.insert(name, w);
        Ok(w)
    }

    fn rep_generic(&mut self, op: RepVmOp, args: &[Reg]) -> Result<Word, VmError> {
        match op {
            RepVmOp::MakeImm => {
                let name = self.symbol_name(self.r(args[0]))?;
                let tag_bits = self.fixnum_arg(self.r(args[1]), "tag-bits")? as u32;
                let tag = self.fixnum_arg(self.r(args[2]), "tag")? as u64;
                let shift = self.fixnum_arg(self.r(args[3]), "shift")? as u32;
                let rid = self
                    .registry
                    .intern_immediate(&name, tag_bits, tag, shift)
                    .map_err(|e| VmError::new(VmErrorKind::BadRepOperation, e.0))?;
                self.make_rep_object(rid)
            }
            RepVmOp::MakePtr => {
                let name = self.symbol_name(self.r(args[0]))?;
                let tag = self.fixnum_arg(self.r(args[1]), "tag")? as u64;
                let discriminated = self.r(args[2]) != self.role.false_word;
                let rid = self
                    .registry
                    .intern_pointer(&name, tag, discriminated)
                    .map_err(|e| VmError::new(VmErrorKind::BadRepOperation, e.0))?;
                self.ptr_table = self.registry.pointer_pattern_table();
                self.make_rep_object(rid)
            }
            RepVmOp::Provide => {
                let role = self.symbol_name(self.r(args[0]))?;
                let rid = self.rep_id_of(self.r(args[1]))?;
                self.registry
                    .provide_role(&role, rid)
                    .map_err(|e| VmError::new(VmErrorKind::BadRepOperation, e.0))?;
                Ok(self.role.unspec_word)
            }
            RepVmOp::Inject => {
                let rid = self.rep_id_of(self.r(args[0]))?;
                let w = self.r(args[1]);
                Ok(match self.registry.info(rid).kind {
                    RepKind::Immediate { tag, shift, .. } => (w << shift) | tag as i64,
                    RepKind::Pointer { tag, .. } => w | tag as i64,
                })
            }
            RepVmOp::Project => {
                let rid = self.rep_id_of(self.r(args[0]))?;
                let w = self.r(args[1]);
                Ok(match self.registry.info(rid).kind {
                    RepKind::Immediate { shift, .. } => w >> shift,
                    RepKind::Pointer { .. } => w & !0b111,
                })
            }
            RepVmOp::Test => {
                let rid = self.rep_id_of(self.r(args[0]))?;
                let w = self.r(args[1]);
                let info = self.registry.info(rid);
                let mut ok = self.registry.tag_matches(rid, w);
                if ok {
                    if let RepKind::Pointer {
                        discriminated: true,
                        ..
                    } = info.kind
                    {
                        let base = (w >> 3) as usize;
                        ok = header_type(self.heap.get(base)?) == rid as u16;
                    }
                }
                Ok(ok as i64)
            }
            RepVmOp::Alloc => {
                let n = self.r(args[1]);
                if !(0..=(1 << 40)).contains(&n) {
                    return Err(VmError::new(
                        VmErrorKind::BadRepOperation,
                        format!("rep-alloc of {n} fields"),
                    ));
                }
                self.ensure_space(n as usize + 1);
                // Re-read after potential GC.
                let rid = self.rep_id_of(self.r(args[0]))?;
                let fill = self.r(args[2]);
                let RepKind::Pointer { tag, .. } = self.registry.info(rid).kind else {
                    return Err(VmError::new(
                        VmErrorKind::BadRepOperation,
                        "rep-alloc of an immediate representation",
                    ));
                };
                Ok(self.alloc_object(n as usize, rid as u16, tag, fill))
            }
            RepVmOp::Ref | RepVmOp::Set | RepVmOp::Len => {
                let rid = self.rep_id_of(self.r(args[0]))?;
                let v = self.r(args[1]);
                if !self.registry.tag_matches(rid, v) {
                    return Err(VmError::new(
                        VmErrorKind::BadRepOperation,
                        format!(
                            "value is not a {}: {}",
                            self.registry.info(rid).name,
                            self.describe(v)
                        ),
                    ));
                }
                let base = (v >> 3) as usize;
                let len = header_len(self.heap.get(base)?);
                match op {
                    RepVmOp::Len => Ok(len as i64),
                    _ => {
                        let i = self.r(args[2]);
                        if !(0..len as i64).contains(&i) {
                            return Err(VmError::new(
                                VmErrorKind::BadRepOperation,
                                format!("field index {i} out of range 0..{len}"),
                            ));
                        }
                        match op {
                            RepVmOp::Ref => self.heap.get(base + 1 + i as usize),
                            RepVmOp::Set => {
                                let x = self.r(args[3]);
                                self.heap.set(base + 1 + i as usize, x)?;
                                Ok(self.role.unspec_word)
                            }
                            _ => unreachable!(),
                        }
                    }
                }
            }
        }
    }
}
