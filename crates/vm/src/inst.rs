//! The virtual machine's instruction set.
//!
//! A register machine over 64-bit tagged words.  The set is deliberately
//! close to what a RISC code generator would emit — loads/stores with a
//! displacement (so tag subtraction folds into addressing), compare-and-
//! branch fusions, and immediate operand forms — so that *instruction
//! counts* are a meaningful proxy for generated-code quality.
//!
//! The `Rep` instruction family is the run-time (generic, dynamically
//! dispatched) face of the first-class representation-type facility; the
//! optimizer's job in the paper is to make these disappear from hot code.

use sxr_ir::rep::RepId;
use sxr_ir::FnId;

/// A virtual register index within the current frame.
pub type Reg = u16;

/// Two-operand ALU operations. `CmpEq`/`CmpLt` produce raw 0/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Quot,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    CmpEq,
    CmpLt,
}

/// Branch comparison kinds (fused compare-and-branch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Ge,
}

/// A register or a small immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegImm {
    /// Operand in a register.
    Reg(Reg),
    /// Immediate operand.
    Imm(i32),
}

/// Generic representation-type operations (the run-time slow path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum RepVmOp {
    MakeImm,
    MakePtr,
    Provide,
    Inject,
    Project,
    Test,
    Alloc,
    Ref,
    Set,
    Len,
}

/// One VM instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `d <- imm` (an already-encoded tagged word or raw word).
    Const { d: Reg, imm: i64 },
    /// `d <- pool[idx]` (heap constants built by the loader).
    Pool { d: Reg, idx: u32 },
    /// `d <- s`.
    Move { d: Reg, s: Reg },
    /// `d <- a op b`.
    Bin { op: BinOp, d: Reg, a: Reg, b: Reg },
    /// `d <- a op imm`.
    BinI { op: BinOp, d: Reg, a: Reg, imm: i32 },
    /// `d <- heap[(p + disp) >> 3]` — displacement addressing folds the tag.
    LoadD { d: Reg, p: Reg, disp: i32 },
    /// `d <- heap[(p + x + disp) >> 3]` — indexed addressing.
    LoadX { d: Reg, p: Reg, x: Reg, disp: i32 },
    /// `heap[(p + disp) >> 3] <- s`.
    StoreD { p: Reg, disp: i32, s: Reg },
    /// `heap[(p + x + disp) >> 3] <- s`.
    StoreX { p: Reg, x: Reg, disp: i32, s: Reg },
    /// Allocate an object of representation `rep` with `len` fields, all
    /// initialized to `fill`; `d` receives the tagged pointer.
    AllocFill {
        d: Reg,
        len: RegImm,
        fill: Reg,
        rep: RepId,
    },
    /// Unconditional jump to instruction index `t`.
    Jump { t: u32 },
    /// `if a cmp b goto t` (b may be an immediate).
    JumpCmp {
        op: CmpOp,
        a: Reg,
        b: RegImm,
        t: u32,
    },
    /// `d <- globals[g]`.
    GlobalGet { d: Reg, g: u32 },
    /// `globals[g] <- s`.
    GlobalSet { g: u32, s: Reg },
    /// Allocate a closure over function `f` capturing `free`.
    MakeClosure { d: Reg, f: FnId, free: Vec<Reg> },
    /// Overwrite free slot `idx` of closure `clo` (letrec patching).
    ClosureSet { clo: Reg, idx: u32, val: Reg },
    /// Indirect call through a closure value.
    Call { d: Reg, f: Reg, args: Vec<Reg> },
    /// Direct call to a known function (`clo` becomes the callee's closure
    /// register).
    CallKnown {
        d: Reg,
        f: FnId,
        clo: Reg,
        args: Vec<Reg>,
    },
    /// Indirect tail call.
    TailCall { f: Reg, args: Vec<Reg> },
    /// Direct tail call.
    TailCallKnown { f: FnId, clo: Reg, args: Vec<Reg> },
    /// Return `s` to the caller.
    Ret { s: Reg },
    /// Generic representation operation (dynamic dispatch on the rep-type
    /// argument in `args[0]`, except `MakeImm`/`MakePtr`).
    Rep { op: RepVmOp, d: Reg, args: Vec<Reg> },
    /// Intern the string in `s`; `d` receives the canonical symbol.
    Intern { d: Reg, s: Reg },
    /// Append the character in `s` to the output port.
    WriteChar { s: Reg },
    /// Raise a runtime error carrying the value in `s`.
    ErrorOp { s: Reg },
    /// Install a trap handler: if a recoverable trap fires while this
    /// frame (or any callee) runs, the stack unwinds back here, the closure
    /// in `h` is called with the condition value, and its result lands in
    /// `d` with control resuming at instruction index `t`.
    PushHandler { h: Reg, d: Reg, t: u32 },
    /// Uninstall the most recent trap handler (normal exit of the
    /// protected extent).
    PopHandler,
    /// Raise the value in `s` as a condition, delivering it to the nearest
    /// handler (terminal `UncaughtCondition` error when none exists).
    RaiseOp { s: Reg },
    /// Reset the dynamic instruction counters (measurement support; not
    /// itself counted).
    ResetCounters,
}

/// Coarse classification for reporting (Table 2 breaks counts down by
/// class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// ALU and constant/move traffic.
    Arith,
    /// Loads and stores.
    Memory,
    /// Jumps and fused branches.
    Branch,
    /// Calls, returns, closure creation.
    Call,
    /// Allocation.
    Alloc,
    /// Generic (dynamically dispatched) representation operations.
    RepGeneric,
    /// Globals, interning, I/O, everything else.
    Misc,
}

impl InstClass {
    /// All classes, in report order.
    pub const ALL: [InstClass; 7] = [
        InstClass::Arith,
        InstClass::Memory,
        InstClass::Branch,
        InstClass::Call,
        InstClass::Alloc,
        InstClass::RepGeneric,
        InstClass::Misc,
    ];

    /// Short column label.
    pub fn label(self) -> &'static str {
        match self {
            InstClass::Arith => "alu",
            InstClass::Memory => "mem",
            InstClass::Branch => "br",
            InstClass::Call => "call",
            InstClass::Alloc => "alloc",
            InstClass::RepGeneric => "rep",
            InstClass::Misc => "misc",
        }
    }
}

impl Inst {
    /// The reporting class of this instruction.
    pub fn class(&self) -> InstClass {
        match self {
            Inst::Const { .. } | Inst::Move { .. } | Inst::Bin { .. } | Inst::BinI { .. } => {
                InstClass::Arith
            }
            Inst::LoadD { .. }
            | Inst::LoadX { .. }
            | Inst::StoreD { .. }
            | Inst::StoreX { .. }
            | Inst::ClosureSet { .. } => InstClass::Memory,
            Inst::Jump { .. } | Inst::JumpCmp { .. } => InstClass::Branch,
            Inst::Call { .. }
            | Inst::CallKnown { .. }
            | Inst::TailCall { .. }
            | Inst::TailCallKnown { .. }
            | Inst::Ret { .. } => InstClass::Call,
            Inst::AllocFill { .. } | Inst::MakeClosure { .. } => InstClass::Alloc,
            Inst::Rep { .. } => InstClass::RepGeneric,
            Inst::Pool { .. }
            | Inst::GlobalGet { .. }
            | Inst::GlobalSet { .. }
            | Inst::Intern { .. }
            | Inst::WriteChar { .. }
            | Inst::ErrorOp { .. }
            | Inst::PushHandler { .. }
            | Inst::PopHandler
            | Inst::RaiseOp { .. }
            | Inst::ResetCounters => InstClass::Misc,
        }
    }
}

/// A compiled function.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeFun {
    /// Diagnostic name.
    pub name: String,
    /// Number of declared (fixed) parameters.
    pub arity: usize,
    /// True when extra arguments are collected into a rest list (built via
    /// the library's `pair`/`null` representations).
    pub variadic: bool,
    /// Number of registers in a frame (>= arity + 1; register 0 is the
    /// closure).
    pub nregs: usize,
    /// Number of closure free-variable slots.
    pub free_count: usize,
    /// The code.
    pub insts: Vec<Inst>,
    /// `ptr_map[r]` is true when register `r` may hold a *tagged* value (the
    /// precise-GC root map). Raw-word registers are skipped by the
    /// collector.
    pub ptr_map: Vec<bool>,
    /// `free_ptr_map[i]` is true when closure free slot `i` may hold a
    /// tagged value. Raw slots (untagged words the optimizer hoisted across
    /// a lambda) are skipped when the collector scans a closure of this
    /// function. Slots past the end of the map are conservatively scanned,
    /// so an empty map means "scan everything" (hand-built code).
    pub free_ptr_map: Vec<bool>,
}

/// An entry in the constant pool, materialized on the heap by the loader.
#[derive(Debug, Clone, PartialEq)]
pub enum PoolEntry {
    /// A quoted datum.
    Datum(sxr_sexp::Datum),
    /// A first-class representation-type object.
    Rep(RepId),
}

/// A complete loadable program.
#[derive(Debug, Clone, Default)]
pub struct CodeProgram {
    /// All functions; entry point is `main`.
    pub funs: Vec<CodeFun>,
    /// Entry function id.
    pub main: FnId,
    /// Constant pool.
    pub pool: Vec<PoolEntry>,
    /// Number of global slots.
    pub nglobals: usize,
    /// Global names (diagnostics).
    pub global_names: Vec<String>,
    /// The representation registry built at compile time (the library's
    /// layout decisions, which the loader and GC obey).
    pub registry: sxr_ir::rep::RepRegistry,
}

impl Default for CodeFun {
    fn default() -> Self {
        CodeFun {
            name: String::new(),
            arity: 0,
            variadic: false,
            nregs: 1,
            free_count: 0,
            insts: Vec::new(),
            ptr_map: vec![true],
            free_ptr_map: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes() {
        assert_eq!(Inst::Const { d: 0, imm: 1 }.class(), InstClass::Arith);
        assert_eq!(
            Inst::LoadD {
                d: 0,
                p: 0,
                disp: 7
            }
            .class(),
            InstClass::Memory
        );
        assert_eq!(Inst::Jump { t: 0 }.class(), InstClass::Branch);
        assert_eq!(Inst::Ret { s: 0 }.class(), InstClass::Call);
        assert_eq!(
            Inst::PushHandler { h: 0, d: 0, t: 0 }.class(),
            InstClass::Misc
        );
        assert_eq!(Inst::PopHandler.class(), InstClass::Misc);
        assert_eq!(Inst::RaiseOp { s: 0 }.class(), InstClass::Misc);
        assert_eq!(
            Inst::Rep {
                op: RepVmOp::Ref,
                d: 0,
                args: vec![]
            }
            .class(),
            InstClass::RepGeneric
        );
    }
}
