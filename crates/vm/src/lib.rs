//! The `sxr` virtual machine: a tagged-word register machine with a
//! two-space copying collector and exact instruction accounting.
//!
//! The VM stands in for the SchemeXerox native back end (see DESIGN.md §5):
//! instruction counts over this machine are the reproduction's proxy for
//! generated-code quality. Two properties matter:
//!
//! 1. **Representation ignorance.** The machine hardwires *no* data-type
//!    layout. Literals, the GC's pointer test, `if`'s false value, closure
//!    tags — all flow from the representation registry built by *library*
//!    code. The only structural knowledge is the object header format and
//!    the closure record shape (code index in field 0), mirroring the
//!    paper's split where procedures remain compiler territory.
//! 2. **Deterministic counting.** Instruction counts are independent of
//!    heap size or GC schedule; GC work is reported separately.
//!
//! # Example
//!
//! ```
//! use sxr_vm::{BinOp, CodeFun, CodeProgram, Inst, Machine, MachineConfig};
//! use sxr_ir::rep::RepRegistry;
//!
//! // A library would normally build this registry; tests do it by hand.
//! let mut reg = RepRegistry::new();
//! let fx = reg.intern_immediate("fixnum", 3, 0, 3).unwrap();
//! let bo = reg.intern_immediate("boolean", 8, 0b010, 8).unwrap();
//! let un = reg.intern_immediate("unspecified", 8, 0b0001_0010, 8).unwrap();
//! let clo = reg.intern_pointer("closure", 0b111, false).unwrap();
//! for (role, id) in [("fixnum", fx), ("boolean", bo), ("unspecified", un), ("closure", clo)] {
//!     reg.provide_role(role, id).unwrap();
//! }
//! let main = CodeFun {
//!     name: "main".into(),
//!     arity: 0,
//!     variadic: false,
//!     nregs: 3,
//!     free_count: 0,
//!     insts: vec![
//!         Inst::Const { d: 1, imm: reg.encode_immediate(fx, 20) },
//!         Inst::Bin { op: BinOp::Add, d: 2, a: 1, b: 1 },
//!         Inst::Ret { s: 2 },
//!     ],
//!     ptr_map: vec![true, true, true],
//!     free_ptr_map: vec![],
//! };
//! let prog = CodeProgram { funs: vec![main], main: 0, pool: vec![], nglobals: 0,
//!                          global_names: vec![], registry: reg };
//! let mut m = Machine::new(prog, MachineConfig::default()).unwrap();
//! let w = m.run().unwrap();
//! assert_eq!(m.describe(w), "40");
//! ```

mod counters;
mod decode;
mod encode;
mod error;
mod fault;
mod heap;
mod inst;
mod machine;

pub use counters::Counters;
pub use encode::{describe as describe_word, encode_datum, words_needed};
pub use error::{OomPhase, VmError, VmErrorKind};
pub use fault::{ChaosRng, FaultPlan};
pub use heap::{grow_target, header, header_len, header_type, ClosureScan, Heap, Word};
pub use inst::{
    BinOp, CmpOp, CodeFun, CodeProgram, Inst, InstClass, PoolEntry, Reg, RegImm, RepVmOp,
};
pub use machine::{Machine, MachineConfig, StepResult, SuspendReason, VerifierHook};
