//! Runtime errors.

use std::fmt;

/// Why execution stopped abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmErrorKind {
    /// Application of a value that is not a procedure.
    NotAProcedure,
    /// Call with the wrong number of arguments.
    ArityMismatch,
    /// Memory access outside the allocated heap.
    BadMemoryAccess,
    /// Division or remainder by zero.
    DivideByZero,
    /// A generic representation operation applied to unsuitable operands.
    BadRepOperation,
    /// `(%error v)` was evaluated; carries the description of `v`.
    SchemeError,
    /// A structural problem in the loaded program (bad ids, missing roles).
    BadProgram,
    /// The configured instruction budget was exhausted (used by tests to
    /// bound runaway programs).
    Timeout,
}

/// A runtime error with context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmError {
    /// The failure category.
    pub kind: VmErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl VmError {
    /// Creates an error.
    pub fn new(kind: VmErrorKind, message: impl Into<String>) -> VmError {
        VmError {
            kind,
            message: message.into(),
        }
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm error: {}", self.message)
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = VmError::new(VmErrorKind::DivideByZero, "quotient by zero");
        assert_eq!(e.to_string(), "vm error: quotient by zero");
    }
}
