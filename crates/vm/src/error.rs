//! Runtime errors.

use std::fmt;

/// Which activity detected an out-of-memory condition — the two are
/// operationally different: an `Alloc` OOM means the request itself can
/// never fit under the capacity cap, a `Collect` OOM means a completed
/// collection failed to reclaim enough space for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OomPhase {
    /// The allocation request exceeds what the heap could ever provide
    /// (or a fault plan failed this allocation by schedule).
    Alloc,
    /// A garbage collection ran to completion but the surviving live data
    /// left too little room for the request, and the capacity cap forbids
    /// growing.
    Collect,
}

impl fmt::Display for OomPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OomPhase::Alloc => "alloc",
            OomPhase::Collect => "collect",
        })
    }
}

/// Why execution stopped abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmErrorKind {
    /// Application of a value that is not a procedure.
    NotAProcedure,
    /// Call with the wrong number of arguments.
    ArityMismatch,
    /// Memory access outside the allocated heap.
    BadMemoryAccess,
    /// Division or remainder by zero.
    DivideByZero,
    /// A generic representation operation applied to unsuitable operands.
    BadRepOperation,
    /// `(%error v)` was evaluated; carries the description of `v`.
    SchemeError,
    /// A structural problem in the loaded program (bad ids, missing roles).
    BadProgram,
    /// The configured instruction budget was exhausted (used by tests to
    /// bound runaway programs).
    Timeout,
    /// `(%raise v)` was evaluated with no handler installed; carries the
    /// description of `v`.
    UncaughtCondition,
    /// The load-time bytecode verifier rejected the program; the machine
    /// refused to start.  `fun`/`pc` locate the offending instruction and
    /// `rule` is the stable name of the violated verifier rule (see
    /// `sxr-analysis::bcverify`).
    RejectedByVerifier {
        /// Index of the function containing the violation.
        fun: u32,
        /// Instruction offset of the violation within that function.
        pc: u32,
        /// Stable rule label, e.g. `"def-before-use"`.
        rule: &'static str,
    },
    /// The heap could not satisfy an allocation: `requested` words were
    /// needed but only `capacity` words of (capped) heap exist.  Structured
    /// and recoverable — the machine's state is still a valid heap; no
    /// partial object was created.  `phase` distinguishes a request that
    /// could never fit ([`OomPhase::Alloc`]) from a collection that ran but
    /// reclaimed too little ([`OomPhase::Collect`]).
    OutOfMemory {
        /// Words the failing allocation needed (header included).
        requested: usize,
        /// Heap capacity in words at the time of failure.
        capacity: usize,
        /// Which activity detected the exhaustion.
        phase: OomPhase,
    },
}

impl VmErrorKind {
    /// True for any [`VmErrorKind::OutOfMemory`], whatever its payload.
    pub fn is_oom(&self) -> bool {
        matches!(self, VmErrorKind::OutOfMemory { .. })
    }

    /// A stable label for the kind, ignoring payload (used by differential
    /// harnesses to compare error classes across configurations).
    pub fn label(&self) -> &'static str {
        match self {
            VmErrorKind::NotAProcedure => "not-a-procedure",
            VmErrorKind::ArityMismatch => "arity-mismatch",
            VmErrorKind::BadMemoryAccess => "bad-memory-access",
            VmErrorKind::DivideByZero => "divide-by-zero",
            VmErrorKind::BadRepOperation => "bad-rep-operation",
            VmErrorKind::SchemeError => "scheme-error",
            VmErrorKind::BadProgram => "bad-program",
            VmErrorKind::Timeout => "timeout",
            VmErrorKind::UncaughtCondition => "uncaught-condition",
            VmErrorKind::RejectedByVerifier { .. } => "rejected-by-verifier",
            VmErrorKind::OutOfMemory { .. } => "out-of-memory",
        }
    }
}

/// A runtime error with context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmError {
    /// The failure category.
    pub kind: VmErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl VmError {
    /// Creates an error.
    pub fn new(kind: VmErrorKind, message: impl Into<String>) -> VmError {
        VmError {
            kind,
            message: message.into(),
        }
    }

    /// Creates a structured out-of-memory error.
    pub fn oom(requested: usize, capacity: usize, phase: OomPhase) -> VmError {
        VmError {
            kind: VmErrorKind::OutOfMemory {
                requested,
                capacity,
                phase,
            },
            message: format!(
                "out of memory during {phase}: {requested} words requested, \
                 {capacity} words of heap"
            ),
        }
    }

    /// Creates a structured verifier rejection.
    pub fn rejected(fun: u32, pc: u32, rule: &'static str, detail: impl Into<String>) -> VmError {
        VmError {
            kind: VmErrorKind::RejectedByVerifier { fun, pc, rule },
            message: format!("fun {fun} pc {pc}: [{rule}] {}", detail.into()),
        }
    }

    /// True for any out-of-memory error.
    pub fn is_oom(&self) -> bool {
        self.kind.is_oom()
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm error: {}", self.message)
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = VmError::new(VmErrorKind::DivideByZero, "quotient by zero");
        assert_eq!(e.to_string(), "vm error: quotient by zero");
    }

    #[test]
    fn oom_is_structured_and_phased() {
        let e = VmError::oom(128, 64, OomPhase::Collect);
        assert!(e.is_oom());
        assert_eq!(
            e.kind,
            VmErrorKind::OutOfMemory {
                requested: 128,
                capacity: 64,
                phase: OomPhase::Collect
            }
        );
        assert!(e.to_string().contains("during collect"));
        assert!(e.to_string().contains("128 words requested"));
        let a = VmError::oom(128, 64, OomPhase::Alloc);
        assert_ne!(a.kind, e.kind, "phases are distinguishable");
        assert_eq!(a.kind.label(), e.kind.label(), "but share one class label");
    }

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(VmErrorKind::Timeout.label(), "timeout");
        assert_eq!(VmErrorKind::BadProgram.label(), "bad-program");
        assert_eq!(VmErrorKind::UncaughtCondition.label(), "uncaught-condition");
        assert!(!VmErrorKind::SchemeError.is_oom());
    }

    #[test]
    fn verifier_rejection_is_structured() {
        let e = VmError::rejected(3, 7, "def-before-use", "register r5 read before any write");
        assert_eq!(
            e.kind,
            VmErrorKind::RejectedByVerifier {
                fun: 3,
                pc: 7,
                rule: "def-before-use"
            }
        );
        assert_eq!(e.kind.label(), "rejected-by-verifier");
        assert!(e.to_string().contains("fun 3 pc 7"));
        assert!(e.to_string().contains("[def-before-use]"));
    }
}
