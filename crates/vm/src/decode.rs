//! Pre-decoded instruction stream — the interpreter's hot-path form.
//!
//! [`crate::inst::Inst`] is the loadable, inspectable format: some variants
//! carry `Vec<Reg>` operand lists and `RegImm` sums that would force the
//! dispatch loop to clone or re-match on every execution.  At load time
//! ([`crate::Machine::new`]) every function is decoded once into [`DInst`],
//! a flat `Copy` form:
//!
//! - operand lists live in one shared arena ([`DecodedProgram::args`]) and
//!   instructions carry an [`ArgSpan`] (offset + length) into it;
//! - `RegImm` operands are split into distinct register/immediate variants
//!   so the loop never re-discriminates them;
//! - representation facts that are fixed at load time (the pointer tag for
//!   an `AllocFill` rep, the closure role's tag and encoded code word) are
//!   resolved here, off the hot path.
//!
//! The interpreter then fetches instructions by value: zero per-step heap
//! allocation and no borrows of the program during execution.

use crate::error::{VmError, VmErrorKind};
use crate::heap::Word;
use crate::inst::{BinOp, CmpOp, CodeProgram, Inst, InstClass, Reg, RegImm, RepVmOp};
use sxr_ir::rep::{RepId, RepKind, RepRegistry};

/// A span into the shared operand arena ([`DecodedProgram::args`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArgSpan {
    /// First operand's index in the arena.
    pub off: u32,
    /// Number of operands.
    pub len: u16,
}

/// One pre-decoded instruction.  Everything is `Copy`; executing a `DInst`
/// never touches the allocator.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DInst {
    Const {
        d: Reg,
        imm: Word,
    },
    Pool {
        d: Reg,
        idx: u32,
    },
    Move {
        d: Reg,
        s: Reg,
    },
    Bin {
        op: BinOp,
        d: Reg,
        a: Reg,
        b: Reg,
    },
    BinI {
        op: BinOp,
        d: Reg,
        a: Reg,
        imm: i64,
    },
    LoadD {
        d: Reg,
        p: Reg,
        disp: i64,
    },
    LoadX {
        d: Reg,
        p: Reg,
        x: Reg,
        disp: i64,
    },
    StoreD {
        p: Reg,
        disp: i64,
        s: Reg,
    },
    StoreX {
        p: Reg,
        x: Reg,
        disp: i64,
        s: Reg,
    },
    /// `AllocFill` with a static length; `tag` pre-resolved from the rep.
    AllocImm {
        d: Reg,
        len: u32,
        fill: Reg,
        rep: u16,
        tag: u64,
    },
    /// `AllocFill` with the length in a register.
    AllocReg {
        d: Reg,
        len: Reg,
        fill: Reg,
        rep: u16,
        tag: u64,
    },
    Jump {
        t: u32,
    },
    JumpCmpRR {
        op: CmpOp,
        a: Reg,
        b: Reg,
        t: u32,
    },
    JumpCmpRI {
        op: CmpOp,
        a: Reg,
        imm: i64,
        t: u32,
    },
    GlobalGet {
        d: Reg,
        g: u32,
    },
    GlobalSet {
        g: u32,
        s: Reg,
    },
    /// `tag` and `code` (the encoded fixnum holding the function id) are
    /// resolved at decode time from the closure/fixnum roles.
    MakeClosure {
        d: Reg,
        free: ArgSpan,
        tag: u64,
        code: Word,
    },
    ClosureSet {
        clo: Reg,
        idx: u32,
        val: Reg,
    },
    Call {
        d: Reg,
        f: Reg,
        args: ArgSpan,
    },
    CallKnown {
        d: Reg,
        f: u32,
        clo: Reg,
        args: ArgSpan,
    },
    TailCall {
        f: Reg,
        args: ArgSpan,
    },
    TailCallKnown {
        f: u32,
        clo: Reg,
        args: ArgSpan,
    },
    Ret {
        s: Reg,
    },
    Rep {
        op: RepVmOp,
        d: Reg,
        args: ArgSpan,
    },
    Intern {
        d: Reg,
        s: Reg,
    },
    WriteChar {
        s: Reg,
    },
    ErrorOp {
        s: Reg,
    },
    PushHandler {
        h: Reg,
        d: Reg,
        t: u32,
    },
    PopHandler,
    RaiseOp {
        s: Reg,
    },
    ResetCounters,
}

impl DInst {
    /// The reporting class (mirrors [`Inst::class`]).
    pub fn class(self) -> InstClass {
        match self {
            DInst::Const { .. } | DInst::Move { .. } | DInst::Bin { .. } | DInst::BinI { .. } => {
                InstClass::Arith
            }
            DInst::LoadD { .. }
            | DInst::LoadX { .. }
            | DInst::StoreD { .. }
            | DInst::StoreX { .. }
            | DInst::ClosureSet { .. } => InstClass::Memory,
            DInst::Jump { .. } | DInst::JumpCmpRR { .. } | DInst::JumpCmpRI { .. } => {
                InstClass::Branch
            }
            DInst::Call { .. }
            | DInst::CallKnown { .. }
            | DInst::TailCall { .. }
            | DInst::TailCallKnown { .. }
            | DInst::Ret { .. } => InstClass::Call,
            DInst::AllocImm { .. } | DInst::AllocReg { .. } | DInst::MakeClosure { .. } => {
                InstClass::Alloc
            }
            DInst::Rep { .. } => InstClass::RepGeneric,
            DInst::Pool { .. }
            | DInst::GlobalGet { .. }
            | DInst::GlobalSet { .. }
            | DInst::Intern { .. }
            | DInst::WriteChar { .. }
            | DInst::ErrorOp { .. }
            | DInst::PushHandler { .. }
            | DInst::PopHandler
            | DInst::RaiseOp { .. }
            | DInst::ResetCounters => InstClass::Misc,
        }
    }
}

/// One function's hot-path data: the decoded code plus the frame facts the
/// call path needs without chasing the loadable program.
#[derive(Debug)]
pub(crate) struct DecodedFun {
    pub arity: usize,
    pub variadic: bool,
    pub nregs: usize,
    pub insts: Vec<DInst>,
}

/// The whole program in pre-decoded form.
#[derive(Debug)]
pub(crate) struct DecodedProgram {
    pub funs: Vec<DecodedFun>,
    /// Shared operand arena; indexed via [`ArgSpan`].
    pub args: Vec<Reg>,
}

/// Resolves the pointer tag of `rep`, or reports which instruction wanted
/// it to be a pointer.
fn pointer_tag(registry: &RepRegistry, rep: RepId, what: &str) -> Result<u64, VmError> {
    match registry.info(rep).kind {
        RepKind::Pointer { tag, .. } => Ok(tag),
        RepKind::Immediate { .. } => Err(VmError::new(
            VmErrorKind::BadProgram,
            format!(
                "{what} of immediate representation `{}`",
                registry.info(rep).name
            ),
        )),
    }
}

/// Decodes `program` against its (load-time) registry.  `closure_tag` and
/// the fixnum role come from the machine's role cache; they are fixed for
/// the life of the machine.
///
/// # Errors
///
/// Returns [`VmErrorKind::BadProgram`] for instructions that could never
/// execute successfully: an `AllocFill` of an immediate representation or
/// with a negative static length.
pub(crate) fn decode_program(
    program: &CodeProgram,
    registry: &RepRegistry,
    closure_tag: u64,
    fixnum: RepId,
) -> Result<DecodedProgram, VmError> {
    let mut args: Vec<Reg> = Vec::new();
    let mut span = |list: &[Reg]| -> ArgSpan {
        let off = args.len() as u32;
        args.extend_from_slice(list);
        ArgSpan {
            off,
            len: list.len() as u16,
        }
    };
    let mut funs = Vec::with_capacity(program.funs.len());
    for fun in &program.funs {
        let mut insts = Vec::with_capacity(fun.insts.len());
        for inst in &fun.insts {
            let d = match inst {
                Inst::Const { d, imm } => DInst::Const { d: *d, imm: *imm },
                Inst::Pool { d, idx } => DInst::Pool { d: *d, idx: *idx },
                Inst::Move { d, s } => DInst::Move { d: *d, s: *s },
                Inst::Bin { op, d, a, b } => DInst::Bin {
                    op: *op,
                    d: *d,
                    a: *a,
                    b: *b,
                },
                Inst::BinI { op, d, a, imm } => DInst::BinI {
                    op: *op,
                    d: *d,
                    a: *a,
                    imm: *imm as i64,
                },
                Inst::LoadD { d, p, disp } => DInst::LoadD {
                    d: *d,
                    p: *p,
                    disp: *disp as i64,
                },
                Inst::LoadX { d, p, x, disp } => DInst::LoadX {
                    d: *d,
                    p: *p,
                    x: *x,
                    disp: *disp as i64,
                },
                Inst::StoreD { p, disp, s } => DInst::StoreD {
                    p: *p,
                    disp: *disp as i64,
                    s: *s,
                },
                Inst::StoreX { p, x, disp, s } => DInst::StoreX {
                    p: *p,
                    x: *x,
                    disp: *disp as i64,
                    s: *s,
                },
                Inst::AllocFill { d, len, fill, rep } => {
                    let tag = pointer_tag(registry, *rep, "alloc")?;
                    match len {
                        RegImm::Imm(n) => {
                            if *n < 0 {
                                return Err(VmError::new(
                                    VmErrorKind::BadProgram,
                                    format!("`{}`: allocation of {n} fields", fun.name),
                                ));
                            }
                            DInst::AllocImm {
                                d: *d,
                                len: *n as u32,
                                fill: *fill,
                                rep: *rep as u16,
                                tag,
                            }
                        }
                        RegImm::Reg(r) => DInst::AllocReg {
                            d: *d,
                            len: *r,
                            fill: *fill,
                            rep: *rep as u16,
                            tag,
                        },
                    }
                }
                Inst::Jump { t } => DInst::Jump { t: *t },
                Inst::JumpCmp { op, a, b, t } => match b {
                    RegImm::Reg(r) => DInst::JumpCmpRR {
                        op: *op,
                        a: *a,
                        b: *r,
                        t: *t,
                    },
                    RegImm::Imm(i) => DInst::JumpCmpRI {
                        op: *op,
                        a: *a,
                        imm: *i as i64,
                        t: *t,
                    },
                },
                Inst::GlobalGet { d, g } => DInst::GlobalGet { d: *d, g: *g },
                Inst::GlobalSet { g, s } => DInst::GlobalSet { g: *g, s: *s },
                Inst::MakeClosure { d, f, free } => DInst::MakeClosure {
                    d: *d,
                    free: span(free),
                    tag: closure_tag,
                    code: registry.encode_immediate(fixnum, *f as i64),
                },
                Inst::ClosureSet { clo, idx, val } => DInst::ClosureSet {
                    clo: *clo,
                    idx: *idx,
                    val: *val,
                },
                Inst::Call { d, f, args } => DInst::Call {
                    d: *d,
                    f: *f,
                    args: span(args),
                },
                Inst::CallKnown { d, f, clo, args } => DInst::CallKnown {
                    d: *d,
                    f: *f,
                    clo: *clo,
                    args: span(args),
                },
                Inst::TailCall { f, args } => DInst::TailCall {
                    f: *f,
                    args: span(args),
                },
                Inst::TailCallKnown { f, clo, args } => DInst::TailCallKnown {
                    f: *f,
                    clo: *clo,
                    args: span(args),
                },
                Inst::Ret { s } => DInst::Ret { s: *s },
                Inst::Rep { op, d, args } => DInst::Rep {
                    op: *op,
                    d: *d,
                    args: span(args),
                },
                Inst::Intern { d, s } => DInst::Intern { d: *d, s: *s },
                Inst::WriteChar { s } => DInst::WriteChar { s: *s },
                Inst::ErrorOp { s } => DInst::ErrorOp { s: *s },
                Inst::PushHandler { h, d, t } => DInst::PushHandler {
                    h: *h,
                    d: *d,
                    t: *t,
                },
                Inst::PopHandler => DInst::PopHandler,
                Inst::RaiseOp { s } => DInst::RaiseOp { s: *s },
                Inst::ResetCounters => DInst::ResetCounters,
            };
            insts.push(d);
        }
        funs.push(DecodedFun {
            arity: fun.arity,
            variadic: fun.variadic,
            nregs: fun.nregs,
            insts,
        });
    }
    Ok(DecodedProgram { funs, args })
}
